// uld3d-bench-compare — the noise-aware perf-regression and model-fidelity
// gate over BENCH_*.json documents (written by util/bench).
//
//   uld3d-bench-compare BASELINE.json CURRENT.json
//       [--time-tol 15%] [--value-tol 1e-9] [--noise-mult 3]
//       [--time-advisory] [--verbose]
//   uld3d-bench-compare merge OUT.json IN1.json [IN2.json ...]
//
// Compare mode matches suites by name, then:
//   * fidelity values ("values"): fails when the relative difference of a
//     named value exceeds --value-tol (default 1e-9), or when a baseline
//     value/suite is missing from the current run — model drift is never
//     "noise";
//   * timings: fails when the current median exceeds the baseline median by
//     more than --time-tol (default 15%) AND the gap exceeds
//     --noise-mult x the summed 95% CI half-widths of both runs, so a
//     noisy CI machine does not produce flaky timing verdicts;
//   * timing-derived values ("timing_values": ns/op, overhead ratios, ...):
//     wall-clock-derived scalars that can never reproduce exactly, so they
//     fail only when the current value exceeds the baseline by more than
//     --time-tol, and their regressions are TIMING-class (demoted by
//     --time-advisory), never fidelity failures.
//
// Exit codes (this tool's contract, asserted by tests/cli_bench_compare.sh):
//   0  no regression
//   1  timing regression only (demoted to 0 by --time-advisory)
//   2  fidelity-value regression (dominates a simultaneous timing one)
//   3  usage error or malformed/unreadable JSON input
//
// Merge mode concatenates suite documents (single-suite or already-merged)
// into one {"schema_version":1,"suites":[...]} document, used by the suite
// driver to publish BENCH_all.json.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "uld3d/util/bench.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/table.hpp"

namespace {

using namespace uld3d;

struct CompareOptions {
  std::string baseline_path;
  std::string current_path;
  double time_tol = 0.15;
  double value_tol = 1e-9;
  double noise_mult = 3.0;
  bool time_advisory = false;
  bool verbose = false;
};

[[noreturn]] void usage(int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr) <<
      "usage: uld3d-bench-compare BASELINE.json CURRENT.json [options]\n"
      "       uld3d-bench-compare merge OUT.json IN1.json [IN2.json ...]\n"
      "options:\n"
      "  --time-tol PCT    allowed median (and timing-value) slowdown,\n"
      "                    e.g. 15% or 0.15\n"
      "  --value-tol REL   allowed relative fidelity-value drift (1e-9)\n"
      "  --noise-mult K    slowdown must exceed K x summed CI95 half-widths\n"
      "  --time-advisory   report timing regressions but exit 0 for them\n"
      "  --verbose         print every check, not only failures\n"
      "exit codes: 0 pass, 1 timing regression, 2 fidelity regression,\n"
      "            3 usage/malformed input\n";
  std::exit(exit_code);
}

double parse_tolerance(const std::string& text) {
  std::string body = text;
  double scale = 1.0;
  if (!body.empty() && body.back() == '%') {
    body.pop_back();
    scale = 0.01;
  }
  std::size_t used = 0;
  const double value = std::stod(body, &used);
  if (used != body.size() || !(value >= 0.0)) {
    throw std::invalid_argument("bad tolerance: " + text);
  }
  return value * scale;
}

/// A parsed suite document plus where it came from (for messages).
struct SuiteDoc {
  std::string name;
  const JsonValue* doc = nullptr;
};

/// Flatten a BENCH document: either one suite or a merged {"suites":[...]}.
std::vector<SuiteDoc> collect_suites(const JsonValue& root,
                                     const std::string& path) {
  std::vector<SuiteDoc> suites;
  if (const JsonValue* merged = root.find("suites"); merged != nullptr) {
    for (const JsonValue& entry : merged->as_array()) {
      suites.push_back({entry.at("suite").as_string(), &entry});
    }
  } else if (root.find("suite") != nullptr) {
    suites.push_back({root.at("suite").as_string(), &root});
  } else {
    throw JsonParseError(path + ": not a BENCH document (no \"suite\" or "
                         "\"suites\" member)");
  }
  for (const SuiteDoc& s : suites) {
    const double version = s.doc->number_or("schema_version", -1.0);
    if (version != static_cast<double>(bench::kBenchSchemaVersion)) {
      throw JsonParseError(path + ": suite '" + s.name +
                           "' has unsupported schema_version");
    }
  }
  return suites;
}

const JsonValue* find_named(const JsonValue& doc, const char* member,
                            const std::string& name) {
  const JsonValue* list = doc.find(member);
  if (list == nullptr || !list->is_array()) return nullptr;
  for (const JsonValue& entry : list->as_array()) {
    if (entry.string_or("name", "") == name) return &entry;
  }
  return nullptr;
}

double relative_diff(double baseline, double current) {
  const double denom = std::max(std::abs(baseline), 1e-300);
  return std::abs(current - baseline) / denom;
}

std::string format_seconds(double s) {
  return format_double(s * 1e3, 3) + " ms";
}

int run_compare(const CompareOptions& opts) {
  JsonValue baseline_root;
  JsonValue current_root;
  std::vector<SuiteDoc> baseline;
  std::vector<SuiteDoc> current;
  try {
    baseline_root = json_parse_file(opts.baseline_path);
    current_root = json_parse_file(opts.current_path);
    baseline = collect_suites(baseline_root, opts.baseline_path);
    current = collect_suites(current_root, opts.current_path);
  } catch (const Error& e) {
    std::cerr << "uld3d-bench-compare: " << e.what() << "\n";
    return 3;
  }

  const auto current_suite = [&](const std::string& name) -> const JsonValue* {
    for (const SuiteDoc& s : current) {
      if (s.name == name) return s.doc;
    }
    return nullptr;
  };

  Table failures({"Suite", "Check", "Baseline", "Current", "Delta",
                  "Verdict"});
  int timing_regressions = 0;
  int fidelity_regressions = 0;
  int timing_checks = 0;
  int value_checks = 0;

  for (const SuiteDoc& base_suite : baseline) {
    const JsonValue* cur = current_suite(base_suite.name);
    if (cur == nullptr) {
      failures.add_row({base_suite.name, "(suite)", "present", "MISSING", "-",
                        "FIDELITY"});
      ++fidelity_regressions;
      continue;
    }

    // Model-fidelity values: exact-ish comparison, never noise-gated.
    if (const JsonValue* values = base_suite.doc->find("values");
        values != nullptr && values->is_array()) {
      for (const JsonValue& base_value : values->as_array()) {
        const std::string name = base_value.string_or("name", "");
        if (name.empty()) continue;
        ++value_checks;
        const JsonValue* cur_value = find_named(*cur, "values", name);
        if (cur_value == nullptr) {
          failures.add_row({base_suite.name, name, "present", "MISSING", "-",
                            "FIDELITY"});
          ++fidelity_regressions;
          continue;
        }
        const JsonValue* bv = base_value.find("value");
        const JsonValue* cv = cur_value->find("value");
        // Non-finite values are emitted as strings ("nan"/"inf"); treat any
        // representation change as drift, matching string forms as equal.
        const bool base_num = bv != nullptr && bv->is_number();
        const bool cur_num = cv != nullptr && cv->is_number();
        bool failed = false;
        std::string base_text;
        std::string cur_text;
        std::string delta_text = "-";
        if (base_num && cur_num) {
          const double diff = relative_diff(bv->as_number(), cv->as_number());
          failed = diff > opts.value_tol;
          base_text = format_double(bv->as_number(), 9);
          cur_text = format_double(cv->as_number(), 9);
          delta_text = "rel " + format_double(diff, 12);
        } else {
          base_text = base_num ? format_double(bv->as_number(), 9)
                               : (bv != nullptr && bv->is_string()
                                      ? bv->as_string()
                                      : "?");
          cur_text = cur_num ? format_double(cv->as_number(), 9)
                             : (cv != nullptr && cv->is_string()
                                    ? cv->as_string()
                                    : "?");
          failed = base_text != cur_text;
        }
        if (failed) {
          failures.add_row({base_suite.name, name, base_text, cur_text,
                            delta_text, "FIDELITY"});
          ++fidelity_regressions;
        } else if (opts.verbose) {
          std::cout << "ok value " << base_suite.name << "/" << name << " ("
                    << delta_text << ")\n";
        }
      }
    }

    // Timing-derived values (ns/op, overhead ratios): wall-clock numbers
    // without per-sample CIs, gated one-sided at the timing tolerance and
    // reported with the TIMING class so --time-advisory demotes them.
    if (const JsonValue* tvalues = base_suite.doc->find("timing_values");
        tvalues != nullptr && tvalues->is_array()) {
      for (const JsonValue& base_value : tvalues->as_array()) {
        const std::string name = base_value.string_or("name", "");
        if (name.empty()) continue;
        ++timing_checks;
        const JsonValue* cur_value = find_named(*cur, "timing_values", name);
        if (cur_value == nullptr) {
          failures.add_row({base_suite.name, name, "present", "MISSING", "-",
                            "TIMING"});
          ++timing_regressions;
          continue;
        }
        const JsonValue* bv = base_value.find("value");
        const JsonValue* cv = cur_value->find("value");
        const bool both_num = bv != nullptr && bv->is_number() &&
                              cv != nullptr && cv->is_number();
        if (!both_num) continue;  // "nan"/"inf" strings: nothing to gate
        const double base_v = bv->as_number();
        const double cur_v = cv->as_number();
        if (!(base_v > 0.0)) continue;  // nothing to gate against
        const double slowdown = cur_v / base_v;
        if (cur_v > base_v * (1.0 + opts.time_tol)) {
          failures.add_row({base_suite.name, name, format_double(base_v, 4),
                            format_double(cur_v, 4), format_ratio(slowdown, 2),
                            "TIMING"});
          ++timing_regressions;
        } else if (opts.verbose) {
          std::cout << "ok timing value " << base_suite.name << "/" << name
                    << " (" << format_ratio(slowdown, 2) << ")\n";
        }
      }
    }

    // Timings: median slowdown beyond tolerance AND beyond combined noise.
    if (const JsonValue* benches = base_suite.doc->find("benchmarks");
        benches != nullptr && benches->is_array()) {
      for (const JsonValue& base_bench : benches->as_array()) {
        const std::string name = base_bench.string_or("name", "");
        if (name.empty()) continue;
        const JsonValue* cur_bench = find_named(*cur, "benchmarks", name);
        if (cur_bench == nullptr) {
          // A renamed/removed benchmark is reported with the timing class:
          // it breaks comparability but says nothing about model outputs.
          failures.add_row({base_suite.name, name, "present", "MISSING", "-",
                            "TIMING"});
          ++timing_regressions;
          continue;
        }
        ++timing_checks;
        const double base_median = base_bench.number_or("median_s", 0.0);
        const double cur_median = cur_bench->number_or("median_s", 0.0);
        if (!(base_median > 0.0)) continue;  // nothing to gate against
        const double slowdown = cur_median / base_median;
        const double noise =
            opts.noise_mult *
            (base_bench.number_or("ci95_half_width_s", 0.0) +
             cur_bench->number_or("ci95_half_width_s", 0.0));
        const bool beyond_tol = cur_median > base_median * (1.0 + opts.time_tol);
        const bool beyond_noise = (cur_median - base_median) > noise;
        if (beyond_tol && beyond_noise) {
          failures.add_row({base_suite.name, name, format_seconds(base_median),
                            format_seconds(cur_median),
                            format_ratio(slowdown, 2), "TIMING"});
          ++timing_regressions;
        } else if (opts.verbose) {
          std::cout << "ok timing " << base_suite.name << "/" << name << " ("
                    << format_ratio(slowdown, 2) << ", noise gate "
                    << format_seconds(noise) << ")\n";
        }
      }
    }
  }

  for (const SuiteDoc& s : current) {
    bool known = false;
    for (const SuiteDoc& b : baseline) known = known || b.name == s.name;
    if (!known) {
      std::cout << "note: suite '" << s.name
                << "' is new in the current run (no baseline)\n";
    }
  }

  if (fidelity_regressions > 0 || timing_regressions > 0) {
    failures.print(std::cout, "Regressions vs " + opts.baseline_path);
  }
  std::cout << "Checked " << value_checks << " fidelity values and "
            << timing_checks << " timings across " << baseline.size()
            << " baseline suites: " << fidelity_regressions
            << " fidelity regressions, " << timing_regressions
            << " timing regressions (time-tol "
            << format_double(opts.time_tol * 100.0, 1) << "%, value-tol "
            << opts.value_tol << ").\n";

  if (fidelity_regressions > 0) return 2;
  if (timing_regressions > 0) {
    if (opts.time_advisory) {
      std::cout << "timing regressions are advisory on this run "
                   "(--time-advisory); exiting 0\n";
      return 0;
    }
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

int run_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) usage(3);
  const std::string out_path = args[0];
  std::ostringstream os;
  os << "{\n  \"schema_version\": " << bench::kBenchSchemaVersion
     << ",\n  \"suites\": [";
  bool first = true;
  for (std::size_t i = 1; i < args.size(); ++i) {
    JsonValue root;
    try {
      root = json_parse_file(args[i]);
    } catch (const Error& e) {
      std::cerr << "uld3d-bench-compare: " << e.what() << "\n";
      return 3;
    }
    std::vector<SuiteDoc> suites;
    try {
      suites = collect_suites(root, args[i]);
    } catch (const Error& e) {
      std::cerr << "uld3d-bench-compare: " << e.what() << "\n";
      return 3;
    }
    // Re-emit each input file's text per suite.  Single-suite inputs are
    // appended verbatim (minus trailing whitespace); merged inputs are
    // re-serialized through the per-suite documents' original text being
    // unavailable, so we simply disallow double-merging beyond one level by
    // re-reading the file for each suite entry.
    std::ifstream file(args[i]);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string text = buffer.str();
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == ' ' || text.back() == '\r')) {
      text.pop_back();
    }
    if (root.find("suites") != nullptr) {
      std::cerr << "uld3d-bench-compare: merge input " << args[i]
                << " is already merged; pass the per-suite files instead\n";
      return 3;
    }
    if (!first) os << ",";
    first = false;
    os << "\n" << text;
  }
  os << "\n  ]\n}\n";
  // Atomic (write-temp-then-rename): a crash mid-merge must not leave a
  // half-written file where a later bench-compare run would find it.
  if (!write_file_atomic(out_path, os.str())) {
    std::cerr << "uld3d-bench-compare: cannot write output " << out_path
              << "\n";
    return 3;
  }
  std::cout << "Merged " << args.size() - 1 << " suite files into "
            << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) usage(0);
  if (!args.empty() && args[0] == "merge") {
    return run_merge({args.begin() + 1, args.end()});
  }

  CompareOptions opts;
  std::vector<std::string> positional;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& arg = args[i];
      const auto operand = [&]() -> const std::string& {
        if (i + 1 >= args.size()) {
          std::cerr << "uld3d-bench-compare: " << arg << " needs an operand\n";
          usage(3);
        }
        return args[++i];
      };
      if (arg == "--time-tol") {
        opts.time_tol = parse_tolerance(operand());
      } else if (arg == "--value-tol") {
        opts.value_tol = parse_tolerance(operand());
      } else if (arg == "--noise-mult") {
        opts.noise_mult = parse_tolerance(operand());
      } else if (arg == "--time-advisory") {
        opts.time_advisory = true;
      } else if (arg == "--verbose") {
        opts.verbose = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "uld3d-bench-compare: unknown flag " << arg << "\n";
        usage(3);
      } else {
        positional.push_back(arg);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "uld3d-bench-compare: " << e.what() << "\n";
    usage(3);
  }
  if (positional.size() != 2) usage(3);
  opts.baseline_path = positional[0];
  opts.current_path = positional[1];
  try {
    return run_compare(opts);
  } catch (const std::exception& e) {
    // Structurally-unexpected documents (wrong member kinds etc.) are
    // malformed inputs, not crashes.
    std::cerr << "uld3d-bench-compare: " << e.what() << "\n";
    return 3;
  }
}

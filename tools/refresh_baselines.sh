#!/bin/sh
# Refresh the committed benchmark baselines in bench/baselines/.
#
# Usage: tools/refresh_baselines.sh [BUILD_DIR]
#
# Rebuilds in Release mode (the only mode whose timings are meaningful as a
# baseline), runs the full suite via tools/run_benches.sh, and rewrites
# bench/baselines/BENCH_*.json.  Review the fidelity-value diff before
# committing: value changes mean the model output moved, not just the clock.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
      -DULD3D_BUILD_BENCHMARKS=ON
cmake --build "$build_dir" -j

out_dir="$repo_root/bench/baselines"
"$repo_root/tools/run_benches.sh" "$build_dir" "$out_dir"

echo ""
echo "Baselines refreshed under $out_dir."
echo "Inspect 'git diff bench/baselines' — timing drift is expected between"
echo "machines, but fidelity-value changes must be explainable by a model"
echo "change before you commit them."

#!/bin/sh
# Refresh the committed benchmark baselines in bench/baselines/.
#
# Usage: tools/refresh_baselines.sh [BUILD_DIR]
#
# Rebuilds in Release mode (the only mode whose timings are meaningful as a
# baseline), runs the full suite via tools/run_benches.sh, and rewrites
# bench/baselines/BENCH_*.json.  Review the fidelity-value diff before
# committing: value changes mean the model output moved, not just the clock.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
      -DULD3D_BUILD_BENCHMARKS=ON
cmake --build "$build_dir" -j

out_dir="$repo_root/bench/baselines"

# Run into a staging directory first, so the comparator can report exactly
# which values moved against the committed baselines before they are
# replaced.
stage_dir=$(mktemp -d "${TMPDIR:-/tmp}/uld3d_baselines.XXXXXX")
trap 'rm -rf "$stage_dir"' EXIT
"$repo_root/tools/run_benches.sh" "$build_dir" "$stage_dir"

echo ""
echo "=== Drift vs committed baselines ==================================="
echo "Fidelity-value rows mean the MODEL OUTPUT moved (explain in the PR);"
echo "timing rows are this machine vs the baseline machine (expected)."
compare="$build_dir/tools/uld3d-bench-compare"
if [ -f "$out_dir/BENCH_all.json" ] && [ -x "$compare" ]; then
  # Advisory + zero-tolerance: every moved value and timing prints; the
  # refresh itself never fails on drift (that is what the review is for).
  "$compare" "$out_dir/BENCH_all.json" "$stage_dir/BENCH_all.json" \
      --time-tol 0% --value-tol 0 --time-advisory --verbose || true
else
  echo "(no committed BENCH_all.json or comparator missing; skipping report)"
fi
echo "===================================================================="

cp "$stage_dir"/BENCH_*.json "$out_dir"/

echo ""
echo "Baselines refreshed under $out_dir."
echo "Inspect 'git diff bench/baselines' — timing drift is expected between"
echo "machines, but fidelity-value changes must be explainable by a model"
echo "change before you commit them."

// Shared machinery for the telemetry analyzers (uld3d-report, uld3d-diff):
// the NDJSON event-stream loader with its crash-tolerance rules, the
// per-run/per-stage/per-point aggregation both tools build on, and the
// machine-readable summary emitter (`uld3d-report --json`).
//
// This is a tools-local library (compiled into each binary), not part of
// uld3d::util: it depends on the *reader-side* contract of the event schema,
// which should stay free to evolve with the tools.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uld3d/util/jsonv.hpp"

namespace uld3d::report {

/// Parsed event lines (header-validated), in file order.
struct EventStream {
  std::vector<JsonValue> events;
  std::size_t torn_lines = 0;  ///< 0 or 1 (only the final line may tear)
};

/// Load an NDJSON event stream.  Schema-checked per line; exactly one
/// unparseable *final* line is tolerated (a process killed mid-write can
/// tear the last write(2)) and counted in `torn_lines`; a malformed line
/// anywhere else throws JsonParseError.
EventStream read_events(const std::string& path);

/// Exact double rendering — MUST match util/telemetry's writer so canon
/// re-renders reproduce the original bytes (doubles round-trip through the
/// parser bit-exactly at 17 significant digits).
std::string number_exact(double value);

/// Render one element of a params/metrics array: numbers exactly, and the
/// writer's non-finite string spellings ("nan"/"inf"/"-inf") verbatim.
std::string render_scalar(const JsonValue& v);

/// The "index" member of a point_done event.
std::uint64_t index_of(const JsonValue& event);

/// One run's identity row (a stream may hold several: resume appends).
struct RunInfo {
  std::string id;
  std::string shard;
  std::string command;
  std::string git_sha;
  std::string simd_isa;  ///< batch-kernel dispatch ("" = stream predates it)
  std::string status = "(no run_end)";  ///< crash/kill leaves no run_end
  std::string exit_code = "-";
};

/// Aggregate over all `stage` events with one name, including the resource
/// attribution fields (0 when the stream predates them — they are additive).
struct StageAgg {
  std::size_t count = 0;
  double wall_us = 0.0;
  double cpu_us = 0.0;
  double alloc_bytes = 0.0;
  double rss_hwm_kb = 0.0;  ///< max over events, not a sum
};

/// One point_done observation (file order; duplicates from resume included).
struct PointTiming {
  std::uint64_t index = 0;
  double dur_us = 0.0;
  bool ok = false;
};

/// Everything both analyzers need from one pass over a stream.
struct StreamSummary {
  std::vector<RunInfo> runs;  ///< insertion order
  std::string sweep_fingerprint;
  std::size_t grid_size = 0;
  std::size_t domain_size = 0;
  int jobs = 0;
  std::string sweep_line;  ///< human-readable sweep identity ("" = none)
  std::string shard_line;  ///< human-readable shard_info ("" = none)
  std::map<std::string, std::size_t> failure_counts;  ///< code -> count
  std::map<std::string, StageAgg> stages;             ///< name -> aggregate
  std::vector<PointTiming> timings;  ///< file order, duplicates included
  std::map<std::uint64_t, PointTiming> points_by_index;  ///< first win
  std::size_t ok = 0;      ///< point_done events with status ok
  std::size_t failed = 0;  ///< point_done events with any other status
  std::size_t checkpoints = 0;
  std::size_t progress_events = 0;

  /// True when `id` labels a run recorded in this stream (the RunId join
  /// check shared by every artifact join).
  [[nodiscard]] bool has_run(const std::string& id) const;
};

/// One aggregation pass over a stream.
StreamSummary summarize(const EventStream& stream);

/// Machine-readable rendering of a summary (one JSON object, trailing
/// newline): runs with exit status, sweep identity, point counts, the
/// failure taxonomy, per-stage wall/cpu/alloc/rss, and the `stragglers`
/// slowest points.  Shared by `uld3d-report --json` and `uld3d-diff --json`
/// (which embeds one per side).  `extra_members`, when non-empty, is
/// spliced verbatim as additional top-level members (caller renders them,
/// e.g. the `"reuse"` object from a joined metrics export).
std::string summary_to_json(const StreamSummary& summary,
                            const EventStream& stream,
                            const std::string& source_path,
                            std::size_t stragglers,
                            const std::string& extra_members = {});

/// The computation-reuse counters of one run's metrics export — the
/// MapCache (in-process and persistent-file layers) and sweep-point dedup.
/// Zeros when the export predates a counter; `any` distinguishes "all
/// zero" from "no metrics at all".
struct ReuseCounters {
  double hits = 0.0;          ///< mapper.mapcache.hits
  double misses = 0.0;        ///< mapper.mapcache.misses
  double file_hits = 0.0;     ///< mapper.mapcache.file_hits
  double file_loads = 0.0;    ///< mapper.mapcache.file_loads
  double file_appends = 0.0;  ///< mapper.mapcache.file_appends
  double dedup_unique = 0.0;   ///< dse.sweep.dedup_unique
  double dedup_aliased = 0.0;  ///< dse.sweep.dedup_aliased
  bool any = false;            ///< at least one of the above was present

  /// A run that loaded a persistent store ran warm: its mapper timings are
  /// not comparable to a cold run's even though its VALUES are identical.
  [[nodiscard]] bool warm() const { return file_loads > 0.0; }
};

/// Extract the reuse counters from a parsed metrics export document.
ReuseCounters reuse_counters(const JsonValue& metrics_doc);

/// Render a ReuseCounters as the `"reuse": {...}` member body (no trailing
/// comma) for summary_to_json's extra_members.
std::string reuse_to_json(const ReuseCounters& reuse);

}  // namespace uld3d::report

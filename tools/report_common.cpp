#include "report_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "uld3d/util/export.hpp"  // json_escape
#include "uld3d/util/telemetry.hpp"  // kTelemetrySchemaVersion

namespace uld3d::report {

std::string number_exact(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string render_scalar(const JsonValue& v) {
  if (v.is_string()) return "\"" + json_escape(v.as_string()) + "\"";
  return number_exact(v.as_number());
}

std::uint64_t index_of(const JsonValue& event) {
  return static_cast<std::uint64_t>(event.at("index").as_number());
}

EventStream read_events(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw JsonParseError("cannot read events file: " + path);
  }
  EventStream stream;
  std::string line;
  std::size_t line_no = 0;
  std::size_t pending_torn_line = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (pending_torn_line != 0) {
      // A parse failure is only forgivable on the FINAL line; seeing more
      // content after one means the file is corrupt, not torn.
      throw JsonParseError(path + ":" + std::to_string(pending_torn_line) +
                           ": malformed event line (not at end of file)");
    }
    JsonValue event;
    try {
      event = json_parse(line);
    } catch (const JsonParseError&) {
      pending_torn_line = line_no;
      continue;
    }
    const double schema = event.number_or("schema", -1.0);
    if (schema != static_cast<double>(kTelemetrySchemaVersion)) {
      throw JsonParseError(path + ":" + std::to_string(line_no) +
                           ": unsupported telemetry schema version");
    }
    if (event.find("ev") == nullptr || !event.at("ev").is_string()) {
      throw JsonParseError(path + ":" + std::to_string(line_no) +
                           ": event line has no \"ev\" type");
    }
    stream.events.push_back(std::move(event));
  }
  if (pending_torn_line != 0) stream.torn_lines = 1;
  return stream;
}

bool StreamSummary::has_run(const std::string& id) const {
  if (id.empty()) return false;
  return std::any_of(runs.begin(), runs.end(),
                     [&](const RunInfo& run) { return run.id == id; });
}

StreamSummary summarize(const EventStream& stream) {
  StreamSummary s;
  std::map<std::string, std::size_t> run_index;  // run_id -> runs[] slot
  for (const JsonValue& event : stream.events) {
    const std::string& type = event.at("ev").as_string();
    const std::string run_id = event.string_or("run", "");
    auto it = run_index.find(run_id);
    if (it == run_index.end()) {
      it = run_index.emplace(run_id, s.runs.size()).first;
      RunInfo info;
      info.id = run_id;
      info.shard = event.string_or("shard", "?");
      s.runs.push_back(std::move(info));
    }
    RunInfo& run = s.runs[it->second];
    if (type == "run_start") {
      run.command = event.string_or("command", "");
      if (const JsonValue* prov = event.find("provenance"); prov != nullptr) {
        run.git_sha = prov->string_or("git_sha", "");
        run.simd_isa = prov->string_or("simd_isa", "");
      }
    } else if (type == "run_end") {
      run.status = event.string_or("status", "?");
      run.exit_code =
          std::to_string(static_cast<int>(event.number_or("exit_code", -1)));
    } else if (type == "sweep_start") {
      s.sweep_fingerprint = event.string_or("fingerprint", "");
      s.grid_size =
          static_cast<std::size_t>(event.number_or("grid_size", 0));
      s.domain_size =
          static_cast<std::size_t>(event.number_or("domain_size", 0));
      s.jobs = static_cast<int>(event.number_or("jobs", 0));
      std::ostringstream os;
      os << "fingerprint " << event.string_or("fingerprint", "?") << ", grid "
         << s.grid_size << " points, domain " << s.domain_size << ", jobs "
         << s.jobs;
      s.sweep_line = os.str();
    } else if (type == "point_done") {
      PointTiming timing;
      timing.index = index_of(event);
      timing.dur_us = event.number_or("dur_us", 0.0);
      timing.ok = event.string_or("status", "") == "ok";
      timing.ok ? ++s.ok : ++s.failed;
      if (!timing.ok) {
        if (const JsonValue* f = event.find("failure");
            f != nullptr && f->is_object()) {
          ++s.failure_counts[f->string_or("code", "?")];
        }
      }
      // First observation wins in the per-index map: resume overlaps
      // re-evaluate a few points and the determinism contract makes the
      // repeats identical, so any one observation is representative.
      s.points_by_index.emplace(timing.index, timing);
      s.timings.push_back(timing);
    } else if (type == "stage") {
      StageAgg& agg = s.stages[event.string_or("name", "?")];
      ++agg.count;
      agg.wall_us += event.number_or("dur_us", 0.0);
      agg.cpu_us += event.number_or("cpu_us", 0.0);
      agg.alloc_bytes += event.number_or("alloc_bytes", 0.0);
      agg.rss_hwm_kb =
          std::max(agg.rss_hwm_kb, event.number_or("rss_kb", 0.0));
    } else if (type == "checkpoint_flush") {
      ++s.checkpoints;
    } else if (type == "progress") {
      ++s.progress_events;
    } else if (type == "shard_info") {
      std::ostringstream os;
      os << "shard "
         << static_cast<std::uint64_t>(event.number_or("shard_index", 0)) << "/"
         << static_cast<std::uint64_t>(event.number_or("shard_count", 0))
         << ", domain "
         << static_cast<std::uint64_t>(event.number_or("domain_size", 0))
         << " points";
      s.shard_line = os.str();
    }
  }
  return s;
}

std::string summary_to_json(const StreamSummary& summary,
                            const EventStream& stream,
                            const std::string& source_path,
                            std::size_t stragglers,
                            const std::string& extra_members) {
  std::ostringstream os;
  os << "{\"schema\": 1, \"kind\": \"report\", \"source\": \""
     << json_escape(source_path) << "\", \"events\": " << stream.events.size()
     << ", \"torn_lines\": " << stream.torn_lines << ", \"runs\": [";
  for (std::size_t i = 0; i < summary.runs.size(); ++i) {
    const RunInfo& run = summary.runs[i];
    if (i > 0) os << ", ";
    os << "{\"run\": \"" << json_escape(run.id) << "\", \"shard\": \""
       << json_escape(run.shard) << "\", \"status\": \""
       << json_escape(run.status) << "\", \"exit_code\": ";
    if (run.exit_code == "-") {
      os << "null";
    } else {
      os << run.exit_code;
    }
    os << ", \"command\": \"" << json_escape(run.command)
       << "\", \"git_sha\": \"" << json_escape(run.git_sha)
       << "\", \"simd_isa\": \"" << json_escape(run.simd_isa) << "\"}";
  }
  os << "], \"sweep\": ";
  if (summary.sweep_line.empty()) {
    os << "null";
  } else {
    os << "{\"fingerprint\": \"" << json_escape(summary.sweep_fingerprint)
       << "\", \"grid_size\": " << summary.grid_size
       << ", \"domain_size\": " << summary.domain_size
       << ", \"jobs\": " << summary.jobs << "}";
  }
  os << ", \"points\": {\"evaluated\": " << summary.ok + summary.failed
     << ", \"ok\": " << summary.ok << ", \"failed\": " << summary.failed
     << ", \"checkpoint_flushes\": " << summary.checkpoints
     << "}, \"failures\": {";
  bool first = true;
  for (const auto& [code, count] : summary.failure_counts) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(code) << "\": " << count;
  }
  os << "}, \"stages\": [";
  first = true;
  for (const auto& [name, agg] : summary.stages) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << json_escape(name)
       << "\", \"count\": " << agg.count
       << ", \"wall_us\": " << number_exact(agg.wall_us)
       << ", \"cpu_us\": " << number_exact(agg.cpu_us)
       << ", \"alloc_bytes\": " << number_exact(agg.alloc_bytes)
       << ", \"rss_hwm_kb\": " << number_exact(agg.rss_hwm_kb) << "}";
  }
  os << "], \"stragglers\": [";
  std::vector<PointTiming> timings = summary.timings;
  std::sort(timings.begin(), timings.end(),
            [](const PointTiming& a, const PointTiming& b) {
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.index < b.index;
            });
  const std::size_t n = std::min(stragglers, timings.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << "{\"index\": " << timings[i].index << ", \"status\": \""
       << (timings[i].ok ? "ok" : "failed")
       << "\", \"dur_us\": " << number_exact(timings[i].dur_us) << "}";
  }
  os << "]";
  if (!extra_members.empty()) os << ", " << extra_members;
  os << "}\n";
  return os.str();
}

ReuseCounters reuse_counters(const JsonValue& metrics_doc) {
  ReuseCounters reuse;
  const JsonValue* metrics = metrics_doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) return reuse;
  const auto grab = [&](const JsonValue& m, const char* name, double& out) {
    if (m.string_or("name", "") != name) return;
    out = m.number_or("value", 0.0);
    reuse.any = true;
  };
  for (const JsonValue& m : metrics->as_array()) {
    grab(m, "mapper.mapcache.hits", reuse.hits);
    grab(m, "mapper.mapcache.misses", reuse.misses);
    grab(m, "mapper.mapcache.file_hits", reuse.file_hits);
    grab(m, "mapper.mapcache.file_loads", reuse.file_loads);
    grab(m, "mapper.mapcache.file_appends", reuse.file_appends);
    grab(m, "dse.sweep.dedup_unique", reuse.dedup_unique);
    grab(m, "dse.sweep.dedup_aliased", reuse.dedup_aliased);
  }
  return reuse;
}

std::string reuse_to_json(const ReuseCounters& reuse) {
  std::ostringstream os;
  os << "\"reuse\": {\"mapcache\": {\"hits\": " << number_exact(reuse.hits)
     << ", \"misses\": " << number_exact(reuse.misses)
     << ", \"file_hits\": " << number_exact(reuse.file_hits)
     << ", \"file_loads\": " << number_exact(reuse.file_loads)
     << ", \"file_appends\": " << number_exact(reuse.file_appends)
     << ", \"warm\": " << (reuse.warm() ? "true" : "false")
     << "}, \"dedup\": {\"unique\": " << number_exact(reuse.dedup_unique)
     << ", \"aliased\": " << number_exact(reuse.dedup_aliased) << "}}";
  return os.str();
}

}  // namespace uld3d::report

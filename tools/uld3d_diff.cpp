// uld3d-diff — the regression localizer: join two runs' telemetry event
// streams (plus optional metrics/bench artifacts) and answer "which stage
// or sweep point got slower or hungrier, and by how much".
//
//   uld3d-diff BASE.ndjson CURRENT.ndjson
//       [--time-tol PCT] [--min-delta-us US]
//       [--alloc-tol PCT] [--min-delta-bytes N]
//       [--metrics BASE.json CURRENT.json]
//       [--bench BASE.json CURRENT.json] [--noise-mult K]
//       [--top N] [--json]
//
// Comparison model (noise gating borrowed from uld3d-bench-compare):
//   * Stages: per-stage wall_us/cpu_us totals and alloc_bytes from the
//     `stage` events.  A regression needs BOTH a relative excess
//     (cur > base * (1 + tol)) AND an absolute excess beyond a noise floor
//     (--min-delta-us / --min-delta-bytes) — single runs carry no CI, so
//     the floor plays that role.  One-sided: getting faster never fails.
//   * Points: per-grid-index dur_us joined on common indices, same wall
//     gate.  Requires both streams to carry the SAME sweep fingerprint;
//     diffing two different sweeps is an input error (exit 3), not a
//     regression.
//   * --metrics: informational join (RunId-checked against its own
//     stream); counter deltas are listed, never gated — counts legitimately
//     change with jobs/resume topology.
//   * --bench: suite medians compared with bench-compare's own CI-aware
//     gate (tol AND noise-mult x summed ci95 half-widths); these DO gate.
//
// Exit codes (asserted by tests/cli_diff.sh):
//   0  no regression beyond tolerance
//   1  at least one regression
//   2  usage error
//   3  malformed input or incomparable runs (schema, fingerprint, RunId)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report_common.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/table.hpp"

namespace {

using namespace uld3d;
using report::EventStream;
using report::StreamSummary;

struct Options {
  std::string base_events;
  std::string cur_events;
  std::string base_metrics;
  std::string cur_metrics;
  std::string base_bench;
  std::string cur_bench;
  double time_tol = 0.25;           // 25% relative wall/cpu slowdown
  double min_delta_us = 10000.0;    // 10 ms absolute noise floor
  double alloc_tol = 0.50;          // 50% relative allocation growth
  double min_delta_bytes = 1 << 20; // 1 MiB absolute floor
  double noise_mult = 3.0;          // bench join: K x summed CI95
  std::size_t top = 10;
  bool json = false;
};

[[noreturn]] void usage(int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr) <<
      "usage: uld3d-diff BASE.ndjson CURRENT.ndjson [options]\n"
      "options:\n"
      "  --time-tol PCT        wall/cpu slowdown tolerance per stage/point\n"
      "                        (default 25%)\n"
      "  --min-delta-us US     absolute wall/cpu noise floor (default 10000)\n"
      "  --alloc-tol PCT       allocation growth tolerance (default 50%)\n"
      "  --min-delta-bytes N   absolute allocation floor (default 1048576)\n"
      "  --metrics BASE CUR    join metrics exports (informational)\n"
      "  --bench BASE CUR      join bench suites (CI-gated, counts toward\n"
      "                        the verdict)\n"
      "  --noise-mult K        bench gate: K x summed CI95 (default 3)\n"
      "  --top N               rows to print (default 10)\n"
      "  --json                machine-readable output\n"
      "exit codes: 0 no regression, 1 regression, 2 usage,\n"
      "            3 malformed/incomparable input\n";
  std::exit(exit_code);
}

/// "25%" -> 0.25, "0.25" -> 0.25 (same grammar as uld3d-bench-compare).
double parse_tolerance(const std::string& text) {
  std::string body = text;
  double scale = 1.0;
  if (!body.empty() && body.back() == '%') {
    body.pop_back();
    scale = 0.01;
  }
  std::size_t used = 0;
  const double value = std::stod(body, &used);
  if (used != body.size() || !(value >= 0.0)) {
    throw std::invalid_argument("bad tolerance: " + text);
  }
  return value * scale;
}

/// Inputs that cannot be meaningfully compared (different sweeps, RunId
/// mismatches) — exit 3 territory, distinct from regressions.
class IncomparableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Finding {
  std::string scope;   // "stage" | "point" | "bench"
  std::string name;
  std::string metric;  // "wall_us" | "cpu_us" | "alloc_bytes" | "median_s"
  double base = 0.0;
  double cur = 0.0;
  [[nodiscard]] double ratio() const { return base > 0.0 ? cur / base : 0.0; }
};

/// The shared one-sided gate: worse by more than `tol` relative AND more
/// than `floor` absolute.
bool regressed(double base, double cur, double tol, double floor) {
  return cur > base * (1.0 + tol) && (cur - base) > floor;
}

void diff_stages(const Options& opts, const StreamSummary& base,
                 const StreamSummary& cur, std::vector<Finding>& findings,
                 std::size_t& checked) {
  for (const auto& [name, cur_agg] : cur.stages) {
    const auto base_it = base.stages.find(name);
    if (base_it == base.stages.end()) continue;  // new stage: nothing to gate
    const report::StageAgg& base_agg = base_it->second;
    ++checked;
    if (regressed(base_agg.wall_us, cur_agg.wall_us, opts.time_tol,
                  opts.min_delta_us)) {
      findings.push_back(
          {"stage", name, "wall_us", base_agg.wall_us, cur_agg.wall_us});
    }
    if (regressed(base_agg.cpu_us, cur_agg.cpu_us, opts.time_tol,
                  opts.min_delta_us)) {
      findings.push_back(
          {"stage", name, "cpu_us", base_agg.cpu_us, cur_agg.cpu_us});
    }
    if (regressed(base_agg.alloc_bytes, cur_agg.alloc_bytes, opts.alloc_tol,
                  opts.min_delta_bytes)) {
      findings.push_back({"stage", name, "alloc_bytes", base_agg.alloc_bytes,
                          cur_agg.alloc_bytes});
    }
  }
}

void diff_points(const Options& opts, const StreamSummary& base,
                 const StreamSummary& cur, std::vector<Finding>& findings,
                 std::size_t& checked) {
  for (const auto& [index, cur_point] : cur.points_by_index) {
    const auto base_it = base.points_by_index.find(index);
    if (base_it == base.points_by_index.end()) continue;
    ++checked;
    if (regressed(base_it->second.dur_us, cur_point.dur_us, opts.time_tol,
                  opts.min_delta_us)) {
      findings.push_back({"point", "#" + std::to_string(index), "wall_us",
                          base_it->second.dur_us, cur_point.dur_us});
    }
  }
}

/// RunId-check one side's metrics export against its own stream, then
/// return name -> value for the counter-delta listing.
std::map<std::string, double> load_metrics(const std::string& path,
                                           const StreamSummary& stream_summary,
                                           const char* side) {
  const JsonValue doc = json_parse_file(path);
  const std::string run_id = doc.string_or("run_id", "");
  if (!stream_summary.has_run(run_id)) {
    throw IncomparableError(std::string(side) + " metrics " + path +
                            " labels run '" + run_id +
                            "', which is not in the " + side +
                            " event stream");
  }
  std::map<std::string, double> values;
  if (const JsonValue* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_array()) {
    for (const JsonValue& m : metrics->as_array()) {
      const std::string name = m.string_or("name", "");
      if (!name.empty()) values[name] = m.number_or("value", 0.0);
    }
  }
  return values;
}

/// Flatten a BENCH document: either one suite or a merged {"suites":[...]}
/// (same shape uld3d-bench-compare accepts).
std::vector<const JsonValue*> collect_suites(const JsonValue& root,
                                             const std::string& path) {
  std::vector<const JsonValue*> suites;
  if (const JsonValue* merged = root.find("suites"); merged != nullptr) {
    for (const JsonValue& entry : merged->as_array()) suites.push_back(&entry);
  } else if (root.find("suite") != nullptr) {
    suites.push_back(&root);
  } else {
    throw JsonParseError(path +
                         ": not a BENCH document (no \"suite\" or "
                         "\"suites\" member)");
  }
  return suites;
}

void diff_bench(const Options& opts, std::vector<Finding>& findings,
                std::size_t& checked) {
  const JsonValue base_root = json_parse_file(opts.base_bench);
  const JsonValue cur_root = json_parse_file(opts.cur_bench);
  const auto base_suites = collect_suites(base_root, opts.base_bench);
  const auto cur_suites = collect_suites(cur_root, opts.cur_bench);
  for (const JsonValue* base_suite : base_suites) {
    const std::string suite = base_suite->string_or("suite", "?");
    const JsonValue* cur_suite = nullptr;
    for (const JsonValue* candidate : cur_suites) {
      if (candidate->string_or("suite", "") == suite) {
        cur_suite = candidate;
        break;
      }
    }
    if (cur_suite == nullptr) continue;
    const JsonValue* base_benches = base_suite->find("benchmarks");
    const JsonValue* cur_benches = cur_suite->find("benchmarks");
    if (base_benches == nullptr || cur_benches == nullptr) continue;
    for (const JsonValue& base_bench : base_benches->as_array()) {
      const std::string name = base_bench.string_or("name", "");
      const JsonValue* cur_bench = nullptr;
      for (const JsonValue& candidate : cur_benches->as_array()) {
        if (candidate.string_or("name", "") == name) {
          cur_bench = &candidate;
          break;
        }
      }
      if (cur_bench == nullptr) continue;
      ++checked;
      const double base_median = base_bench.number_or("median_s", 0.0);
      const double cur_median = cur_bench->number_or("median_s", 0.0);
      if (!(base_median > 0.0)) continue;
      // bench-compare's CI-aware gate: real repeated samples, so the noise
      // term is measured rather than a fixed floor.
      const double noise =
          opts.noise_mult * (base_bench.number_or("ci95_half_width_s", 0.0) +
                             cur_bench->number_or("ci95_half_width_s", 0.0));
      if (cur_median > base_median * (1.0 + opts.time_tol) &&
          (cur_median - base_median) > noise) {
        findings.push_back(
            {"bench", suite + "/" + name, "median_s", base_median, cur_median});
      }
    }
  }
}

std::string format_amount(const Finding& f, double value) {
  if (f.metric == "alloc_bytes") {
    return format_double(value / (1024.0 * 1024.0), 2) + " MiB";
  }
  if (f.metric == "median_s") return format_double(value * 1e3, 3) + " ms";
  return format_double(value / 1e3, 2) + " ms";
}

std::string run_list(const StreamSummary& s) {
  std::string out;
  for (const report::RunInfo& run : s.runs) {
    if (!out.empty()) out += ", ";
    out += run.id.empty() ? "(unlabelled)" : run.id;
  }
  return out;
}

/// First non-empty simd_isa recorded in the stream ("" when the stream
/// predates the field).
std::string simd_isa_of(const StreamSummary& s) {
  for (const report::RunInfo& run : s.runs) {
    if (!run.simd_isa.empty()) return run.simd_isa;
  }
  return "";
}

int run_diff(const Options& opts) {
  const EventStream base_stream = report::read_events(opts.base_events);
  const EventStream cur_stream = report::read_events(opts.cur_events);
  const StreamSummary base = report::summarize(base_stream);
  const StreamSummary cur = report::summarize(cur_stream);

  // Same-sweep check: stage/point comparisons across different sweeps are
  // meaningless, and silently diffing them is how bad dashboards happen.
  if (!base.sweep_fingerprint.empty() && !cur.sweep_fingerprint.empty() &&
      base.sweep_fingerprint != cur.sweep_fingerprint) {
    throw IncomparableError("sweep fingerprints differ (base " +
                            base.sweep_fingerprint + ", current " +
                            cur.sweep_fingerprint +
                            ") — these are different sweeps");
  }

  std::vector<Finding> findings;
  std::size_t stages_checked = 0;
  std::size_t points_checked = 0;
  std::size_t bench_checked = 0;
  diff_stages(opts, base, cur, findings, stages_checked);
  diff_points(opts, base, cur, findings, points_checked);

  std::vector<std::pair<std::string, std::pair<double, double>>> metric_deltas;
  // Cache-temperature join: a warm run (persistent MapCache store loaded)
  // legitimately prices mapper points much faster than a cold one, so a
  // temperature mismatch explains timing deltas without any code change.
  bool have_reuse = false;
  report::ReuseCounters base_reuse;
  report::ReuseCounters cur_reuse;
  if (!opts.base_metrics.empty()) {
    const auto base_vals = load_metrics(opts.base_metrics, base, "base");
    const auto cur_vals = load_metrics(opts.cur_metrics, cur, "current");
    for (const auto& [name, cur_v] : cur_vals) {
      const auto it = base_vals.find(name);
      const double base_v = it == base_vals.end() ? 0.0 : it->second;
      if (cur_v != base_v) metric_deltas.push_back({name, {base_v, cur_v}});
    }
    const auto reuse_of = [](const std::map<std::string, double>& vals) {
      report::ReuseCounters r;
      const auto grab = [&](const char* name, double& out) {
        const auto it = vals.find(name);
        if (it == vals.end()) return;
        out = it->second;
        r.any = true;
      };
      grab("mapper.mapcache.hits", r.hits);
      grab("mapper.mapcache.misses", r.misses);
      grab("mapper.mapcache.file_hits", r.file_hits);
      grab("mapper.mapcache.file_loads", r.file_loads);
      grab("mapper.mapcache.file_appends", r.file_appends);
      grab("dse.sweep.dedup_unique", r.dedup_unique);
      grab("dse.sweep.dedup_aliased", r.dedup_aliased);
      return r;
    };
    base_reuse = reuse_of(base_vals);
    cur_reuse = reuse_of(cur_vals);
    have_reuse = base_reuse.any || cur_reuse.any;
  }
  if (!opts.base_bench.empty()) {
    diff_bench(opts, findings, bench_checked);
  }

  // Rank: largest relative blow-up first — that is what a human chases.
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.ratio() != b.ratio()) return a.ratio() > b.ratio();
              return a.name < b.name;
            });

  if (opts.json) {
    std::ostringstream os;
    os << "{\"schema\": 1, \"kind\": \"diff\", \"base\": {\"source\": \""
       << json_escape(opts.base_events) << "\", \"runs\": \""
       << json_escape(run_list(base)) << "\"}, \"current\": {\"source\": \""
       << json_escape(opts.cur_events) << "\", \"runs\": \""
       << json_escape(run_list(cur)) << "\"}, \"tolerances\": {\"time_tol\": "
       << report::number_exact(opts.time_tol)
       << ", \"min_delta_us\": " << report::number_exact(opts.min_delta_us)
       << ", \"alloc_tol\": " << report::number_exact(opts.alloc_tol)
       << ", \"min_delta_bytes\": "
       << report::number_exact(opts.min_delta_bytes)
       << "}, \"checked\": {\"stages\": " << stages_checked
       << ", \"points\": " << points_checked
       << ", \"bench\": " << bench_checked << "}";
    if (have_reuse) {
      os << ", \"cache_temperature\": {\"base\": \""
         << (base_reuse.warm() ? "warm" : "cold") << "\", \"current\": \""
         << (cur_reuse.warm() ? "warm" : "cold") << "\", \"differs\": "
         << (base_reuse.warm() != cur_reuse.warm() ? "true" : "false") << "}";
    }
    os << ", \"regressions\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      if (i > 0) os << ", ";
      os << "{\"scope\": \"" << f.scope << "\", \"name\": \""
         << json_escape(f.name) << "\", \"metric\": \"" << f.metric
         << "\", \"base\": " << report::number_exact(f.base)
         << ", \"current\": " << report::number_exact(f.cur)
         << ", \"ratio\": " << report::number_exact(f.ratio()) << "}";
    }
    os << "]}\n";
    std::cout << os.str();
    return findings.empty() ? 0 : 1;
  }

  std::cout << "uld3d-diff: base [" << run_list(base) << "] vs current ["
            << run_list(cur) << "]\n";
  // Different batch-kernel dispatch explains a timing delta without a code
  // change; surface it so nobody chases an AVX2-vs-scalar "regression".
  if (const std::string bi = simd_isa_of(base), ci = simd_isa_of(cur);
      !bi.empty() && !ci.empty() && bi != ci) {
    std::cout << "Note: SIMD dispatch differs (base " << bi << ", current "
              << ci << ") — timing deltas are expected; values must still "
              << "match byte-for-byte\n";
  }
  // Same reasoning as the SIMD note: a warm persistent MapCache skips the
  // mapper's pricing work entirely, so comparing a cold base against a warm
  // current (or vice versa) yields huge timing deltas with identical values.
  if (have_reuse && base_reuse.warm() != cur_reuse.warm()) {
    std::cout << "Note: map-cache temperature differs (base "
              << (base_reuse.warm() ? "warm" : "cold") << ", current "
              << (cur_reuse.warm() ? "warm" : "cold")
              << ") — timing deltas are expected; values must still match "
              << "byte-for-byte\n";
  }
  std::cout << "Checked: " << stages_checked << " stage(s), "
            << points_checked << " point(s)";
  if (bench_checked > 0) std::cout << ", " << bench_checked << " benchmark(s)";
  std::cout << "\n";

  if (!metric_deltas.empty()) {
    std::cout << "Counter deltas (informational): " << metric_deltas.size()
              << " changed\n";
  }

  if (findings.empty()) {
    std::cout << "OK: no regression beyond tolerance (time "
              << format_double(opts.time_tol * 100.0, 0) << "%, alloc "
              << format_double(opts.alloc_tol * 100.0, 0) << "%)\n";
    return 0;
  }

  Table table({"Scope", "Name", "Metric", "Base", "Current", "Ratio"});
  const std::size_t shown = std::min(opts.top, findings.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const Finding& f = findings[i];
    table.add_row({f.scope, f.name, f.metric, format_amount(f, f.base),
                   format_amount(f, f.cur),
                   format_double(f.ratio(), 2) + "x"});
  }
  std::cout << "\n";
  table.print(std::cout, "Regressions (worst first)");
  if (findings.size() > shown) {
    std::cout << "(+" << findings.size() - shown << " more; raise --top)\n";
  }
  std::cout << "\nREGRESSION: " << findings.size()
            << " finding(s) beyond tolerance\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) usage(0);

  Options opts;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto operand = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "uld3d-diff: " << arg << " needs an operand\n";
        usage(2);
      }
      return args[++i];
    };
    try {
      if (arg == "--json") {
        opts.json = true;
      } else if (arg == "--time-tol") {
        opts.time_tol = parse_tolerance(operand());
      } else if (arg == "--min-delta-us") {
        opts.min_delta_us = std::stod(operand());
      } else if (arg == "--alloc-tol") {
        opts.alloc_tol = parse_tolerance(operand());
      } else if (arg == "--min-delta-bytes") {
        opts.min_delta_bytes = std::stod(operand());
      } else if (arg == "--noise-mult") {
        opts.noise_mult = std::stod(operand());
      } else if (arg == "--top") {
        opts.top = std::stoul(operand());
      } else if (arg == "--metrics") {
        opts.base_metrics = operand();
        opts.cur_metrics = operand();
      } else if (arg == "--bench") {
        opts.base_bench = operand();
        opts.cur_bench = operand();
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "uld3d-diff: unknown flag " << arg << "\n";
        usage(2);
      } else {
        positional.push_back(arg);
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << "uld3d-diff: " << e.what() << "\n";
      usage(2);
    } catch (const std::out_of_range& e) {
      std::cerr << "uld3d-diff: " << arg << ": value out of range\n";
      usage(2);
    }
  }
  if (positional.size() != 2) usage(2);
  opts.base_events = positional[0];
  opts.cur_events = positional[1];
  if (opts.base_metrics.empty() != opts.cur_metrics.empty()) usage(2);

  try {
    return run_diff(opts);
  } catch (const JsonParseError& e) {
    std::cerr << "uld3d-diff: " << e.what() << "\n";
    return 3;
  } catch (const IncomparableError& e) {
    std::cerr << "uld3d-diff: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "uld3d-diff: " << e.what() << "\n";
    return 3;
  }
}

// uld3d — command-line front end.
//
//   uld3d_cli compare   [--network N] [--config FILE]   M3D-vs-2D totals
//   uld3d_cli table1    [--network N] [--config FILE]   per-layer rows
//   uld3d_cli datasheet [--network N] [--config FILE]   coupled phys run
//   uld3d_cli arch      --config FILE [--network N]     custom architecture
//   uld3d_cli dump-config                               print the defaults
//
// `--config` files use the INI schema documented in uld3d/io/study_config.hpp.
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "uld3d/accel/chip_summary.hpp"
#include "uld3d/io/study_config.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/sim/report.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/export.hpp"

namespace {

using namespace uld3d;

struct CliArgs {
  std::string command;
  std::string network = "resnet18";
  std::optional<std::string> config_path;
};

CliArgs parse_args(int argc, char** argv) {
  CliArgs args;
  expects(argc >= 2, "usage: uld3d_cli <command> [--network N] [--config F]");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--network" && i + 1 < argc) {
      args.network = argv[++i];
    } else if (flag == "--config" && i + 1 < argc) {
      args.config_path = argv[++i];
    } else {
      expects(false, "unknown argument: " + flag);
    }
  }
  return args;
}

accel::CaseStudy study_for(const CliArgs& args) {
  if (args.config_path.has_value()) {
    return io::case_study_from_config(io::Config::load(*args.config_path));
  }
  return accel::CaseStudy{};
}

int run_compare(const CliArgs& args) {
  const accel::CaseStudy study = study_for(args);
  const auto cmp = study.run(nn::make_network(args.network));
  std::cout << sim::summary_line(cmp) << "\n"
            << "N = " << study.m3d_cs_count()
            << " CSs, gamma_cells = " << study.area_model().gamma_cells()
            << "\n";
  return 0;
}

int run_table1(const CliArgs& args) {
  const accel::CaseStudy study = study_for(args);
  const auto cmp = study.run(nn::make_network(args.network));
  emit_table(std::cout, sim::comparison_table(cmp),
             args.network + ": per-layer M3D vs 2D", "cli_table1");
  return 0;
}

int run_datasheet(const CliArgs& args) {
  const accel::CaseStudy study = study_for(args);
  const auto summary =
      accel::summarize_chip(study, nn::make_network(args.network));
  std::cout << accel::datasheet(summary);
  return 0;
}

int run_arch(const CliArgs& args) {
  expects(args.config_path.has_value(), "arch requires --config FILE");
  const auto arch =
      io::architecture_from_config(io::Config::load(*args.config_path));
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const auto benefit = mapper::evaluate_benefit(nn::make_network(args.network),
                                                arch, {}, pdk);
  std::cout << arch.name << " on " << args.network << ": N = " << benefit.n_cs
            << ", speedup " << benefit.speedup << "x, EDP benefit "
            << benefit.edp_benefit << "x\n";
  return 0;
}

int run_dump_config(const CliArgs&) {
  std::cout << io::case_study_to_config(accel::CaseStudy{}).to_text();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = parse_args(argc, argv);
    if (args.command == "compare") return run_compare(args);
    if (args.command == "table1") return run_table1(args);
    if (args.command == "datasheet") return run_datasheet(args);
    if (args.command == "arch") return run_arch(args);
    if (args.command == "dump-config") return run_dump_config(args);
    std::cerr << "unknown command: " << args.command
              << " (try compare | table1 | datasheet | arch | dump-config)\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

// uld3d — command-line front end.
//
//   uld3d_cli compare   [--network N] [--config FILE]   M3D-vs-2D totals
//   uld3d_cli table1    [--network N] [--config FILE]   per-layer rows
//   uld3d_cli datasheet [--network N] [--config FILE]   coupled phys run
//   uld3d_cli arch      --config FILE [--network N]     custom architecture
//   uld3d_cli sweep     [--network N] [--config FILE]   capacity x N_CS DSE
//                       [--mapper]    price design points with the temporal
//                                     mapper instead of the analytic EDP
//                                     model (exercises the MapCache)
//   uld3d_cli merge     CKPT...                         stitch shard runs
//   uld3d_cli dump-config                               print the defaults
//
// Global flags: --strict        config warnings (unknown keys) become fatal
//               --keep-going    sweep records failed design points and
//                               continues instead of aborting at the first
//               --jobs N        worker threads for sweeps/searches (default:
//                               ULD3D_JOBS, else all hardware threads; the
//                               results are bit-identical at any N)
//               --trace FILE    write a Chrome trace_event JSON timeline
//                               (open in chrome://tracing or Perfetto)
//               --metrics FILE  write the metrics registry (.json or CSV)
//               --profile       print span-summary + metrics tables at exit
//               --events FILE   append NDJSON telemetry events (run_start,
//                               sweep_start, point_done, checkpoint_flush,
//                               progress, run_end; DESIGN.md section 14) —
//                               analyze with uld3d-report
//               --progress      live sweep progress on stderr (EWMA
//                               points/sec, ok/failed, ETA, queue depth)
//               --postmortem[=PATH]  arm the flight-recorder crash dumper:
//                               on SIGSEGV/SIGABRT/SIGBUS/SIGFPE or
//                               std::terminate, write PATH (default
//                               <run_id>.postmortem.json).  On by default
//                               for `sweep`; --no-postmortem disables.
//               --mapcache-file FILE  persistent MapCache store: load it
//                               before the run (a corrupt file is refused,
//                               exit 3; a missing one is a cold start) and
//                               merge-save it after, so repeated runs,
//                               --resume runs, and all shards of a sharded
//                               sweep share one warm cache.
//                               ULD3D_MAPCACHE_FILE mirrors the flag;
//                               ULD3D_NO_MAPCACHE_FILE disables the layer.
//
// Sweep checkpoint/sharding flags (DESIGN.md §13):
//               --checkpoint FILE        periodically flush resumable sweep
//                                        state; SIGINT/SIGTERM flush and
//                                        exit 5 (interrupted, resumable)
//               --resume                 continue an existing --checkpoint
//               --checkpoint-interval N  flush every N completed points
//               --shard i/N              evaluate only shard i of N (plus
//                                        shared sentinel points); `merge`
//                                        stitches the shard checkpoints
//
// Exit codes: 0 success, 2 usage error, 3 config error, 4 model/evaluation
// error, 5 interrupted-but-resumable sweep, 1 internal error.  Diagnostics
// go to stderr; results to stdout.
//
// `--config` files use the INI schema documented in uld3d/io/study_config.hpp.
// ULD3D_FAULT=site=kCode[:skip[:count]] arms the deterministic fault
// injector (testing the degraded paths end to end).  ULD3D_TRACE=FILE
// mirrors --trace, and ULD3D_EVENTS=FILE mirrors --events, for runs
// launched by scripts that cannot edit flags.
// ULD3D_SWEEP_DELAY_MS=N (test hook) sleeps N ms per design point so
// integration tests can interrupt a sweep at a controlled depth.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "uld3d/accel/chip_summary.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/dse/checkpoint.hpp"
#include "uld3d/dse/sweep.hpp"
#include "uld3d/io/study_config.hpp"
#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/map_cache_file.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/sim/report.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/flightrec.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/provenance.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace {

using namespace uld3d;

// Exit-code discipline (documented in README.md and tested by
// tests/cli_exit_codes.sh).
constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConfig = 3;
constexpr int kExitModel = 4;
/// A checkpointed sweep stopped by SIGINT/SIGTERM; the partial state is on
/// disk and `--resume` continues it.  Distinct so sweep drivers can tell
/// "re-run me" from real failures.
constexpr int kExitInterrupted = 5;

/// Bad command line: distinct from config/model failures.
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Config file problems found while loading/validating.
class ConfigError : public Error {
 public:
  using Error::Error;
};

constexpr const char* kUsage =
    "usage: uld3d_cli <compare|table1|datasheet|arch|sweep|merge|dump-config>\n"
    "       [--network N] [--config FILE] [--strict] [--keep-going]\n"
    "       [--jobs N] [--trace FILE] [--metrics FILE] [--profile]\n"
    "       [--events FILE] [--progress] [--postmortem[=PATH]]\n"
    "       [--no-postmortem] [--mapper] [--mapcache-file FILE]\n"
    "       [--checkpoint FILE] [--resume] [--checkpoint-interval N]\n"
    "       [--shard i/N]  (merge takes shard checkpoint files as operands)";

struct CliArgs {
  std::string command;
  std::string network = "resnet18";
  std::optional<std::string> config_path;
  bool strict = false;
  bool keep_going = false;
  int jobs = 0;              // 0 = ULD3D_JOBS, else hardware concurrency
  std::string trace_path;    // Chrome trace JSON output ("" = off)
  std::string metrics_path;  // metrics JSON/CSV output ("" = off)
  bool profile = false;      // print span/metrics summary tables at exit
  std::string events_path;   // NDJSON telemetry events output ("" = off)
  bool progress = false;     // live sweep progress on stderr
  std::optional<bool> postmortem;  // unset = default (on for sweep)
  std::string postmortem_path;     // "" = <run_id>.postmortem.json
  bool mapper_sweep = false;       // price sweep points with the mapper
  std::string mapcache_file;       // persistent MapCache store ("" = env)
  std::string checkpoint_path;           // sweep checkpoint file ("" = off)
  bool resume = false;                   // continue an existing checkpoint
  std::size_t checkpoint_interval = 64;  // flush every N completed points
  dse::ShardSpec shard;                  // {0, 1} = whole grid
  std::vector<std::string> operands;     // `merge` checkpoint files
};

CliArgs parse_args(int argc, char** argv) {
  if (argc < 2) throw UsageError(kUsage);
  CliArgs args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--network" && i + 1 < argc) {
      args.network = argv[++i];
    } else if (flag == "--config" && i + 1 < argc) {
      args.config_path = argv[++i];
    } else if (flag == "--strict") {
      args.strict = true;
    } else if (flag == "--keep-going") {
      args.keep_going = true;
    } else if (flag == "--jobs" && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 ||
          n > parallel::kMaxJobs) {
        throw UsageError(std::string("--jobs expects an integer in [1, ") +
                         std::to_string(parallel::kMaxJobs) + "]: " +
                         argv[i] + "\n" + kUsage);
      }
      args.jobs = static_cast<int>(n);
    } else if (flag == "--trace" && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (flag == "--metrics" && i + 1 < argc) {
      args.metrics_path = argv[++i];
    } else if (flag == "--profile") {
      args.profile = true;
    } else if (flag == "--events" && i + 1 < argc) {
      args.events_path = argv[++i];
    } else if (flag == "--progress") {
      args.progress = true;
    } else if (flag == "--postmortem") {
      args.postmortem = true;
    } else if (flag.rfind("--postmortem=", 0) == 0) {
      args.postmortem = true;
      args.postmortem_path = flag.substr(std::strlen("--postmortem="));
      if (args.postmortem_path.empty()) {
        throw UsageError("--postmortem= expects a path\n" + std::string(kUsage));
      }
    } else if (flag == "--no-postmortem") {
      args.postmortem = false;
    } else if (flag == "--mapper") {
      args.mapper_sweep = true;
    } else if (flag == "--mapcache-file" && i + 1 < argc) {
      args.mapcache_file = argv[++i];
    } else if (flag == "--checkpoint" && i + 1 < argc) {
      args.checkpoint_path = argv[++i];
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--checkpoint-interval" && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        throw UsageError(
            std::string("--checkpoint-interval expects a positive integer: ") +
            argv[i] + "\n" + kUsage);
      }
      args.checkpoint_interval = static_cast<std::size_t>(n);
    } else if (flag == "--shard" && i + 1 < argc) {
      try {
        args.shard = dse::parse_shard_spec(argv[++i]);
      } catch (const StatusError& error) {
        throw UsageError(std::string(error.what()) + "\n" + kUsage);
      }
    } else if (!flag.empty() && flag[0] != '-' && args.command == "merge") {
      args.operands.push_back(flag);
    } else {
      throw UsageError("unknown argument: " + flag + "\n" + kUsage);
    }
  }
  return args;
}

/// Arms the instrumentation subsystem up front and — as an RAII guard, so a
/// failing run still leaves its timeline behind for debugging — writes the
/// trace/metrics files and prints the --profile report at scope exit.
class Observability {
 public:
  Observability(const CliArgs& args, const std::string& command_line)
      : trace_path_(args.trace_path),
        metrics_path_(args.metrics_path),
        profile_(args.profile),
        start_(std::chrono::steady_clock::now()) {
    // Run identity first: everything below (events, metrics JSON, trace
    // otherData, checkpoints) stamps these labels.
    set_current_run_context(
        make_run_context(args.shard.index, args.shard.count));
    TraceRecorder& recorder = TraceRecorder::instance();
    recorder.configure_from_env();  // ULD3D_TRACE mirrors --trace
    if (trace_path_.empty()) trace_path_ = recorder.env_path();
    if (!trace_path_.empty() || profile_) recorder.set_enabled(true);
    if (!metrics_path_.empty() || profile_) {
      MetricsRegistry::set_enabled(true);
      // Pre-register so reports show explicit zeros for quiet series.
      MetricsRegistry::instance().counter("fault.injected_trips");
      MetricsRegistry::instance().counter("cli.runs").add();
    }
    EventSink& sink = EventSink::instance();
    if (!args.events_path.empty()) {
      sink.open(args.events_path);
    } else {
      sink.configure_from_env();  // ULD3D_EVENTS mirrors --events
    }
    if (EventSink::enabled()) {
      sink.emit_run_start(capture_provenance(), command_line);
    }
    set_progress_enabled(args.progress);
    // Flight recorder: the main thread gets a name either way; the crash
    // dumper arms by default for sweeps (long-running, worth forensics)
    // and on request elsewhere.  Must follow set_current_run_context —
    // the dump header is pre-formatted from the current RunId.
    flightrec::set_thread_name("main");
    const bool want_postmortem =
        args.postmortem.value_or(args.command == "sweep");
    if (want_postmortem) {
      std::string path = args.postmortem_path;
      if (path.empty()) {
        path = current_run_context().run_id + ".postmortem.json";
      }
      flightrec::install_postmortem(path);
    }
  }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  /// Record the code main() is about to return with, so run_end carries it.
  /// Unset (an exception unwinding past main's dispatch) reads as an error.
  void set_exit_code(int code) { exit_code_ = code; }

  ~Observability() {
    try {
      finish();
    } catch (const std::exception& error) {
      std::cerr << "observability error: " << error.what() << "\n";
    }
  }

 private:
  void finish() {
    EventSink& sink = EventSink::instance();
    if (EventSink::enabled()) {
      const char* status = exit_code_ == kExitOk            ? "ok"
                           : exit_code_ == kExitInterrupted ? "interrupted"
                                                            : "error";
      sink.emit_run_end(status, exit_code_);
      std::cerr << "events: wrote " << sink.emitted() << " event(s) to "
                << sink.path() << "\n";
      sink.close();
    }
    finish_trace_and_metrics();
  }

  void finish_trace_and_metrics() {
    TraceRecorder& recorder = TraceRecorder::instance();
    if (metrics_enabled()) {
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start_)
                                 .count();
      MetricsRegistry::instance().gauge("cli.run_seconds").set(seconds);
    }
    if (!trace_path_.empty() &&
        recorder.write_chrome_trace(trace_path_)) {
      std::cerr << "trace: wrote " << recorder.event_count() << " span(s) to "
                << trace_path_;
      if (recorder.dropped() > 0) {
        std::cerr << " (" << recorder.dropped() << " dropped at capacity)";
      }
      std::cerr << "\n";
    }
    if (!metrics_path_.empty() &&
        MetricsRegistry::instance().write_file(metrics_path_)) {
      std::cerr << "metrics: wrote " << metrics_path_ << "\n";
    }
    if (profile_) {
      emit_table(std::cout, recorder.summary_table(),
                 "Span summary (wall clock)", "cli_profile_spans");
      emit_table(std::cout, MetricsRegistry::instance().to_table(),
                 "Run metrics", "cli_profile_metrics");
    }
  }

  std::string trace_path_;
  std::string metrics_path_;
  bool profile_ = false;
  int exit_code_ = -1;
  std::chrono::steady_clock::time_point start_;
};

/// Load + validate a config file.  All diagnostics are printed to stderr in
/// one shot; errors (or, under --strict, warnings too) abort with
/// ConfigError.
io::Config load_config(const std::string& path, bool strict) {
  io::Config config = [&] {
    try {
      return io::Config::load(path);
    } catch (const std::exception& error) {
      throw ConfigError(std::string("cannot load config: ") + error.what());
    }
  }();
  const Diagnostics diag = io::validate_case_study_config(config);
  if (!diag.empty()) std::cerr << diag.to_string();
  if (!diag.ok() || (strict && diag.warning_count() > 0)) {
    throw ConfigError("config validation failed: " +
                      std::to_string(diag.error_count()) + " error(s), " +
                      std::to_string(diag.warning_count()) + " warning(s)" +
                      (strict ? " [--strict]" : ""));
  }
  return config;
}

accel::CaseStudy study_for(const CliArgs& args) {
  if (args.config_path.has_value()) {
    const io::Config config = load_config(*args.config_path, args.strict);
    try {
      return io::case_study_from_config(config);
    } catch (const std::exception& error) {
      throw ConfigError(std::string("bad config value: ") + error.what());
    }
  }
  return accel::CaseStudy{};
}

int run_compare(const CliArgs& args) {
  const accel::CaseStudy study = study_for(args);
  const auto cmp = study.run(nn::make_network(args.network));
  std::cout << sim::summary_line(cmp) << "\n"
            << "N = " << study.m3d_cs_count()
            << " CSs, gamma_cells = " << study.area_model().gamma_cells()
            << "\n";
  return kExitOk;
}

int run_table1(const CliArgs& args) {
  const accel::CaseStudy study = study_for(args);
  const auto cmp = study.run(nn::make_network(args.network));
  emit_table(std::cout, sim::comparison_table(cmp),
             args.network + ": per-layer M3D vs 2D", "cli_table1");
  return kExitOk;
}

int run_datasheet(const CliArgs& args) {
  const accel::CaseStudy study = study_for(args);
  const auto summary =
      accel::summarize_chip(study, nn::make_network(args.network));
  std::cout << accel::datasheet(summary);
  return kExitOk;
}

int run_arch(const CliArgs& args) {
  if (!args.config_path.has_value()) {
    throw UsageError(std::string("arch requires --config FILE\n") + kUsage);
  }
  const auto arch = [&] {
    try {
      return io::architecture_from_config(
          io::Config::load(*args.config_path));
    } catch (const std::exception& error) {
      throw ConfigError(std::string("bad architecture config: ") +
                        error.what());
    }
  }();
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const auto benefit = mapper::evaluate_benefit(nn::make_network(args.network),
                                                arch, {}, pdk);
  std::cout << arch.name << " on " << args.network << ": N = " << benefit.n_cs
            << ", speedup " << benefit.speedup << "x, EDP benefit "
            << benefit.edp_benefit << "x\n";
  return kExitOk;
}

/// The CLI's fixed design-space grid (capacity x N_CS; the checkpoint
/// fingerprint covers it, so changing it invalidates old checkpoints).
dse::Grid sweep_grid() {
  dse::Grid grid;
  grid.axis("capacity_mb", {16.0, 32.0, 64.0, 128.0})
      .axis("n_cs", {1.0, 2.0, 4.0, 8.0, 16.0});
  return grid;
}

const std::vector<std::string>& sweep_metric_names() {
  static const std::vector<std::string> names{"edp_benefit", "speedup"};
  return names;
}

/// Config identity folded into the checkpoint fingerprint: the network name
/// plus the raw bytes of --config (if any), so a checkpoint from a
/// different study config or network is refused on resume/merge.
std::string sweep_config_hash(const CliArgs& args) {
  std::string identity = "network " + args.network + "\n";
  // --mapper prices the same grid with a different evaluator, so its
  // checkpoints must never merge/resume against analytic ones.
  if (args.mapper_sweep) identity += "evaluator mapper\n";
  if (args.config_path.has_value()) {
    std::ifstream in(*args.config_path, std::ios::binary);
    if (!in) {
      throw ConfigError("cannot read config for fingerprint: " +
                        *args.config_path);
    }
    std::ostringstream content;
    content << in.rdbuf();
    identity += "config " + content.str();
  }
  return fnv1a_hex(identity);
}

/// Shared result printing for `sweep` and `merge`, so a merged sharded run
/// is byte-identical on stdout/stderr to the equivalent unsharded sweep.
int print_sweep_result(const dse::SweepResult& result,
                       const CliArgs& args, const std::string& net_name) {
  emit_table(std::cout, result.to_table(), "M3D design space for " + net_name,
             "cli_sweep_" + args.network);
  if (result.failed_count() > 0) std::cerr << result.failure_summary();
  const auto& best = result.rows()[result.best("edp_benefit")];
  std::cout << "Best EDP point: " << format_double(best.params[0], 0)
            << " MB, " << format_double(best.params[1], 0) << " CSs -> "
            << format_ratio(best.metrics[0]) << "\n";
  return kExitOk;
}

int run_sweep(const CliArgs& args) {
  const accel::CaseStudy base = study_for(args);
  const nn::Network net = nn::make_network(args.network);
  const auto workloads =
      core::layer_workloads(net, core::TrafficOptions{},
                            core::PartitionOptions{});
  const dse::Grid grid = sweep_grid();

  // ULD3D_SWEEP_DELAY_MS: test-only throttle so integration tests can
  // deliver a signal (or SIGKILL) while the sweep is predictably mid-grid.
  long delay_ms = 0;
  if (const char* delay_env = std::getenv("ULD3D_SWEEP_DELAY_MS")) {
    delay_ms = std::strtol(delay_env, nullptr, 10);
  }

  const tech::FoundryM3dPdk pdk = tech::FoundryM3dPdk::make_130nm();
  std::function<std::vector<double>(const std::vector<double>&)> evaluate;
  if (args.mapper_sweep) {
    // Price each design point with the temporal mapper (same metric names,
    // same grid): the per-layer evaluate_conv calls hit the MapCache, so
    // this mode exercises --mapcache-file end to end — a warm second run
    // reports nonzero mapper.mapcache.file_hits.
    evaluate = [&net, &pdk, delay_ms](const std::vector<double>& p) {
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      mapper::Architecture arch = mapper::make_table2_architecture(1);
      arch.rram_capacity_bits = p[0] * 8.0 * 1024.0 * 1024.0;
      const auto n = static_cast<std::int64_t>(p[1]);
      const std::int64_t n_geom = mapper::m3d_parallel_cs(arch, pdk);
      if (n > n_geom) {
        throw StatusError(
            Failure(ErrorCode::kInfeasiblePoint,
                    "requested CS count does not fit the freed Si area")
                .with("n_cs", n)
                .with("n_geom", n_geom));
      }
      const mapper::SystemCosts sys;
      const mapper::NetworkCost c2 = mapper::evaluate_network(net, arch, sys, 1);
      const mapper::NetworkCost c3 = mapper::evaluate_network(net, arch, sys, n);
      return std::vector<double>{c2.edp() / c3.edp(),
                                 c2.latency_cycles / c3.latency_cycles};
    };
  } else {
    evaluate = [&base, &workloads, delay_ms](const std::vector<double>& p) {
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      accel::CaseStudy study = base;
      study.rram_capacity_mb = p[0];
      const auto n = static_cast<std::int64_t>(p[1]);
      const std::int64_t n_geom = study.m3d_cs_count();
      if (n > n_geom) {
        throw StatusError(
            Failure(ErrorCode::kInfeasiblePoint,
                    "requested CS count does not fit the freed Si area")
                .with("n_cs", n)
                .with("n_geom", n_geom));
      }
      const core::Chip2d c2 = study.chip2d_params();
      const core::Chip3d c3 = study.chip3d_params(n);
      std::vector<core::EdpResult> rs;
      rs.reserve(workloads.size());
      for (const auto& w : workloads) {
        rs.push_back(core::evaluate_edp(w, c2, c3));
      }
      const auto total = core::combine_results(rs);
      return std::vector<double>{total.edp_benefit, total.speedup};
    };
  }

  // Canonical evaluation key for sweep-point dedup: both evaluators read
  // every axis, so the key is the exact rendering of all params — the CLI
  // grid has no evaluator-blind axis, but the wiring keeps the dedup path
  // exercised end to end (dse.sweep.dedup_* counters in --metrics).
  const auto point_key = [](const std::vector<double>& p) {
    std::string key;
    char buffer[32];
    for (const double v : p) {
      std::snprintf(buffer, sizeof buffer, "%.17g,", v);
      key += buffer;
    }
    return key;
  };

  const dse::ErrorPolicy policy = args.keep_going
                                      ? dse::ErrorPolicy::kSkipAndRecord
                                      : dse::ErrorPolicy::kFailFast;
  if (args.checkpoint_path.empty() && !args.shard.sharded()) {
    // Plain one-shot sweep: the pre-checkpoint path, byte-identical output.
    // The config hash feeds the sweep_start event fingerprint, which then
    // matches the checkpoint path's for the same study (uld3d-report
    // --canon relies on that to compare the two).
    dse::SweepOptions sweep_options;
    sweep_options.policy = policy;
    sweep_options.config_hash = sweep_config_hash(args);
    sweep_options.point_key = point_key;
    const dse::SweepResult result =
        dse::run_sweep(grid, sweep_metric_names(), evaluate, sweep_options);
    return print_sweep_result(result, args, net.name());
  }

  dse::ResumableOptions options;
  options.policy = policy;
  options.shard = args.shard;
  options.checkpoint_path = args.checkpoint_path;
  options.resume = args.resume;
  options.checkpoint_interval = args.checkpoint_interval;
  options.config_hash = sweep_config_hash(args);
  options.point_key = point_key;
  install_interrupt_handlers();
  try {
    const dse::SweepResult result =
        dse::run_sweep_resumable(grid, sweep_metric_names(), evaluate,
                                 options);
    return print_sweep_result(result, args, net.name());
  } catch (const dse::SweepInterrupted& interrupted) {
    std::cerr << "interrupted: " << interrupted.what() << "\n";
    return kExitInterrupted;
  }
}

int run_merge(const CliArgs& args) {
  if (args.operands.empty()) {
    throw UsageError(std::string("merge requires shard checkpoint files\n") +
                     kUsage);
  }
  const nn::Network net = nn::make_network(args.network);
  const dse::SweepResult result =
      dse::merge_shards(sweep_grid(), sweep_metric_names(),
                        sweep_config_hash(args), args.operands);
  return print_sweep_result(result, args, net.name());
}

int run_dump_config(const CliArgs&) {
  std::cout << io::case_study_to_config(accel::CaseStudy{}).to_text();
  return kExitOk;
}

int dispatch(const CliArgs& args) {
  if (args.command == "compare") return run_compare(args);
  if (args.command == "table1") return run_table1(args);
  if (args.command == "datasheet") return run_datasheet(args);
  if (args.command == "arch") return run_arch(args);
  if (args.command == "sweep") return run_sweep(args);
  if (args.command == "merge") return run_merge(args);
  if (args.command == "dump-config") return run_dump_config(args);
  throw UsageError("unknown command: " + args.command + "\n" + kUsage);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    FaultInjector::instance().arm_from_spec(std::getenv("ULD3D_FAULT"));
    const CliArgs args = parse_args(argc, argv);
    // Precedence: --jobs > ULD3D_JOBS > all hardware threads.  The library
    // default without either is serial; the CLI opts into full parallelism
    // because its commands are top-level batch runs.
    if (args.jobs > 0) {
      parallel::set_jobs(args.jobs);
    } else if (std::getenv("ULD3D_JOBS") == nullptr) {
      parallel::set_jobs(parallel::hardware_concurrency());
    }
    // Outlives the command span: writes trace/metrics/events files even
    // when the command below throws, so failed runs keep their timeline
    // (an unwound dispatch leaves the exit code unset -> run_end "error").
    std::ostringstream command_line;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command_line << " ";
      command_line << argv[i];
    }
    Observability observability(args, command_line.str());
    // Declared after Observability so its destructor (the merge-save, which
    // counts mapper.mapcache.file_appends) runs BEFORE the metrics file is
    // written.  A corrupt store throws StatusError(kInvalidConfig) here —
    // before any work runs on stale assumptions — and exits 3.
    std::optional<mapper::MapCacheFileSession> mapcache_session;
    {
      std::string store = args.mapcache_file.empty()
                              ? mapper::mapcache_file_path_from_env()
                              : args.mapcache_file;
      if (!store.empty() && mapper::mapcache_file_enabled()) {
        mapcache_session.emplace(std::move(store));
      }
    }
    TraceSpan command_span("cli." + args.command, "cli");
    const int code = dispatch(args);
    observability.set_exit_code(code);
    return code;
  } catch (const UsageError& error) {
    std::cerr << "usage error: " << error.what() << "\n";
    return kExitUsage;
  } catch (const ConfigError& error) {
    std::cerr << "config error: " << error.what() << "\n";
    return kExitConfig;
  } catch (const JsonParseError& error) {
    // A checkpoint (or other JSON input) that does not parse is bad input,
    // not an internal bug.
    std::cerr << "config error: " << error.what() << "\n";
    return kExitConfig;
  } catch (const StatusError& error) {
    std::cerr << "model error: " << error.what() << "\n";
    return error.code() == ErrorCode::kInvalidConfig ? kExitConfig
                                                     : kExitModel;
  } catch (const PreconditionError& error) {
    std::cerr << "model error: " << error.what() << "\n";
    return kExitModel;
  } catch (const std::exception& error) {
    std::cerr << "internal error: " << error.what() << "\n";
    return kExitInternal;
  }
}

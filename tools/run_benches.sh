#!/bin/sh
# Run the full benchmark suite and merge the per-suite JSON artifacts.
#
# Usage: tools/run_benches.sh BUILD_DIR OUT_DIR [extra bench args...]
#
# Runs every bench_* binary under BUILD_DIR/bench with BENCH_<suite>.json
# emission redirected to OUT_DIR, then merges them into OUT_DIR/BENCH_all.json
# with `uld3d-bench-compare merge`.  Extra arguments (e.g. --iterations 9)
# are passed through to every bench binary.
set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 BUILD_DIR OUT_DIR [extra bench args...]" >&2
  exit 3
fi

build_dir=$1
out_dir=$2
shift 2

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench does not exist (build with ULD3D_BUILD_BENCHMARKS=ON first)" >&2
  exit 3
fi
mkdir -p "$out_dir"
# A previous run (or the committed baselines when OUT_DIR=bench/baselines)
# leaves a merged BENCH_all.json behind; the merge glob below would pick it
# up and refuse to double-merge it.  It is regenerated at the end anyway.
rm -f "$out_dir/BENCH_all.json"

compare="$build_dir/tools/uld3d-bench-compare"
if [ ! -x "$compare" ]; then
  echo "error: $compare not built" >&2
  exit 3
fi

count=0
for bench in "$build_dir"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  ULD3D_BENCH_DIR="$out_dir" "$bench" "$@"
  count=$((count + 1))
done

if [ "$count" -eq 0 ]; then
  echo "error: no bench binaries found under $build_dir/bench" >&2
  exit 3
fi

"$compare" merge "$out_dir/BENCH_all.json" "$out_dir"/BENCH_*.json
echo "Ran $count bench binaries; artifacts in $out_dir"

// uld3d-report — the offline analyzer for telemetry event streams
// (util/telemetry NDJSON files written via --events / ULD3D_EVENTS).
//
//   uld3d-report EVENTS.ndjson [--metrics METRICS.json]
//       [--trace TRACE.json] [--bench BENCH.json] [--stragglers N]
//   uld3d-report --canon EVENTS.ndjson
//
// Default mode prints a per-run summary: the runs recorded in the stream
// (provenance, exit status), sweep identity, point counts, a failure
// taxonomy histogram, per-stage time breakdown, and the slowest points.
// `--metrics` / `--trace` / `--bench` join the stream with that run's other
// artifacts by RunId: a label mismatch is reported loudly (mixing files
// from different runs is the exact mistake RunIds exist to catch).
//
// `--canon` emits the stream's canonical projection to stdout: the sweep
// identity header, every point_done re-rendered exactly (17-significant-
// digit doubles, the writer's own rendering) sorted and deduplicated by
// grid index, and a footer with counts.  Volatile fields — timestamps,
// RunIds, jobs counts, durations, progress/checkpoint/stage chatter — are
// stripped, so a jobs=1 stream, a jobs=8 stream, and an
// interrupted-then-resumed stream of the same sweep compare BYTE-IDENTICAL
// (tests/cli_telemetry.sh asserts this with cmp).  Duplicate indices from a
// resume overlap must re-render identically; a conflict means two runs
// disagreed on a point's result and is reported as corruption.
//
// Crash tolerance: a process killed mid-write can leave one torn final
// line (the sink writes whole lines, but the OS may split the last
// write(2)).  Exactly one unparseable *final* line is tolerated and
// counted; a malformed line anywhere else is an error.
//
// Exit codes (asserted by tests/cli_telemetry.sh):
//   0  success
//   1  stream inconsistency (conflicting duplicate points, mixed sweep
//      identities, RunId join mismatch)
//   2  usage error
//   3  malformed/unreadable input (bad JSON mid-file, unsupported schema)
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "uld3d/util/export.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/table.hpp"
#include "uld3d/util/telemetry.hpp"

namespace {

using namespace uld3d;

struct Options {
  std::string events_path;
  std::string metrics_path;
  std::string trace_path;
  std::string bench_path;
  std::size_t stragglers = 5;
  bool canon = false;
};

[[noreturn]] void usage(int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr) <<
      "usage: uld3d-report EVENTS.ndjson [options]\n"
      "       uld3d-report --canon EVENTS.ndjson\n"
      "options:\n"
      "  --metrics FILE    join with a metrics JSON export (--metrics of\n"
      "                    uld3d_cli); RunIds must match\n"
      "  --trace FILE      join with a Chrome trace export (--trace)\n"
      "  --bench FILE      join with a BENCH_*.json suite document\n"
      "  --stragglers N    slowest points to list (default 5)\n"
      "  --canon           emit the canonical projection (byte-identical\n"
      "                    across jobs counts and interrupt/resume)\n"
      "exit codes: 0 ok, 1 stream inconsistency, 2 usage,\n"
      "            3 malformed input\n";
  std::exit(exit_code);
}

/// Parsed event lines (header-validated), in file order.
struct EventStream {
  std::vector<JsonValue> events;
  std::size_t torn_lines = 0;  ///< 0 or 1 (only the final line may tear)
};

/// Exact double rendering — MUST match util/telemetry's writer so canon
/// re-renders reproduce the original bytes (doubles round-trip through the
/// parser bit-exactly at 17 significant digits).
std::string number_exact(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Render one element of a params/metrics array: numbers exactly, and the
/// writer's non-finite string spellings ("nan"/"inf"/"-inf") verbatim.
std::string render_scalar(const JsonValue& v) {
  if (v.is_string()) return "\"" + json_escape(v.as_string()) + "\"";
  return number_exact(v.as_number());
}

std::uint64_t index_of(const JsonValue& event) {
  return static_cast<std::uint64_t>(event.at("index").as_number());
}

EventStream read_events(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw JsonParseError("cannot read events file: " + path);
  }
  EventStream stream;
  std::string line;
  std::size_t line_no = 0;
  std::size_t pending_torn_line = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (pending_torn_line != 0) {
      // A parse failure is only forgivable on the FINAL line; seeing more
      // content after one means the file is corrupt, not torn.
      throw JsonParseError(path + ":" + std::to_string(pending_torn_line) +
                           ": malformed event line (not at end of file)");
    }
    JsonValue event;
    try {
      event = json_parse(line);
    } catch (const JsonParseError&) {
      pending_torn_line = line_no;
      continue;
    }
    const double schema = event.number_or("schema", -1.0);
    if (schema != static_cast<double>(kTelemetrySchemaVersion)) {
      throw JsonParseError(path + ":" + std::to_string(line_no) +
                           ": unsupported telemetry schema version");
    }
    if (event.find("ev") == nullptr || !event.at("ev").is_string()) {
      throw JsonParseError(path + ":" + std::to_string(line_no) +
                           ": event line has no \"ev\" type");
    }
    stream.events.push_back(std::move(event));
  }
  if (pending_torn_line != 0) stream.torn_lines = 1;
  return stream;
}

// ---------------------------------------------------------------------------
// --canon: the order/jobs/run-invariant projection.
// ---------------------------------------------------------------------------

/// Canonical sweep identity header, rendered from a sweep_start event with
/// every volatile field (run, ts_ms, jobs, domain_size) stripped.
std::string canon_header(const JsonValue& event) {
  std::ostringstream os;
  os << "{\"ev\": \"sweep\", \"fingerprint\": \""
     << json_escape(event.at("fingerprint").as_string())
     << "\", \"grid_size\": "
     << static_cast<std::uint64_t>(event.at("grid_size").as_number());
  for (const char* member : {"params", "metrics"}) {
    os << ", \"" << member << "\": [";
    const JsonValue::Array& names = event.at(member).as_array();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << json_escape(names[i].as_string()) << "\"";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

/// Canonical point line: the point_done payload minus run/ts_ms/dur_us,
/// doubles re-rendered with the writer's own exact format.
std::string canon_point(const JsonValue& event) {
  std::ostringstream os;
  os << "{\"ev\": \"point\", \"index\": " << index_of(event)
     << ", \"params\": [";
  const JsonValue::Array& params = event.at("params").as_array();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) os << ", ";
    os << render_scalar(params[i]);
  }
  os << "], \"status\": \"" << json_escape(event.at("status").as_string())
     << "\"";
  const std::string status = event.at("status").as_string();
  if (status == "ok") {
    os << ", \"metrics\": [";
    const JsonValue::Array& metrics = event.at("metrics").as_array();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (i > 0) os << ", ";
      os << render_scalar(metrics[i]);
    }
    os << "], \"failure\": null";
  } else {
    const JsonValue& failure = event.at("failure");
    os << ", \"failure\": {\"code\": \""
       << json_escape(failure.at("code").as_string()) << "\", \"message\": \""
       << json_escape(failure.at("message").as_string())
       << "\", \"context\": [";
    const JsonValue::Array& context = failure.at("context").as_array();
    for (std::size_t i = 0; i < context.size(); ++i) {
      if (i > 0) os << ", ";
      const JsonValue::Array& pair = context[i].as_array();
      os << "[\"" << json_escape(pair.at(0).as_string()) << "\", \""
         << json_escape(pair.at(1).as_string()) << "\"]";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

int run_canon(const EventStream& stream) {
  // All sweep_start events in the file (one per run; a resumed run appends
  // another) must describe the same sweep once volatile fields go.
  std::string header;
  // index -> canonical line.  A resume overlap re-evaluates sentinels and
  // boundary points; bit-identical results are the determinism contract,
  // so duplicate renders must agree byte-for-byte.
  std::map<std::uint64_t, std::string> points;
  std::size_t ok = 0;
  std::size_t failed = 0;
  for (const JsonValue& event : stream.events) {
    const std::string& type = event.at("ev").as_string();
    if (type == "sweep_start") {
      const std::string rendered = canon_header(event);
      if (header.empty()) {
        header = rendered;
      } else if (header != rendered) {
        std::cerr << "uld3d-report: stream mixes different sweeps:\n  "
                  << header << "\n  " << rendered << "\n";
        return 1;
      }
    } else if (type == "point_done") {
      const std::string rendered = canon_point(event);
      const std::uint64_t index = index_of(event);
      const auto [it, inserted] = points.emplace(index, rendered);
      if (!inserted && it->second != rendered) {
        std::cerr << "uld3d-report: point " << index
                  << " has conflicting results across runs:\n  " << it->second
                  << "\n  " << rendered << "\n";
        return 1;
      }
    }
    // run_start/run_end/progress/checkpoint_flush/shard_info/stage are
    // per-run chatter: dropped from the projection by design.
  }
  std::ostringstream out;
  if (!header.empty()) out << header << "\n";
  for (const auto& [index, line] : points) {
    (void)index;
    out << line << "\n";
    if (line.find("\"status\": \"ok\"") != std::string::npos) {
      ++ok;
    } else {
      ++failed;
    }
  }
  out << "{\"ev\": \"end\", \"points\": " << points.size()
      << ", \"ok\": " << ok << ", \"failed\": " << failed << "}\n";
  std::cout << out.str();
  return 0;
}

// ---------------------------------------------------------------------------
// Default mode: human-readable per-run summary + artifact joins.
// ---------------------------------------------------------------------------

struct RunInfo {
  std::string shard;
  std::string command;
  std::string git_sha;
  std::string status = "(no run_end)";  ///< crash/kill leaves no run_end
  std::string exit_code = "-";
};

std::string format_ms(double us) { return format_double(us / 1e3, 2) + " ms"; }

int run_summary(const Options& opts, const EventStream& stream) {
  std::map<std::string, RunInfo> runs;       // run_id -> info, insertion order
  std::vector<std::string> run_order;
  std::string sweep_line;
  std::map<std::string, std::size_t> failure_counts;  // code -> count
  std::map<std::string, std::pair<std::size_t, double>> stages;
  struct PointTiming {
    std::uint64_t index;
    double dur_us;
    bool ok;
  };
  std::vector<PointTiming> timings;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t checkpoints = 0;
  std::size_t progress_events = 0;
  std::string shard_line;

  for (const JsonValue& event : stream.events) {
    const std::string& type = event.at("ev").as_string();
    const std::string run_id = event.string_or("run", "");
    if (runs.find(run_id) == runs.end()) {
      runs[run_id].shard = event.string_or("shard", "?");
      run_order.push_back(run_id);
    }
    RunInfo& run = runs[run_id];
    if (type == "run_start") {
      run.command = event.string_or("command", "");
      if (const JsonValue* prov = event.find("provenance"); prov != nullptr) {
        run.git_sha = prov->string_or("git_sha", "");
      }
    } else if (type == "run_end") {
      run.status = event.string_or("status", "?");
      run.exit_code =
          std::to_string(static_cast<int>(event.number_or("exit_code", -1)));
    } else if (type == "sweep_start") {
      std::ostringstream os;
      os << "fingerprint " << event.string_or("fingerprint", "?") << ", grid "
         << static_cast<std::uint64_t>(event.number_or("grid_size", 0))
         << " points, domain "
         << static_cast<std::uint64_t>(event.number_or("domain_size", 0))
         << ", jobs " << static_cast<int>(event.number_or("jobs", 0));
      sweep_line = os.str();
    } else if (type == "point_done") {
      const bool point_ok = event.string_or("status", "") == "ok";
      point_ok ? ++ok : ++failed;
      if (!point_ok) {
        if (const JsonValue* f = event.find("failure");
            f != nullptr && f->is_object()) {
          ++failure_counts[f->string_or("code", "?")];
        }
      }
      timings.push_back(
          {index_of(event), event.number_or("dur_us", 0.0), point_ok});
    } else if (type == "stage") {
      auto& [count, total_us] = stages[event.string_or("name", "?")];
      ++count;
      total_us += event.number_or("dur_us", 0.0);
    } else if (type == "checkpoint_flush") {
      ++checkpoints;
    } else if (type == "progress") {
      ++progress_events;
    } else if (type == "shard_info") {
      std::ostringstream os;
      os << "shard "
         << static_cast<std::uint64_t>(event.number_or("shard_index", 0)) << "/"
         << static_cast<std::uint64_t>(event.number_or("shard_count", 0))
         << ", domain "
         << static_cast<std::uint64_t>(event.number_or("domain_size", 0))
         << " points";
      shard_line = os.str();
    }
  }

  std::cout << "Events: " << stream.events.size() << " parsed from "
            << opts.events_path;
  if (stream.torn_lines > 0) {
    std::cout << " (+1 torn final line — the writer was killed mid-flush)";
  }
  std::cout << "\n\n";

  Table run_table({"Run", "Shard", "Status", "Exit", "Command"});
  for (const std::string& id : run_order) {
    const RunInfo& run = runs.at(id);
    run_table.add_row({id.empty() ? "(unlabelled)" : id, run.shard, run.status,
                       run.exit_code, run.command});
  }
  run_table.print(std::cout, "Runs");

  if (!sweep_line.empty()) std::cout << "\nSweep: " << sweep_line << "\n";
  if (!shard_line.empty()) std::cout << "Shard: " << shard_line << "\n";
  if (ok + failed > 0) {
    std::cout << "Points: " << ok + failed << " evaluated, " << ok << " ok, "
              << failed << " failed";
    if (checkpoints > 0) {
      std::cout << " (" << checkpoints << " checkpoint flushes)";
    }
    std::cout << "\n";
  }

  if (!failure_counts.empty()) {
    Table taxonomy({"Failure code", "Count"});
    for (const auto& [code, count] : failure_counts) {
      taxonomy.add_row({code, std::to_string(count)});
    }
    std::cout << "\n";
    taxonomy.print(std::cout, "Failure taxonomy");
  }

  if (!stages.empty()) {
    Table stage_table({"Stage", "Count", "Total", "Mean"});
    for (const auto& [name, entry] : stages) {
      const auto& [count, total_us] = entry;
      stage_table.add_row({name, std::to_string(count), format_ms(total_us),
                           format_ms(total_us / static_cast<double>(count))});
    }
    std::cout << "\n";
    stage_table.print(std::cout, "Stage times");
  }

  if (!timings.empty() && opts.stragglers > 0) {
    std::sort(timings.begin(), timings.end(),
              [](const PointTiming& a, const PointTiming& b) {
                if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                return a.index < b.index;
              });
    Table straggler_table({"Index", "Status", "Duration"});
    const std::size_t n = std::min(opts.stragglers, timings.size());
    for (std::size_t i = 0; i < n; ++i) {
      straggler_table.add_row({std::to_string(timings[i].index),
                               timings[i].ok ? "ok" : "failed",
                               format_ms(timings[i].dur_us)});
    }
    std::cout << "\n";
    straggler_table.print(std::cout, "Slowest points");
  }
  if (progress_events > 0) {
    std::cout << "\nProgress events: " << progress_events << "\n";
  }

  // --- Artifact joins: RunId labels must agree with the event stream. ---
  int inconsistencies = 0;
  const auto known_run = [&](const std::string& id) {
    return !id.empty() && runs.find(id) != runs.end();
  };

  if (!opts.metrics_path.empty()) {
    const JsonValue doc = json_parse_file(opts.metrics_path);
    const std::string run_id = doc.string_or("run_id", "");
    std::cout << "\nMetrics join (" << opts.metrics_path << "): run "
              << (run_id.empty() ? "(unlabelled)" : run_id);
    if (!known_run(run_id)) {
      std::cout << " — MISMATCH: not a run in this event stream\n";
      ++inconsistencies;
    } else {
      std::cout << " — matches\n";
      double hits = 0.0;
      double misses = 0.0;
      double dropped = 0.0;
      if (const JsonValue* metrics = doc.find("metrics");
          metrics != nullptr && metrics->is_array()) {
        for (const JsonValue& m : metrics->as_array()) {
          const std::string name = m.string_or("name", "");
          if (name == "mapper.mapcache.hits") hits = m.number_or("value", 0.0);
          if (name == "mapper.mapcache.misses") {
            misses = m.number_or("value", 0.0);
          }
          if (name == "trace.dropped_events") {
            dropped = m.number_or("value", 0.0);
          }
        }
      }
      if (hits + misses > 0.0) {
        std::cout << "  mapping cache: " << format_double(hits, 0) << " hits, "
                  << format_double(misses, 0) << " misses ("
                  << format_double(100.0 * hits / (hits + misses), 1)
                  << "% hit rate)\n";
      }
      if (dropped > 0.0) {
        std::cout << "  WARNING: " << format_double(dropped, 0)
                  << " trace event(s) dropped — the trace export is "
                     "truncated\n";
      }
    }
  }

  if (!opts.trace_path.empty()) {
    const JsonValue doc = json_parse_file(opts.trace_path);
    std::string run_id;
    double dropped = 0.0;
    std::size_t span_count = 0;
    if (const JsonValue* other = doc.find("otherData"); other != nullptr) {
      run_id = other->string_or("run_id", "");
      dropped = other->number_or("dropped_events", 0.0);
    }
    if (const JsonValue* spans = doc.find("traceEvents");
        spans != nullptr && spans->is_array()) {
      span_count = spans->as_array().size();
    }
    std::cout << "\nTrace join (" << opts.trace_path << "): run "
              << (run_id.empty() ? "(unlabelled)" : run_id);
    if (!known_run(run_id)) {
      std::cout << " — MISMATCH: not a run in this event stream\n";
      ++inconsistencies;
    } else {
      std::cout << " — matches, " << span_count << " span(s)";
      if (dropped > 0.0) {
        std::cout << ", " << format_double(dropped, 0) << " DROPPED";
      }
      std::cout << "\n";
    }
  }

  if (!opts.bench_path.empty()) {
    const JsonValue doc = json_parse_file(opts.bench_path);
    std::cout << "\nBench join (" << opts.bench_path << "): suite "
              << doc.string_or("suite", "?");
    if (const JsonValue* prov = doc.find("provenance"); prov != nullptr) {
      std::cout << ", git " << prov->string_or("git_sha", "?") << ", peak RSS "
                << format_double(prov->number_or("peak_rss_kb", 0.0) / 1024.0,
                                 1)
                << " MiB, pool queue high-water "
                << format_double(prov->number_or("pool_queue_high_water", 0.0),
                                 0);
    }
    std::cout << "\n";
  }

  return inconsistencies > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) usage(0);

  Options opts;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto operand = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "uld3d-report: " << arg << " needs an operand\n";
        usage(2);
      }
      return args[++i];
    };
    if (arg == "--canon") {
      opts.canon = true;
    } else if (arg == "--metrics") {
      opts.metrics_path = operand();
    } else if (arg == "--trace") {
      opts.trace_path = operand();
    } else if (arg == "--bench") {
      opts.bench_path = operand();
    } else if (arg == "--stragglers") {
      try {
        opts.stragglers = std::stoul(operand());
      } catch (const std::exception&) {
        std::cerr << "uld3d-report: --stragglers needs a count\n";
        usage(2);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "uld3d-report: unknown flag " << arg << "\n";
      usage(2);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) usage(2);
  opts.events_path = positional[0];

  try {
    const EventStream stream = read_events(opts.events_path);
    return opts.canon ? run_canon(stream) : run_summary(opts, stream);
  } catch (const JsonParseError& e) {
    std::cerr << "uld3d-report: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    // Structurally-unexpected documents (wrong member kinds) are malformed
    // inputs, not crashes.
    std::cerr << "uld3d-report: " << e.what() << "\n";
    return 3;
  }
}

// uld3d-report — the offline analyzer for telemetry event streams
// (util/telemetry NDJSON files written via --events / ULD3D_EVENTS).
//
//   uld3d-report EVENTS.ndjson [--metrics METRICS.json]
//       [--trace TRACE.json] [--bench BENCH.json]
//       [--postmortem DUMP.json] [--stragglers N] [--json]
//   uld3d-report --canon EVENTS.ndjson
//
// Default mode prints a per-run summary: the runs recorded in the stream
// (provenance, exit status), sweep identity, point counts, a failure
// taxonomy histogram, per-stage time/resource breakdown, and the slowest
// points.  `--json` renders the same summary as one machine-readable JSON
// object (the emitter is shared with uld3d-diff, which compares two of
// them).  `--metrics` / `--trace` / `--bench` / `--postmortem` join the
// stream with that run's other artifacts by RunId: a label mismatch is
// reported loudly (mixing files from different runs is the exact mistake
// RunIds exist to catch).
//
// `--canon` emits the stream's canonical projection to stdout: the sweep
// identity header, every point_done re-rendered exactly (17-significant-
// digit doubles, the writer's own rendering) sorted and deduplicated by
// grid index, and a footer with counts.  Volatile fields — timestamps,
// RunIds, jobs counts, durations, progress/checkpoint/stage chatter — are
// stripped, so a jobs=1 stream, a jobs=8 stream, and an
// interrupted-then-resumed stream of the same sweep compare BYTE-IDENTICAL
// (tests/cli_telemetry.sh asserts this with cmp).  Duplicate indices from a
// resume overlap must re-render identically; a conflict means two runs
// disagreed on a point's result and is reported as corruption.
//
// Crash tolerance: a process killed mid-write can leave one torn final
// line (the sink writes whole lines, but the OS may split the last
// write(2)).  Exactly one unparseable *final* line is tolerated and
// counted; a malformed line anywhere else is an error.
//
// Exit codes (asserted by tests/cli_telemetry.sh):
//   0  success
//   1  stream inconsistency (conflicting duplicate points, mixed sweep
//      identities, RunId join mismatch)
//   2  usage error
//   3  malformed/unreadable input (bad JSON mid-file, unsupported schema)
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "report_common.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/table.hpp"

namespace {

using namespace uld3d;
using report::EventStream;
using report::StreamSummary;

struct Options {
  std::string events_path;
  std::string metrics_path;
  std::string trace_path;
  std::string bench_path;
  std::string postmortem_path;
  std::size_t stragglers = 5;
  bool canon = false;
  bool json = false;
};

[[noreturn]] void usage(int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr) <<
      "usage: uld3d-report EVENTS.ndjson [options]\n"
      "       uld3d-report --canon EVENTS.ndjson\n"
      "options:\n"
      "  --metrics FILE    join with a metrics JSON export (--metrics of\n"
      "                    uld3d_cli); RunIds must match\n"
      "  --trace FILE      join with a Chrome trace export (--trace)\n"
      "  --bench FILE      join with a BENCH_*.json suite document\n"
      "  --postmortem FILE join with a flight-recorder crash dump\n"
      "                    (<run>.postmortem.json); RunIds must match\n"
      "  --stragglers N    slowest points to list (default 5)\n"
      "  --json            machine-readable per-run summary (one JSON\n"
      "                    object; the same emitter uld3d-diff consumes)\n"
      "  --canon           emit the canonical projection (byte-identical\n"
      "                    across jobs counts and interrupt/resume)\n"
      "exit codes: 0 ok, 1 stream inconsistency, 2 usage,\n"
      "            3 malformed input\n";
  std::exit(exit_code);
}

// ---------------------------------------------------------------------------
// --canon: the order/jobs/run-invariant projection.
// ---------------------------------------------------------------------------

/// Canonical sweep identity header, rendered from a sweep_start event with
/// every volatile field (run, ts_ms, jobs, domain_size) stripped.
std::string canon_header(const JsonValue& event) {
  std::ostringstream os;
  os << "{\"ev\": \"sweep\", \"fingerprint\": \""
     << json_escape(event.at("fingerprint").as_string())
     << "\", \"grid_size\": "
     << static_cast<std::uint64_t>(event.at("grid_size").as_number());
  for (const char* member : {"params", "metrics"}) {
    os << ", \"" << member << "\": [";
    const JsonValue::Array& names = event.at(member).as_array();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) os << ", ";
      os << "\"" << json_escape(names[i].as_string()) << "\"";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

/// Canonical point line: the point_done payload minus run/ts_ms/dur_us,
/// doubles re-rendered with the writer's own exact format.
std::string canon_point(const JsonValue& event) {
  std::ostringstream os;
  os << "{\"ev\": \"point\", \"index\": " << report::index_of(event)
     << ", \"params\": [";
  const JsonValue::Array& params = event.at("params").as_array();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) os << ", ";
    os << report::render_scalar(params[i]);
  }
  os << "], \"status\": \"" << json_escape(event.at("status").as_string())
     << "\"";
  const std::string status = event.at("status").as_string();
  if (status == "ok") {
    os << ", \"metrics\": [";
    const JsonValue::Array& metrics = event.at("metrics").as_array();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (i > 0) os << ", ";
      os << report::render_scalar(metrics[i]);
    }
    os << "], \"failure\": null";
  } else {
    const JsonValue& failure = event.at("failure");
    os << ", \"failure\": {\"code\": \""
       << json_escape(failure.at("code").as_string()) << "\", \"message\": \""
       << json_escape(failure.at("message").as_string())
       << "\", \"context\": [";
    const JsonValue::Array& context = failure.at("context").as_array();
    for (std::size_t i = 0; i < context.size(); ++i) {
      if (i > 0) os << ", ";
      const JsonValue::Array& pair = context[i].as_array();
      os << "[\"" << json_escape(pair.at(0).as_string()) << "\", \""
         << json_escape(pair.at(1).as_string()) << "\"]";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

int run_canon(const EventStream& stream) {
  // All sweep_start events in the file (one per run; a resumed run appends
  // another) must describe the same sweep once volatile fields go.
  std::string header;
  // index -> canonical line.  A resume overlap re-evaluates sentinels and
  // boundary points; bit-identical results are the determinism contract,
  // so duplicate renders must agree byte-for-byte.
  std::map<std::uint64_t, std::string> points;
  std::size_t ok = 0;
  std::size_t failed = 0;
  for (const JsonValue& event : stream.events) {
    const std::string& type = event.at("ev").as_string();
    if (type == "sweep_start") {
      const std::string rendered = canon_header(event);
      if (header.empty()) {
        header = rendered;
      } else if (header != rendered) {
        std::cerr << "uld3d-report: stream mixes different sweeps:\n  "
                  << header << "\n  " << rendered << "\n";
        return 1;
      }
    } else if (type == "point_done") {
      const std::string rendered = canon_point(event);
      const std::uint64_t index = report::index_of(event);
      const auto [it, inserted] = points.emplace(index, rendered);
      if (!inserted && it->second != rendered) {
        std::cerr << "uld3d-report: point " << index
                  << " has conflicting results across runs:\n  " << it->second
                  << "\n  " << rendered << "\n";
        return 1;
      }
    }
    // run_start/run_end/progress/checkpoint_flush/shard_info/stage are
    // per-run chatter: dropped from the projection by design.
  }
  std::ostringstream out;
  if (!header.empty()) out << header << "\n";
  for (const auto& [index, line] : points) {
    (void)index;
    out << line << "\n";
    if (line.find("\"status\": \"ok\"") != std::string::npos) {
      ++ok;
    } else {
      ++failed;
    }
  }
  out << "{\"ev\": \"end\", \"points\": " << points.size()
      << ", \"ok\": " << ok << ", \"failed\": " << failed << "}\n";
  std::cout << out.str();
  return 0;
}

// ---------------------------------------------------------------------------
// Default mode: per-run summary (tables or --json) + artifact joins.
// ---------------------------------------------------------------------------

std::string format_ms(double us) { return format_double(us / 1e3, 2) + " ms"; }

void print_summary_tables(const Options& opts, const EventStream& stream,
                          const StreamSummary& s) {
  std::cout << "Events: " << stream.events.size() << " parsed from "
            << opts.events_path;
  if (stream.torn_lines > 0) {
    std::cout << " (+1 torn final line — the writer was killed mid-flush)";
  }
  std::cout << "\n\n";

  Table run_table({"Run", "Shard", "Status", "Exit", "SIMD", "Command"});
  for (const report::RunInfo& run : s.runs) {
    run_table.add_row({run.id.empty() ? "(unlabelled)" : run.id, run.shard,
                       run.status, run.exit_code,
                       run.simd_isa.empty() ? "-" : run.simd_isa,
                       run.command});
  }
  run_table.print(std::cout, "Runs");

  if (!s.sweep_line.empty()) std::cout << "\nSweep: " << s.sweep_line << "\n";
  if (!s.shard_line.empty()) std::cout << "Shard: " << s.shard_line << "\n";
  if (s.ok + s.failed > 0) {
    std::cout << "Points: " << s.ok + s.failed << " evaluated, " << s.ok
              << " ok, " << s.failed << " failed";
    if (s.checkpoints > 0) {
      std::cout << " (" << s.checkpoints << " checkpoint flushes)";
    }
    std::cout << "\n";
  }

  if (!s.failure_counts.empty()) {
    Table taxonomy({"Failure code", "Count"});
    for (const auto& [code, count] : s.failure_counts) {
      taxonomy.add_row({code, std::to_string(count)});
    }
    std::cout << "\n";
    taxonomy.print(std::cout, "Failure taxonomy");
  }

  if (!s.stages.empty()) {
    // CPU/alloc/RSS columns are 0 for streams recorded before stage events
    // carried resource attribution; the fields are additive, not a schema
    // break.
    Table stage_table(
        {"Stage", "Count", "Total", "Mean", "CPU", "Alloc MiB", "RSS MiB"});
    for (const auto& [name, agg] : s.stages) {
      stage_table.add_row(
          {name, std::to_string(agg.count), format_ms(agg.wall_us),
           format_ms(agg.wall_us / static_cast<double>(agg.count)),
           format_ms(agg.cpu_us),
           format_double(agg.alloc_bytes / (1024.0 * 1024.0), 2),
           format_double(agg.rss_hwm_kb / 1024.0, 1)});
    }
    std::cout << "\n";
    stage_table.print(std::cout, "Stage times");
  }

  if (!s.timings.empty() && opts.stragglers > 0) {
    std::vector<report::PointTiming> timings = s.timings;
    std::sort(timings.begin(), timings.end(),
              [](const report::PointTiming& a, const report::PointTiming& b) {
                if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                return a.index < b.index;
              });
    Table straggler_table({"Index", "Status", "Duration"});
    const std::size_t n = std::min(opts.stragglers, timings.size());
    for (std::size_t i = 0; i < n; ++i) {
      straggler_table.add_row({std::to_string(timings[i].index),
                               timings[i].ok ? "ok" : "failed",
                               format_ms(timings[i].dur_us)});
    }
    std::cout << "\n";
    straggler_table.print(std::cout, "Slowest points");
  }
  if (s.progress_events > 0) {
    std::cout << "\nProgress events: " << s.progress_events << "\n";
  }
}

int run_summary(const Options& opts, const EventStream& stream) {
  const StreamSummary s = report::summarize(stream);

  // Parse the metrics export (if any) BEFORE emitting the summary: in
  // --json mode its reuse counters become the "reuse" member of the one
  // stdout object, so consumers get cache/dedup effectiveness without a
  // second parse.  Only a RunId-matching export contributes — mixing
  // another run's counters in is the mistake the join check exists for.
  std::optional<JsonValue> metrics_doc;
  bool metrics_run_matches = false;
  if (!opts.metrics_path.empty()) {
    metrics_doc = json_parse_file(opts.metrics_path);
    metrics_run_matches = s.has_run(metrics_doc->string_or("run_id", ""));
  }
  std::string extra_members;
  report::ReuseCounters reuse;
  if (metrics_doc.has_value() && metrics_run_matches) {
    reuse = report::reuse_counters(*metrics_doc);
    if (reuse.any) extra_members = report::reuse_to_json(reuse);
  }

  if (opts.json) {
    std::cout << report::summary_to_json(s, stream, opts.events_path,
                                         opts.stragglers, extra_members);
  } else {
    print_summary_tables(opts, stream, s);
  }

  // --- Artifact joins: RunId labels must agree with the event stream.
  // In --json mode the join diagnostics go to stderr so stdout stays one
  // parseable object; the exit code carries the verdict either way. ---
  int inconsistencies = 0;
  std::ostream& join_out = opts.json ? std::cerr : std::cout;

  if (metrics_doc.has_value()) {
    const std::string run_id = metrics_doc->string_or("run_id", "");
    join_out << "\nMetrics join (" << opts.metrics_path << "): run "
             << (run_id.empty() ? "(unlabelled)" : run_id);
    if (!metrics_run_matches) {
      join_out << " — MISMATCH: not a run in this event stream\n";
      ++inconsistencies;
    } else {
      join_out << " — matches\n";
      double dropped = 0.0;
      if (const JsonValue* metrics = metrics_doc->find("metrics");
          metrics != nullptr && metrics->is_array()) {
        for (const JsonValue& m : metrics->as_array()) {
          if (m.string_or("name", "") == "trace.dropped_events") {
            dropped = m.number_or("value", 0.0);
          }
        }
      }
      if (reuse.hits + reuse.misses > 0.0) {
        join_out << "  mapping cache: " << format_double(reuse.hits, 0)
                 << " hits, " << format_double(reuse.misses, 0) << " misses ("
                 << format_double(
                        100.0 * reuse.hits / (reuse.hits + reuse.misses), 1)
                 << "% hit rate)";
        if (reuse.file_loads > 0.0 || reuse.file_appends > 0.0) {
          join_out << "; persistent store: " << format_double(reuse.file_hits, 0)
                   << " file hits of " << format_double(reuse.file_loads, 0)
                   << " loaded, " << format_double(reuse.file_appends, 0)
                   << " appended (" << (reuse.warm() ? "warm" : "cold")
                   << " start)";
        }
        join_out << "\n";
      }
      if (reuse.dedup_unique + reuse.dedup_aliased > 0.0) {
        join_out << "  sweep dedup: "
                 << format_double(reuse.dedup_unique, 0) << " unique point(s) "
                 << "evaluated, " << format_double(reuse.dedup_aliased, 0)
                 << " aliased\n";
      }
      if (dropped > 0.0) {
        join_out << "  WARNING: " << format_double(dropped, 0)
                 << " trace event(s) dropped — the trace export is "
                    "truncated\n";
      }
    }
  }

  if (!opts.trace_path.empty()) {
    const JsonValue doc = json_parse_file(opts.trace_path);
    std::string run_id;
    double dropped = 0.0;
    std::size_t span_count = 0;
    if (const JsonValue* other = doc.find("otherData"); other != nullptr) {
      run_id = other->string_or("run_id", "");
      dropped = other->number_or("dropped_events", 0.0);
    }
    if (const JsonValue* spans = doc.find("traceEvents");
        spans != nullptr && spans->is_array()) {
      span_count = spans->as_array().size();
    }
    join_out << "\nTrace join (" << opts.trace_path << "): run "
             << (run_id.empty() ? "(unlabelled)" : run_id);
    if (!s.has_run(run_id)) {
      join_out << " — MISMATCH: not a run in this event stream\n";
      ++inconsistencies;
    } else {
      join_out << " — matches, " << span_count << " span(s)";
      if (dropped > 0.0) {
        join_out << ", " << format_double(dropped, 0) << " DROPPED";
      }
      join_out << "\n";
    }
  }

  if (!opts.bench_path.empty()) {
    const JsonValue doc = json_parse_file(opts.bench_path);
    join_out << "\nBench join (" << opts.bench_path << "): suite "
             << doc.string_or("suite", "?");
    if (const JsonValue* prov = doc.find("provenance"); prov != nullptr) {
      join_out << ", git " << prov->string_or("git_sha", "?") << ", peak RSS "
               << format_double(prov->number_or("peak_rss_kb", 0.0) / 1024.0,
                                1)
               << " MiB, pool queue high-water "
               << format_double(prov->number_or("pool_queue_high_water", 0.0),
                                0);
    }
    join_out << "\n";
  }

  if (!opts.postmortem_path.empty()) {
    const JsonValue doc = json_parse_file(opts.postmortem_path);
    const std::string run_id = doc.string_or("run", "");
    join_out << "\nPostmortem join (" << opts.postmortem_path << "): run "
             << (run_id.empty() ? "(unlabelled)" : run_id);
    if (!s.has_run(run_id)) {
      join_out << " — MISMATCH: not a run in this event stream\n";
      ++inconsistencies;
    } else {
      join_out << " — matches, reason " << doc.string_or("reason", "?")
               << " (signal "
               << static_cast<int>(doc.number_or("signal", 0)) << ")\n";
      // Show the dumping (crashed) thread's active-span stack — "what was
      // it doing" is the question a postmortem exists to answer.
      if (const JsonValue* threads = doc.find("threads");
          threads != nullptr && threads->is_array()) {
        for (const JsonValue& t : threads->as_array()) {
          const JsonValue* dumping = t.find("dumping");
          if (dumping == nullptr || !dumping->is_bool() ||
              !dumping->as_bool()) {
            continue;
          }
          join_out << "  crashed thread "
                   << static_cast<std::uint64_t>(t.number_or("id", 0));
          const std::string name = t.string_or("name", "");
          if (!name.empty()) join_out << " (" << name << ")";
          join_out << ", active spans:";
          if (const JsonValue* spans = t.find("active_spans");
              spans != nullptr && spans->is_array() &&
              !spans->as_array().empty()) {
            for (const JsonValue& span : spans->as_array()) {
              join_out << " " << span.as_string();
            }
          } else {
            join_out << " (none)";
          }
          join_out << "\n";
        }
      }
    }
  }

  return inconsistencies > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) usage(0);

  Options opts;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto operand = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "uld3d-report: " << arg << " needs an operand\n";
        usage(2);
      }
      return args[++i];
    };
    if (arg == "--canon") {
      opts.canon = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--metrics") {
      opts.metrics_path = operand();
    } else if (arg == "--trace") {
      opts.trace_path = operand();
    } else if (arg == "--bench") {
      opts.bench_path = operand();
    } else if (arg == "--postmortem") {
      opts.postmortem_path = operand();
    } else if (arg == "--stragglers") {
      try {
        opts.stragglers = std::stoul(operand());
      } catch (const std::exception&) {
        std::cerr << "uld3d-report: --stragglers needs a count\n";
        usage(2);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "uld3d-report: unknown flag " << arg << "\n";
      usage(2);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) usage(2);
  opts.events_path = positional[0];

  try {
    const EventStream stream = report::read_events(opts.events_path);
    return opts.canon ? run_canon(stream) : run_summary(opts, stream);
  } catch (const JsonParseError& e) {
    std::cerr << "uld3d-report: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    // Structurally-unexpected documents (wrong member kinds) are malformed
    // inputs, not crashes.
    std::cerr << "uld3d-report: " << e.what() << "\n";
    return 3;
  }
}

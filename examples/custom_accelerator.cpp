// Define a custom Table-II-style accelerator architecture and evaluate its
// iso-footprint M3D benefit with the ZigZag-style mapper — the workflow a
// user follows to test their own design point.
#include <iostream>

#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/table.hpp"
#include "uld3d/util/units.hpp"

int main() {
  using namespace uld3d;

  // A 64x16 output-channel-heavy array with a 1 MB global buffer and small
  // per-PE registers — not one of the paper's six points.
  mapper::Architecture arch;
  arch.name = "Custom (64,16,-,-)";
  arch.spatial = {64, 16, 1, 1};
  arch.weights.reg = {2 * 8.0, 0.008, 1.0e9};
  arch.weights.local = {units::kb_to_bits(16.0), 0.04, 2048.0};
  arch.weights.global = {units::mb_to_bits(1.0), 0.15, 1024.0};
  arch.inputs.local = {units::kb_to_bits(16.0), 0.04, 2048.0};
  arch.inputs.global = {units::mb_to_bits(1.0), 0.15, 1024.0};
  arch.outputs.reg = {4 * 8.0, 0.008, 1.0e9};
  arch.outputs.global = {units::mb_to_bits(1.0), 0.15, 1024.0};
  arch.rram_capacity_bits = units::mb_to_bits(256.0);

  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  const mapper::SystemCosts sys;

  Table table({"Network", "N (Eq. 2)", "Speedup", "Energy", "EDP benefit"});
  for (const char* name : {"alexnet", "resnet18", "resnet50"}) {
    const nn::Network net = nn::make_network(name);
    const auto benefit = mapper::evaluate_benefit(net, arch, sys, pdk);
    table.add_row({net.name(), std::to_string(benefit.n_cs),
                   format_ratio(benefit.speedup),
                   format_ratio(benefit.energy_ratio, 3),
                   format_ratio(benefit.edp_benefit)});
  }
  const auto area = mapper::arch_area_model(arch, pdk);
  table.print(std::cout, arch.name + " — iso-footprint M3D benefits");
  std::cout << "CS area: " << format_double(area.cs_area_um2 / 1.0e6, 1)
            << " mm^2, gamma_cells: " << format_double(area.gamma_cells(), 2)
            << "\n";
  return 0;
}

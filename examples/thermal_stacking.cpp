// Multi-tier stacking under a thermal envelope: combine the Case-3 EDP
// model (more interleaved compute/memory tier pairs => more parallel CSs)
// with the Eq.-17 thermal stack, and report the best thermally-legal stack.
//
// Usage: ./thermal_stacking [budget_K] [sink_mm2KperW]
#include <cstdlib>
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/multi_tier.hpp"
#include "uld3d/core/thermal.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/table.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  const double budget_k = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double sink_mm2 = argc > 2 ? std::atof(argv[2]) : 1200.0;

  const accel::CaseStudy study;
  const core::AreaModel area = study.area_model();
  const core::Chip2d c2 = study.chip2d_params();
  const double die_mm2 = area.total_area_um2() / 1.0e6;

  const auto stack = tech::TierStack::make_m3d_130nm();
  double pair_r_mm2 = 0.0;
  for (const auto& tier : stack.tiers()) {
    pair_r_mm2 += tier.thermal_resistance_mm2_k_per_w;
  }
  const double pair_r = pair_r_mm2 / die_mm2;
  const double sink_r = sink_mm2 / die_mm2;

  const nn::Network net = nn::make_resnet18();
  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  const auto workloads = core::layer_workloads(net, traffic, part);

  Table table({"Tier pairs Y", "CSs", "EDP benefit", "Temp rise (K)",
               "Legal"});
  std::int64_t best_y = 1;
  double best_edp = 0.0;
  for (std::int64_t y = 1; y <= 10; ++y) {
    const std::int64_t n = core::multi_tier_parallel_cs(area, y);
    std::vector<core::EdpResult> rs;
    for (const auto& w : workloads) {
      rs.push_back(core::evaluate_multi_tier_edp(w, c2, area, y,
                                                 c2.bandwidth_bits_per_cycle));
    }
    const auto total = core::combine_results(rs);

    core::ThermalStack thermal(sink_r);
    const double pair_power_w =
        (static_cast<double>(n) / static_cast<double>(y)) * 4.0e-3 * 20.0 + 0.05;
    for (std::int64_t j = 0; j < y; ++j) thermal.add_tier({pair_r, pair_power_w});
    const double rise = thermal.temperature_rise_k();
    const bool legal = rise <= budget_k;
    if (legal && total.edp_benefit > best_edp) {
      best_edp = total.edp_benefit;
      best_y = y;
    }
    table.add_row({std::to_string(y), std::to_string(n),
                   format_ratio(total.edp_benefit), format_double(rise, 1),
                   legal ? "yes" : "NO"});
  }
  table.print(std::cout, "ResNet-18 multi-tier stacking under a " +
                             format_double(budget_k, 0) + " K budget");
  std::cout << "Best thermally-legal stack: Y = " << best_y << " ("
            << format_ratio(best_edp) << " EDP benefit)\n";
  return 0;
}

// Render the case study's 2D and M3D floorplans (ASCII, Fig. 2b/2d style),
// export a DEF-like dump, and print the M3D thermal map.
//
// Usage: ./floorplan_viewer [--def]
#include <cstring>
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/phys/render.hpp"
#include "uld3d/phys/thermal_map.hpp"
#include "uld3d/util/units.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  const bool dump_def = argc > 1 && std::strcmp(argv[1], "--def") == 0;

  const accel::CaseStudy study;
  phys::FlowInput input;
  input.pdk = study.pdk;
  input.rram_capacity_bits = study.capacity_bits();
  const double sram = units::kb_to_bits(study.cs.sram_buffer_kb) *
                      study.cs.sram_bit_area_um2;
  input.cs_sram_area_um2 = sram;
  input.cs_logic_area_um2 = study.cs.area_um2(study.pdk.si_library()) - sram;
  input.cs_logic_gates = study.cs.total_gates();

  const phys::M3dFlow flow;
  const auto cmp = flow.run_comparison(input, study.m3d_cs_count());

  for (const auto* report : {&cmp.design_2d, &cmp.design_3d}) {
    std::cout << "=== " << report->name << " floorplan ("
              << report->footprint_mm2 << " mm^2, " << report->cs_placed
              << " CS) ===\n"
              << phys::render_ascii_floorplan(
                     report->die_width_um, report->die_height_um,
                     report->placed_macros, report->placed_blocks)
              << '\n';
    if (dump_def) {
      std::cout << phys::export_def(report->name, report->die_width_um,
                                    report->die_height_um,
                                    report->placed_macros,
                                    report->placed_blocks)
                << '\n';
    }
  }

  const phys::ThermalMap heat(cmp.design_3d.power,
                              tech::TierStack::make_m3d_130nm(),
                              cmp.design_3d.die_width_um,
                              cmp.design_3d.die_height_um,
                              /*sink=*/1200.0);
  std::cout << "=== M3D thermal map ===\n" << heat.to_ascii();
  return 0;
}

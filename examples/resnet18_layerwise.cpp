// Per-layer analysis (Table-I style) for any model in the zoo, on a
// configurable design point.
//
// Usage: ./resnet18_layerwise [network] [n_cs] [capacity_mb]
#include <cstdlib>
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/table.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const std::int64_t n_cs_override = argc > 2 ? std::atoll(argv[2]) : 0;
  const double capacity_mb = argc > 3 ? std::atof(argv[3]) : 64.0;

  accel::CaseStudy study;
  study.rram_capacity_mb = capacity_mb;
  const std::int64_t n_cs =
      n_cs_override > 0 ? n_cs_override : study.m3d_cs_count();

  const nn::Network net = nn::make_network(name);
  const auto cfg_2d = study.config_2d();
  auto cfg_3d = study.config_3d();
  cfg_3d.n_cs = n_cs;
  cfg_3d.n_banks = n_cs;
  const sim::DesignComparison cmp = sim::compare_designs(net, cfg_2d, cfg_3d);

  Table table({"Layer", "2D cycles", "M3D cycles", "Speedup", "Energy",
               "EDP benefit"});
  for (const auto& row : cmp.layers) {
    table.add_row({row.name, std::to_string(row.cycles_2d),
                   std::to_string(row.cycles_3d), format_ratio(row.speedup),
                   format_ratio(row.energy_ratio, 3),
                   format_ratio(row.edp_benefit)});
  }
  table.add_row({"Total", std::to_string(cmp.run_2d.total_cycles),
                 std::to_string(cmp.run_3d.total_cycles),
                 format_ratio(cmp.speedup), format_ratio(cmp.energy_ratio, 3),
                 format_ratio(cmp.edp_benefit)});
  table.print(std::cout, net.name() + " on " + std::to_string(n_cs) +
                             "-CS M3D vs 2D (" +
                             format_double(capacity_mb, 0) + " MB RRAM)");
  return 0;
}

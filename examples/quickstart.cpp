// Quickstart: build the paper's case study in a dozen lines.
//
//   1. Take the calibrated 130 nm M3D PDK.
//   2. Derive the iso-footprint M3D design point (how many parallel CSs the
//      freed Si area hosts, Eq. 2).
//   3. Simulate a workload on the 2D baseline and the M3D design.
//
// Build & run:  ./quickstart [network]   (default: resnet18)
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/table.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;

  // The case study bundles the PDK, the computing-sub-system design, and
  // the 64 MB on-chip RRAM configuration of the paper's Sec. II.
  const accel::CaseStudy study;

  const core::AreaModel area = study.area_model();
  std::cout << "2D baseline footprint : "
            << format_double(area.total_area_um2() / 1.0e6, 1) << " mm^2\n"
            << "gamma_cells           : "
            << format_double(area.gamma_cells(), 2) << "\n"
            << "M3D parallel CSs (N)  : " << study.m3d_cs_count() << "\n\n";

  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const nn::Network net = nn::make_network(name);
  const sim::DesignComparison cmp = study.run(net);

  std::cout << net.name() << " inference, M3D vs 2D:\n"
            << "  speedup     : " << format_ratio(cmp.speedup) << "\n"
            << "  energy      : " << format_ratio(cmp.energy_ratio, 3)
            << " (M3D/2D)\n"
            << "  EDP benefit : " << format_ratio(cmp.edp_benefit) << "\n";
  return 0;
}

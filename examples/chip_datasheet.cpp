// The coupled architectural + physical run: simulate a workload on both
// designs, characterize power the way the paper does (default activation
// factors), place both chips at the identical footprint, and print a
// datasheet.
//
// Usage: ./chip_datasheet [network]
#include <iostream>

#include "uld3d/accel/chip_summary.hpp"
#include "uld3d/nn/zoo.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const accel::CaseStudy study;
  const accel::ChipSummary summary =
      accel::summarize_chip(study, nn::make_network(name));
  std::cout << accel::datasheet(summary);
  return 0;
}

// Design-space exploration with the dse sweep engine: sweep RRAM capacity,
// CS count, and per-CS bandwidth through the analytical framework; print
// the full grid and the Pareto frontier (footprint vs. EDP benefit).
//
// Infeasible points (a CS count that does not fit the freed Si area) throw
// StatusError(kInfeasiblePoint); under the default
// ErrorPolicy::kSkipAndRecord they become failed rows that the Pareto
// front and best-point search skip, summarized on stderr.
//
// Usage: ./design_space_explorer [network]
// Set ULD3D_CSV_DIR to also dump the sweep as CSV.
#include <iostream>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"
#include "uld3d/dse/sweep.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/export.hpp"

int main(int argc, char** argv) {
  using namespace uld3d;
  const std::string name = argc > 1 ? argv[1] : "resnet18";
  const nn::Network net = nn::make_network(name);
  const core::TrafficOptions traffic;
  const core::PartitionOptions part;
  const auto workloads = core::layer_workloads(net, traffic, part);

  dse::Grid grid;
  grid.axis("capacity_mb", {16.0, 32.0, 64.0, 128.0})
      .axis("n_cs", {1.0, 2.0, 4.0, 8.0, 16.0})
      .axis("bw_scale", {1.0, 2.0});

  const auto evaluate = [&](const std::vector<double>& p) {
    accel::CaseStudy study;
    study.rram_capacity_mb = p[0];
    const auto n = static_cast<std::int64_t>(p[1]);
    const std::int64_t n_geom = study.m3d_cs_count();
    if (n > n_geom) {
      throw StatusError(
          Failure(ErrorCode::kInfeasiblePoint,
                  "CS count does not fit the freed Si area")
              .with("n_cs", n)
              .with("n_geom", n_geom));
    }
    core::Chip2d c2 = study.chip2d_params();
    core::Chip3d c3 = study.chip3d_params(n);
    c3.bandwidth_bits_per_cycle *= p[2];
    std::vector<core::EdpResult> rs;
    for (const auto& w : workloads) rs.push_back(core::evaluate_edp(w, c2, c3));
    const auto total = core::combine_results(rs);
    return std::vector<double>{total.edp_benefit,
                               study.area_model().total_area_um2() / 1e6,
                               total.speedup};
  };

  const dse::SweepResult result = dse::run_sweep(
      grid, {"edp_benefit", "footprint_mm2", "speedup"}, evaluate);

  emit_table(std::cout, result.to_table(),
             "M3D design space for " + net.name() +
                 " (failed rows = infeasible design points)",
             "design_space_" + name);
  if (result.failed_count() > 0) std::cerr << result.failure_summary();

  const auto front = result.pareto_front("edp_benefit", "footprint_mm2");
  Table pareto({"capacity_mb", "n_cs", "bw_scale", "footprint_mm2",
                "EDP benefit"});
  for (const std::size_t i : front) {
    const auto& row = result.rows()[i];
    pareto.add_row({format_double(row.params[0], 0),
                    format_double(row.params[1], 0),
                    format_double(row.params[2], 1),
                    format_double(row.metrics[1], 1),
                    format_ratio(row.metrics[0])});
  }
  emit_table(std::cout, pareto, "Pareto frontier (footprint vs EDP benefit)",
             "design_space_pareto_" + name);

  const auto& best = result.rows()[result.best("edp_benefit")];
  std::cout << "Best EDP point: " << format_double(best.params[0], 0)
            << " MB, " << format_double(best.params[1], 0) << " CSs, "
            << format_ratio(best.params[2], 1) << " bandwidth -> "
            << format_ratio(best.metrics[0]) << "\n";
  return 0;
}

#include "uld3d/io/study_config.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::io {

namespace {

/// One schema entry: where the key lives and what range is legal for it.
struct KeyRule {
  const char* section;
  const char* key;
  bool integer = false;
  double min = 0.0;  ///< inclusive lower bound
  bool min_exclusive = true;
  double max = 1.0e30;  ///< inclusive upper bound
};

// The CaseStudy schema from the header comment, with physical ranges.
constexpr KeyRule kStudyRules[] = {
    {"study", "capacity_mb", false, 0.0, true, 1.0e9},
    {"study", "mem_density_handicap", false, 0.0, true, 1.0e6},
    {"node", "feature_nm", false, 0.0, true, 1.0e5},
    {"node", "target_mhz", false, 0.0, true, 1.0e7},
    {"rram", "bits_per_cell", false, 0.0, true, 64.0},
    {"rram", "cell_area_f2", false, 0.0, true, 1.0e6},
    {"rram", "read_pj_per_bit", false, 0.0, false, 1.0e9},
    {"rram", "write_pj_per_bit", false, 0.0, false, 1.0e9},
    {"rram", "read_latency_ns", false, 0.0, false, 1.0e9},
    {"rram", "bank_read_bits", false, 0.0, true, 1.0e12},
    {"rram", "periph_area_fraction", false, 0.0, false, 0.999},
    {"cnfet", "drive_ratio", false, 0.0, true, 1.0e3},
    {"cnfet", "width_relaxation", false, 0.0, true, 1.0e3},
    {"cnfet", "access_energy_ratio", false, 0.0, true, 1.0e3},
    {"ilv", "pitch_nm", false, 0.0, true, 1.0e6},
    {"ilv", "vias_per_cell", false, 0.0, true, 1.0e6},
    {"cs", "pe_rows", true, 1.0, false, 1.0e6},
    {"cs", "pe_cols", true, 1.0, false, 1.0e6},
    {"cs", "gates_per_pe", true, 1.0, false, 1.0e12},
    {"cs", "control_gates", true, 0.0, false, 1.0e12},
    {"cs", "sram_kb", false, 0.0, false, 1.0e9},
};

}  // namespace

Diagnostics validate_case_study_config(const Config& c) {
  Diagnostics diag;

  // Pass 1: every schema key that is present must parse and sit in range.
  for (const KeyRule& rule : kStudyRules) {
    if (!c.has(rule.section, rule.key)) continue;
    double value = 0.0;
    try {
      value = rule.integer
                  ? static_cast<double>(c.get_int(rule.section, rule.key, 0))
                  : c.get_double(rule.section, rule.key, 0.0);
    } catch (const StatusError& error) {
      diag.add(error.failure());
      continue;
    }
    const bool below =
        rule.min_exclusive ? value <= rule.min : value < rule.min;
    if (below || value > rule.max) {
      diag.error(ErrorCode::kInvalidConfig, "value out of range")
          .with("section", rule.section)
          .with("key", rule.key)
          .with("value", value)
          .with("min", rule.min)
          .with("max", rule.max);
    }
  }

  // Pass 2: unknown sections/keys are warnings with a typo suggestion.
  std::vector<std::string> known_sections;
  for (const KeyRule& rule : kStudyRules) {
    if (known_sections.empty() || known_sections.back() != rule.section) {
      known_sections.emplace_back(rule.section);
    }
  }
  for (const std::string& section : c.section_names()) {
    const bool known_section =
        std::find(known_sections.begin(), known_sections.end(), section) !=
        known_sections.end();
    if (!known_section) {
      Failure& f = diag.warn(ErrorCode::kUnknownKey, "unknown section")
                       .with("section", section);
      const std::string suggestion = nearest_match(section, known_sections);
      if (!suggestion.empty()) f.with("did_you_mean", suggestion);
      continue;
    }
    std::vector<std::string> known_keys;
    for (const KeyRule& rule : kStudyRules) {
      if (section == rule.section) known_keys.emplace_back(rule.key);
    }
    for (const std::string& key : c.keys(section)) {
      if (std::find(known_keys.begin(), known_keys.end(), key) !=
          known_keys.end()) {
        continue;
      }
      Failure& f = diag.warn(ErrorCode::kUnknownKey, "unknown key")
                       .with("section", section)
                       .with("key", key);
      const std::string suggestion = nearest_match(key, known_keys);
      if (!suggestion.empty()) f.with("did_you_mean", suggestion);
    }
  }
  return diag;
}

accel::CaseStudy case_study_from_config(const Config& c) {
  accel::CaseStudy study;  // paper defaults
  study.rram_capacity_mb = c.get_double("study", "capacity_mb", 64.0);
  study.baseline_mem_density_handicap =
      c.get_double("study", "mem_density_handicap", 1.0);

  tech::NodeParams node;
  node.feature_nm = c.get_double("node", "feature_nm", node.feature_nm);
  node.target_frequency_mhz =
      c.get_double("node", "target_mhz", node.target_frequency_mhz);

  tech::RramParams rram;
  rram.bits_per_cell = c.get_double("rram", "bits_per_cell", rram.bits_per_cell);
  rram.cell_area_f2 = c.get_double("rram", "cell_area_f2", rram.cell_area_f2);
  rram.read_energy_pj_per_bit =
      c.get_double("rram", "read_pj_per_bit", rram.read_energy_pj_per_bit);
  rram.write_energy_pj_per_bit =
      c.get_double("rram", "write_pj_per_bit", rram.write_energy_pj_per_bit);
  rram.read_latency_ns =
      c.get_double("rram", "read_latency_ns", rram.read_latency_ns);
  rram.bank_read_bits =
      c.get_double("rram", "bank_read_bits", rram.bank_read_bits);
  rram.periph_area_fraction =
      c.get_double("rram", "periph_area_fraction", rram.periph_area_fraction);

  tech::CnfetParams cnfet;
  cnfet.drive_ratio_vs_si =
      c.get_double("cnfet", "drive_ratio", cnfet.drive_ratio_vs_si);
  cnfet.width_relaxation =
      c.get_double("cnfet", "width_relaxation", cnfet.width_relaxation);
  cnfet.access_energy_ratio =
      c.get_double("cnfet", "access_energy_ratio", cnfet.access_energy_ratio);

  tech::IlvParams ilv;
  ilv.pitch_nm = c.get_double("ilv", "pitch_nm", ilv.pitch_nm);
  ilv.vias_per_rram_cell =
      c.get_double("ilv", "vias_per_cell", ilv.vias_per_rram_cell);

  study.pdk = tech::FoundryM3dPdk(node, rram, cnfet, ilv);

  study.cs.pe_rows = c.get_int("cs", "pe_rows", study.cs.pe_rows);
  study.cs.pe_cols = c.get_int("cs", "pe_cols", study.cs.pe_cols);
  study.cs.gates_per_pe = c.get_int("cs", "gates_per_pe", study.cs.gates_per_pe);
  study.cs.control_gates =
      c.get_int("cs", "control_gates", study.cs.control_gates);
  study.cs.sram_buffer_kb = c.get_double("cs", "sram_kb", study.cs.sram_buffer_kb);
  return study;
}

Config case_study_to_config(const accel::CaseStudy& study) {
  Config c;
  const auto set_double = [&c](const char* section, const char* key,
                               double value) {
    std::ostringstream os;
    os << value;
    c.set(section, key, os.str());
  };
  set_double("study", "capacity_mb", study.rram_capacity_mb);
  set_double("study", "mem_density_handicap",
             study.baseline_mem_density_handicap);
  set_double("node", "feature_nm", study.pdk.node().feature_nm);
  set_double("node", "target_mhz", study.pdk.node().target_frequency_mhz);
  set_double("rram", "bits_per_cell", study.pdk.rram().bits_per_cell);
  set_double("rram", "cell_area_f2", study.pdk.rram().cell_area_f2);
  set_double("rram", "read_pj_per_bit", study.pdk.rram().read_energy_pj_per_bit);
  set_double("rram", "write_pj_per_bit",
             study.pdk.rram().write_energy_pj_per_bit);
  set_double("rram", "read_latency_ns", study.pdk.rram().read_latency_ns);
  set_double("rram", "bank_read_bits", study.pdk.rram().bank_read_bits);
  set_double("rram", "periph_area_fraction",
             study.pdk.rram().periph_area_fraction);
  set_double("cnfet", "drive_ratio", study.pdk.cnfet().drive_ratio_vs_si);
  set_double("cnfet", "width_relaxation", study.pdk.cnfet().width_relaxation);
  set_double("cnfet", "access_energy_ratio",
             study.pdk.cnfet().access_energy_ratio);
  set_double("ilv", "pitch_nm", study.pdk.ilv().pitch_nm);
  set_double("ilv", "vias_per_cell", study.pdk.ilv().vias_per_rram_cell);
  set_double("cs", "pe_rows", static_cast<double>(study.cs.pe_rows));
  set_double("cs", "pe_cols", static_cast<double>(study.cs.pe_cols));
  set_double("cs", "gates_per_pe", static_cast<double>(study.cs.gates_per_pe));
  set_double("cs", "control_gates",
             static_cast<double>(study.cs.control_gates));
  set_double("cs", "sram_kb", study.cs.sram_buffer_kb);
  return c;
}

namespace {

mapper::OperandBuffers buffers_from(const Config& c, const char* section) {
  mapper::OperandBuffers buffers;
  buffers.reg = {c.get_double(section, "reg_bytes", 0.0) * 8.0, 0.008, 1.0e9};
  buffers.local = {units::kb_to_bits(c.get_double(section, "local_kb", 0.0)),
                   0.04, 2048.0};
  buffers.global = {units::mb_to_bits(c.get_double(section, "global_mb", 0.0)),
                    0.15, 1024.0};
  return buffers;
}

}  // namespace

mapper::Architecture architecture_from_config(const Config& c) {
  mapper::Architecture arch;
  arch.name = c.get_string("arch", "name", "custom");
  arch.spatial.k = c.get_int("arch", "spatial_k", 16);
  arch.spatial.c = c.get_int("arch", "spatial_c", 16);
  arch.spatial.ox = c.get_int("arch", "spatial_ox", 1);
  arch.spatial.oy = c.get_int("arch", "spatial_oy", 1);
  arch.rram_capacity_bits =
      units::mb_to_bits(c.get_double("arch", "rram_mb", 256.0));
  arch.rram_bandwidth_bits_per_cycle = c.get_double(
      "arch", "rram_bw_bits_per_cycle", arch.rram_bandwidth_bits_per_cycle);
  arch.mac_energy_pj = c.get_double("arch", "mac_pj", arch.mac_energy_pj);
  arch.weights = buffers_from(c, "weights");
  arch.inputs = buffers_from(c, "inputs");
  arch.outputs = buffers_from(c, "outputs");
  arch.validate();
  return arch;
}

}  // namespace uld3d::io

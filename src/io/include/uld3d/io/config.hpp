// Minimal INI-style configuration: `[section]` headers and `key = value`
// pairs, `#` comments, whitespace-tolerant.  Used to describe case studies
// and custom architectures in text so experiments re-run without
// recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uld3d::io {

class Config {
 public:
  /// Parse INI text; throws PreconditionError on malformed lines.
  [[nodiscard]] static Config parse(const std::string& text);
  /// Parse a file on disk; throws if unreadable.
  [[nodiscard]] static Config load(const std::string& path);

  /// True if `[section]` contains `key`.
  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const;

  /// All section names, sorted (schema validation iterates these).
  [[nodiscard]] std::vector<std::string> section_names() const;
  /// All keys of `section`, sorted; empty for an absent section.
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

  /// Typed getters with defaults; throw on present-but-unparsable values.
  [[nodiscard]] std::string get_string(const std::string& section,
                                       const std::string& key,
                                       const std::string& fallback = {}) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& section,
                                     const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section,
                              const std::string& key, bool fallback) const;

  /// Set a value (used when round-tripping programmatic configs).
  void set(const std::string& section, const std::string& key,
           const std::string& value);

  /// Serialize back to INI text (sections and keys sorted).
  [[nodiscard]] std::string to_text() const;

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace uld3d::io

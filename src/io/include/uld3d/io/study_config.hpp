// Bind INI configs to the library's experiment objects: a whole CaseStudy
// (PDK knobs + CS design + capacity) or a custom mapper Architecture can be
// described in text and round-tripped.
//
// CaseStudy schema (all keys optional; defaults = the paper's Sec.-II point):
//   [study]    capacity_mb, mem_density_handicap
//   [node]     feature_nm, target_mhz
//   [rram]     bits_per_cell, cell_area_f2, read_pj_per_bit, write_pj_per_bit,
//              read_latency_ns, bank_read_bits, periph_area_fraction
//   [cnfet]    drive_ratio, width_relaxation, access_energy_ratio
//   [ilv]      pitch_nm, vias_per_cell
//   [cs]       pe_rows, pe_cols, gates_per_pe, control_gates, sram_kb
//
// Architecture schema:
//   [arch]     name, spatial_k, spatial_c, spatial_ox, spatial_oy,
//              rram_mb, rram_bw_bits_per_cycle, mac_pj
//   [weights] / [inputs] / [outputs]
//              reg_bytes, local_kb, global_mb  (0 = level absent)
#pragma once

#include "uld3d/accel/case_study.hpp"
#include "uld3d/io/config.hpp"
#include "uld3d/mapper/architecture.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::io {

/// Validate `config` against the CaseStudy schema above in ONE pass,
/// reporting every problem instead of stopping at the first:
///  - unparsable values and range violations -> kInvalidConfig errors
///  - unknown sections/keys -> kUnknownKey *warnings*, with a nearest-key
///    suggestion for likely typos ("did you mean ...?")
/// A Diagnostics with no errors (`.ok()`) means `case_study_from_config`
/// will accept the config; strict callers may also reject warnings.
[[nodiscard]] Diagnostics validate_case_study_config(const Config& config);

/// Build a CaseStudy from `config`, starting from the paper defaults.
[[nodiscard]] accel::CaseStudy case_study_from_config(const Config& config);

/// Serialize a CaseStudy's knobs back to a Config.
[[nodiscard]] Config case_study_to_config(const accel::CaseStudy& study);

/// Build a mapper Architecture from `config`.
[[nodiscard]] mapper::Architecture architecture_from_config(
    const Config& config);

}  // namespace uld3d::io

#include "uld3d/io/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::io {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream is(text);
  std::string line;
  std::string section = "global";
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      expects(line.back() == ']' && line.size() > 2,
              "malformed section header at line " + std::to_string(line_number));
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    expects(eq != std::string::npos,
            "expected key = value at line " + std::to_string(line_number));
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    expects(!key.empty(), "empty key at line " + std::to_string(line_number));
    config.sections_[section][key] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream file(path);
  expects(file.good(), "cannot open config file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

bool Config::has(const std::string& section, const std::string& key) const {
  const auto s = sections_.find(section);
  return s != sections_.end() && s->second.count(key) > 0;
}

std::string Config::get_string(const std::string& section,
                               const std::string& key,
                               const std::string& fallback) const {
  const auto s = sections_.find(section);
  if (s == sections_.end()) return fallback;
  const auto k = s->second.find(key);
  return k == s->second.end() ? fallback : k->second;
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  if (!has(section, key)) return fallback;
  const std::string value = get_string(section, key);
  // Catch only the parser's own exceptions (narrowly, so an internal
  // `expects` is never masked) and report overflow distinctly.
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::out_of_range&) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig,
                              "number out of double range (overflow)")
                          .with("section", section)
                          .with("key", key)
                          .with("value", value));
  } catch (const std::invalid_argument&) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig, "not a number")
                          .with("section", section)
                          .with("key", key)
                          .with("value", value));
  }
  if (consumed != value.size()) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig,
                              "trailing characters after number")
                          .with("section", section)
                          .with("key", key)
                          .with("value", value));
  }
  return parsed;
}

std::int64_t Config::get_int(const std::string& section, const std::string& key,
                             std::int64_t fallback) const {
  if (!has(section, key)) return fallback;
  const std::string value = get_string(section, key);
  std::size_t consumed = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(value, &consumed);
  } catch (const std::out_of_range&) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig,
                              "integer out of 64-bit range (overflow)")
                          .with("section", section)
                          .with("key", key)
                          .with("value", value));
  } catch (const std::invalid_argument&) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig, "not an integer")
                          .with("section", section)
                          .with("key", key)
                          .with("value", value));
  }
  if (consumed != value.size()) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig,
                              "trailing characters after integer")
                          .with("section", section)
                          .with("key", key)
                          .with("value", value));
  }
  return parsed;
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  if (!has(section, key)) return fallback;
  const std::string value = lower(get_string(section, key));
  if (value == "true" || value == "yes" || value == "1" || value == "on") {
    return true;
  }
  if (value == "false" || value == "no" || value == "0" || value == "off") {
    return false;
  }
  expects(false, "not a boolean: [" + section + "] " + key + " = " + value);
  return fallback;
}

std::vector<std::string> Config::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [section, entries] : sections_) names.push_back(section);
  return names;
}

std::vector<std::string> Config::keys(const std::string& section) const {
  std::vector<std::string> names;
  const auto s = sections_.find(section);
  if (s == sections_.end()) return names;
  names.reserve(s->second.size());
  for (const auto& [key, value] : s->second) names.push_back(key);
  return names;
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  expects(!section.empty() && !key.empty(), "section and key required");
  sections_[section][key] = value;
}

std::string Config::to_text() const {
  std::ostringstream os;
  for (const auto& [section, entries] : sections_) {
    os << '[' << section << "]\n";
    for (const auto& [key, value] : entries) {
      os << key << " = " << value << '\n';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace uld3d::io

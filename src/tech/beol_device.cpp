#include "uld3d/tech/beol_device.hpp"

#include <algorithm>

#include "uld3d/util/check.hpp"

namespace uld3d::tech {

double BeolDeviceTechnology::width_relaxation_for_iso_drive() const {
  expects(drive_ratio_vs_si > 0.0, "drive ratio must be positive: " + name);
  // Matching the Si selector's on-current requires 1/drive_ratio the width;
  // a technology stronger than Si still needs the minimum (1.0) width.
  return std::max(1.0, 1.0 / drive_ratio_vs_si);
}

bool BeolDeviceTechnology::beol_compatible(double limit_c) const {
  return max_process_temp_c <= limit_c;
}

// Drive ratios follow the published ranges for each family at relaxed
// (>= 100 nm class) geometries; the exact values matter less than their
// ordering, which the Case-1 sweep turns into EDP deltas.
BeolDeviceTechnology make_cnfet() {
  return {"CNFET", 0.80, 200.0, 0.50, 0.97, "foundry-demonstrated [5]"};
}

BeolDeviceTechnology make_ltps_si() {
  return {"CoolCube LT-Si", 0.90, 500.0, 1.00, 1.00, "demonstrated [6-7]"};
}

BeolDeviceTechnology make_igzo() {
  return {"IGZO oxide FET", 0.25, 350.0, 0.05, 0.95, "production (display/DRAM)"};
}

BeolDeviceTechnology make_2d_fet() {
  return {"MoS2 2D FET", 0.45, 300.0, 0.30, 0.95, "research [8]"};
}

BeolDeviceTechnology make_fefet() {
  return {"FeFET selector", 0.70, 400.0, 0.60, 0.90, "research [8]"};
}

std::vector<BeolDeviceTechnology> beol_technology_catalogue() {
  return {make_cnfet(), make_ltps_si(), make_igzo(), make_2d_fet(),
          make_fefet()};
}

FoundryM3dPdk pdk_with_beol_device(const FoundryM3dPdk& base,
                                   const BeolDeviceTechnology& device) {
  expects(device.drive_ratio_vs_si > 0.0,
          "device drive ratio must be positive: " + device.name);
  CnfetParams upper;
  upper.drive_ratio_vs_si = device.drive_ratio_vs_si;
  upper.width_relaxation = device.width_relaxation_for_iso_drive();
  upper.access_energy_ratio = device.access_energy_ratio;
  return FoundryM3dPdk(base.node(), base.rram(), upper, base.ilv());
}

}  // namespace uld3d::tech

#include "uld3d/tech/std_cell_library.hpp"

#include <algorithm>

#include "uld3d/util/check.hpp"

namespace uld3d::tech {

StdCellLibrary::StdCellLibrary(std::string name, TierKind tier,
                               std::vector<StdCell> cells)
    : name_(std::move(name)), tier_(tier), cells_(std::move(cells)) {
  expects(!cells_.empty(), "a standard-cell library needs at least one cell");
  expects(tier_ == TierKind::kSiCmosFeol || tier_ == TierKind::kCnfetFeol,
          "standard cells live on a FEOL-like placement tier");
}

const StdCell& StdCellLibrary::cell(const std::string& cell_name) const {
  const auto it = std::find_if(cells_.begin(), cells_.end(),
                               [&](const StdCell& c) { return c.name == cell_name; });
  expects(it != cells_.end(), "unknown cell: " + cell_name);
  return *it;
}

bool StdCellLibrary::has_cell(const std::string& cell_name) const {
  return std::any_of(cells_.begin(), cells_.end(),
                     [&](const StdCell& c) { return c.name == cell_name; });
}

double StdCellLibrary::gate_area_um2() const { return cell("NAND2_X1").area_um2; }

double StdCellLibrary::gate_energy_pj() const {
  return cell("NAND2_X1").switch_energy_pj;
}

double StdCellLibrary::gate_leakage_nw() const {
  return cell("NAND2_X1").leakage_nw;
}

double StdCellLibrary::fo4_delay_ps() const { return cell("INV_X1").delay_ps; }

namespace {

// Representative 130 nm values (1.2 V, typical corner).  Areas follow a
// 10-track library with ~3.7 um cell height; energies follow CV^2 with
// ~2 fF/um gate cap.  These magnitudes match published 130 nm libraries.
std::vector<StdCell> si_cells() {
  return {
      //   name        area   cap    E_sw     leak   delay  GE
      {"INV_X1", 6.0, 2.0, 0.006, 0.30, 45.0, 1},
      {"INV_X4", 12.0, 8.0, 0.018, 1.10, 30.0, 2},
      {"NAND2_X1", 10.0, 2.2, 0.010, 0.45, 60.0, 1},
      {"NOR2_X1", 10.0, 2.4, 0.011, 0.50, 70.0, 1},
      {"AOI22_X1", 14.0, 2.4, 0.014, 0.65, 85.0, 2},
      {"XOR2_X1", 22.0, 3.0, 0.022, 0.90, 110.0, 3},
      {"MUX2_X1", 18.0, 2.6, 0.016, 0.70, 95.0, 2},
      {"FA_X1", 42.0, 3.4, 0.045, 1.80, 180.0, 6},
      {"DFF_X1", 48.0, 2.8, 0.052, 2.20, 150.0, 6},
      {"BUF_X8", 20.0, 14.0, 0.030, 1.60, 35.0, 3},
      {"CLKBUF_X4", 16.0, 9.0, 0.024, 1.30, 32.0, 2},
  };
}

}  // namespace

StdCellLibrary StdCellLibrary::make_si_cmos_130nm() {
  return StdCellLibrary("si_cmos_130", TierKind::kSiCmosFeol, si_cells());
}

StdCellLibrary StdCellLibrary::scaled(double area_scale, double energy_scale,
                                      double delay_scale) const {
  expects(area_scale > 0.0 && energy_scale > 0.0 && delay_scale > 0.0,
          "scaling factors must be positive");
  auto cells = cells_;
  for (auto& c : cells) {
    c.area_um2 *= area_scale;
    c.input_cap_ff *= energy_scale;
    c.switch_energy_pj *= energy_scale;
    c.leakage_nw *= energy_scale;
    c.delay_ps *= delay_scale;
  }
  return StdCellLibrary(name_, tier_, std::move(cells));
}

StdCellLibrary StdCellLibrary::make_cnfet_130nm(double drive_ratio) {
  expects(drive_ratio > 0.0 && drive_ratio <= 1.5,
          "CNFET drive ratio must be in (0, 1.5]");
  auto cells = si_cells();
  for (auto& c : cells) {
    c.name = "CNT_" + c.name;
    c.delay_ps /= drive_ratio;       // weaker drive -> slower
    c.leakage_nw *= 0.5;             // CNFETs leak less at iso-node
    c.switch_energy_pj *= 0.9;       // slightly lower parasitic cap (thin body)
  }
  return StdCellLibrary("cnfet_130", TierKind::kCnfetFeol, std::move(cells));
}

}  // namespace uld3d::tech

#include "uld3d/tech/tier_stack.hpp"

#include "uld3d/util/check.hpp"

namespace uld3d::tech {

const char* to_string(TierKind kind) {
  switch (kind) {
    case TierKind::kSiCmosFeol: return "SiCmosFeol";
    case TierKind::kBeolMetal: return "BeolMetal";
    case TierKind::kRram: return "Rram";
    case TierKind::kCnfetFeol: return "CnfetFeol";
  }
  return "?";
}

TierStack::TierStack(std::vector<Tier> tiers) : tiers_(std::move(tiers)) {}

const Tier& TierStack::at(std::size_t index) const {
  expects(index < tiers_.size(), "tier index out of range");
  return tiers_[index];
}

std::optional<std::size_t> TierStack::find(TierKind kind) const {
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i].kind == kind) return i;
  }
  return std::nullopt;
}

std::size_t TierStack::placement_tier_count() const {
  std::size_t count = 0;
  for (const auto& tier : tiers_) {
    if (tier.placement_allowed) ++count;
  }
  return count;
}

double TierStack::thermal_resistance_to_sink(std::size_t from_index,
                                             double area_mm2) const {
  expects(from_index < tiers_.size(), "tier index out of range");
  expects(area_mm2 > 0.0, "die area must be positive");
  double r_mm2 = 0.0;
  for (std::size_t i = 0; i <= from_index; ++i) {
    r_mm2 += tiers_[i].thermal_resistance_mm2_k_per_w;
  }
  return r_mm2 / area_mm2;
}

void TierStack::push(Tier tier) { tiers_.push_back(std::move(tier)); }

namespace {

// Representative vertical thermal resistances.  Dielectric stacks dominate;
// values are normalised per mm^2 so thermal_resistance_to_sink() can scale
// with footprint.  Magnitudes follow published M3D thermal studies [19].
constexpr double kFeolRth = 2.0;    // mm^2*K/W
constexpr double kMetalRth = 1.5;   // per metal layer
constexpr double kRramRth = 1.0;
constexpr double kCnfetRth = 2.5;   // thin-film layer on ILD

TierStack build_stack(bool cnfet_placement_allowed) {
  std::vector<Tier> tiers;
  tiers.push_back({"SiCMOS", TierKind::kSiCmosFeol, true, false, 300.0, kFeolRth});
  for (int m = 1; m <= 4; ++m) {
    tiers.push_back({"M" + std::to_string(m), TierKind::kBeolMetal, false, true,
                     200.0, kMetalRth});
  }
  tiers.push_back({"RRAM", TierKind::kRram, true, false, 50.0, kRramRth});
  tiers.push_back(
      {"CNFET", TierKind::kCnfetFeol, cnfet_placement_allowed, true, 40.0, kCnfetRth});
  for (int m = 5; m <= 6; ++m) {
    tiers.push_back({"M" + std::to_string(m), TierKind::kBeolMetal, false, true,
                     350.0, kMetalRth});
  }
  return TierStack(std::move(tiers));
}

}  // namespace

TierStack TierStack::make_m3d_130nm() { return build_stack(true); }

TierStack TierStack::make_2d_baseline_130nm() { return build_stack(false); }

}  // namespace uld3d::tech

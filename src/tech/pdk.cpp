#include "uld3d/tech/pdk.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::tech {

FoundryM3dPdk::FoundryM3dPdk(NodeParams node, RramParams rram, CnfetParams cnfet,
                             IlvParams ilv)
    : node_(node),
      rram_(rram),
      cnfet_(cnfet),
      ilv_(ilv),
      si_lib_(StdCellLibrary::make_si_cmos_130nm().scaled(
          (node.feature_nm / 130.0) * (node.feature_nm / 130.0),
          node.feature_nm / 130.0, node.feature_nm / 130.0)),
      cnfet_lib_(StdCellLibrary::make_cnfet_130nm(cnfet.drive_ratio_vs_si)
                     .scaled((node.feature_nm / 130.0) *
                                 (node.feature_nm / 130.0),
                             node.feature_nm / 130.0,
                             node.feature_nm / 130.0)) {
  expects(node_.feature_nm > 0.0, "feature size must be positive");
  expects(rram_.bits_per_cell >= 1.0, "RRAM stores at least one bit per cell");
  expects(rram_.cell_area_f2 > 0.0, "RRAM cell area must be positive");
  expects(cnfet_.width_relaxation >= 1.0,
          "FET width relaxation delta is >= 1 (1 = iso-width)");
  expects(ilv_.pitch_nm > 0.0, "ILV pitch must be positive");
  expects(node_.target_frequency_mhz > 0.0, "target frequency must be positive");
}

double FoundryM3dPdk::rram_bit_area_um2() const {
  // 2D baseline: the Si access FET sits directly below the cell (Fig. 3d),
  // so no ILV is needed and the layout is FET-limited only.
  const double f_um = units::nm_to_um(node_.feature_nm);
  return rram_.cell_area_f2 * f_um * f_um / rram_.bits_per_cell;
}

double FoundryM3dPdk::rram_bit_area_m3d_um2() const {
  // M3D: the access FET moves to the CNFET tier above, so every cell group
  // needs `m` ILVs down to the array (Case 2) and the cell can never shrink
  // below m * pitch^2.  Case 1: a width-relaxed CNFET access FET grows the
  // cell footprint proportionally (the FET dominates the cell layout).
  const double f_um = units::nm_to_um(node_.feature_nm);
  const double fet_limited =
      rram_.cell_area_f2 * cnfet_.width_relaxation * f_um * f_um;
  const double p_um = units::nm_to_um(ilv_.pitch_nm);
  const double via_limited = ilv_.vias_per_rram_cell * p_um * p_um;
  return std::max(fet_limited, via_limited) / rram_.bits_per_cell;
}

RramMacroGeometry FoundryM3dPdk::rram_macro(double capacity_bits, int banks,
                                            bool m3d) const {
  expects(capacity_bits > 0.0, "macro capacity must be positive");
  expects(banks >= 1, "a macro has at least one bank");
  RramMacroGeometry g;
  g.capacity_bits = capacity_bits;
  const double bit_area = m3d ? rram_bit_area_m3d_um2() : rram_bit_area_um2();
  g.cell_array_area_um2 = capacity_bits * bit_area;
  // Peripheral area scales with the cell array it serves, plus a small fixed
  // controller cost per bank.
  const double per_bank_fixed_um2 = 5.0e4;  // sequencer + IO per bank
  g.periph_area_um2 = rram_.periph_area_fraction * g.cell_array_area_um2 +
                      per_bank_fixed_um2 * static_cast<double>(banks);
  g.total_area_um2 = g.cell_array_area_um2 + g.periph_area_um2;
  return g;
}

double FoundryM3dPdk::bank_bandwidth_bits_per_cycle() const {
  // A bank delivers one `bank_read_bits`-wide row per read; the read takes
  // ceil(latency / period) cycles but is fully pipelined after the first
  // access, so steady-state bandwidth is width / max(1, latency_cycles_pipe).
  // At the paper's relaxed 20 MHz target the 25 ns sense fits in one cycle.
  const double period = clock_period_ns();
  const double cycles = std::max(1.0, std::ceil(rram_.read_latency_ns / period));
  return rram_.bank_read_bits / cycles;
}

double FoundryM3dPdk::rram_idle_energy_pj_per_cycle(double capacity_bits) const {
  const double idle_pw = rram_.periph_idle_pw_per_bit * capacity_bits;
  const double idle_mw = idle_pw * 1.0e-9;
  return idle_mw * clock_period_ns();  // mW * ns == pJ
}

double FoundryM3dPdk::clock_period_ns() const {
  return units::mhz_to_period_ns(node_.target_frequency_mhz);
}

FoundryM3dPdk FoundryM3dPdk::with_fet_width_relaxation(double delta) const {
  expects(delta >= 1.0, "delta >= 1");
  CnfetParams c = cnfet_;
  c.width_relaxation = delta;
  return FoundryM3dPdk(node_, rram_, c, ilv_);
}

FoundryM3dPdk FoundryM3dPdk::with_ilv_pitch_scale(double beta) const {
  expects(beta > 0.0, "beta > 0");
  IlvParams v = ilv_;
  v.pitch_nm = ilv_.pitch_nm * beta;
  return FoundryM3dPdk(node_, rram_, cnfet_, v);
}

FoundryM3dPdk FoundryM3dPdk::make_130nm() {
  return FoundryM3dPdk(NodeParams{}, RramParams{}, CnfetParams{}, IlvParams{});
}

}  // namespace uld3d::tech

// First-order technology-node scaling of the PDK — the paper's conclusion
// point 2: the demonstrated 130 nm benefits "will grow with further
// performance optimization", and its flow is "compatible with
// state-of-the-art technology nodes".  Classic scaling rules project the
// PDK to a target node so the Eq.-2 machinery can be re-run there:
//   area        ~ (node/130)^2      (cells, logic, SRAM alike)
//   energy/bit  ~ (node/130)        (capacitance per wire/device length)
//   frequency   ~ 130/node          (gate delay)
// ILV pitch scales with the BEOL metal pitch, i.e. linearly in the node.
#pragma once

#include "uld3d/tech/pdk.hpp"

namespace uld3d::tech {

/// Scaling factors from 130 nm to `target_nm`.
struct NodeScaling {
  double node_nm = 130.0;
  double area_scale = 1.0;     ///< (target/130)^2
  double energy_scale = 1.0;   ///< target/130
  double delay_scale = 1.0;    ///< target/130

  [[nodiscard]] static NodeScaling to(double target_nm);
};

/// Project the 130 nm PDK to `target_nm` with first-order scaling: feature
/// size, per-bit energies, sense latency, target frequency, and ILV pitch
/// all move together; area ratios (gamma) are node-invariant by
/// construction, which is exactly why the paper's Eq.-2 benefits persist
/// across nodes.
[[nodiscard]] FoundryM3dPdk scale_pdk_to_node(const FoundryM3dPdk& base,
                                              double target_nm);

}  // namespace uld3d::tech

// Foundry M3D process design kit (PDK) model.
//
// This is the repo's substitution for the proprietary foundry 130 nm M3D PDK
// of the paper (Sec. II, Fig. 4a): every quantity the architectural study
// actually consumes — RRAM bit-cell geometry, access-FET sizing, ILV pitch,
// per-access energies, bandwidths — is an explicit, sweepable parameter.
// Defaults are calibrated so the derived aggregates match the paper's
// reported ones (gamma_cells ~ 7 at 64 MB, 20 MHz target, <1% upper-tier
// power, 0.99x energy ratio).
#pragma once

#include "uld3d/tech/std_cell_library.hpp"
#include "uld3d/tech/tier_stack.hpp"

namespace uld3d::tech {

/// RRAM cell-array parameters (1TnR array per [11]; the access transistor
/// sits directly below each cell group — Fig. 3).
struct RramParams {
  double bits_per_cell = 4.0;       ///< multi-bit 1T8R storage [11]
  double cell_area_f2 = 21.0;       ///< layout area of one 1TnR cell, in F^2
                                    ///< (dominated by the access FET, Fig. 3b-c)
  double read_energy_pj_per_bit = 1.5;   ///< alpha_2D in the paper's Eq. (6)
  double write_energy_pj_per_bit = 8.0;
  double read_latency_ns = 25.0;    ///< sense time at 130 nm
  double bank_read_bits = 256.0;    ///< sense-amp row width per bank access
  double periph_area_fraction = 0.26;  ///< peripherals/controllers per bank,
                                       ///< as a fraction of its cell area
  double periph_idle_pw_per_bit = 0.12;  ///< peripheral leakage (pW/bit);
                                         ///< RRAM cells themselves are
                                         ///< non-volatile and burn none
};

/// BEOL CNFET device parameters (the upper FEOL tier).
struct CnfetParams {
  double drive_ratio_vs_si = 0.8;   ///< on-current per um vs. Si nMOS
  double width_relaxation = 1.0;    ///< delta in the paper's Case 1: the
                                    ///< access-FET width multiplier needed to
                                    ///< match Si drive (1.0 = iso-width)
  double access_energy_ratio = 0.97;  ///< alpha_3D / alpha_2D: CNFET selector
                                      ///< has slightly lower junction cap
};

/// Inter-layer via (ILV) parameters — standard BEOL vias used vertically.
struct IlvParams {
  double pitch_nm = 100.0;          ///< beta scales this (the paper's Case 2)
  double resistance_ohm = 15.0;
  double capacitance_ff = 0.05;
  /// m in the paper's Case 2: ILV contacts per 1TnR cell group — WL + SL for
  /// the shared access FET plus per-RRAM bit-line stubs and redundancy.  At
  /// the default pitch the via-limited cell area is ~80% of the FET-limited
  /// area, i.e. the array is nearly via-pitch-limited, which is what makes
  /// ultra-dense ILVs "key" (paper Obs. 8).
  double vias_per_rram_cell = 28.0;
};

/// Technology node scalars.
struct NodeParams {
  double feature_nm = 130.0;        ///< F
  double vdd = 1.2;
  double target_frequency_mhz = 20.0;  ///< paper's relaxed design target
};

/// Geometry of an RRAM memory macro derived from the PDK.
struct RramMacroGeometry {
  double capacity_bits = 0.0;
  double cell_array_area_um2 = 0.0;   ///< A_M^cells contribution
  double periph_area_um2 = 0.0;       ///< A_M^perif contribution (Si CMOS)
  double total_area_um2 = 0.0;
};

/// The complete PDK bundle.
class FoundryM3dPdk {
 public:
  FoundryM3dPdk(NodeParams node, RramParams rram, CnfetParams cnfet,
                IlvParams ilv);

  [[nodiscard]] const NodeParams& node() const { return node_; }
  [[nodiscard]] const RramParams& rram() const { return rram_; }
  [[nodiscard]] const CnfetParams& cnfet() const { return cnfet_; }
  [[nodiscard]] const IlvParams& ilv() const { return ilv_; }

  [[nodiscard]] const StdCellLibrary& si_library() const { return si_lib_; }
  [[nodiscard]] const StdCellLibrary& cnfet_library() const { return cnfet_lib_; }

  /// Area of one stored bit in the RRAM array (um^2) for the *2D baseline*:
  /// the Si access FET sits directly below the cell, so the layout is
  /// FET-limited and needs no ILV.
  [[nodiscard]] double rram_bit_area_um2() const;

  /// Same, for the M3D design (CNFET access FETs above the array): the
  /// maximum of the FET-limited area — possibly width-relaxed by
  /// `cnfet().width_relaxation`, the paper's Case-1 delta — and the
  /// via-pitch floor m * pitch^2 (the paper's Case 2).
  [[nodiscard]] double rram_bit_area_m3d_um2() const;

  /// Derive the geometry of an RRAM macro of `capacity_bits` split across
  /// `banks` banks.  `m3d` selects CNFET (true) or Si (false) access FETs.
  [[nodiscard]] RramMacroGeometry rram_macro(double capacity_bits, int banks,
                                             bool m3d) const;

  /// Per-bank read bandwidth in bits per clock cycle at the target frequency.
  [[nodiscard]] double bank_bandwidth_bits_per_cycle() const;

  /// Peripheral idle energy per clock cycle for `capacity_bits` of RRAM (pJ).
  [[nodiscard]] double rram_idle_energy_pj_per_cycle(double capacity_bits) const;

  /// Clock period at the target frequency, ns.
  [[nodiscard]] double clock_period_ns() const;

  /// Returns a copy with the access-FET width relaxed by `delta` (Case 1).
  [[nodiscard]] FoundryM3dPdk with_fet_width_relaxation(double delta) const;

  /// Returns a copy with the ILV pitch scaled by `beta` (Case 2).
  [[nodiscard]] FoundryM3dPdk with_ilv_pitch_scale(double beta) const;

  /// The calibrated default: 130 nm Si CMOS + BEOL RRAM + BEOL CNFET.
  [[nodiscard]] static FoundryM3dPdk make_130nm();

 private:
  NodeParams node_;
  RramParams rram_;
  CnfetParams cnfet_;
  IlvParams ilv_;
  StdCellLibrary si_lib_;
  StdCellLibrary cnfet_lib_;
};

}  // namespace uld3d::tech

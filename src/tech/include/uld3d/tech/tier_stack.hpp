// Vertical tier stack of the M3D technology (paper Fig. 4a).
//
// The foundry M3D process integrates, bottom to top:
//   Si CMOS FEOL -> lower BEOL metals (M1..M4) -> RRAM layer -> CNFET layer
//   -> upper BEOL metals.
// A 2D baseline uses the same stack but forbids placement on the CNFET layer
// (only routing is allowed there), mirroring the paper's floorplan placement
// blockage methodology (Sec. II).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace uld3d::tech {

/// Kind of a fabrication tier in the vertical stack.
enum class TierKind {
  kSiCmosFeol,   ///< bulk silicon front-end transistors
  kBeolMetal,    ///< interconnect metal layer (also hosts ILVs)
  kRram,         ///< BEOL resistive-RAM cell layer
  kCnfetFeol,    ///< BEOL carbon-nanotube FET layer
};

[[nodiscard]] const char* to_string(TierKind kind);

/// One tier of the stack.
struct Tier {
  std::string name;          ///< e.g. "M2", "RRAM", "CNFET"
  TierKind kind;
  bool placement_allowed;    ///< standard cells / devices may be placed here
  bool routing_allowed;      ///< wires may be routed through this tier
  double thickness_nm;       ///< physical thickness (for the thermal model)
  double thermal_resistance_mm2_k_per_w;  ///< vertical thermal resistance
                                          ///< normalised per mm^2 of die area
};

/// An ordered bottom-to-top tier stack.
class TierStack {
 public:
  TierStack() = default;
  explicit TierStack(std::vector<Tier> tiers);

  [[nodiscard]] std::size_t size() const { return tiers_.size(); }
  [[nodiscard]] const Tier& at(std::size_t index) const;
  [[nodiscard]] const std::vector<Tier>& tiers() const { return tiers_; }

  /// Index of the first tier of the given kind, if present.
  [[nodiscard]] std::optional<std::size_t> find(TierKind kind) const;

  /// Number of tiers on which device placement is allowed.
  [[nodiscard]] std::size_t placement_tier_count() const;

  /// Total vertical thermal resistance (K/W for a die of `area_mm2`) from the
  /// tier at `from_index` down to the heat sink below tier 0.
  [[nodiscard]] double thermal_resistance_to_sink(std::size_t from_index,
                                                  double area_mm2) const;

  /// Append a tier on top of the stack.
  void push(Tier tier);

  /// The Sec.-II stack: Si CMOS, M1..M4, RRAM, CNFET, M5..M6 (Fig. 4a).
  [[nodiscard]] static TierStack make_m3d_130nm();

  /// Same stack with the CNFET tier's placement disabled — the 2D baseline
  /// methodology (CNFET routing tracks remain usable).
  [[nodiscard]] static TierStack make_2d_baseline_130nm();

 private:
  std::vector<Tier> tiers_;
};

}  // namespace uld3d::tech

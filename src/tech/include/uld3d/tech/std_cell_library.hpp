// Standard-cell library model.
//
// Substitutes for the foundry M3D standard-cell library: per-cell area,
// switching energy, and leakage at a 130 nm node.  Two variants exist — the
// Si CMOS FEOL library and the BEOL CNFET library.  Newly-introduced CNFETs
// have relaxed drive strength, captured by a drive-ratio parameter that
// scales delay (paper Sec. III-D sweeps the related access-FET width).
#pragma once

#include <string>
#include <vector>

#include "uld3d/tech/tier_stack.hpp"

namespace uld3d::tech {

/// One logical standard cell.
struct StdCell {
  std::string name;           ///< e.g. "NAND2_X1"
  double area_um2;            ///< placed footprint
  double input_cap_ff;        ///< per-input gate capacitance
  double switch_energy_pj;    ///< average energy per output transition
  double leakage_nw;          ///< static leakage power
  double delay_ps;            ///< FO4-loaded propagation delay
  int gate_equivalents;       ///< size in NAND2-equivalents
};

/// A characterized library bound to a placement tier.
class StdCellLibrary {
 public:
  StdCellLibrary(std::string name, TierKind tier, std::vector<StdCell> cells);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] TierKind tier() const { return tier_; }
  [[nodiscard]] const std::vector<StdCell>& cells() const { return cells_; }

  /// Lookup by cell name; throws PreconditionError if absent.
  [[nodiscard]] const StdCell& cell(const std::string& cell_name) const;
  [[nodiscard]] bool has_cell(const std::string& cell_name) const;

  /// Area of one NAND2-equivalent gate, used for block-level area estimates.
  [[nodiscard]] double gate_area_um2() const;
  /// Average switching energy of one gate-equivalent.
  [[nodiscard]] double gate_energy_pj() const;
  /// Average leakage of one gate-equivalent.
  [[nodiscard]] double gate_leakage_nw() const;
  /// FO4 delay of the reference inverter.
  [[nodiscard]] double fo4_delay_ps() const;

  /// The Si CMOS FEOL library at 130 nm (calibrated to typical foundry data).
  [[nodiscard]] static StdCellLibrary make_si_cmos_130nm();

  /// The BEOL CNFET library: same logical cells, relaxed drive strength.
  /// `drive_ratio` < 1 means slower devices (paper: newly-introduced CNFETs
  /// reach ~60-100% of Si drive); delay scales as 1/drive_ratio.
  [[nodiscard]] static StdCellLibrary make_cnfet_130nm(double drive_ratio = 0.8);

  /// A copy with every cell scaled by first-order node rules: areas by
  /// `area_scale`, energies/caps/leakage by `energy_scale`, delays by
  /// `delay_scale`.  Used when projecting the PDK to another node.
  [[nodiscard]] StdCellLibrary scaled(double area_scale, double energy_scale,
                                      double delay_scale) const;

 private:
  std::string name_;
  TierKind tier_;
  std::vector<StdCell> cells_;
};

}  // namespace uld3d::tech

// Catalogue of BEOL-compatible (<400 C) upper-tier device technologies.
//
// The paper's case study uses CNFETs because a foundry PDK existed for
// them, but its Sec. II lists the wider menu enabled by low-temperature
// fabrication [6-8]: CoolCube low-temperature Si, IGZO/oxide-semiconductor
// FETs, 2D-material FETs.  Each candidate differs mainly in drive strength
// per um vs. bulk Si — which maps directly onto the paper's Case-1 width
// relaxation delta — plus leakage and access-energy scaling.  This module
// lets the analytical framework answer "what if the upper tier used
// technology X?" (paper conclusion point 4).
#pragma once

#include <string>
#include <vector>

#include "uld3d/tech/pdk.hpp"

namespace uld3d::tech {

/// One BEOL device-technology candidate for the upper FEOL tier.
struct BeolDeviceTechnology {
  std::string name;
  double drive_ratio_vs_si = 1.0;   ///< on-current per um vs. Si nMOS
  double max_process_temp_c = 400.0;  ///< must stay BEOL-compatible
  double leakage_ratio_vs_si = 1.0;
  double access_energy_ratio = 1.0;   ///< alpha_3D / alpha_2D with this selector
  /// Maturity note shown in reports (demonstrated / research / projected).
  std::string maturity;

  /// Case-1 delta: the width relaxation needed for an access FET in this
  /// technology to match the Si selector's drive current.
  [[nodiscard]] double width_relaxation_for_iso_drive() const;

  /// True if the technology can be sequentially integrated above finished
  /// lower tiers (max process temperature <= `limit_c`, default 400 C).
  [[nodiscard]] bool beol_compatible(double limit_c = 400.0) const;
};

/// The foundry-demonstrated CNFET of the paper's case study [5].
[[nodiscard]] BeolDeviceTechnology make_cnfet();
/// CoolCube-style low-temperature silicon [6-7].
[[nodiscard]] BeolDeviceTechnology make_ltps_si();
/// Amorphous-oxide (IGZO-class) semiconductor FET [8].
[[nodiscard]] BeolDeviceTechnology make_igzo();
/// 2D-material (MoS2-class) FET [8].
[[nodiscard]] BeolDeviceTechnology make_2d_fet();
/// Ferroelectric FET selector (FeFET) [8].
[[nodiscard]] BeolDeviceTechnology make_fefet();

/// All catalogued candidates.
[[nodiscard]] std::vector<BeolDeviceTechnology> beol_technology_catalogue();

/// A PDK whose upper tier uses `device`: the CNFET parameters are replaced
/// by the candidate's drive ratio, iso-drive width relaxation, and access
/// energy, so Case-1 analysis prices the technology directly.
[[nodiscard]] FoundryM3dPdk pdk_with_beol_device(
    const FoundryM3dPdk& base, const BeolDeviceTechnology& device);

}  // namespace uld3d::tech

#include "uld3d/tech/node_scaling.hpp"

#include "uld3d/util/check.hpp"

namespace uld3d::tech {

NodeScaling NodeScaling::to(double target_nm) {
  expects(target_nm > 0.0 && target_nm <= 1000.0,
          "target node must be a sensible nanometre value");
  NodeScaling s;
  s.node_nm = target_nm;
  const double linear = target_nm / 130.0;
  s.area_scale = linear * linear;
  s.energy_scale = linear;
  s.delay_scale = linear;
  return s;
}

FoundryM3dPdk scale_pdk_to_node(const FoundryM3dPdk& base, double target_nm) {
  const NodeScaling s = NodeScaling::to(target_nm);

  NodeParams node = base.node();
  node.feature_nm = target_nm;
  node.target_frequency_mhz = base.node().target_frequency_mhz / s.delay_scale;

  RramParams rram = base.rram();
  // Cell area in F^2 is node-invariant (the access FET shrinks with F);
  // access energy and sense latency follow the linear dimension.
  rram.read_energy_pj_per_bit *= s.energy_scale;
  rram.write_energy_pj_per_bit *= s.energy_scale;
  rram.read_latency_ns *= s.delay_scale;

  IlvParams ilv = base.ilv();
  ilv.pitch_nm *= target_nm / 130.0;  // ILVs are BEOL vias: pitch tracks metal
  ilv.capacitance_ff *= s.energy_scale;

  return FoundryM3dPdk(node, rram, base.cnfet(), ilv);
}

}  // namespace uld3d::tech

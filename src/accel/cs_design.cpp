#include "uld3d/accel/cs_design.hpp"

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::accel {

std::int64_t CsDesign::total_gates() const {
  return pe_rows * pe_cols * gates_per_pe + accumulator_gates + control_gates;
}

double CsDesign::area_um2(const tech::StdCellLibrary& lib) const {
  expects(pe_rows > 0 && pe_cols > 0 && gates_per_pe > 0,
          "CS dimensions must be positive");
  const double logic =
      static_cast<double>(total_gates()) * lib.gate_area_um2();
  const double sram = units::kb_to_bits(sram_buffer_kb) * sram_bit_area_um2;
  // 75% placement utilization: routing and power-grid overhead.
  return (logic + sram) / 0.75;
}

double CsDesign::leakage_mw(const tech::StdCellLibrary& lib) const {
  const double leak_nw =
      static_cast<double>(total_gates()) * lib.gate_leakage_nw();
  return leak_nw * 1.0e-6;
}

}  // namespace uld3d::accel

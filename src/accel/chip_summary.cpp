#include "uld3d/accel/chip_summary.hpp"

#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/table.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::accel {

phys::FlowInput derive_flow_input(const CaseStudy& study,
                                  const nn::Network& net, bool m3d_design) {
  phys::FlowInput input;
  input.pdk = study.pdk;
  input.rram_capacity_bits = study.capacity_bits();
  const double sram_area = units::kb_to_bits(study.cs.sram_buffer_kb) *
                           study.cs.sram_bit_area_um2;
  input.cs_sram_area_um2 = sram_area;
  input.cs_logic_area_um2 =
      study.cs.area_um2(study.pdk.si_library()) - sram_area;
  input.cs_logic_gates = study.cs.total_gates();
  input.target_frequency_mhz = study.pdk.node().target_frequency_mhz;

  // The paper runs Cadence Tempus with DEFAULT ACTIVATION FACTORS: every
  // circuit toggles at a fixed rate regardless of the workload, so power is
  // proportional to placed area.  Identical circuits then have identical
  // areal density in both designs, and the M3D peak-density delta comes
  // only from the thin upper tiers stacked above the Si logic — exactly
  // Observation 2's +~1%.
  const auto cfg = m3d_design ? study.config_3d() : study.config_2d();
  const double period = study.pdk.clock_period_ns();
  constexpr double kDefaultActivation = 0.2;  // toggles per cycle per gate
  const auto& lib = study.pdk.si_library();
  input.cs_dynamic_mw_each =
      static_cast<double>(study.cs.total_gates()) * lib.gate_energy_pj() *
          kDefaultActivation / period +
      study.cs.leakage_mw(lib);
  // Peripheral logic at the same areal density as the CS logic.
  const double logic_density_mw_per_um2 =
      input.cs_dynamic_mw_each /
      (input.cs_logic_area_um2 + input.cs_sram_area_um2);
  const auto macro = study.pdk.rram_macro(
      input.rram_capacity_bits, static_cast<int>(cfg.n_banks), m3d_design);
  input.mem_periph_dynamic_mw = macro.periph_area_um2 * logic_density_mw_per_um2;
  // In-array access power at default read duty; the access FETs (the CNFET
  // tier in M3D) gate a fraction of it.
  const double banks = static_cast<double>(cfg.n_banks);
  const double array_mw = banks * cfg.memory.bank_read_bits_per_cycle *
                          cfg.memory.read_energy_pj_per_bit *
                          kDefaultActivation / period;
  input.mem_cell_access_mw = array_mw * 0.07;  // bitline/cell slice
  input.cnfet_selector_mw = array_mw * 0.02;   // selector gates
  ensures(input.cs_dynamic_mw_each > 0.0, "derived CS power must be positive");
  return input;
}

ChipSummary summarize_chip(const CaseStudy& study, const nn::Network& net) {
  ChipSummary s;
  // Each design is characterized under its own activity, then placed; the
  // M3D design is held to the 2D footprint (iso-footprint comparison).
  const phys::FlowInput input_2d = derive_flow_input(study, net, false);
  const phys::FlowInput input_3d = derive_flow_input(study, net, true);
  const phys::M3dFlow flow;
  // The workload simulation and the 2D physical design are independent;
  // overlap them when jobs allow.  The 3D run must stay after: it is held
  // to the 2D die dimensions.  Slot 0 is the workload run, so a failure
  // there is rethrown first — the same order the serial code reported.
  const int jobs =
      FaultInjector::instance().armed() ? 1 : parallel::jobs();
  parallel::parallel_for_indexed(
      2,
      [&](std::size_t i) {
        if (i == 0) {
          s.workload = study.run(net);
        } else {
          s.physical.design_2d = flow.run_design(input_2d, false, 1);
        }
      },
      {.jobs = jobs});
  s.physical.design_3d =
      flow.run_design(input_3d, true, study.m3d_cs_count(),
                      s.physical.design_2d.die_width_um,
                      s.physical.design_2d.die_height_um);
  s.physical.iso_footprint = true;
  if (s.physical.design_2d.total_wirelength_um > 0.0 &&
      s.physical.design_3d.cs_placed > 0) {
    s.physical.wirelength_per_cs_ratio =
        (s.physical.design_3d.total_wirelength_um /
         static_cast<double>(s.physical.design_3d.cs_placed)) /
        s.physical.design_2d.total_wirelength_um;
  }
  if (s.physical.design_2d.peak_density_mw_per_mm2 > 0.0) {
    s.physical.peak_density_ratio =
        s.physical.design_3d.peak_density_mw_per_mm2 /
        s.physical.design_2d.peak_density_mw_per_mm2;
  }
  s.power_2d_mw = s.physical.design_2d.total_power_mw;
  s.power_3d_mw = s.physical.design_3d.total_power_mw;
  const double period_ms = study.pdk.clock_period_ns() * 1.0e-6;
  s.inference_ms_2d =
      static_cast<double>(s.workload.run_2d.total_cycles) * period_ms;
  s.inference_ms_3d =
      static_cast<double>(s.workload.run_3d.total_cycles) * period_ms;
  return s;
}

std::string datasheet(const ChipSummary& s) {
  Table table({"Metric", "2D baseline", "M3D (this work)"});
  const auto& p2 = s.physical.design_2d;
  const auto& p3 = s.physical.design_3d;
  table.add_row({"Footprint (mm^2)", format_double(p2.footprint_mm2, 1),
                 format_double(p3.footprint_mm2, 1)});
  table.add_row({"Computing sub-systems", std::to_string(p2.cs_placed),
                 std::to_string(p3.cs_placed)});
  table.add_row({"Si utilization",
                 format_double(p2.si_utilization * 100.0, 1) + "%",
                 format_double(p3.si_utilization * 100.0, 1) + "%"});
  table.add_row({"Clock (MHz)",
                 format_double(p2.timing.achieved_frequency_mhz, 1),
                 format_double(p3.timing.achieved_frequency_mhz, 1)});
  table.add_row({"Inference latency (ms)", format_double(s.inference_ms_2d, 2),
                 format_double(s.inference_ms_3d, 2)});
  table.add_row({"Power, default activation (mW)", format_double(s.power_2d_mw, 1),
                 format_double(s.power_3d_mw, 1)});
  table.add_row({"Peak density (mW/mm^2)",
                 format_double(p2.peak_density_mw_per_mm2, 2),
                 format_double(p3.peak_density_mw_per_mm2, 2)});
  table.add_row({"Upper-tier power", "n/a",
                 format_double(p3.upper_tier_power_fraction * 100.0, 2) + "%"});
  table.add_row({"Speedup / EDP benefit", "1.00x / 1.00x",
                 format_ratio(s.workload.speedup) + " / " +
                     format_ratio(s.workload.edp_benefit)});
  std::ostringstream os;
  table.print(os, s.workload.network + " chip datasheet");
  return os.str();
}

}  // namespace uld3d::accel

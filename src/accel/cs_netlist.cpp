#include "uld3d/accel/cs_netlist.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "uld3d/phys/wirelength.hpp"
#include "uld3d/util/check.hpp"

namespace uld3d::accel {

namespace {

/// Cells of one PE; returns the indices needed for inter-PE nets.
struct PePins {
  std::vector<std::int32_t> input_regs;  ///< 8 input pipeline DFFs
  std::vector<std::int32_t> psum_regs;   ///< 24 partial-sum DFFs
  std::int32_t first_cell = 0;
  std::int32_t last_cell = 0;
};

PePins emit_pe(phys::Netlist& netlist, const PeStructure& pe,
               const std::string& prefix) {
  PePins pins;
  std::vector<std::int32_t> nand_cells;
  std::vector<std::int32_t> tree_cells;

  const auto add = [&](const char* type, int count,
                       std::vector<std::int32_t>* sink) {
    for (int i = 0; i < count; ++i) {
      const std::int32_t id = netlist.add_cell(
          prefix + "/" + type + std::to_string(i), type);
      if (sink != nullptr) sink->push_back(id);
      pins.last_cell = id;
      if (pins.first_cell == 0 && netlist.cell_count() == 1) {
        pins.first_cell = id;
      }
    }
  };

  pins.first_cell = static_cast<std::int32_t>(netlist.cell_count());
  add("NAND2_X1", pe.multiplier_nand2, &nand_cells);
  add("FA_X1", pe.multiplier_fa, &tree_cells);
  add("FA_X1", pe.accumulator_fa, &tree_cells);
  std::vector<std::int32_t> weight_regs;
  add("DFF_X1", pe.weight_reg_dff, &weight_regs);
  add("DFF_X1", pe.input_pipe_dff, &pins.input_regs);
  add("DFF_X1", pe.psum_pipe_dff, &pins.psum_regs);

  // Intra-PE wiring (structural shape, not full logical fidelity):
  // each partial-product NAND pair feeds a reduction-tree adder, the tree
  // chains into the accumulator, and the registers tap the tree outputs.
  for (std::size_t i = 0; i + 1 < nand_cells.size(); i += 2) {
    const std::size_t fa = i / 2;
    if (fa < tree_cells.size()) {
      netlist.add_net(prefix + "/pp" + std::to_string(i),
                      {nand_cells[i], nand_cells[i + 1], tree_cells[fa]});
    }
  }
  for (std::size_t i = 0; i + 1 < tree_cells.size(); ++i) {
    netlist.add_net(prefix + "/carry" + std::to_string(i),
                    {tree_cells[i], tree_cells[i + 1]});
  }
  for (std::size_t i = 0; i < weight_regs.size() && i < nand_cells.size();
       ++i) {
    netlist.add_net(prefix + "/w" + std::to_string(i),
                    {weight_regs[i], nand_cells[i]});
  }
  for (std::size_t i = 0; i < pins.psum_regs.size() && i < tree_cells.size();
       ++i) {
    netlist.add_net(prefix + "/acc" + std::to_string(i),
                    {tree_cells[tree_cells.size() - 1 - i], pins.psum_regs[i]});
  }
  return pins;
}

}  // namespace

phys::Netlist build_cs_array_netlist(const CsDesign& cs,
                                     const PeStructure& pe) {
  expects(cs.pe_rows > 0 && cs.pe_cols > 0, "PE array must be non-empty");
  phys::Netlist netlist;
  std::vector<std::vector<PePins>> grid(
      static_cast<std::size_t>(cs.pe_rows),
      std::vector<PePins>(static_cast<std::size_t>(cs.pe_cols)));

  for (std::int64_t r = 0; r < cs.pe_rows; ++r) {
    for (std::int64_t c = 0; c < cs.pe_cols; ++c) {
      const std::string prefix =
          "pe_r" + std::to_string(r) + "_c" + std::to_string(c);
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          emit_pe(netlist, pe, prefix);
    }
  }

  // Systolic nets: the 8-bit input bus moves rightward along each row, the
  // 24-bit partial-sum bus moves downward along each column.
  for (std::int64_t r = 0; r < cs.pe_rows; ++r) {
    for (std::int64_t c = 0; c + 1 < cs.pe_cols; ++c) {
      const auto& here = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      const auto& right = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c + 1)];
      for (std::size_t bit = 0; bit < here.input_regs.size(); ++bit) {
        netlist.add_net("x_r" + std::to_string(r) + "_c" + std::to_string(c) +
                            "_b" + std::to_string(bit),
                        {here.input_regs[bit], right.input_regs[bit]});
      }
    }
  }
  for (std::int64_t r = 0; r + 1 < cs.pe_rows; ++r) {
    for (std::int64_t c = 0; c < cs.pe_cols; ++c) {
      const auto& here = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      const auto& below = grid[static_cast<std::size_t>(r + 1)][static_cast<std::size_t>(c)];
      for (std::size_t bit = 0; bit < here.psum_regs.size(); ++bit) {
        netlist.add_net("ps_r" + std::to_string(r) + "_c" + std::to_string(c) +
                            "_b" + std::to_string(bit),
                        {here.psum_regs[bit], below.psum_regs[bit]});
      }
    }
  }
  return netlist;
}

CsNetlistReport validate_cs_netlist(const CsDesign& cs,
                                    const tech::StdCellLibrary& lib) {
  const PeStructure pe;
  const phys::Netlist netlist = build_cs_array_netlist(cs, pe);

  CsNetlistReport report;
  report.cells = netlist.cell_count();
  report.nets = netlist.net_count();
  report.gate_equivalents = netlist.gate_equivalents(lib);
  report.array_area_um2 = netlist.area_um2(lib);
  report.budget_area_um2 = static_cast<double>(cs.pe_rows * cs.pe_cols *
                                               cs.gates_per_pe) *
                           lib.gate_area_um2();

  // Hierarchical placement: each PE occupies its own tile of a
  // pe_rows x pe_cols grid (the physical array topology); cells fill their
  // tile row-major.  Emission order is PE-major, so positions follow
  // directly from the cell index.
  const double side = std::sqrt(report.array_area_um2);
  const double tile_w = side / static_cast<double>(cs.pe_cols);
  const double tile_h = side / static_cast<double>(cs.pe_rows);
  const auto cells_per_pe = static_cast<std::size_t>(pe.cells_per_pe());
  const double cell_pitch =
      std::sqrt(tile_w * tile_h / static_cast<double>(cells_per_pe));
  const auto tile_columns = static_cast<std::size_t>(
      std::max(1.0, std::floor(tile_w / cell_pitch)));
  std::vector<phys::Point> positions;
  positions.reserve(netlist.cell_count());
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const std::size_t pe_index = i / cells_per_pe;
    const std::size_t within = i % cells_per_pe;
    const auto pe_c = static_cast<double>(
        pe_index % static_cast<std::size_t>(cs.pe_cols));
    const auto pe_r = static_cast<double>(
        pe_index / static_cast<std::size_t>(cs.pe_cols));
    const auto col = static_cast<double>(within % tile_columns);
    const auto row = static_cast<double>(within / tile_columns);
    positions.push_back({pe_c * tile_w + (col + 0.5) * cell_pitch,
                         pe_r * tile_h + (row + 0.5) * cell_pitch});
  }
  report.structural_hpwl_um = netlist.hpwl_um(positions);
  report.donath_estimate_um = phys::donath_total_wirelength_um(
      report.gate_equivalents, report.array_area_um2, {});
  return report;
}

}  // namespace uld3d::accel

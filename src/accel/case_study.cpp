#include "uld3d/accel/case_study.hpp"

#include <algorithm>

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::accel {

double CaseStudy::capacity_bits() const {
  return units::mb_to_bits(rram_capacity_mb);
}

core::AreaModel CaseStudy::area_model() const {
  expects(rram_capacity_mb > 0.0, "RRAM capacity must be positive");
  expects(baseline_mem_density_handicap >= 1.0,
          "density handicap >= 1 (1 = RRAM-density baseline)");
  // The bank count equals the M3D CS count, which itself depends on the area
  // ratios; the per-bank peripheral cost is a small additive term, so one
  // fixed-point refinement pass converges.
  core::AreaModel area;
  std::int64_t banks = 1;
  for (int pass = 0; pass < 2; ++pass) {
    const tech::RramMacroGeometry macro = pdk.rram_macro(
        capacity_bits(), static_cast<int>(banks), /*m3d=*/false);
    area.cs_area_um2 = cs.area_um2(pdk.si_library());
    area.mem_cells_area_um2 =
        macro.cell_array_area_um2 * baseline_mem_density_handicap;
    area.mem_perif_area_um2 = macro.periph_area_um2;
    // Bus/IO ring: a few percent of the memory+CS area.
    area.bus_area_um2 = 0.04 * (area.cs_area_um2 + area.mem_cells_area_um2 +
                                area.mem_perif_area_um2);
    banks = std::max<std::int64_t>(1, area.m3d_parallel_cs());
  }
  return area;
}

std::int64_t CaseStudy::m3d_cs_count() const { return area_model().m3d_parallel_cs(); }

sim::AcceleratorConfig CaseStudy::config_2d() const {
  auto cfg = sim::AcceleratorConfig::baseline_2d(pdk);
  cfg.array.rows = cs.pe_rows;
  cfg.array.cols = cs.pe_cols;
  return cfg;
}

sim::AcceleratorConfig CaseStudy::config_3d() const {
  auto cfg = sim::AcceleratorConfig::m3d_design(pdk, m3d_cs_count());
  cfg.array.rows = cs.pe_rows;
  cfg.array.cols = cs.pe_cols;
  return cfg;
}

sim::DesignComparison CaseStudy::run(const nn::Network& net) const {
  return sim::compare_designs(net, config_2d(), config_3d());
}

core::Chip2d CaseStudy::chip2d_params() const {
  const sim::AcceleratorConfig cfg = config_2d();
  core::Chip2d c;
  c.bandwidth_bits_per_cycle = cfg.memory.bank_read_bits_per_cycle;
  c.peak_ops_per_cycle = cfg.array.peak_ops_per_cycle();
  c.alpha_pj_per_bit = cfg.memory.read_energy_pj_per_bit;
  c.compute_pj_per_op = cfg.array.mac_energy_pj / 2.0;  // MAC = 2 ops
  c.cs_idle_pj_per_cycle = cfg.memory.cs_idle_pj_per_cycle;
  c.mem_idle_pj_per_cycle = cfg.memory.mem_idle_pj_per_cycle;
  return c;
}

core::Chip3d CaseStudy::chip3d_params() const {
  return chip3d_params(m3d_cs_count());
}

core::Chip3d CaseStudy::chip3d_params(std::int64_t n_cs) const {
  const sim::AcceleratorConfig cfg = config_2d();
  core::Chip3d c;
  c.parallel_cs = n_cs;
  c.bandwidth_bits_per_cycle =
      cfg.memory.bank_read_bits_per_cycle * static_cast<double>(n_cs);
  c.alpha_pj_per_bit = cfg.memory.read_energy_pj_per_bit *
                       cfg.memory.m3d_access_energy_scale;
  c.mem_idle_pj_per_cycle =
      cfg.memory.mem_idle_pj_per_cycle *
      (1.0 + cfg.memory.extra_bank_idle_fraction * static_cast<double>(n_cs - 1));
  return c;
}

}  // namespace uld3d::accel

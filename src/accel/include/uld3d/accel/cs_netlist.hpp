// Structural netlist generator for the Sec.-II computing sub-system: the
// 16x16 weight-stationary PE array emitted gate by gate (partial-product
// NANDs, full-adder trees, accumulators, pipeline registers) with the
// systolic nearest-neighbour nets (inputs rightward, partial sums
// downward).  This realizes the "synthesized netlist" entering the Fig.-4b
// flow and lets the statistical area/wire models be validated against a
// real structural design.
#pragma once

#include "uld3d/accel/cs_design.hpp"
#include "uld3d/phys/netlist.hpp"

namespace uld3d::accel {

/// Gate composition of one 8-bit weight-stationary PE.
struct PeStructure {
  int multiplier_nand2 = 64;   ///< 8x8 partial-product generation
  int multiplier_fa = 56;      ///< Wallace-ish reduction tree
  int accumulator_fa = 24;     ///< 24-bit partial-sum add
  int weight_reg_dff = 8;
  int input_pipe_dff = 8;
  int psum_pipe_dff = 24;

  [[nodiscard]] int cells_per_pe() const {
    return multiplier_nand2 + multiplier_fa + accumulator_fa +
           weight_reg_dff + input_pipe_dff + psum_pipe_dff;
  }
};

/// Emit the full PE-array netlist for `cs` (row-major PE order, so a
/// row-major placement reproduces the array topology).  Inter-PE nets carry
/// the 8-bit input buses rightward and the 24-bit partial-sum buses
/// downward; per-PE nets wire the multiplier internals.
[[nodiscard]] phys::Netlist build_cs_array_netlist(
    const CsDesign& cs, const PeStructure& pe = {});

/// Validation summary: structural vs. budgeted figures for one CS.
struct CsNetlistReport {
  std::size_t cells = 0;
  std::size_t nets = 0;
  std::int64_t gate_equivalents = 0;
  double array_area_um2 = 0.0;       ///< structural placed area
  double budget_area_um2 = 0.0;      ///< CsDesign's PE-array budget
  double structural_hpwl_um = 0.0;   ///< row-major placement HPWL
  double donath_estimate_um = 0.0;   ///< statistical model on same block
};

/// Build, place row-major into the PE-array share of the CS footprint, and
/// compare against the budgets and the Donath estimate.
[[nodiscard]] CsNetlistReport validate_cs_netlist(
    const CsDesign& cs, const tech::StdCellLibrary& lib);

}  // namespace uld3d::accel

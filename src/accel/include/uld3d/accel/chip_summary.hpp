// Chip-level datasheet glue: derive the physical-design flow's inputs
// (component areas AND average power) from the case study plus a simulated
// workload, then produce a Fig.-2-style datasheet for both designs.  This
// closes the loop between the architectural simulator (energy/cycles) and
// the physical-design substrate (power density, thermal) — the same
// coupling the paper's Fig. 4b flow performs with Tempus power numbers.
#pragma once

#include <string>

#include "uld3d/accel/case_study.hpp"
#include "uld3d/phys/m3d_flow.hpp"
#include "uld3d/sim/network_sim.hpp"

namespace uld3d::accel {

/// Build a phys::FlowInput whose power numbers come from simulating `net`
/// on ONE of the study's designs (each design is characterized under its
/// own activity, as a Tempus power run would): average CS power from
/// compute energy over runtime, memory power from access + idle energy,
/// and the CNFET-selector share from the in-array access fraction.
[[nodiscard]] phys::FlowInput derive_flow_input(const CaseStudy& study,
                                                const nn::Network& net,
                                                bool m3d_design);

/// The full coupled run: simulate, derive power, run the physical flow.
struct ChipSummary {
  sim::DesignComparison workload;     ///< architectural comparison
  phys::FlowComparison physical;      ///< placed/routed comparison
  double power_2d_mw = 0.0;
  double power_3d_mw = 0.0;
  double inference_ms_2d = 0.0;       ///< at the PDK target frequency
  double inference_ms_3d = 0.0;
};

[[nodiscard]] ChipSummary summarize_chip(const CaseStudy& study,
                                         const nn::Network& net);

/// Render a datasheet string for humans.
[[nodiscard]] std::string datasheet(const ChipSummary& summary);

}  // namespace uld3d::accel

// Area/power budget of one computing sub-system (CS): the 16x16
// weight-stationary systolic array plus accumulators, SRAM buffers, and
// control of the Sec.-II accelerator, realized in the Si CMOS library.
#pragma once

#include "uld3d/sim/accelerator_config.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::accel {

/// Gate/SRAM budget of one CS; areas derive from the standard-cell library.
struct CsDesign {
  std::int64_t pe_rows = 16;
  std::int64_t pe_cols = 16;
  std::int64_t gates_per_pe = 600;        ///< 8-bit MAC + weight/pipe regs
  std::int64_t accumulator_gates = 22000; ///< 16 x 32-bit accumulate/requant
  std::int64_t control_gates = 120000;    ///< sequencer, DMA, NoC port, vector unit
  double sram_buffer_kb = 96.0;           ///< double-buffers (Chimera-style, small)
  double sram_bit_area_um2 = 2.5;         ///< 6T bitcell + array overhead @130nm

  /// Total placed area of one CS in the Si CMOS library (um^2).
  [[nodiscard]] double area_um2(const tech::StdCellLibrary& lib) const;

  /// Logic leakage power of one CS (mW), for the idle-energy calibration.
  [[nodiscard]] double leakage_mw(const tech::StdCellLibrary& lib) const;

  /// Total logic gate count (excluding SRAM bits).
  [[nodiscard]] std::int64_t total_gates() const;
};

}  // namespace uld3d::accel

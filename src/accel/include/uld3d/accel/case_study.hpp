// The Sec.-II case study: iso-footprint, iso-on-chip-memory-capacity M3D
// accelerator vs. its 2D baseline, assembled from the PDK, the CS design,
// and the systolic simulator.  Also bridges to the Sec.-III analytical
// framework (AreaModel / Chip2d / Chip3d parameter extraction).
#pragma once

#include <cstdint>

#include "uld3d/accel/cs_design.hpp"
#include "uld3d/core/area_model.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/nn/network.hpp"
#include "uld3d/sim/network_sim.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::accel {

/// Configuration of one case-study comparison.
struct CaseStudy {
  tech::FoundryM3dPdk pdk = tech::FoundryM3dPdk::make_130nm();
  CsDesign cs;
  double rram_capacity_mb = 64.0;  ///< on-chip model storage (both designs)
  /// 2D memory-density handicap for Observation 3: 1.0 means the 2D baseline
  /// also uses dense BEOL RRAM (the paper's conservative default); 2.0 means
  /// the 2D baseline uses a memory 2x less dense (e.g. SRAM), which enlarges
  /// the common footprint and admits more M3D CSs.
  double baseline_mem_density_handicap = 1.0;

  /// Area decomposition of the 2D baseline chip (Fig. 6a quantities).
  [[nodiscard]] core::AreaModel area_model() const;

  /// N: parallel CSs of the iso-footprint M3D design (Eq. 2).
  [[nodiscard]] std::int64_t m3d_cs_count() const;

  /// Simulator configurations for both designs.
  [[nodiscard]] sim::AcceleratorConfig config_2d() const;
  [[nodiscard]] sim::AcceleratorConfig config_3d() const;

  /// Run the full per-layer comparison for one network (Table I / Fig. 5).
  [[nodiscard]] sim::DesignComparison run(const nn::Network& net) const;

  /// Analytical-framework parameters matching the simulated designs, for
  /// Sec.-III evaluations and model-vs-simulator validation.
  [[nodiscard]] core::Chip2d chip2d_params() const;
  [[nodiscard]] core::Chip3d chip3d_params() const;
  [[nodiscard]] core::Chip3d chip3d_params(std::int64_t n_cs) const;

  /// RRAM capacity in bits.
  [[nodiscard]] double capacity_bits() const;
};

}  // namespace uld3d::accel

// Joint architecture-mapping search over SPATIAL unrollings — the design
// freedom ZigZag's title refers to ("enlarging joint architecture-mapping
// design space exploration").  For a fixed PE budget, enumerate the
// power-of-two (K, C, OX, OY) unrollings, price each layer under each
// candidate with the temporal mapper, and keep the best.  Comparing the
// fixed-dataflow cost against the searched cost quantifies how much a
// reconfigurable array would buy at each design point.
#pragma once

#include <vector>

#include "uld3d/mapper/cost_model.hpp"

namespace uld3d::mapper {

/// All power-of-two unrollings (k, c, ox, oy) with k*c*ox*oy == total_pes.
/// `total_pes` must be a power of two.
[[nodiscard]] std::vector<SpatialUnrolling> enumerate_unrollings(
    std::int64_t total_pes);

/// Outcome of searching one layer.
struct SpatialSearchResult {
  SpatialUnrolling best;
  LayerCost cost;               ///< cost under the best unrolling
  LayerCost fixed_cost;         ///< cost under the architecture's own unrolling
  std::size_t candidates = 0;   ///< unrollings considered (priced + pruned)
  /// Candidates skipped by the admissible EDP lower bound without being
  /// priced: lb(s) = compute-limited latency x MAC-only energy can already
  /// not beat the fixed dataflow's EDP, so (by monotonicity of the cost
  /// terms under non-negative energy parameters) the full pricing cannot
  /// either.  The winner is provably unaffected.
  std::size_t lb_pruned = 0;
  /// EDP of the fixed dataflow divided by EDP of the searched best (>= 1).
  [[nodiscard]] double improvement() const;
};

/// Admissible-pruning lever: on by default, `ULD3D_NO_SPATIAL_PRUNE` (set
/// non-empty) disables it at startup, the setter at runtime (differential
/// tests, A/B timing).  Pruning never changes the winner — it only skips
/// pricing candidates whose lower bound already exceeds the incumbent.
[[nodiscard]] bool spatial_prune_enabled();
void set_spatial_prune_enabled(bool enabled);

/// Search the best spatial unrolling for `conv` on a variant of `arch`
/// (buffers and hierarchy unchanged; only the PE-array shape moves).
[[nodiscard]] SpatialSearchResult search_spatial(const nn::ConvSpec& conv,
                                                 const Architecture& arch,
                                                 const SystemCosts& sys,
                                                 std::int64_t n_cs);

/// Network-level totals with a per-layer spatial search (an idealised
/// reconfigurable array) vs. the architecture's fixed dataflow.
struct SearchedNetworkCost {
  NetworkCost fixed;
  NetworkCost searched;
  [[nodiscard]] double edp_improvement() const {
    return fixed.edp() / searched.edp();
  }
};

[[nodiscard]] SearchedNetworkCost evaluate_network_with_search(
    const nn::Network& net, const Architecture& arch, const SystemCosts& sys,
    std::int64_t n_cs);

}  // namespace uld3d::mapper

// Sharded memoization cache for temporal-mapping layer costs.
//
// Networks repeat layer shapes heavily (every ResNet block re-prices the
// same 3x3 conv) and the spatial search re-prices each layer under dozens
// of PE-array variants, so `evaluate_conv` sees the same (ConvSpec,
// Architecture, SystemCosts, n_cs) tuple thousands of times per sweep.
// The cache keys on the EXACT content of those inputs — every numeric
// field captured bit-for-bit in a fixed word array, names excluded — so a
// hit returns a cost that is bit-identical to recomputation (no
// hash-collision risk: equality compares the full word array; the hash
// only picks a shard/bucket).  The cached LayerCost carries the first
// computing layer's name; lookups patch in the caller's name, keeping
// cache-on and cache-off outputs byte-equal.
//
// The key is deliberately a flat POD (no heap allocation, hash computed
// once at build time): `evaluate_conv` runs in ~1 microsecond, so a
// std::string key with per-lookup rehashing would cost more than the
// pricing it saves.
//
// Sharded (16 ways) so parallel sweep/search threads rarely contend on one
// mutex.  Racing inserts of the same key are benign: both threads computed
// the same value, first-in wins, the duplicate is dropped.
//
// `ULD3D_NO_MAPCACHE` (set non-empty) disables the cache at startup;
// `set_enabled` toggles it at runtime (tests, cache-off baselines).
// Hit/miss totals are mirrored into the MetricsRegistry as
// "mapper.mapcache.hits"/"mapper.mapcache.misses".
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "uld3d/mapper/cost_model.hpp"

namespace uld3d::mapper {

class MapCache {
 public:
  /// Number of 64-bit words of exact key content (ConvSpec 7, spatial 4,
  /// 3 operand buffers x 3 levels x 3 fields, RRAM/MAC energies 5, bit
  /// widths 3, SystemCosts 5, n_cs 1).
  static constexpr std::size_t kKeyWords = 52;

  /// Exact-content cache key: every numeric input bit-for-bit, plus a hash
  /// computed once at construction.  Equality ignores the hash and compares
  /// the full content, so colliding hashes can never alias two pricings.
  struct Key {
    std::array<std::uint64_t, kKeyWords> words{};
    std::uint64_t hash = 0;

    [[nodiscard]] bool operator==(const Key& other) const {
      return words == other.words;
    }
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };

  /// Process-wide instance (lazy; reads ULD3D_NO_MAPCACHE once on first use).
  static MapCache& instance();

  MapCache(const MapCache&) = delete;
  MapCache& operator=(const MapCache&) = delete;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Build the key for one pricing call; `conv.name`/`arch.name` are
  /// excluded so same-shape layers share entries.
  [[nodiscard]] static Key key(const nn::ConvSpec& conv,
                               const Architecture& arch,
                               const SystemCosts& sys, std::int64_t n_cs);

  /// Cached cost for `key`, or nullopt.  Counts a hit or a miss.
  [[nodiscard]] std::optional<LayerCost> lookup(const Key& key);

  /// Insert-if-absent (racing inserts carry identical values; first wins).
  void insert(const Key& key, const LayerCost& cost);

  void clear();           ///< drop every entry (counters untouched)
  void reset_counters();  ///< zero the hit/miss counters
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  MapCache();

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, LayerCost, KeyHash> map;
  };

  [[nodiscard]] Shard& shard_for(const Key& key);

  std::array<Shard, kShards> shards_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace uld3d::mapper

// Sharded memoization cache for temporal-mapping layer costs.
//
// Networks repeat layer shapes heavily (every ResNet block re-prices the
// same 3x3 conv) and the spatial search re-prices each layer under dozens
// of PE-array variants, so `evaluate_conv` sees the same (ConvSpec,
// Architecture, SystemCosts, n_cs) tuple thousands of times per sweep.
// The cache keys on the EXACT content of those inputs — every numeric
// field captured bit-for-bit in a fixed word array, names excluded — so a
// hit returns a cost that is bit-identical to recomputation (no
// hash-collision risk: equality compares the full word array; the hash
// only picks a shard/bucket).  The cached LayerCost carries the first
// computing layer's name; lookups patch in the caller's name, keeping
// cache-on and cache-off outputs byte-equal.
//
// The key is deliberately a flat POD (no heap allocation, hash computed
// once at build time): `evaluate_conv` runs in ~1 microsecond, so a
// std::string key with per-lookup rehashing would cost more than the
// pricing it saves.
//
// Sharded (16 ways) so parallel sweep/search threads rarely contend on one
// mutex.  Racing inserts of the same key are benign: both threads computed
// the same value, first-in wins, the duplicate is dropped.
//
// `ULD3D_NO_MAPCACHE` (set non-empty) disables the cache at startup;
// `set_enabled` toggles it at runtime (tests, cache-off baselines).
// Hit/miss totals are mirrored into the MetricsRegistry as
// "mapper.mapcache.hits"/"mapper.mapcache.misses"; hits on entries that
// came from an on-disk store (uld3d/mapper/map_cache_file.hpp) are
// additionally counted as "mapper.mapcache.file_hits".
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "uld3d/mapper/cost_model.hpp"

namespace uld3d::mapper {

class MapCache {
 public:
  /// Number of 64-bit words of exact key content (ConvSpec 7, spatial 4,
  /// 3 operand buffers x 3 levels x 3 fields, RRAM/MAC energies 5, bit
  /// widths 3, SystemCosts 5, n_cs 1).
  static constexpr std::size_t kKeyWords = 52;

  /// Exact-content cache key: every numeric input bit-for-bit, plus a hash
  /// computed once at construction.  Equality ignores the hash and compares
  /// the full content, so colliding hashes can never alias two pricings.
  struct Key {
    std::array<std::uint64_t, kKeyWords> words{};
    std::uint64_t hash = 0;

    [[nodiscard]] bool operator==(const Key& other) const {
      return words == other.words;
    }
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.hash);
    }
  };

  /// Process-wide instance (lazy; reads ULD3D_NO_MAPCACHE once on first use).
  static MapCache& instance();

  MapCache(const MapCache&) = delete;
  MapCache& operator=(const MapCache&) = delete;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Build the key for one pricing call; `conv.name`/`arch.name` are
  /// excluded so same-shape layers share entries.
  [[nodiscard]] static Key key(const nn::ConvSpec& conv,
                               const Architecture& arch,
                               const SystemCosts& sys, std::int64_t n_cs);

  /// Rebuild a Key from its persisted word array: the hash is recomputed
  /// locally (the on-disk store never persists it — a future hash-function
  /// change must not invalidate old files).
  [[nodiscard]] static Key key_from_words(
      const std::array<std::uint64_t, kKeyWords>& words);

  /// Cached cost for `key`, or nullopt.  Probes the sharded maps first,
  /// then the loaded tier.  Counts a hit or a miss (and a file_hit when the
  /// entry was served by the loaded tier).
  [[nodiscard]] std::optional<LayerCost> lookup(const Key& key);

  /// Insert-if-absent (racing inserts carry identical values; first wins).
  void insert(const Key& key, const LayerCost& cost);

  /// Bulk-register entries loaded from an on-disk store.  They land in an
  /// immutable side table ("loaded tier") probed on shard miss rather than
  /// in the sharded maps: loading N entries is two flat vector fills plus
  /// an open-addressing index build — no per-entry map inserts — which
  /// keeps a warm start an order of magnitude cheaper than re-inserting.
  /// Keys already present in the tier keep their first value; a key that is
  /// also computed in-process hits the shard map first and keeps its
  /// in-memory origin (the values are identical anyway).
  void load_tier(std::vector<Key> keys, std::vector<LayerCost> costs);

  /// Copy every entry (any origin) out, for persistence: the sharded maps
  /// plus any loaded-tier entries not shadowed by them (the result never
  /// repeats a key).  The `layer` field of the returned costs is whatever
  /// the first computing caller stamped — the on-disk store drops it
  /// (lookups re-patch the caller's name).
  [[nodiscard]] std::vector<std::pair<Key, LayerCost>> snapshot() const;

  void clear();           ///< drop every entry + loaded tier (counters untouched)
  void reset_counters();  ///< zero the hit/miss/file-hit counters
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Hits served by entries that were loaded from an on-disk store.
  [[nodiscard]] std::uint64_t file_hits() const {
    return file_hits_.load(std::memory_order_relaxed);
  }

 private:
  MapCache();

  struct Entry {
    LayerCost cost;
  };

  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  /// Entries loaded from an on-disk store: parallel key/cost vectors plus a
  /// linear-probing index of slots into them.  Immutable once built (the
  /// shared_ptr is swapped whole under tier_mutex_), so lookups probe it
  /// without any locking beyond one shared_ptr copy.  Hits served from here
  /// are the "mapper.mapcache.file_hits" — the observable warm-start
  /// benefit of a persistent cache, separate from ordinary same-process
  /// memoization (which lands in the sharded maps).
  struct LoadedTier {
    std::vector<Key> keys;
    std::vector<LayerCost> costs;
    std::vector<std::uint32_t> index;
    std::uint64_t mask = 0;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  [[nodiscard]] Shard& shard_for(const Key& key);
  [[nodiscard]] const Shard& shard_for(const Key& key) const;
  [[nodiscard]] std::shared_ptr<const LoadedTier> tier() const;

  std::array<Shard, kShards> shards_;
  mutable std::mutex tier_mutex_;
  std::shared_ptr<const LoadedTier> tier_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> file_hits_{0};
};

}  // namespace uld3d::mapper

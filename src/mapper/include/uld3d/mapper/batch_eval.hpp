// Structure-of-arrays candidate evaluation for the mapper hot path.
//
// The seed mapper priced every (candidate × layer × unrolling) one at a
// time through a scalar `price_candidate` that builds a full LayerCost —
// two std::string members included — per candidate, keeps one, and throws
// the rest away.  On the paper's design-space sweeps (Fig. 7, the
// spatial-search ablation) that per-candidate overhead, not arithmetic,
// bounds throughput.
//
// `evaluate_candidates` instead lays every cost term out as a contiguous
// array in a reusable `CandidateBatch` scratch: one pass per cost term
// (rram_cycles, buffer_cycles, latency, per-source energies, EDP), each
// pass vectorized with AVX2 when `simd::active_isa()` allows, then a
// vectorized EDP reduction with a deterministic serial argmin tie-break.
// Only the winner is materialized as a LayerCost.
//
// Determinism: every pass mirrors the scalar expression tree of
// `price_candidate_scalar` operation-for-operation (see util/simd.hpp for
// the per-lane exactness argument), and the argmin reproduces the serial
// strict-`<` recurrence, so batch-on, forced-scalar (`ULD3D_NO_SIMD=1` /
// `set_batch_eval_enabled(false)`), and the seed loop pick byte-identical
// best mappings.  test_mapper_batch_eval enforces this differentially.
#pragma once

#include <cstdint>
#include <vector>

#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/temporal_mapping.hpp"
#include "uld3d/util/batch.hpp"

namespace uld3d::mapper {

/// The seed per-candidate pricing (exact original arithmetic).  Exposed as
/// the reference implementation for the differential tests and the scalar
/// baseline of bench_perf_kernels' batch-vs-scalar throughput pin, and as
/// the fallback `evaluate_conv` takes when batch evaluation is disabled.
[[nodiscard]] LayerCost price_candidate_scalar(const nn::ConvSpec& conv,
                                               const TemporalMapping& m,
                                               const Architecture& arch,
                                               const SystemCosts& sys,
                                               std::int64_t n_cs);

/// Batch evaluation on/off.  Reads `ULD3D_NO_SIMD` once at startup (set
/// non-empty to disable, mirroring ULD3D_NO_MAPCACHE); the setter is the
/// runtime override for tests and A/B baselines.  When off, evaluate_conv
/// runs the seed scalar loop and counts
/// "mapper.batch.scalar_fallback_calls".
[[nodiscard]] bool batch_eval_enabled();
void set_batch_eval_enabled(bool enabled);

/// SoA scratch for one batch evaluation.  Reused across calls (the arrays
/// ratchet capacity and are fully overwritten), so steady-state evaluation
/// allocates nothing; evaluate_conv keeps one per thread.
struct CandidateBatch {
  // Inputs, one slot per candidate (AoS -> SoA fill pass).
  util::AlignedVector<double> compute_cycles;
  util::AlignedVector<std::int64_t> k_outer;
  util::AlignedVector<double> w_reg, w_local, w_global, w_rram_read;
  util::AlignedVector<double> i_reg, i_local, i_global, i_rram_read;
  util::AlignedVector<double> o_reg, o_local, o_global, o_rram_write;
  // Parallel-partition split (data-dependent integer search; scalar pass).
  // k_par/oy_par/nmax are kept as doubles because the seed arithmetic
  // divides by their double casts — the passes must divide by the same
  // values, never multiply by a precomputed reciprocal.
  util::AlignedVector<double> k_par_d, oy_par_d, share, nmax_d;
  util::AlignedVector<std::int64_t> cs_used;
  // One contiguous array per cost term.
  util::AlignedVector<double> out_compute_cycles;
  util::AlignedVector<double> rram_cycles;
  util::AlignedVector<double> buffer_cycles;
  util::AlignedVector<double> latency_cycles;
  util::AlignedVector<double> buffer_energy;
  util::AlignedVector<double> rram_energy;
  util::AlignedVector<double> idle_energy;
  util::AlignedVector<double> energy;
  util::AlignedVector<double> edp;

  void resize(std::size_t n);
};

/// Price all `candidates` of `conv` on `arch` through the SoA passes and
/// return the cheapest-EDP candidate as a LayerCost, byte-identical to the
/// seed loop `for (m : candidates) best = min_edp(price_candidate_scalar)`.
/// Returns a default-constructed LayerCost when no candidate has an EDP
/// strictly below +inf (the seed loop's behavior on all-NaN/inf batches).
[[nodiscard]] LayerCost evaluate_candidates(
    const nn::ConvSpec& conv, const std::vector<TemporalMapping>& candidates,
    const Architecture& arch, const SystemCosts& sys, std::int64_t n_cs,
    CandidateBatch& scratch);

}  // namespace uld3d::mapper

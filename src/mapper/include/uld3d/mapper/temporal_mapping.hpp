// Greedy temporal-mapping search (the ZigZag-style [13] mapping engine).
//
// For one convolution on one architecture the mapper enumerates three
// canonical weight-stationary loop orders and keeps the cheapest:
//   A. weight-outer  : for k_o { for c_o { for tap { stream pixels }}}
//                      inputs re-fetched once per (k_o, tap); per-K-tile
//                      partial sums stay resident.
//   B. input-outer   : for c_o { for tap { for k_o { stream pixels }}}
//                      inputs fetched once per tap; the FULL output map must
//                      stay resident across passes or spill.
//   C. pixel-tiled   : order B with the pixel loop tiled so the full-K
//                      partial-sum tile fits on chip; weights re-fetched once
//                      per pixel tile.
// Each candidate yields per-level traffic volumes; the cost model prices
// them.  This captures the buffer-capacity / reuse trade-offs that ZigZag
// explores, at the granularity the paper's Fig. 7 comparison needs.
#pragma once

#include <string>

#include "uld3d/mapper/architecture.hpp"
#include "uld3d/nn/layer.hpp"

namespace uld3d::mapper {

/// Traffic volumes (bits) one operand moves at each hierarchy level for one
/// full layer execution on ONE computing sub-system.
struct OperandTraffic {
  double reg_bits = 0.0;
  double local_bits = 0.0;
  double global_bits = 0.0;
  double rram_read_bits = 0.0;
  double rram_write_bits = 0.0;
};

/// A fully-derived temporal mapping candidate.
struct TemporalMapping {
  std::string order;        ///< "weight-outer", "input-outer", "pixel-tiled"
  std::int64_t k_outer = 1; ///< weight-tile iterations along K
  std::int64_t c_outer = 1;
  std::int64_t taps = 1;
  double utilization = 1.0; ///< spatial PE fill
  double compute_cycles = 0.0;  ///< MACs / (PEs * utilization)
  OperandTraffic weights;
  OperandTraffic inputs;
  OperandTraffic outputs;
};

/// All candidate mappings for `conv` on `arch` (always non-empty).
[[nodiscard]] std::vector<TemporalMapping> candidate_mappings(
    const nn::ConvSpec& conv, const Architecture& arch);

/// Allocation-reusing variant: clears `out` and fills it with the same
/// candidates.  Callers that price many layers (evaluate_conv, the spatial
/// search) keep one thread-local vector so steady-state enumeration does not
/// touch the heap (the strings still allocate on first use per slot; the
/// vector's spine never reallocates after the first call).
void candidate_mappings(const nn::ConvSpec& conv, const Architecture& arch,
                        std::vector<TemporalMapping>& out);

/// Spatial PE-array utilization of `conv` on `arch`.
[[nodiscard]] double spatial_utilization(const nn::ConvSpec& conv,
                                         const SpatialUnrolling& spatial);

}  // namespace uld3d::mapper

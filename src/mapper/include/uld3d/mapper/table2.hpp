// The six accelerator architectures of the paper's Table II.
//
// All are normalized to 1024 PEs and 256 MB of on-chip RRAM.  Arch. 1-5 are
// variants of popular AI accelerators [14-18]; Arch. 6 is the paper's own
// Sec.-II accelerator scaled to the same PE count.
#pragma once

#include <vector>

#include "uld3d/mapper/architecture.hpp"

namespace uld3d::mapper {

/// Architecture `index` of Table II (1-based, 1..6).
[[nodiscard]] Architecture make_table2_architecture(int index);

/// All six Table-II architectures in order.
[[nodiscard]] std::vector<Architecture> table2_architectures();

}  // namespace uld3d::mapper

// Accelerator architecture description for the ZigZag-style mapper
// (paper Table II): spatial unrolling of the PE array plus per-operand
// memory hierarchies (PE registers, local SRAM, global SRAM, on-chip RRAM).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "uld3d/tech/pdk.hpp"

namespace uld3d::mapper {

/// Spatial unrolling of the PE array over the conv loop dimensions
/// (Table II column "PE spatial (K, C, OX, OY)"; '-' entries are 1).
struct SpatialUnrolling {
  std::int64_t k = 1;
  std::int64_t c = 1;
  std::int64_t ox = 1;
  std::int64_t oy = 1;

  [[nodiscard]] std::int64_t total_pes() const { return k * c * ox * oy; }
};

/// One buffer level for one operand.  capacity_bits == 0 means the level is
/// absent for that operand.
struct BufferLevel {
  double capacity_bits = 0.0;
  double access_energy_pj_per_bit = 0.0;
  double bandwidth_bits_per_cycle = 0.0;
};

/// Per-operand buffering (Table II columns Reg/PE, local, global).  The
/// global level refers to the ONE chip-level global SRAM (a shared SoC
/// resource outside the replicated CS); reg and local are per-CS.
struct OperandBuffers {
  BufferLevel reg;     ///< per-PE registers (capacity is per PE)
  BufferLevel local;   ///< per-CS local SRAM
  BufferLevel global;  ///< the chip-level global SRAM (shared, counted once)
};

/// A full architecture design point.
struct Architecture {
  std::string name;
  SpatialUnrolling spatial;
  OperandBuffers weights;
  OperandBuffers inputs;
  OperandBuffers outputs;
  double rram_capacity_bits = 0.0;
  /// Total read width of the on-chip RRAM macro array seen by one CS (its
  /// bank group).  A 256 MB array senses thousands of bits per access — the
  /// "high bandwidth in reading AI/ML model weights" the paper leverages —
  /// so the Table-II design points default to a wide 4096 b/cycle port.
  double rram_bandwidth_bits_per_cycle = 4096.0;
  double rram_read_pj_per_bit = 1.5;
  double rram_write_pj_per_bit = 8.0;
  double mac_energy_pj = 2.0;
  int weight_bits = 8;
  int activation_bits = 8;
  int psum_bits = 24;

  /// Area of one CS (PE logic + registers + local SRAM), for Eq.-2 N
  /// derivation.  The chip-level global SRAM is NOT replicated with the CS
  /// and is excluded here.  Register files and SRAM use distinct bit-area
  /// densities.
  [[nodiscard]] double cs_area_um2(const tech::StdCellLibrary& lib) const;

  /// Total register + local SRAM bits of one CS (global excluded).
  [[nodiscard]] double buffer_bits() const;

  /// Physical size of the shared global SRAM (the max over the per-operand
  /// views, which all name the same buffer).
  [[nodiscard]] double global_sram_bits() const;

  void validate() const;
};

}  // namespace uld3d::mapper

// Persistent on-disk store for the MapCache — cross-run computation reuse.
//
// A sweep re-run, a `--resume` continuation, and every shard of a sharded
// sweep price the same (ConvSpec, Architecture, SystemCosts, n_cs) tuples;
// in-process the MapCache already deduplicates them, but it dies with the
// process.  This module serializes the cache to a small versioned binary
// file so the NEXT process starts warm: `load_map_cache_file` populates the
// MapCache (marking entries file-origin, so "mapper.mapcache.file_hits"
// counts the cross-run wins) and `save_map_cache_file` merges the in-memory
// entries with whatever the file already holds and rewrites it atomically —
// append-only semantics, so N shards saving into one shared file never lose
// each other's entries, and a kill mid-save never tears the file
// (write_file_atomic, util/checkpoint.hpp).
//
// File format (schema 1, little-endian, DESIGN.md §17):
//
//   magic        8 bytes  "ULD3DMCF"
//   schema       u32      kMapCacheFileSchemaVersion
//   key_words    u32      MapCache::kKeyWords (refused on mismatch)
//   entry_count  u64
//   prov_len     u32      provenance string length
//   provenance   bytes    fixed, informational (keeps saves byte-stable)
//   entries      entry_count records:
//       key          key_words x u64   the FULL exact-content key words —
//                                      never the in-process FNV hash, which
//                                      is recomputed on load
//       order_len    u32
//       order        bytes             LayerCost::mapping_order
//       9 x f64                        latency/compute/rram cycles, energy
//                                      terms, utilization (field order in
//                                      map_cache_file.cpp)
//       cs_used      i64
//   checksum     u64      FNV-1a over every byte after the magic
//
// LayerCost::layer is NOT stored: the key excludes names and lookups patch
// the caller's layer name in, so cache-file-on and -off runs stay
// byte-identical.  Load refuses corrupt input — truncated, tampered
// (checksum), wrong magic/schema/key-width — with
// StatusError(kInvalidConfig); a MISSING file is a normal cold start.
//
// `ULD3D_MAPCACHE_FILE` names a store for processes whose flags a script
// cannot edit (mirrors `--mapcache-file`); `ULD3D_NO_MAPCACHE_FILE` (set
// non-empty) is the escape hatch disabling the file layer entirely.
#pragma once

#include <cstddef>
#include <string>

namespace uld3d::mapper {

/// Bumped when the on-disk layout changes; older files are refused.
inline constexpr int kMapCacheFileSchemaVersion = 1;

/// Load `path` into MapCache::instance() (entries marked file-origin).
/// Returns the number of records loaded; 0 for a missing file (cold start).
/// Throws StatusError(kInvalidConfig) on a truncated, tampered, or
/// wrong-schema file.  Counts "mapper.mapcache.file_loads".
std::size_t load_map_cache_file(const std::string& path);

/// Merge the current MapCache contents with the records already in `path`
/// (re-read best-effort: a file another shard just rewrote contributes its
/// entries; a corrupt one is overwritten with a warning) and atomically
/// rewrite the file in canonical key order — the same inputs always produce
/// byte-identical files.  Returns the number of NEWLY appended records and
/// counts them as "mapper.mapcache.file_appends".  Throws
/// StatusError(kInternal) when the file cannot be written.
std::size_t save_map_cache_file(const std::string& path);

/// False once ULD3D_NO_MAPCACHE_FILE is set non-empty (read per call so
/// tests can flip it); callers skip both load and save.
[[nodiscard]] bool mapcache_file_enabled();

/// ULD3D_MAPCACHE_FILE, or "" when unset.
[[nodiscard]] std::string mapcache_file_path_from_env();

/// RAII session: load on construction (throwing on a corrupt file, BEFORE
/// any work runs on stale assumptions), save-merged on destruction
/// (best-effort: a save failure is logged, never thrown mid-unwind).
class MapCacheFileSession {
 public:
  explicit MapCacheFileSession(std::string path);
  ~MapCacheFileSession();
  MapCacheFileSession(const MapCacheFileSession&) = delete;
  MapCacheFileSession& operator=(const MapCacheFileSession&) = delete;

  [[nodiscard]] std::size_t loaded() const { return loaded_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t loaded_ = 0;
};

}  // namespace uld3d::mapper

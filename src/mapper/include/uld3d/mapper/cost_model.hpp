// Cost model pricing temporal mappings, and the 2D-vs-M3D design-point
// evaluator used by the paper's Fig. 7 study.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uld3d/core/area_model.hpp"
#include "uld3d/mapper/architecture.hpp"
#include "uld3d/mapper/temporal_mapping.hpp"
#include "uld3d/nn/network.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::mapper {

/// Idle/system energy parameters shared by all design points (mirrors the
/// simulator's MemoryConfig so the two estimators price the same physics).
struct SystemCosts {
  double mem_idle_pj_per_cycle = 10.0;
  double extra_bank_idle_fraction = 0.30;
  double cs_idle_pj_per_cycle = 2.0;
  double m3d_access_energy_scale = 0.97;
  double rram_write_occupancy = 4.0;  ///< write port-cycles per read-cycle-bit
};

/// Cost of one layer on one design point.
struct LayerCost {
  std::string layer;
  std::string mapping_order;   ///< winning candidate
  double latency_cycles = 0.0;
  double compute_cycles = 0.0;
  double rram_cycles = 0.0;
  double energy_pj = 0.0;
  double mac_energy_pj = 0.0;
  double buffer_energy_pj = 0.0;  ///< reg + local + global
  double rram_energy_pj = 0.0;
  double idle_energy_pj = 0.0;
  double utilization = 0.0;
  std::int64_t cs_used = 1;
};

/// Cost of a full network on one design point.
struct NetworkCost {
  std::string network;
  std::string architecture;
  std::int64_t n_cs = 1;
  std::vector<LayerCost> layers;
  double latency_cycles = 0.0;
  double energy_pj = 0.0;

  [[nodiscard]] double edp() const { return latency_cycles * energy_pj; }
};

/// Price one conv mapping candidate on `n_cs` parallel CSs (K-partitioned,
/// weights/outputs split, inputs replicated — the same semantics as the
/// systolic simulator) and return the cheapest-EDP candidate.
[[nodiscard]] LayerCost evaluate_conv(const nn::ConvSpec& conv,
                                      const Architecture& arch,
                                      const SystemCosts& sys,
                                      std::int64_t n_cs);

/// Evaluate every layer of `net` (pool/eltwise run on a serial vector unit,
/// as in the Sec.-II SoC) and sum.
[[nodiscard]] NetworkCost evaluate_network(const nn::Network& net,
                                           const Architecture& arch,
                                           const SystemCosts& sys,
                                           std::int64_t n_cs);

/// Eq.-2 CS count for the iso-footprint M3D version of `arch`: the CS area
/// comes from the architecture's buffers, the freed area from the PDK's RRAM
/// cell array at the architecture's capacity.
[[nodiscard]] std::int64_t m3d_parallel_cs(const Architecture& arch,
                                           const tech::FoundryM3dPdk& pdk);

/// Area decomposition used by m3d_parallel_cs (exposed for the analytical
/// cross-check in the Fig. 7 bench).
[[nodiscard]] core::AreaModel arch_area_model(const Architecture& arch,
                                              const tech::FoundryM3dPdk& pdk);

/// Full Fig.-7-style comparison of one architecture: 2D (n_cs = 1) vs M3D.
struct DesignPointBenefit {
  std::string architecture;
  std::int64_t n_cs = 1;
  double speedup = 0.0;
  double energy_ratio = 0.0;  ///< E_3D / E_2D
  double edp_benefit = 0.0;
  NetworkCost cost_2d;
  NetworkCost cost_3d;
};

[[nodiscard]] DesignPointBenefit evaluate_benefit(const nn::Network& net,
                                                  const Architecture& arch,
                                                  const SystemCosts& sys,
                                                  const tech::FoundryM3dPdk& pdk);

}  // namespace uld3d::mapper

#include "uld3d/mapper/map_cache_file.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <utility>
#include <vector>

#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::mapper {

namespace {

constexpr char kMagic[8] = {'U', 'L', 'D', '3', 'D', 'M', 'C', 'F'};

/// Fixed provenance line: informational for `strings`/hexdump forensics,
/// deliberately free of run identity so the same entries always serialize
/// to byte-identical files (tests and shard merges rely on that).
const char kProvenance[] = "uld3d map-cache store; layercost v1";

using KeyWords = std::array<std::uint64_t, MapCache::kKeyWords>;

/// One persisted record: the exact key words plus the name-free LayerCost.
struct Record {
  std::string mapping_order;
  double numerics[9] = {};
  std::int64_t cs_used = 1;
};

/// Entries are held in a flat vector sorted ascending by key words (the
/// canonical file order), not a std::map: a sweep-scale store holds tens of
/// thousands of 416-byte keys, and tree inserts with per-node allocations
/// made load slower than recomputing the entries from scratch.  A sorted
/// vector parses in file order (already canonical for every file we write),
/// merges with a linear two-pointer pass, and serializes by iteration — the
/// same canonical order std::map produced, so files stay byte-stable.
using Entries = std::vector<std::pair<KeyWords, Record>>;

bool key_less(const std::pair<KeyWords, Record>& a,
              const std::pair<KeyWords, Record>& b) {
  return a.first < b.first;
}

/// LayerCost <-> the fixed numeric field order of the file format.
Record record_from_cost(const LayerCost& cost) {
  Record r;
  r.mapping_order = cost.mapping_order;
  r.numerics[0] = cost.latency_cycles;
  r.numerics[1] = cost.compute_cycles;
  r.numerics[2] = cost.rram_cycles;
  r.numerics[3] = cost.energy_pj;
  r.numerics[4] = cost.mac_energy_pj;
  r.numerics[5] = cost.buffer_energy_pj;
  r.numerics[6] = cost.rram_energy_pj;
  r.numerics[7] = cost.idle_energy_pj;
  r.numerics[8] = cost.utilization;
  r.cs_used = cost.cs_used;
  return r;
}

LayerCost cost_from_record(const Record& r) {
  LayerCost cost;
  cost.mapping_order = r.mapping_order;
  cost.latency_cycles = r.numerics[0];
  cost.compute_cycles = r.numerics[1];
  cost.rram_cycles = r.numerics[2];
  cost.energy_pj = r.numerics[3];
  cost.mac_energy_pj = r.numerics[4];
  cost.buffer_energy_pj = r.numerics[5];
  cost.rram_energy_pj = r.numerics[6];
  cost.idle_energy_pj = r.numerics[7];
  cost.utilization = r.numerics[8];
  cost.cs_used = r.cs_used;
  return cost;
}

/// The file checksum: FNV-1a folding eight bytes per step (little-endian
/// words, byte-wise over any tail).  One multiply per word instead of per
/// byte makes checksumming a megabyte-scale store ~8x cheaper than classic
/// byte-wise FNV while still catching any single-bit flip or truncation.
/// This exact definition is part of the file format (schema 1).
std::uint64_t fnv1a_words(const char* data, std::size_t size) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= size; i += sizeof(std::uint64_t)) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, sizeof word);
    h ^= word;
    h *= kPrime;
  }
  for (; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kPrime;
  }
  return h;
}

[[noreturn]] void refuse(std::string what, const std::string& path) {
  throw StatusError(Failure(ErrorCode::kInvalidConfig, std::move(what))
                        .with("mapcache", path));
}

/// Little-endian scalar append.  The format is defined as little-endian;
/// every platform this repo targets is, so memcpy IS the LE encoding.
template <typename T>
void put(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

/// Bounds-checked scalar read; refuses on truncation.
template <typename T>
T take(const std::string& data, std::size_t& offset, const std::string& path) {
  if (offset + sizeof(T) > data.size()) {
    refuse("map-cache file is truncated", path);
  }
  T value;
  std::memcpy(&value, data.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

std::string serialize(const Entries& entries) {
  std::string out(kMagic, sizeof kMagic);
  // Pre-size: fixed header + per-entry key/order-length/numerics/cs_used
  // plus the order strings themselves, so the append loop never reallocates.
  std::size_t bytes = sizeof kMagic + 20 + sizeof kProvenance - 1 +
                      entries.size() * (MapCache::kKeyWords * 8 + 4 + 80) + 8;
  for (const auto& [words, record] : entries) bytes += record.mapping_order.size();
  out.reserve(bytes);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(kMapCacheFileSchemaVersion));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(MapCache::kKeyWords));
  put<std::uint64_t>(out, entries.size());
  put<std::uint32_t>(out, static_cast<std::uint32_t>(sizeof kProvenance - 1));
  out.append(kProvenance, sizeof kProvenance - 1);
  for (const auto& [words, record] : entries) {
    for (const std::uint64_t w : words) put<std::uint64_t>(out, w);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(record.mapping_order.size()));
    out.append(record.mapping_order);
    for (const double v : record.numerics) put<double>(out, v);
    put<std::int64_t>(out, record.cs_used);
  }
  put<std::uint64_t>(out, fnv1a_words(out.data() + sizeof kMagic,
                                      out.size() - sizeof kMagic));
  return out;
}

/// Verify a complete file image and stream its entries out.  Refuses wrong
/// magic/schema/key width, truncation, trailing garbage, and checksum
/// mismatches (tampering or torn copies — the atomic writer never produces
/// one, but files travel between machines).  `reserve(n)` is called once
/// with a bound on the entry count; `entry(words, record)` once per entry
/// in file order.  Streaming lets the load path build its final vectors
/// directly instead of paying an intermediate copy of every ~500-byte
/// entry (a warm start is pure overhead, so its constant factor matters).
template <typename ReserveFn, typename EntryFn>
void walk_entries(const std::string& data, const std::string& path,
                  ReserveFn&& reserve, EntryFn&& entry) {
  if (data.size() < sizeof kMagic ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    refuse("file is not a uld3d map-cache store (wrong or missing magic)",
           path);
  }
  if (data.size() < sizeof kMagic + sizeof(std::uint64_t)) {
    refuse("map-cache file is truncated", path);
  }
  const std::size_t checksum_at = data.size() - sizeof(std::uint64_t);
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, data.data() + checksum_at,
              sizeof stored_checksum);
  if (fnv1a_words(data.data() + sizeof kMagic,
                  checksum_at - sizeof kMagic) != stored_checksum) {
    refuse("map-cache file checksum mismatch (tampered or torn file)", path);
  }
  std::size_t offset = sizeof kMagic;
  const auto schema = take<std::uint32_t>(data, offset, path);
  if (schema != static_cast<std::uint32_t>(kMapCacheFileSchemaVersion)) {
    refuse("unsupported map-cache schema " + std::to_string(schema) +
               " (this build reads " +
               std::to_string(kMapCacheFileSchemaVersion) + ")",
           path);
  }
  const auto key_words = take<std::uint32_t>(data, offset, path);
  if (key_words != static_cast<std::uint32_t>(MapCache::kKeyWords)) {
    refuse("map-cache key width " + std::to_string(key_words) +
               " does not match this build's " +
               std::to_string(MapCache::kKeyWords),
           path);
  }
  const auto entry_count = take<std::uint64_t>(data, offset, path);
  const auto prov_len = take<std::uint32_t>(data, offset, path);
  if (offset + prov_len > checksum_at) {
    refuse("map-cache file is truncated", path);
  }
  offset += prov_len;  // informational only

  // entry_count is checksum-validated, but cap the reserve at what the file
  // could physically hold so a crafted header cannot force a huge alloc.
  reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(entry_count, data.size() / 100)));
  for (std::uint64_t e = 0; e < entry_count; ++e) {
    KeyWords words;
    if (offset + sizeof words > data.size()) {
      refuse("map-cache file is truncated", path);
    }
    std::memcpy(words.data(), data.data() + offset, sizeof words);
    offset += sizeof words;
    const auto order_len = take<std::uint32_t>(data, offset, path);
    if (offset + order_len > checksum_at) {
      refuse("map-cache file is truncated", path);
    }
    Record record;
    record.mapping_order.assign(data, offset, order_len);
    offset += order_len;
    for (double& v : record.numerics) v = take<double>(data, offset, path);
    record.cs_used = take<std::int64_t>(data, offset, path);
    entry(words, std::move(record));
  }
  if (offset != checksum_at) {
    refuse("map-cache file has trailing bytes after the last entry", path);
  }
}

/// Parse + verify into canonically ordered, duplicate-free Entries.
Entries parse(const std::string& data, const std::string& path) {
  Entries entries;
  bool sorted = true;
  walk_entries(
      data, path, [&entries](std::size_t n) { entries.reserve(n); },
      [&entries, &sorted](const KeyWords& words, Record&& record) {
        if (!entries.empty() && !(entries.back().first < words)) {
          sorted = false;
        }
        entries.emplace_back(words, std::move(record));
      });
  if (!sorted) {
    // Every file this writer produces is in canonical order; tolerate an
    // unsorted (but otherwise valid) one anyway rather than widen the
    // refusal surface.
    std::stable_sort(entries.begin(), entries.end(), key_less);
  }
  if (std::adjacent_find(entries.begin(), entries.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }) != entries.end()) {
    refuse("map-cache file repeats a key", path);
  }
  return entries;
}

/// Whole-file read (one sized read, not a stream copy); nullopt when the
/// file does not exist or cannot be read.
std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  if (size < 0) return std::nullopt;
  std::string data(static_cast<std::size_t>(size), '\0');
  in.seekg(0);
  in.read(data.data(), size);
  if (!in) return std::nullopt;
  return data;
}

}  // namespace

bool mapcache_file_enabled() {
  const char* env = std::getenv("ULD3D_NO_MAPCACHE_FILE");
  return env == nullptr || *env == '\0';
}

std::string mapcache_file_path_from_env() {
  const char* env = std::getenv("ULD3D_MAPCACHE_FILE");
  return env != nullptr ? env : "";
}

std::size_t load_map_cache_file(const std::string& path) {
  const std::optional<std::string> data = read_file(path);
  if (!data.has_value()) return 0;  // cold start
  // Stream straight into the tier's backing vectors — no intermediate
  // Entries pass.  Sortedness/duplicate checks ride along: writer files
  // are canonically sorted, so the adjacent compare covers them for free.
  std::vector<MapCache::Key> keys;
  std::vector<LayerCost> costs;
  bool sorted = true;
  walk_entries(
      *data, path,
      [&](std::size_t n) {
        keys.reserve(n);
        costs.reserve(n);
      },
      [&](const KeyWords& words, Record&& record) {
        if (!keys.empty()) {
          const KeyWords& prev = keys.back().words;
          if (!(prev < words)) {
            if (prev == words) refuse("map-cache file repeats a key", path);
            sorted = false;
          }
        }
        keys.push_back(MapCache::key_from_words(words));
        costs.push_back(cost_from_record(record));
      });
  if (!sorted) {
    // Hand-crafted unsorted file: the adjacent compare above can miss
    // duplicates, so do the full check before handing the batch over.
    std::vector<std::uint32_t> order(keys.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&keys](std::uint32_t a, std::uint32_t b) {
                return keys[a].words < keys[b].words;
              });
    for (std::size_t i = 1; i < order.size(); ++i) {
      if (keys[order[i - 1]].words == keys[order[i]].words) {
        refuse("map-cache file repeats a key", path);
      }
    }
  }
  const std::size_t loaded = keys.size();
  MapCache::instance().load_tier(std::move(keys), std::move(costs));
  MetricsRegistry::instance()
      .counter("mapper.mapcache.file_loads")
      .add(loaded);
  return loaded;
}

std::size_t save_map_cache_file(const std::string& path) {
  // Append-only merge: start from what the file holds NOW (another shard
  // may have rewritten it since we loaded), union our in-memory entries in.
  // Equal keys carry bit-identical costs by the determinism contract, so
  // first-in wins is a no-op choice.
  Entries preexisting_entries;
  if (const std::optional<std::string> data = read_file(path)) {
    try {
      preexisting_entries = parse(*data, path);
    } catch (const StatusError& error) {
      std::cerr << "mapcache: existing file is unreadable, rewriting: "
                << error.what() << "\n";
    }
  }
  const std::size_t preexisting = preexisting_entries.size();

  Entries ours;
  {
    const auto snapshot = MapCache::instance().snapshot();
    ours.reserve(snapshot.size());
    // Sort 4-byte slots, then gather once: sorting the ~500-byte entry
    // pairs directly spends most of the save shuffling payload bytes.
    std::vector<std::uint32_t> order(snapshot.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&snapshot](std::uint32_t a, std::uint32_t b) {
                return snapshot[a].first.words < snapshot[b].first.words;
              });
    for (const std::uint32_t i : order) {
      ours.emplace_back(snapshot[i].first.words,
                        record_from_cost(snapshot[i].second));
    }
  }

  // Two-pointer union in canonical order; on a shared key the FILE's record
  // wins (it is bit-identical by the determinism contract anyway).
  Entries merged;
  merged.reserve(preexisting + ours.size());
  auto file_it = preexisting_entries.begin();
  auto ours_it = ours.begin();
  while (file_it != preexisting_entries.end() || ours_it != ours.end()) {
    if (ours_it == ours.end()) {
      merged.push_back(std::move(*file_it++));
    } else if (file_it == preexisting_entries.end()) {
      merged.push_back(std::move(*ours_it++));
    } else if (file_it->first < ours_it->first) {
      merged.push_back(std::move(*file_it++));
    } else if (ours_it->first < file_it->first) {
      merged.push_back(std::move(*ours_it++));
    } else {
      merged.push_back(std::move(*file_it++));
      ++ours_it;
    }
  }
  const std::size_t appended = merged.size() - preexisting;
  if (!write_file_atomic(path, serialize(merged))) {
    throw StatusError(
        Failure(ErrorCode::kInternal, "could not write map-cache store")
            .with("mapcache", path));
  }
  MetricsRegistry::instance()
      .counter("mapper.mapcache.file_appends")
      .add(appended);
  return appended;
}

MapCacheFileSession::MapCacheFileSession(std::string path)
    : path_(std::move(path)) {
  loaded_ = load_map_cache_file(path_);
  if (loaded_ > 0) {
    std::cerr << "mapcache: loaded " << loaded_ << " entr"
              << (loaded_ == 1 ? "y" : "ies") << " from " << path_ << "\n";
  }
}

MapCacheFileSession::~MapCacheFileSession() {
  try {
    const std::size_t appended = save_map_cache_file(path_);
    std::cerr << "mapcache: " << path_ << " updated (" << appended
              << " appended)\n";
  } catch (const std::exception& error) {
    std::cerr << "mapcache: could not save " << path_ << ": " << error.what()
              << "\n";
  }
}

}  // namespace uld3d::mapper

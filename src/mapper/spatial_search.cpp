#include "uld3d/mapper/spatial_search.hpp"

#include <limits>
#include <optional>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::mapper {

std::vector<SpatialUnrolling> enumerate_unrollings(std::int64_t total_pes) {
  expects(total_pes >= 1 && (total_pes & (total_pes - 1)) == 0,
          "PE budget must be a power of two");
  std::vector<SpatialUnrolling> out;
  // total_pes = 2^e yields C(e+3, 3) = (e+1)(e+2)(e+3)/6 factorizations:
  // choose exponents for (k, c, ox); oy takes the remainder.
  std::int64_t e = 0;
  while ((std::int64_t{1} << e) < total_pes) ++e;
  out.reserve(static_cast<std::size_t>((e + 1) * (e + 2) * (e + 3) / 6));
  for (std::int64_t k = 1; k <= total_pes; k *= 2) {
    for (std::int64_t c = 1; k * c <= total_pes; c *= 2) {
      for (std::int64_t ox = 1; k * c * ox <= total_pes; ox *= 2) {
        const std::int64_t oy = total_pes / (k * c * ox);
        out.push_back({k, c, ox, oy});
      }
    }
  }
  return out;
}

double SpatialSearchResult::improvement() const {
  const double searched = cost.latency_cycles * cost.energy_pj;
  const double fixed = fixed_cost.latency_cycles * fixed_cost.energy_pj;
  return searched > 0.0 ? fixed / searched : 1.0;
}

SpatialSearchResult search_spatial(const nn::ConvSpec& conv,
                                   const Architecture& arch,
                                   const SystemCosts& sys, std::int64_t n_cs) {
  TraceSpan search_span("mapper.spatial_search", "mapper");
  StageTimer search_stage("mapper.spatial_search");
  SpatialSearchResult result;
  result.fixed_cost = evaluate_conv(conv, arch, sys, n_cs);
  result.best = arch.spatial;
  result.cost = result.fixed_cost;

  // Price all candidates into pre-sized slots (parallel), then reduce in
  // enumeration order — the strict `<` keeps first-in-order tie wins, so
  // the winner is bit-identical to the serial loop at any jobs count.
  const auto candidates = enumerate_unrollings(arch.spatial.total_pes());
  std::vector<LayerCost> costs(candidates.size());
  const int jobs =
      FaultInjector::instance().armed() ? 1 : parallel::jobs();
  parallel::parallel_for_indexed(
      candidates.size(),
      [&](std::size_t i) {
        Architecture variant = arch;
        variant.spatial = candidates[i];
        costs[i] = evaluate_conv(conv, variant, sys, n_cs);
      },
      {.jobs = jobs, .grain = 4});

  std::int64_t improved = 0;
  double best_edp = result.cost.latency_cycles * result.cost.energy_pj;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ++result.candidates;
    const double edp = costs[i].latency_cycles * costs[i].energy_pj;
    if (edp < best_edp) {
      best_edp = edp;
      result.best = candidates[i];
      result.cost = costs[i];
      ++improved;
    }
  }
  if (metrics_enabled()) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    registry.counter("mapper.spatial.searches").add();
    registry.counter("mapper.spatial.candidates")
        .add(static_cast<std::uint64_t>(result.candidates));
    registry.counter("mapper.spatial.pruned")
        .add(static_cast<std::uint64_t>(result.candidates - improved));
    registry.gauge("mapper.spatial.best_edp").set(best_edp);
  }
  ensures(result.improvement() >= 1.0 - 1e-9,
          "search must never be worse than the fixed dataflow");
  return result;
}

SearchedNetworkCost evaluate_network_with_search(const nn::Network& net,
                                                 const Architecture& arch,
                                                 const SystemCosts& sys,
                                                 std::int64_t n_cs) {
  SearchedNetworkCost out;
  out.fixed = evaluate_network(net, arch, sys, n_cs);
  out.searched.network = net.name();
  out.searched.architecture = arch.name + " + spatial search";
  out.searched.n_cs = n_cs;
  // Per-layer fan-out into pre-sized slots (each layer task runs its own
  // nested per-unrolling search), then a serial in-order accumulation so
  // the double sums are bit-identical to the serial loop.
  const auto& layers = net.layers();
  out.searched.layers.reserve(layers.size());
  std::vector<std::optional<SpatialSearchResult>> searched(layers.size());
  const int jobs =
      FaultInjector::instance().armed() ? 1 : parallel::jobs();
  parallel::parallel_for_indexed(
      layers.size(),
      [&](std::size_t i) {
        if (layers[i].is_conv()) {
          searched[i] = search_spatial(layers[i].conv(), arch, sys, n_cs);
        }
      },
      {.jobs = jobs});
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (searched[i].has_value()) {
      const SpatialSearchResult& r = *searched[i];
      out.searched.latency_cycles += r.cost.latency_cycles;
      out.searched.energy_pj += r.cost.energy_pj;
      out.searched.layers.push_back(r.cost);
    } else {
      // Vector layers are dataflow-independent: reuse the fixed cost.
      const LayerCost& fixed =
          out.fixed.layers[out.searched.layers.size()];
      out.searched.latency_cycles += fixed.latency_cycles;
      out.searched.energy_pj += fixed.energy_pj;
      out.searched.layers.push_back(fixed);
    }
  }
  return out;
}

}  // namespace uld3d::mapper

#include "uld3d/mapper/spatial_search.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/math.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::mapper {

namespace {

std::atomic<bool>& prune_flag() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("ULD3D_NO_SPATIAL_PRUNE");
    return env == nullptr || *env == '\0';
  }()};
  return enabled;
}

/// The bound below is admissible only in the physically sane regime where
/// every energy-side parameter is non-negative (then energy >= MAC energy
/// term-by-term) and finite.  A negative or NaN parameter — possible in
/// adversarial configs — silently disables pruning instead of mis-pruning.
bool prune_bound_valid(const Architecture& arch, const SystemCosts& sys) {
  const auto ok = [](double v) { return std::isfinite(v) && v >= 0.0; };
  const auto buffers_ok = [&](const OperandBuffers& b) {
    return ok(b.reg.access_energy_pj_per_bit) &&
           ok(b.local.access_energy_pj_per_bit) &&
           ok(b.global.access_energy_pj_per_bit);
  };
  return buffers_ok(arch.weights) && buffers_ok(arch.inputs) &&
         buffers_ok(arch.outputs) && ok(arch.rram_read_pj_per_bit) &&
         ok(arch.rram_write_pj_per_bit) && ok(arch.mac_energy_pj) &&
         arch.weight_bits >= 0 && arch.activation_bits >= 0 &&
         arch.psum_bits >= 0 && ok(sys.mem_idle_pj_per_cycle) &&
         ok(sys.extra_bank_idle_fraction) && ok(sys.cs_idle_pj_per_cycle) &&
         ok(sys.m3d_access_energy_scale) && ok(sys.rram_write_occupancy);
}

}  // namespace

bool spatial_prune_enabled() {
  return prune_flag().load(std::memory_order_relaxed);
}

void set_spatial_prune_enabled(bool enabled) {
  prune_flag().store(enabled, std::memory_order_relaxed);
}

std::vector<SpatialUnrolling> enumerate_unrollings(std::int64_t total_pes) {
  expects(total_pes >= 1 && (total_pes & (total_pes - 1)) == 0,
          "PE budget must be a power of two");
  std::vector<SpatialUnrolling> out;
  // total_pes = 2^e yields C(e+3, 3) = (e+1)(e+2)(e+3)/6 factorizations:
  // choose exponents for (k, c, ox); oy takes the remainder.
  std::int64_t e = 0;
  while ((std::int64_t{1} << e) < total_pes) ++e;
  out.reserve(static_cast<std::size_t>((e + 1) * (e + 2) * (e + 3) / 6));
  for (std::int64_t k = 1; k <= total_pes; k *= 2) {
    for (std::int64_t c = 1; k * c <= total_pes; c *= 2) {
      for (std::int64_t ox = 1; k * c * ox <= total_pes; ox *= 2) {
        const std::int64_t oy = total_pes / (k * c * ox);
        out.push_back({k, c, ox, oy});
      }
    }
  }
  return out;
}

double SpatialSearchResult::improvement() const {
  const double searched = cost.latency_cycles * cost.energy_pj;
  const double fixed = fixed_cost.latency_cycles * fixed_cost.energy_pj;
  return searched > 0.0 ? fixed / searched : 1.0;
}

SpatialSearchResult search_spatial(const nn::ConvSpec& conv,
                                   const Architecture& arch,
                                   const SystemCosts& sys, std::int64_t n_cs) {
  TraceSpan search_span("mapper.spatial_search", "mapper");
  StageTimer search_stage("mapper.spatial_search");
  SpatialSearchResult result;
  result.fixed_cost = evaluate_conv(conv, arch, sys, n_cs);
  result.best = arch.spatial;
  result.cost = result.fixed_cost;

  // Price all candidates into pre-sized slots (parallel), then reduce in
  // enumeration order — the strict `<` keeps first-in-order tie wins, so
  // the winner is bit-identical to the serial loop at any jobs count.
  const auto candidates = enumerate_unrollings(arch.spatial.total_pes());
  std::vector<LayerCost> costs(candidates.size());

  // Admissible pruning.  For candidate s, every temporal mapping satisfies
  //
  //   latency >= compute_cycles * share >= macs / (pes * util(s)) / nmax(s)
  //     where nmax(s) <= min(n_cs, ceil(k/s.k) * ceil(oy/s.oy)) — the
  //     partitioner can only split K tiles and output rows, so a candidate
  //     with few outer tiles cannot occupy every CS;
  //   energy  >= macs * mac_energy_pj                        (MAC floor)
  //            + cs_idle * (n_cs - nmax(s)) * latency        (unfillable
  //     CSs idle for the whole layer; all other terms are non-negative).
  //
  // So lb(s) = lat_lb * (mac_floor + cs_idle * (n_cs - nmax_ub) * lat_lb)
  // under-estimates its EDP.  A candidate with lb >= the fixed dataflow's
  // EDP can never pass the strict-< reduction below (the incumbent only
  // improves), so it is skipped without pricing.  NaN bounds compare false
  // and are conservatively kept.
  std::vector<char> pruned(candidates.size(), 0);
  const double fixed_edp =
      result.fixed_cost.latency_cycles * result.fixed_cost.energy_pj;
  if (spatial_prune_enabled() && std::isfinite(fixed_edp) &&
      prune_bound_valid(arch, sys)) {
    const double macs = static_cast<double>(conv.k * conv.c * conv.ox *
                                            conv.oy * conv.fx * conv.fy);
    const double pes = static_cast<double>(arch.spatial.total_pes());
    const double mac_energy = macs * arch.mac_energy_pj;
    const double n = static_cast<double>(n_cs);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double util = spatial_utilization(conv, candidates[i]);
      const double outer_tiles =
          static_cast<double>(ceil_div(conv.k, candidates[i].k) *
                              ceil_div(conv.oy, candidates[i].oy));
      const double nmax_ub = std::min(n, outer_tiles);
      const double lat_lb = macs / (pes * util) / nmax_ub;
      const double energy_lb =
          mac_energy + sys.cs_idle_pj_per_cycle * (n - nmax_ub) * lat_lb;
      const double lb = lat_lb * energy_lb;
      if (lb >= fixed_edp) {
        pruned[i] = 1;
        ++result.lb_pruned;
      }
    }
  }

  const int jobs =
      FaultInjector::instance().armed() ? 1 : parallel::jobs();
  parallel::parallel_for_indexed(
      candidates.size(),
      [&](std::size_t i) {
        if (pruned[i] != 0) return;
        Architecture variant = arch;
        variant.spatial = candidates[i];
        costs[i] = evaluate_conv(conv, variant, sys, n_cs);
      },
      {.jobs = jobs, .grain = 4});

  std::int64_t improved = 0;
  double best_edp = fixed_edp;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ++result.candidates;
    if (pruned[i] != 0) continue;  // costs[i] was never priced
    const double edp = costs[i].latency_cycles * costs[i].energy_pj;
    if (edp < best_edp) {
      best_edp = edp;
      result.best = candidates[i];
      result.cost = costs[i];
      ++improved;
    }
  }
  if (metrics_enabled()) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    registry.counter("mapper.spatial.searches").add();
    registry.counter("mapper.spatial.candidates")
        .add(static_cast<std::uint64_t>(result.candidates));
    registry.counter("mapper.spatial.pruned")
        .add(static_cast<std::uint64_t>(result.candidates - improved));
    registry.counter("mapper.spatial.lb_pruned")
        .add(static_cast<std::uint64_t>(result.lb_pruned));
    registry.gauge("mapper.spatial.best_edp").set(best_edp);
  }
  ensures(result.improvement() >= 1.0 - 1e-9,
          "search must never be worse than the fixed dataflow");
  return result;
}

SearchedNetworkCost evaluate_network_with_search(const nn::Network& net,
                                                 const Architecture& arch,
                                                 const SystemCosts& sys,
                                                 std::int64_t n_cs) {
  SearchedNetworkCost out;
  out.fixed = evaluate_network(net, arch, sys, n_cs);
  out.searched.network = net.name();
  out.searched.architecture = arch.name + " + spatial search";
  out.searched.n_cs = n_cs;
  // Per-layer fan-out into pre-sized slots (each layer task runs its own
  // nested per-unrolling search), then a serial in-order accumulation so
  // the double sums are bit-identical to the serial loop.
  const auto& layers = net.layers();
  out.searched.layers.reserve(layers.size());
  std::vector<std::optional<SpatialSearchResult>> searched(layers.size());
  const int jobs =
      FaultInjector::instance().armed() ? 1 : parallel::jobs();
  parallel::parallel_for_indexed(
      layers.size(),
      [&](std::size_t i) {
        if (layers[i].is_conv()) {
          searched[i] = search_spatial(layers[i].conv(), arch, sys, n_cs);
        }
      },
      {.jobs = jobs});
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (searched[i].has_value()) {
      const SpatialSearchResult& r = *searched[i];
      out.searched.latency_cycles += r.cost.latency_cycles;
      out.searched.energy_pj += r.cost.energy_pj;
      out.searched.layers.push_back(r.cost);
    } else {
      // Vector layers are dataflow-independent: reuse the fixed cost.
      const LayerCost& fixed =
          out.fixed.layers[out.searched.layers.size()];
      out.searched.latency_cycles += fixed.latency_cycles;
      out.searched.energy_pj += fixed.energy_pj;
      out.searched.layers.push_back(fixed);
    }
  }
  return out;
}

}  // namespace uld3d::mapper

#include "uld3d/mapper/architecture.hpp"

#include <algorithm>

#include "uld3d/util/check.hpp"

namespace uld3d::mapper {

namespace {

// Storage densities at 130 nm: dense register files vs. 6T SRAM arrays.
constexpr double kRegFileBitAreaUm2 = 1.2;
constexpr double kSramBitAreaUm2 = 2.0;
// Logic complexity of one PE (8-bit MAC + pipeline) in gate equivalents.
constexpr std::int64_t kGatesPerPe = 600;
// Control, DMA engines, vector unit, and the NoC of a 1024-PE CS.
constexpr std::int64_t kControlGates = 500000;
// Placement utilization.
constexpr double kPlacementUtilization = 0.75;

double operand_reg_bits(const OperandBuffers& b, std::int64_t pes) {
  return b.reg.capacity_bits * static_cast<double>(pes);
}

}  // namespace

double Architecture::buffer_bits() const {
  const std::int64_t pes = spatial.total_pes();
  return operand_reg_bits(weights, pes) + operand_reg_bits(inputs, pes) +
         operand_reg_bits(outputs, pes) + weights.local.capacity_bits +
         inputs.local.capacity_bits + outputs.local.capacity_bits;
}

double Architecture::global_sram_bits() const {
  return std::max({weights.global.capacity_bits, inputs.global.capacity_bits,
                   outputs.global.capacity_bits});
}

double Architecture::cs_area_um2(const tech::StdCellLibrary& lib) const {
  validate();
  const std::int64_t pes = spatial.total_pes();
  const double logic =
      static_cast<double>(pes * kGatesPerPe + kControlGates) *
      lib.gate_area_um2();
  const double regs = (operand_reg_bits(weights, pes) +
                       operand_reg_bits(inputs, pes) +
                       operand_reg_bits(outputs, pes)) *
                      kRegFileBitAreaUm2;
  const double srams = (weights.local.capacity_bits +
                        inputs.local.capacity_bits +
                        outputs.local.capacity_bits) *
                       kSramBitAreaUm2;
  return (logic + regs + srams) / kPlacementUtilization;
}

void Architecture::validate() const {
  expects(spatial.k >= 1 && spatial.c >= 1 && spatial.ox >= 1 && spatial.oy >= 1,
          "spatial unrolling factors must be >= 1: " + name);
  expects(rram_capacity_bits > 0.0, "RRAM capacity must be positive: " + name);
  expects(rram_bandwidth_bits_per_cycle > 0.0,
          "RRAM bandwidth must be positive: " + name);
  expects(weight_bits > 0 && activation_bits > 0 && psum_bits > 0,
          "precisions must be positive: " + name);
}

}  // namespace uld3d::mapper

#include "uld3d/mapper/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::mapper {

namespace {

double buffer_energy(const OperandBuffers& buffers, const OperandTraffic& t) {
  return t.reg_bits * buffers.reg.access_energy_pj_per_bit +
         t.local_bits * buffers.local.access_energy_pj_per_bit +
         t.global_bits * buffers.global.access_energy_pj_per_bit;
}

/// Time the (per-CS) buffer levels need to move their traffic.
double buffer_cycles(const OperandBuffers& buffers, const OperandTraffic& t) {
  double cycles = 0.0;
  if (t.local_bits > 0.0 && buffers.local.bandwidth_bits_per_cycle > 0.0) {
    cycles = std::max(cycles, t.local_bits / buffers.local.bandwidth_bits_per_cycle);
  }
  if (t.global_bits > 0.0 && buffers.global.bandwidth_bits_per_cycle > 0.0) {
    cycles = std::max(cycles, t.global_bits / buffers.global.bandwidth_bits_per_cycle);
  }
  return cycles;
}

LayerCost price_candidate(const nn::ConvSpec& conv, const TemporalMapping& m,
                          const Architecture& arch, const SystemCosts& sys,
                          std::int64_t n_cs) {
  LayerCost cost;
  cost.layer = conv.name;
  cost.mapping_order = m.order;
  cost.utilization = m.utilization;

  // --- parallel partitioning: the mapper hybrid-splits K tiles and output
  //     rows across CSs, searching the (k_par, oy_par) split that maximizes
  //     used CSs (a mapping freedom ZigZag also explores; the fixed Sec.-II
  //     SoC in uld3d::sim deliberately does NOT have it) ---
  const std::int64_t oy_outer = ceil_div(conv.oy, arch.spatial.oy);
  std::int64_t k_par = 1;
  std::int64_t oy_par = 1;
  for (std::int64_t k = 1; k <= std::min<std::int64_t>(n_cs, m.k_outer); ++k) {
    const std::int64_t oy = std::min<std::int64_t>(n_cs / k, oy_outer);
    if (k * oy >= k_par * oy_par) {  // prefer larger k: splits weight traffic
      k_par = k;
      oy_par = oy;
    }
  }
  const std::int64_t nmax = k_par * oy_par;
  cost.cs_used = nmax;
  const double share = 1.0 / static_cast<double>(nmax);

  cost.compute_cycles = m.compute_cycles * share;

  // --- RRAM port occupancy per CS: weights split along K (replicated across
  //     the oy_par row groups), inputs split along OY (replicated across the
  //     k_par channel groups), outputs fully split ---
  const double rram_reads_per_cs =
      m.weights.rram_read_bits / static_cast<double>(k_par) +
      m.inputs.rram_read_bits / static_cast<double>(oy_par);
  const double rram_writes_per_cs = m.outputs.rram_write_bits * share;
  cost.rram_cycles = (rram_reads_per_cs + rram_writes_per_cs *
                                              sys.rram_write_occupancy) /
                     arch.rram_bandwidth_bits_per_cycle;

  const double buf_cycles =
      (buffer_cycles(arch.inputs, m.inputs) +
       buffer_cycles(arch.weights, m.weights) +
       buffer_cycles(arch.outputs, m.outputs)) *
      share;
  cost.latency_cycles =
      std::max({cost.compute_cycles, cost.rram_cycles, buf_cycles});

  // --- energy (whole system; traffic volumes are per unique bit) ---
  const double macs = static_cast<double>(conv.k * conv.c * conv.ox * conv.oy *
                                          conv.fx * conv.fy);
  cost.mac_energy_pj = macs * arch.mac_energy_pj;
  cost.buffer_energy_pj = buffer_energy(arch.weights, m.weights) +
                          buffer_energy(arch.inputs, m.inputs) +
                          buffer_energy(arch.outputs, m.outputs);
  const double access_scale = n_cs > 1 ? sys.m3d_access_energy_scale : 1.0;
  cost.rram_energy_pj =
      access_scale *
      ((m.weights.rram_read_bits + m.inputs.rram_read_bits) *
           arch.rram_read_pj_per_bit +
       m.outputs.rram_write_bits * arch.rram_write_pj_per_bit);

  const double n = static_cast<double>(n_cs);
  const double bank_scale =
      1.0 + sys.extra_bank_idle_fraction * (n - 1.0);
  const double mem_idle =
      sys.mem_idle_pj_per_cycle * bank_scale *
      std::max(0.0, cost.latency_cycles - cost.rram_cycles);
  const double nm = static_cast<double>(nmax);
  const double cs_idle =
      sys.cs_idle_pj_per_cycle *
      ((n - nm) * cost.latency_cycles +
       nm * std::max(0.0, cost.latency_cycles - cost.compute_cycles));
  cost.idle_energy_pj = mem_idle + cs_idle;

  cost.energy_pj = cost.mac_energy_pj + cost.buffer_energy_pj +
                   cost.rram_energy_pj + cost.idle_energy_pj;
  return cost;
}

LayerCost price_vector_layer(const nn::Layer& layer, const Architecture& arch,
                             const SystemCosts& sys, std::int64_t n_cs) {
  // Pool/eltwise on the single shared vector unit (Sec.-II SoC organisation).
  LayerCost cost;
  cost.layer = layer.name();
  cost.mapping_order = "vector";
  cost.cs_used = 1;
  const double ops = static_cast<double>(layer.ops());
  constexpr double kVectorOpsPerCycle = 64.0;
  cost.compute_cycles = ops / kVectorOpsPerCycle;
  const double i_bits = static_cast<double>(layer.input_bits(arch.activation_bits));
  const double o_bits = static_cast<double>(layer.output_bits(arch.activation_bits));
  cost.rram_cycles = (i_bits + o_bits * sys.rram_write_occupancy) /
                     arch.rram_bandwidth_bits_per_cycle;
  cost.latency_cycles = std::max(cost.compute_cycles, cost.rram_cycles);
  const double access_scale = n_cs > 1 ? sys.m3d_access_energy_scale : 1.0;
  cost.mac_energy_pj = ops * 0.5;  // vector op energy
  cost.rram_energy_pj = access_scale * (i_bits * arch.rram_read_pj_per_bit +
                                        o_bits * arch.rram_write_pj_per_bit);
  const double n = static_cast<double>(n_cs);
  const double bank_scale = 1.0 + sys.extra_bank_idle_fraction * (n - 1.0);
  cost.idle_energy_pj =
      sys.mem_idle_pj_per_cycle * bank_scale *
          std::max(0.0, cost.latency_cycles - cost.rram_cycles) +
      sys.cs_idle_pj_per_cycle * n * cost.latency_cycles;
  cost.energy_pj = cost.mac_energy_pj + cost.rram_energy_pj +
                   cost.idle_energy_pj;
  cost.utilization = 0.0;
  return cost;
}

}  // namespace

LayerCost evaluate_conv(const nn::ConvSpec& conv, const Architecture& arch,
                        const SystemCosts& sys, std::int64_t n_cs) {
  expects(n_cs >= 1, "need at least one CS");
  MapCache& cache = MapCache::instance();
  MapCache::Key cache_key;
  if (cache.enabled()) {
    cache_key = MapCache::key(conv, arch, sys, n_cs);
    if (std::optional<LayerCost> hit = cache.lookup(cache_key)) {
      // The key excludes layer names; restore the caller's so cache-on and
      // cache-off outputs are byte-identical.
      hit->layer = conv.name;
      return std::move(*hit);
    }
  }
  const auto candidates = candidate_mappings(conv, arch);
  LayerCost best;
  double best_edp = std::numeric_limits<double>::infinity();
  for (const auto& m : candidates) {
    LayerCost c = price_candidate(conv, m, arch, sys, n_cs);
    const double edp = c.latency_cycles * c.energy_pj;
    if (edp < best_edp) {
      best_edp = edp;
      best = std::move(c);
    }
  }
  if (cache.enabled()) cache.insert(cache_key, best);
  return best;
}

NetworkCost evaluate_network(const nn::Network& net, const Architecture& arch,
                             const SystemCosts& sys, std::int64_t n_cs) {
  NetworkCost total;
  total.network = net.name();
  total.architecture = arch.name;
  total.n_cs = n_cs;
  for (const auto& layer : net.layers()) {
    LayerCost c = layer.is_conv()
                      ? evaluate_conv(layer.conv(), arch, sys, n_cs)
                      : price_vector_layer(layer, arch, sys, n_cs);
    total.latency_cycles += c.latency_cycles;
    total.energy_pj += c.energy_pj;
    total.layers.push_back(std::move(c));
  }
  return total;
}

core::AreaModel arch_area_model(const Architecture& arch,
                                const tech::FoundryM3dPdk& pdk) {
  core::AreaModel area;
  area.cs_area_um2 = arch.cs_area_um2(pdk.si_library());
  const auto macro = pdk.rram_macro(arch.rram_capacity_bits, 8, /*m3d=*/false);
  area.mem_cells_area_um2 = macro.cell_array_area_um2;
  area.mem_perif_area_um2 = macro.periph_area_um2;
  // Bus/IO plus the chip-level global SRAM (shared; neither replicated with
  // the CS nor freed by the M3D move).
  constexpr double kSramBitAreaUm2 = 2.0;
  constexpr double kPlacementUtilization = 0.75;
  area.bus_area_um2 =
      0.03 * (area.cs_area_um2 + area.mem_cells_area_um2 +
              area.mem_perif_area_um2) +
      arch.global_sram_bits() * kSramBitAreaUm2 / kPlacementUtilization;
  return area;
}

std::int64_t m3d_parallel_cs(const Architecture& arch,
                             const tech::FoundryM3dPdk& pdk) {
  return arch_area_model(arch, pdk).m3d_parallel_cs();
}

DesignPointBenefit evaluate_benefit(const nn::Network& net,
                                    const Architecture& arch,
                                    const SystemCosts& sys,
                                    const tech::FoundryM3dPdk& pdk) {
  DesignPointBenefit b;
  b.architecture = arch.name;
  b.n_cs = m3d_parallel_cs(arch, pdk);
  b.cost_2d = evaluate_network(net, arch, sys, 1);
  b.cost_3d = evaluate_network(net, arch, sys, b.n_cs);
  b.speedup = b.cost_2d.latency_cycles / b.cost_3d.latency_cycles;
  b.energy_ratio = b.cost_3d.energy_pj / b.cost_2d.energy_pj;
  b.edp_benefit = b.cost_2d.edp() / b.cost_3d.edp();
  return b;
}

}  // namespace uld3d::mapper

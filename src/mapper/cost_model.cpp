#include "uld3d/mapper/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "uld3d/mapper/batch_eval.hpp"
#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/simd.hpp"

namespace uld3d::mapper {

namespace {

// The seed per-candidate pricing (`price_candidate`) moved verbatim to
// batch_eval.cpp as `price_candidate_scalar`; evaluate_conv below prices all
// candidates of a layer through the SoA batch passes instead and falls back
// to the scalar loop when batch evaluation is disabled.

LayerCost price_vector_layer(const nn::Layer& layer, const Architecture& arch,
                             const SystemCosts& sys, std::int64_t n_cs) {
  // Pool/eltwise on the single shared vector unit (Sec.-II SoC organisation).
  LayerCost cost;
  cost.layer = layer.name();
  cost.mapping_order = "vector";
  cost.cs_used = 1;
  const double ops = static_cast<double>(layer.ops());
  constexpr double kVectorOpsPerCycle = 64.0;
  cost.compute_cycles = ops / kVectorOpsPerCycle;
  const double i_bits = static_cast<double>(layer.input_bits(arch.activation_bits));
  const double o_bits = static_cast<double>(layer.output_bits(arch.activation_bits));
  cost.rram_cycles = (i_bits + o_bits * sys.rram_write_occupancy) /
                     arch.rram_bandwidth_bits_per_cycle;
  cost.latency_cycles = std::max(cost.compute_cycles, cost.rram_cycles);
  const double access_scale = n_cs > 1 ? sys.m3d_access_energy_scale : 1.0;
  cost.mac_energy_pj = ops * 0.5;  // vector op energy
  cost.rram_energy_pj = access_scale * (i_bits * arch.rram_read_pj_per_bit +
                                        o_bits * arch.rram_write_pj_per_bit);
  const double n = static_cast<double>(n_cs);
  const double bank_scale = 1.0 + sys.extra_bank_idle_fraction * (n - 1.0);
  cost.idle_energy_pj =
      sys.mem_idle_pj_per_cycle * bank_scale *
          std::max(0.0, cost.latency_cycles - cost.rram_cycles) +
      sys.cs_idle_pj_per_cycle * n * cost.latency_cycles;
  cost.energy_pj = cost.mac_energy_pj + cost.rram_energy_pj +
                   cost.idle_energy_pj;
  cost.utilization = 0.0;
  return cost;
}

}  // namespace

LayerCost evaluate_conv(const nn::ConvSpec& conv, const Architecture& arch,
                        const SystemCosts& sys, std::int64_t n_cs) {
  expects(n_cs >= 1, "need at least one CS");
  MapCache& cache = MapCache::instance();
  MapCache::Key cache_key;
  if (cache.enabled()) {
    cache_key = MapCache::key(conv, arch, sys, n_cs);
    if (std::optional<LayerCost> hit = cache.lookup(cache_key)) {
      // The key excludes layer names; restore the caller's so cache-on and
      // cache-off outputs are byte-identical.
      hit->layer = conv.name;
      return std::move(*hit);
    }
  }
  // Per-thread scratch: the candidate vector and the SoA batch ratchet
  // capacity and are fully rewritten each call, so steady-state evaluation
  // performs no heap allocations (satellite of the batch-kernel PR; visible
  // under ULD3D_ALLOC_STATS).
  thread_local std::vector<TemporalMapping> candidates;
  thread_local CandidateBatch batch;
  candidate_mappings(conv, arch, candidates);
  LayerCost best;
  if (batch_eval_enabled()) {
    best = evaluate_candidates(conv, candidates, arch, sys, n_cs, batch);
    if (metrics_enabled()) {
      MetricsRegistry::instance()
          .counter("mapper.batch.batched_candidates")
          .add(candidates.size());
      simd::record_dispatch_metric();
    }
  } else {
    // Seed scalar loop, kept as the A/B baseline for ULD3D_NO_SIMD runs.
    double best_edp = std::numeric_limits<double>::infinity();
    for (const auto& m : candidates) {
      LayerCost c = price_candidate_scalar(conv, m, arch, sys, n_cs);
      const double edp = c.latency_cycles * c.energy_pj;
      if (edp < best_edp) {
        best_edp = edp;
        best = std::move(c);
      }
    }
    if (metrics_enabled()) {
      MetricsRegistry::instance()
          .counter("mapper.batch.scalar_fallback_calls")
          .add();
    }
  }
  if (cache.enabled()) cache.insert(cache_key, best);
  return best;
}

NetworkCost evaluate_network(const nn::Network& net, const Architecture& arch,
                             const SystemCosts& sys, std::int64_t n_cs) {
  NetworkCost total;
  total.network = net.name();
  total.architecture = arch.name;
  total.n_cs = n_cs;
  total.layers.reserve(net.layers().size());
  for (const auto& layer : net.layers()) {
    LayerCost c = layer.is_conv()
                      ? evaluate_conv(layer.conv(), arch, sys, n_cs)
                      : price_vector_layer(layer, arch, sys, n_cs);
    total.latency_cycles += c.latency_cycles;
    total.energy_pj += c.energy_pj;
    total.layers.push_back(std::move(c));
  }
  return total;
}

core::AreaModel arch_area_model(const Architecture& arch,
                                const tech::FoundryM3dPdk& pdk) {
  core::AreaModel area;
  area.cs_area_um2 = arch.cs_area_um2(pdk.si_library());
  const auto macro = pdk.rram_macro(arch.rram_capacity_bits, 8, /*m3d=*/false);
  area.mem_cells_area_um2 = macro.cell_array_area_um2;
  area.mem_perif_area_um2 = macro.periph_area_um2;
  // Bus/IO plus the chip-level global SRAM (shared; neither replicated with
  // the CS nor freed by the M3D move).
  constexpr double kSramBitAreaUm2 = 2.0;
  constexpr double kPlacementUtilization = 0.75;
  area.bus_area_um2 =
      0.03 * (area.cs_area_um2 + area.mem_cells_area_um2 +
              area.mem_perif_area_um2) +
      arch.global_sram_bits() * kSramBitAreaUm2 / kPlacementUtilization;
  return area;
}

std::int64_t m3d_parallel_cs(const Architecture& arch,
                             const tech::FoundryM3dPdk& pdk) {
  return arch_area_model(arch, pdk).m3d_parallel_cs();
}

DesignPointBenefit evaluate_benefit(const nn::Network& net,
                                    const Architecture& arch,
                                    const SystemCosts& sys,
                                    const tech::FoundryM3dPdk& pdk) {
  DesignPointBenefit b;
  b.architecture = arch.name;
  b.n_cs = m3d_parallel_cs(arch, pdk);
  b.cost_2d = evaluate_network(net, arch, sys, 1);
  b.cost_3d = evaluate_network(net, arch, sys, b.n_cs);
  b.speedup = b.cost_2d.latency_cycles / b.cost_3d.latency_cycles;
  b.energy_ratio = b.cost_3d.energy_pj / b.cost_2d.energy_pj;
  b.edp_benefit = b.cost_2d.edp() / b.cost_3d.edp();
  return b;
}

}  // namespace uld3d::mapper

#include "uld3d/mapper/batch_eval.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "uld3d/util/math.hpp"
#include "uld3d/util/simd.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define ULD3D_BATCH_X86 1
#include <immintrin.h>
#define ULD3D_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define ULD3D_BATCH_X86 0
#endif

namespace uld3d::mapper {

namespace {

std::atomic<bool>& batch_flag() {
  static std::atomic<bool> enabled{!simd::disabled_by_env()};
  return enabled;
}

double buffer_energy(const OperandBuffers& buffers, const OperandTraffic& t) {
  return t.reg_bits * buffers.reg.access_energy_pj_per_bit +
         t.local_bits * buffers.local.access_energy_pj_per_bit +
         t.global_bits * buffers.global.access_energy_pj_per_bit;
}

double buffer_cycles(const OperandBuffers& buffers, const OperandTraffic& t) {
  double cycles = 0.0;
  if (t.local_bits > 0.0 && buffers.local.bandwidth_bits_per_cycle > 0.0) {
    cycles = std::max(cycles, t.local_bits / buffers.local.bandwidth_bits_per_cycle);
  }
  if (t.global_bits > 0.0 && buffers.global.bandwidth_bits_per_cycle > 0.0) {
    cycles = std::max(cycles, t.global_bits / buffers.global.bandwidth_bits_per_cycle);
  }
  return cycles;
}

/// Batch-invariant scalars: everything price_candidate derives from
/// (conv, arch, sys, n_cs) alone.  Products of constants (mac_energy,
/// mem_idle_coeff) are formed with the seed's association so the per-lane
/// arithmetic that consumes them stays bit-identical.
struct BatchConsts {
  std::int64_t n_cs = 1;
  std::int64_t oy_outer = 1;
  double n = 1.0;
  double macs = 0.0;
  double mac_energy = 0.0;
  double access_scale = 1.0;
  double mem_idle_coeff = 0.0;  ///< mem_idle_pj_per_cycle * bank_scale
  double cs_idle_pj = 0.0;
  double rram_occupancy = 0.0;
  double rram_bw = 0.0;
  double rram_read_pj = 0.0;
  double rram_write_pj = 0.0;
  // Per-operand buffer constants (level energies + bandwidths).
  double w_e_reg = 0.0, w_e_local = 0.0, w_e_global = 0.0;
  double i_e_reg = 0.0, i_e_local = 0.0, i_e_global = 0.0;
  double o_e_reg = 0.0, o_e_local = 0.0, o_e_global = 0.0;
  double w_bw_local = 0.0, w_bw_global = 0.0;
  double i_bw_local = 0.0, i_bw_global = 0.0;
  double o_bw_local = 0.0, o_bw_global = 0.0;
};

BatchConsts make_consts(const nn::ConvSpec& conv, const Architecture& arch,
                        const SystemCosts& sys, std::int64_t n_cs) {
  BatchConsts c;
  c.n_cs = n_cs;
  c.oy_outer = ceil_div(conv.oy, arch.spatial.oy);
  c.n = static_cast<double>(n_cs);
  c.macs = static_cast<double>(conv.k * conv.c * conv.ox * conv.oy * conv.fx *
                               conv.fy);
  c.mac_energy = c.macs * arch.mac_energy_pj;
  c.access_scale = n_cs > 1 ? sys.m3d_access_energy_scale : 1.0;
  const double bank_scale =
      1.0 + sys.extra_bank_idle_fraction * (c.n - 1.0);
  c.mem_idle_coeff = sys.mem_idle_pj_per_cycle * bank_scale;
  c.cs_idle_pj = sys.cs_idle_pj_per_cycle;
  c.rram_occupancy = sys.rram_write_occupancy;
  c.rram_bw = arch.rram_bandwidth_bits_per_cycle;
  c.rram_read_pj = arch.rram_read_pj_per_bit;
  c.rram_write_pj = arch.rram_write_pj_per_bit;
  c.w_e_reg = arch.weights.reg.access_energy_pj_per_bit;
  c.w_e_local = arch.weights.local.access_energy_pj_per_bit;
  c.w_e_global = arch.weights.global.access_energy_pj_per_bit;
  c.i_e_reg = arch.inputs.reg.access_energy_pj_per_bit;
  c.i_e_local = arch.inputs.local.access_energy_pj_per_bit;
  c.i_e_global = arch.inputs.global.access_energy_pj_per_bit;
  c.o_e_reg = arch.outputs.reg.access_energy_pj_per_bit;
  c.o_e_local = arch.outputs.local.access_energy_pj_per_bit;
  c.o_e_global = arch.outputs.global.access_energy_pj_per_bit;
  c.w_bw_local = arch.weights.local.bandwidth_bits_per_cycle;
  c.w_bw_global = arch.weights.global.bandwidth_bits_per_cycle;
  c.i_bw_local = arch.inputs.local.bandwidth_bits_per_cycle;
  c.i_bw_global = arch.inputs.global.bandwidth_bits_per_cycle;
  c.o_bw_local = arch.outputs.local.bandwidth_bits_per_cycle;
  c.o_bw_global = arch.outputs.global.bandwidth_bits_per_cycle;
  return c;
}

/// Pass 0 (scalar): the data-dependent (k_par, oy_par) split search.  Pure
/// integer work; stores the double casts the later passes divide by.
///
/// The seed search scans k = 1..min(n_cs, k_outer) with a `>=` tie-break —
/// a prefix property of k alone, since oy_outer and n_cs are batch
/// constants.  So the best split for every possible k_max is computed ONCE
/// per call (n_cs integer divisions total), and each candidate becomes a
/// table lookup instead of re-running the division loop.  The table entries
/// are exactly what the seed loop would produce for that k_max.
void split_pass(const BatchConsts& c, CandidateBatch& b, std::size_t n) {
  thread_local std::vector<std::int64_t> best_k;
  thread_local std::vector<std::int64_t> best_oy;
  const std::size_t table = static_cast<std::size_t>(c.n_cs) + 1;
  if (best_k.size() < table) {
    best_k.resize(table);
    best_oy.resize(table);
  }
  std::int64_t k_par = 1;
  std::int64_t oy_par = 1;
  best_k[0] = 1;
  best_oy[0] = 1;
  for (std::int64_t k = 1; k <= c.n_cs; ++k) {
    const std::int64_t oy = std::min<std::int64_t>(c.n_cs / k, c.oy_outer);
    if (k * oy >= k_par * oy_par) {
      k_par = k;
      oy_par = oy;
    }
    best_k[static_cast<std::size_t>(k)] = k_par;
    best_oy[static_cast<std::size_t>(k)] = oy_par;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k_max = static_cast<std::size_t>(
        std::min<std::int64_t>(c.n_cs, b.k_outer[i]));
    const std::int64_t kp = best_k[k_max];
    const std::int64_t op = best_oy[k_max];
    const std::int64_t nmax = kp * op;
    b.cs_used[i] = nmax;
    b.k_par_d[i] = static_cast<double>(kp);
    b.oy_par_d[i] = static_cast<double>(op);
    b.nmax_d[i] = static_cast<double>(nmax);
    b.share[i] = 1.0 / static_cast<double>(nmax);
  }
}

/// Scalar cost-term passes over [i0, i1): the seed expression trees applied
/// array-wise.  Also the tail handler for the AVX2 variant.
void price_range(const BatchConsts& c, CandidateBatch& b, std::size_t i0,
                 std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    b.out_compute_cycles[i] = b.compute_cycles[i] * b.share[i];
  }
  for (std::size_t i = i0; i < i1; ++i) {
    const double reads =
        b.w_rram_read[i] / b.k_par_d[i] + b.i_rram_read[i] / b.oy_par_d[i];
    const double writes = b.o_rram_write[i] * b.share[i];
    b.rram_cycles[i] = (reads + writes * c.rram_occupancy) / c.rram_bw;
  }
  for (std::size_t i = i0; i < i1; ++i) {
    // Seed order: inputs + weights + outputs (buffer_cycles), then * share.
    double bi = 0.0;
    if (b.i_local[i] > 0.0 && c.i_bw_local > 0.0) {
      bi = std::max(bi, b.i_local[i] / c.i_bw_local);
    }
    if (b.i_global[i] > 0.0 && c.i_bw_global > 0.0) {
      bi = std::max(bi, b.i_global[i] / c.i_bw_global);
    }
    double bw = 0.0;
    if (b.w_local[i] > 0.0 && c.w_bw_local > 0.0) {
      bw = std::max(bw, b.w_local[i] / c.w_bw_local);
    }
    if (b.w_global[i] > 0.0 && c.w_bw_global > 0.0) {
      bw = std::max(bw, b.w_global[i] / c.w_bw_global);
    }
    double bo = 0.0;
    if (b.o_local[i] > 0.0 && c.o_bw_local > 0.0) {
      bo = std::max(bo, b.o_local[i] / c.o_bw_local);
    }
    if (b.o_global[i] > 0.0 && c.o_bw_global > 0.0) {
      bo = std::max(bo, b.o_global[i] / c.o_bw_global);
    }
    b.buffer_cycles[i] = (bi + bw + bo) * b.share[i];
  }
  for (std::size_t i = i0; i < i1; ++i) {
    // std::max({a, b, c}) keeps the first of equals: acc<next selection.
    double lat = b.out_compute_cycles[i];
    if (lat < b.rram_cycles[i]) lat = b.rram_cycles[i];
    if (lat < b.buffer_cycles[i]) lat = b.buffer_cycles[i];
    b.latency_cycles[i] = lat;
  }
  for (std::size_t i = i0; i < i1; ++i) {
    // Seed order: weights + inputs + outputs (buffer_energy).
    const double ew = b.w_reg[i] * c.w_e_reg + b.w_local[i] * c.w_e_local +
                      b.w_global[i] * c.w_e_global;
    const double ei = b.i_reg[i] * c.i_e_reg + b.i_local[i] * c.i_e_local +
                      b.i_global[i] * c.i_e_global;
    const double eo = b.o_reg[i] * c.o_e_reg + b.o_local[i] * c.o_e_local +
                      b.o_global[i] * c.o_e_global;
    b.buffer_energy[i] = ew + ei + eo;
  }
  for (std::size_t i = i0; i < i1; ++i) {
    b.rram_energy[i] =
        c.access_scale *
        ((b.w_rram_read[i] + b.i_rram_read[i]) * c.rram_read_pj +
         b.o_rram_write[i] * c.rram_write_pj);
  }
  for (std::size_t i = i0; i < i1; ++i) {
    const double mem_idle =
        c.mem_idle_coeff *
        std::max(0.0, b.latency_cycles[i] - b.rram_cycles[i]);
    const double cs_idle =
        c.cs_idle_pj *
        ((c.n - b.nmax_d[i]) * b.latency_cycles[i] +
         b.nmax_d[i] *
             std::max(0.0, b.latency_cycles[i] - b.out_compute_cycles[i]));
    b.idle_energy[i] = mem_idle + cs_idle;
  }
  for (std::size_t i = i0; i < i1; ++i) {
    b.energy[i] = c.mac_energy + b.buffer_energy[i] + b.rram_energy[i] +
                  b.idle_energy[i];
  }
  for (std::size_t i = i0; i < i1; ++i) {
    b.edp[i] = b.latency_cycles[i] * b.energy[i];
  }
}

#if ULD3D_BATCH_X86

/// std::max(a, b) as a selection — (a < b) ? b : a — preserving the scalar
/// NaN/±0 semantics vmaxpd would not.
ULD3D_TARGET_AVX2 inline __m256d vmax_std(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
}

/// One guarded buffer-cycle level: acc = bits > 0 ? max_std(acc, bits/bw)
/// : acc.  The bandwidth > 0 half of the seed's guard is batch-constant and
/// stays a branch at the call site; only the bits > 0 half is per-lane.
ULD3D_TARGET_AVX2 inline __m256d guarded_level_max(__m256d acc, __m256d bits,
                                                   __m256d bw) {
  const __m256d q = _mm256_div_pd(bits, bw);
  const __m256d maxed = vmax_std(acc, q);
  const __m256d gt0 = _mm256_cmp_pd(bits, _mm256_setzero_pd(), _CMP_GT_OQ);
  return _mm256_blendv_pd(acc, maxed, gt0);
}

/// reg*e_reg + local*e_local + global*e_global with the seed's left-to-right
/// association.
ULD3D_TARGET_AVX2 inline __m256d operand_energy(__m256d reg, __m256d local,
                                                __m256d global, __m256d e_reg,
                                                __m256d e_local,
                                                __m256d e_global) {
  return _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(reg, e_reg),
                                     _mm256_mul_pd(local, e_local)),
                       _mm256_mul_pd(global, e_global));
}

/// Fused single-pass kernel: every cost term for 4 candidates lives in
/// registers from load to EDP, and ONLY the edp array is stored — the term
/// arrays stay stale in [0, main) and the winner lane is re-priced with the
/// scalar trees afterwards (`price_range(win, win+1)`).  Fusing changes no
/// per-lane expression tree, so results stay bit-identical to price_range;
/// it exists purely to cut the memory traffic of pass-per-term evaluation
/// (~28 array streams down to 15).
ULD3D_TARGET_AVX2 void price_batch_avx2(const BatchConsts& c,
                                        CandidateBatch& b, std::size_t n) {
  const std::size_t main = n - n % 4;
  const __m256d zero = _mm256_setzero_pd();
  // Broadcast the batch constants once; loading from locals (not through
  // `c`) lets the compiler keep them hoisted across the edp stores.
  const __m256d v_occ = _mm256_set1_pd(c.rram_occupancy);
  const __m256d v_rram_bw = _mm256_set1_pd(c.rram_bw);
  const __m256d v_i_bw_l = _mm256_set1_pd(c.i_bw_local);
  const __m256d v_i_bw_g = _mm256_set1_pd(c.i_bw_global);
  const __m256d v_w_bw_l = _mm256_set1_pd(c.w_bw_local);
  const __m256d v_w_bw_g = _mm256_set1_pd(c.w_bw_global);
  const __m256d v_o_bw_l = _mm256_set1_pd(c.o_bw_local);
  const __m256d v_o_bw_g = _mm256_set1_pd(c.o_bw_global);
  const __m256d v_w_e_reg = _mm256_set1_pd(c.w_e_reg);
  const __m256d v_w_e_loc = _mm256_set1_pd(c.w_e_local);
  const __m256d v_w_e_glo = _mm256_set1_pd(c.w_e_global);
  const __m256d v_i_e_reg = _mm256_set1_pd(c.i_e_reg);
  const __m256d v_i_e_loc = _mm256_set1_pd(c.i_e_local);
  const __m256d v_i_e_glo = _mm256_set1_pd(c.i_e_global);
  const __m256d v_o_e_reg = _mm256_set1_pd(c.o_e_reg);
  const __m256d v_o_e_loc = _mm256_set1_pd(c.o_e_local);
  const __m256d v_o_e_glo = _mm256_set1_pd(c.o_e_global);
  const __m256d v_read_pj = _mm256_set1_pd(c.rram_read_pj);
  const __m256d v_write_pj = _mm256_set1_pd(c.rram_write_pj);
  const __m256d v_ascale = _mm256_set1_pd(c.access_scale);
  const __m256d v_mem_idle = _mm256_set1_pd(c.mem_idle_coeff);
  const __m256d v_cs_idle = _mm256_set1_pd(c.cs_idle_pj);
  const __m256d v_n = _mm256_set1_pd(c.n);
  const __m256d v_mac = _mm256_set1_pd(c.mac_energy);
  const bool i_l = c.i_bw_local > 0.0, i_g = c.i_bw_global > 0.0;
  const bool w_l = c.w_bw_local > 0.0, w_g = c.w_bw_global > 0.0;
  const bool o_l = c.o_bw_local > 0.0, o_g = c.o_bw_global > 0.0;
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d share = _mm256_load_pd(b.share.data() + i);
    const __m256d w_local = _mm256_load_pd(b.w_local.data() + i);
    const __m256d w_global = _mm256_load_pd(b.w_global.data() + i);
    const __m256d i_local = _mm256_load_pd(b.i_local.data() + i);
    const __m256d i_global = _mm256_load_pd(b.i_global.data() + i);
    const __m256d o_local = _mm256_load_pd(b.o_local.data() + i);
    const __m256d o_global = _mm256_load_pd(b.o_global.data() + i);
    const __m256d w_rram = _mm256_load_pd(b.w_rram_read.data() + i);
    const __m256d i_rram = _mm256_load_pd(b.i_rram_read.data() + i);
    const __m256d o_rram = _mm256_load_pd(b.o_rram_write.data() + i);

    const __m256d out_compute = _mm256_mul_pd(
        _mm256_load_pd(b.compute_cycles.data() + i), share);

    const __m256d reads = _mm256_add_pd(
        _mm256_div_pd(w_rram, _mm256_load_pd(b.k_par_d.data() + i)),
        _mm256_div_pd(i_rram, _mm256_load_pd(b.oy_par_d.data() + i)));
    const __m256d writes = _mm256_mul_pd(o_rram, share);
    const __m256d rram_cycles = _mm256_div_pd(
        _mm256_add_pd(reads, _mm256_mul_pd(writes, v_occ)), v_rram_bw);

    // Seed order: inputs + weights + outputs (buffer_cycles), then * share.
    __m256d acc_i = zero;
    __m256d acc_w = zero;
    __m256d acc_o = zero;
    if (i_l) acc_i = guarded_level_max(acc_i, i_local, v_i_bw_l);
    if (i_g) acc_i = guarded_level_max(acc_i, i_global, v_i_bw_g);
    if (w_l) acc_w = guarded_level_max(acc_w, w_local, v_w_bw_l);
    if (w_g) acc_w = guarded_level_max(acc_w, w_global, v_w_bw_g);
    if (o_l) acc_o = guarded_level_max(acc_o, o_local, v_o_bw_l);
    if (o_g) acc_o = guarded_level_max(acc_o, o_global, v_o_bw_g);
    const __m256d buf_cycles = _mm256_mul_pd(
        _mm256_add_pd(_mm256_add_pd(acc_i, acc_w), acc_o), share);

    // std::max({a, b, c}) keeps the first of equals: acc<next selection.
    __m256d lat = out_compute;
    lat = vmax_std(lat, rram_cycles);
    lat = vmax_std(lat, buf_cycles);

    // Seed order: weights + inputs + outputs (buffer_energy).
    const __m256d ew =
        operand_energy(_mm256_load_pd(b.w_reg.data() + i), w_local, w_global,
                       v_w_e_reg, v_w_e_loc, v_w_e_glo);
    const __m256d ei =
        operand_energy(_mm256_load_pd(b.i_reg.data() + i), i_local, i_global,
                       v_i_e_reg, v_i_e_loc, v_i_e_glo);
    const __m256d eo =
        operand_energy(_mm256_load_pd(b.o_reg.data() + i), o_local, o_global,
                       v_o_e_reg, v_o_e_loc, v_o_e_glo);
    const __m256d buf_energy = _mm256_add_pd(_mm256_add_pd(ew, ei), eo);

    const __m256d rram_energy = _mm256_mul_pd(
        v_ascale,
        _mm256_add_pd(
            _mm256_mul_pd(_mm256_add_pd(w_rram, i_rram), v_read_pj),
            _mm256_mul_pd(o_rram, v_write_pj)));

    const __m256d nm = _mm256_load_pd(b.nmax_d.data() + i);
    const __m256d mem_idle = _mm256_mul_pd(
        v_mem_idle, vmax_std(zero, _mm256_sub_pd(lat, rram_cycles)));
    const __m256d cs_term = _mm256_add_pd(
        _mm256_mul_pd(_mm256_sub_pd(v_n, nm), lat),
        _mm256_mul_pd(nm, vmax_std(zero, _mm256_sub_pd(lat, out_compute))));
    const __m256d idle =
        _mm256_add_pd(mem_idle, _mm256_mul_pd(v_cs_idle, cs_term));

    const __m256d energy = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(v_mac, buf_energy), rram_energy), idle);
    _mm256_store_pd(b.edp.data() + i, _mm256_mul_pd(lat, energy));
  }
  // Clear the dirty upper YMM halves before returning to SSE-encoded code.
  // GCC does not insert vzeroupper around this target("avx2") clone when it
  // ends in a call, and the dirty-upper false dependency would slow every
  // scalar double op in the rest of the process until the next transition.
  _mm256_zeroupper();
}
#endif  // ULD3D_BATCH_X86

}  // namespace

bool batch_eval_enabled() {
  return batch_flag().load(std::memory_order_relaxed);
}

void set_batch_eval_enabled(bool enabled) {
  batch_flag().store(enabled, std::memory_order_relaxed);
}

LayerCost price_candidate_scalar(const nn::ConvSpec& conv,
                                 const TemporalMapping& m,
                                 const Architecture& arch,
                                 const SystemCosts& sys, std::int64_t n_cs) {
  LayerCost cost;
  cost.layer = conv.name;
  cost.mapping_order = m.order;
  cost.utilization = m.utilization;

  // --- parallel partitioning: the mapper hybrid-splits K tiles and output
  //     rows across CSs, searching the (k_par, oy_par) split that maximizes
  //     used CSs (a mapping freedom ZigZag also explores; the fixed Sec.-II
  //     SoC in uld3d::sim deliberately does NOT have it) ---
  const std::int64_t oy_outer = ceil_div(conv.oy, arch.spatial.oy);
  std::int64_t k_par = 1;
  std::int64_t oy_par = 1;
  for (std::int64_t k = 1; k <= std::min<std::int64_t>(n_cs, m.k_outer); ++k) {
    const std::int64_t oy = std::min<std::int64_t>(n_cs / k, oy_outer);
    if (k * oy >= k_par * oy_par) {  // prefer larger k: splits weight traffic
      k_par = k;
      oy_par = oy;
    }
  }
  const std::int64_t nmax = k_par * oy_par;
  cost.cs_used = nmax;
  const double share = 1.0 / static_cast<double>(nmax);

  cost.compute_cycles = m.compute_cycles * share;

  // --- RRAM port occupancy per CS: weights split along K (replicated across
  //     the oy_par row groups), inputs split along OY (replicated across the
  //     k_par channel groups), outputs fully split ---
  const double rram_reads_per_cs =
      m.weights.rram_read_bits / static_cast<double>(k_par) +
      m.inputs.rram_read_bits / static_cast<double>(oy_par);
  const double rram_writes_per_cs = m.outputs.rram_write_bits * share;
  cost.rram_cycles = (rram_reads_per_cs + rram_writes_per_cs *
                                              sys.rram_write_occupancy) /
                     arch.rram_bandwidth_bits_per_cycle;

  const double buf_cycles =
      (buffer_cycles(arch.inputs, m.inputs) +
       buffer_cycles(arch.weights, m.weights) +
       buffer_cycles(arch.outputs, m.outputs)) *
      share;
  cost.latency_cycles =
      std::max({cost.compute_cycles, cost.rram_cycles, buf_cycles});

  // --- energy (whole system; traffic volumes are per unique bit) ---
  const double macs = static_cast<double>(conv.k * conv.c * conv.ox * conv.oy *
                                          conv.fx * conv.fy);
  cost.mac_energy_pj = macs * arch.mac_energy_pj;
  cost.buffer_energy_pj = buffer_energy(arch.weights, m.weights) +
                          buffer_energy(arch.inputs, m.inputs) +
                          buffer_energy(arch.outputs, m.outputs);
  const double access_scale = n_cs > 1 ? sys.m3d_access_energy_scale : 1.0;
  cost.rram_energy_pj =
      access_scale *
      ((m.weights.rram_read_bits + m.inputs.rram_read_bits) *
           arch.rram_read_pj_per_bit +
       m.outputs.rram_write_bits * arch.rram_write_pj_per_bit);

  const double n = static_cast<double>(n_cs);
  const double bank_scale =
      1.0 + sys.extra_bank_idle_fraction * (n - 1.0);
  const double mem_idle =
      sys.mem_idle_pj_per_cycle * bank_scale *
      std::max(0.0, cost.latency_cycles - cost.rram_cycles);
  const double nm = static_cast<double>(nmax);
  const double cs_idle =
      sys.cs_idle_pj_per_cycle *
      ((n - nm) * cost.latency_cycles +
       nm * std::max(0.0, cost.latency_cycles - cost.compute_cycles));
  cost.idle_energy_pj = mem_idle + cs_idle;

  cost.energy_pj = cost.mac_energy_pj + cost.buffer_energy_pj +
                   cost.rram_energy_pj + cost.idle_energy_pj;
  return cost;
}

void CandidateBatch::resize(std::size_t n) {
  compute_cycles.resize(n);
  k_outer.resize(n);
  w_reg.resize(n);
  w_local.resize(n);
  w_global.resize(n);
  w_rram_read.resize(n);
  i_reg.resize(n);
  i_local.resize(n);
  i_global.resize(n);
  i_rram_read.resize(n);
  o_reg.resize(n);
  o_local.resize(n);
  o_global.resize(n);
  o_rram_write.resize(n);
  k_par_d.resize(n);
  oy_par_d.resize(n);
  share.resize(n);
  nmax_d.resize(n);
  cs_used.resize(n);
  out_compute_cycles.resize(n);
  rram_cycles.resize(n);
  buffer_cycles.resize(n);
  latency_cycles.resize(n);
  buffer_energy.resize(n);
  rram_energy.resize(n);
  idle_energy.resize(n);
  energy.resize(n);
  edp.resize(n);
}

LayerCost evaluate_candidates(const nn::ConvSpec& conv,
                              const std::vector<TemporalMapping>& candidates,
                              const Architecture& arch,
                              const SystemCosts& sys, std::int64_t n_cs,
                              CandidateBatch& b) {
  const std::size_t n = candidates.size();
  if (n == 0) return LayerCost{};
  b.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TemporalMapping& m = candidates[i];
    b.compute_cycles[i] = m.compute_cycles;
    b.k_outer[i] = m.k_outer;
    b.w_reg[i] = m.weights.reg_bits;
    b.w_local[i] = m.weights.local_bits;
    b.w_global[i] = m.weights.global_bits;
    b.w_rram_read[i] = m.weights.rram_read_bits;
    b.i_reg[i] = m.inputs.reg_bits;
    b.i_local[i] = m.inputs.local_bits;
    b.i_global[i] = m.inputs.global_bits;
    b.i_rram_read[i] = m.inputs.rram_read_bits;
    b.o_reg[i] = m.outputs.reg_bits;
    b.o_local[i] = m.outputs.local_bits;
    b.o_global[i] = m.outputs.global_bits;
    b.o_rram_write[i] = m.outputs.rram_write_bits;
  }
  const BatchConsts consts = make_consts(conv, arch, sys, n_cs);
  split_pass(consts, b, n);
  bool fused = false;
#if ULD3D_BATCH_X86
  if (simd::avx2_active()) {
    price_batch_avx2(consts, b, n);
    price_range(consts, b, n - n % 4, n);  // scalar tail, same trees
    fused = true;
  } else {
    price_range(consts, b, 0, n);
  }
#else
  price_range(consts, b, 0, n);
#endif
  const std::size_t win = simd::argmin_strict(b.edp.data(), n);
  if (win == n) return LayerCost{};  // seed behavior: nothing beat +inf
  // The fused kernel stores only edp; re-derive the winner's term arrays
  // with the scalar trees (bit-identical by the §16 contract) before
  // materializing the LayerCost below.
  if (fused) price_range(consts, b, win, win + 1);

  LayerCost cost;
  cost.layer = conv.name;
  cost.mapping_order = candidates[win].order;
  cost.utilization = candidates[win].utilization;
  cost.cs_used = b.cs_used[win];
  cost.compute_cycles = b.out_compute_cycles[win];
  cost.rram_cycles = b.rram_cycles[win];
  cost.latency_cycles = b.latency_cycles[win];
  cost.mac_energy_pj = consts.mac_energy;
  cost.buffer_energy_pj = b.buffer_energy[win];
  cost.rram_energy_pj = b.rram_energy[win];
  cost.idle_energy_pj = b.idle_energy[win];
  cost.energy_pj = b.energy[win];
  return cost;
}

}  // namespace uld3d::mapper

#include "uld3d/mapper/table2.hpp"

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::mapper {

namespace {

using units::kb_to_bits;
using units::mb_to_bits;

// Representative per-level access energies at 130 nm (pJ/bit).
constexpr double kRegEnergy = 0.008;
constexpr double kLocalEnergy = 0.04;
constexpr double kGlobalEnergy = 0.15;

BufferLevel reg(double bytes) {
  return {bytes * 8.0, kRegEnergy, 1.0e9};  // registers never bottleneck
}
BufferLevel local_kb(double kb) { return {kb_to_bits(kb), kLocalEnergy, 2048.0}; }
BufferLevel global_mb(double mb) { return {mb_to_bits(mb), kGlobalEnergy, 1024.0}; }
BufferLevel none() { return {}; }

Architecture base(const char* name) {
  Architecture a;
  a.name = name;
  a.rram_capacity_bits = mb_to_bits(256.0);
  return a;
}

}  // namespace

Architecture make_table2_architecture(int index) {
  switch (index) {
    case 1: {
      // Systolic tile with deep local buffering (TPU-like [15]).
      Architecture a = base("Arch1 (16,16,2,2)");
      a.spatial = {16, 16, 2, 2};
      a.weights = {reg(1), local_kb(64), global_mb(2.0)};
      a.inputs = {none(), local_kb(64), global_mb(2.0)};
      a.outputs = {reg(2), local_kb(256), global_mb(2.0)};
      return a;
    }
    case 2: {
      // Smaller channel tile, wider spatial unrolling (edge-TPU-like [16]).
      Architecture a = base("Arch2 (8,8,4,4)");
      a.spatial = {8, 8, 4, 4};
      a.weights = {reg(1), local_kb(32), global_mb(2.0)};
      a.inputs = {none(), none(), global_mb(2.0)};
      a.outputs = {reg(2), none(), global_mb(2.0)};
      return a;
    }
    case 3: {
      // Large channel-parallel array with fat PE register files and no
      // local SRAM (Ascend-cube-like [17]).
      Architecture a = base("Arch3 (32,32,-,-)");
      a.spatial = {32, 32, 1, 1};
      a.weights = {reg(128), none(), global_mb(2.0)};
      a.inputs = {none(), none(), global_mb(2.0)};
      a.outputs = {reg(1024), none(), global_mb(2.0)};
      return a;
    }
    case 4: {
      // Output-pixel-parallel design (FSD-like [18]).
      Architecture a = base("Arch4 (32,2,4,4)");
      a.spatial = {32, 2, 4, 4};
      a.weights = {reg(1), local_kb(64), global_mb(2.0)};
      a.inputs = {none(), local_kb(32), global_mb(2.0)};
      a.outputs = {reg(2), none(), global_mb(2.0)};
      return a;
    }
    case 5: {
      // Lean spatially-unrolled design (AR/VR-accelerator-like [14]).
      Architecture a = base("Arch5 (32,-,8,4)");
      a.spatial = {32, 1, 8, 4};
      a.weights = {reg(1), local_kb(1), global_mb(2.0)};
      a.inputs = {none(), local_kb(1), global_mb(2.0)};
      a.outputs = {reg(4), none(), global_mb(2.0)};
      return a;
    }
    case 6: {
      // The paper's Sec.-II accelerator scaled to 1024 PEs.
      Architecture a = base("Arch6 (32,32)");
      a.spatial = {32, 32, 1, 1};
      a.weights = {reg(2.2), none(), global_mb(0.5)};
      a.inputs = {reg(2.2), local_kb(32), global_mb(0.5)};
      a.outputs = {reg(1), local_kb(32), global_mb(0.5)};
      return a;
    }
    default:
      expects(false, "Table II architecture index must be 1..6");
      return base("invalid");
  }
}

std::vector<Architecture> table2_architectures() {
  std::vector<Architecture> archs;
  archs.reserve(6);
  for (int i = 1; i <= 6; ++i) archs.push_back(make_table2_architecture(i));
  return archs;
}

}  // namespace uld3d::mapper

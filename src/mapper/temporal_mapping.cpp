#include "uld3d/mapper/temporal_mapping.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"
#include "uld3d/util/metrics.hpp"

namespace uld3d::mapper {

namespace {

double fill(std::int64_t dim, std::int64_t unroll) {
  const std::int64_t outer = ceil_div(dim, unroll);
  return static_cast<double>(dim) /
         static_cast<double>(outer * unroll);
}

/// Route `volume` bits of read traffic for one operand down the hierarchy:
/// the innermost level large enough to hold `resident_bits` serves the
/// repeated reads; every level above sees the data only once.
void route_reads(const OperandBuffers& buffers, double resident_bits,
                 double repeated_bits, double once_bits, std::int64_t pes,
                 OperandTraffic& t) {
  const double reg_cap = buffers.reg.capacity_bits * static_cast<double>(pes);
  if (reg_cap >= resident_bits && reg_cap > 0.0) {
    t.reg_bits += repeated_bits;
    t.rram_read_bits += once_bits;
    return;
  }
  if (buffers.local.capacity_bits >= resident_bits &&
      buffers.local.capacity_bits > 0.0) {
    t.local_bits += repeated_bits;
    t.rram_read_bits += once_bits;
    return;
  }
  if (buffers.global.capacity_bits >= resident_bits &&
      buffers.global.capacity_bits > 0.0) {
    t.global_bits += repeated_bits;
    t.rram_read_bits += once_bits;
    return;
  }
  // Nothing holds the working set: every repeated fetch goes to RRAM.
  t.rram_read_bits += repeated_bits;
}

/// Capacity available to hold partial sums (registers + local + global).
double psum_capacity(const OperandBuffers& outputs, std::int64_t pes) {
  return outputs.reg.capacity_bits * static_cast<double>(pes) +
         outputs.local.capacity_bits + outputs.global.capacity_bits;
}

}  // namespace

double spatial_utilization(const nn::ConvSpec& conv,
                           const SpatialUnrolling& spatial) {
  return fill(conv.k, spatial.k) * fill(conv.c, spatial.c) *
         fill(conv.ox, spatial.ox) * fill(conv.oy, spatial.oy);
}

std::vector<TemporalMapping> candidate_mappings(const nn::ConvSpec& conv,
                                                const Architecture& arch) {
  std::vector<TemporalMapping> candidates;
  candidate_mappings(conv, arch, candidates);
  return candidates;
}

void candidate_mappings(const nn::ConvSpec& conv, const Architecture& arch,
                        std::vector<TemporalMapping>& candidates) {
  arch.validate();
  const std::int64_t pes = arch.spatial.total_pes();
  const double wb = static_cast<double>(arch.weight_bits);
  const double ab = static_cast<double>(arch.activation_bits);
  const double pb = static_cast<double>(arch.psum_bits);

  const double macs = static_cast<double>(conv.k * conv.c * conv.ox * conv.oy *
                                          conv.fx * conv.fy);
  const double w_bits = static_cast<double>(conv.k * conv.c * conv.fx * conv.fy) * wb;
  const double i_bits =
      static_cast<double>(conv.c * conv.input_x() * conv.input_y()) * ab;
  const double o_bits = static_cast<double>(conv.k * conv.ox * conv.oy) * ab;
  const double o_psum_bits = static_cast<double>(conv.k * conv.ox * conv.oy) * pb;

  TemporalMapping proto;
  proto.k_outer = ceil_div(conv.k, arch.spatial.k);
  proto.c_outer = ceil_div(conv.c, arch.spatial.c);
  proto.taps = conv.fx * conv.fy;
  proto.utilization = spatial_utilization(conv, arch.spatial);
  proto.compute_cycles = macs / (static_cast<double>(pes) * proto.utilization);

  // Traffic common to all candidates.
  const auto common = [&](TemporalMapping& m) {
    // Every MAC reads a weight and writes/reads a partial sum at the PE.
    m.weights.reg_bits += macs * wb;
    m.outputs.reg_bits += 2.0 * macs * pb;
    // Weights enter the chip exactly once per re-fetch pass (set by caller
    // via m.weights.rram_read_bits).  Final outputs are written to RRAM.
    m.outputs.rram_write_bits += o_bits;
  };

  candidates.clear();
  candidates.reserve(3);  // the three canonical orders below

  {  // A. weight-outer: inputs re-fetched once per (k_outer, tap).
    TemporalMapping m = proto;
    m.order = "weight-outer";
    common(m);
    m.weights.rram_read_bits += w_bits;
    const double repeats =
        static_cast<double>(m.k_outer) * static_cast<double>(m.taps);
    route_reads(arch.inputs, i_bits, i_bits * repeats, i_bits, pes, m.inputs);
    // Per-K-tile psum slice must stay resident across (c_outer, taps).
    const double psum_tile = o_psum_bits / static_cast<double>(m.k_outer);
    if (psum_capacity(arch.outputs, pes) < psum_tile) {
      // Spill: one read+write round trip per accumulation pass beyond the first.
      const double passes =
          static_cast<double>(m.c_outer) * static_cast<double>(m.taps) - 1.0;
      m.outputs.global_bits += 2.0 * std::max(0.0, passes) * o_psum_bits;
    }
    candidates.push_back(std::move(m));
  }

  {  // B. input-outer: inputs fetched once per tap; full-K psums resident.
    TemporalMapping m = proto;
    m.order = "input-outer";
    common(m);
    m.weights.rram_read_bits += w_bits;
    route_reads(arch.inputs, i_bits, i_bits * static_cast<double>(m.taps),
                i_bits, pes, m.inputs);
    if (psum_capacity(arch.outputs, pes) < o_psum_bits) {
      const double passes = static_cast<double>(m.c_outer) *
                                static_cast<double>(m.taps) *
                                static_cast<double>(m.k_outer) -
                            static_cast<double>(m.k_outer);
      m.outputs.global_bits += 2.0 * std::max(0.0, passes) *
                               (o_psum_bits / static_cast<double>(m.k_outer));
    }
    candidates.push_back(std::move(m));
  }

  {  // C. pixel-tiled: shrink the psum working set; weights re-fetched per tile.
    TemporalMapping m = proto;
    m.order = "pixel-tiled";
    common(m);
    const double cap = psum_capacity(arch.outputs, pes);
    const double tiles =
        cap > 0.0 ? std::max(1.0, std::ceil(o_psum_bits / cap)) : 1.0;
    m.weights.rram_read_bits += w_bits * tiles;
    route_reads(arch.inputs, i_bits / tiles,
                i_bits * static_cast<double>(m.taps), i_bits, pes, m.inputs);
    candidates.push_back(std::move(m));
  }

  ensures(!candidates.empty(), "mapping candidates must be non-empty");
  if (metrics_enabled()) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    registry.counter("mapper.temporal.calls").add();
    registry.counter("mapper.temporal.candidates").add(candidates.size());
  }
}

}  // namespace uld3d::mapper

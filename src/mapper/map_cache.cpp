#include "uld3d/mapper/map_cache.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "uld3d/util/metrics.hpp"

namespace uld3d::mapper {

namespace {

/// Fills a Key's word array in a fixed field order and stamps the hash.
/// Ints and doubles both land as raw 64-bit patterns (so -0.0 vs 0.0 or
/// distinct NaN payloads conservatively read as different keys).
class KeyBuilder {
 public:
  explicit KeyBuilder(MapCache::Key& key) : key_(key) {}

  void add_i64(std::int64_t v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    add_word(bits);
  }

  void add_f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    add_word(bits);
  }

  void add_level(const BufferLevel& level) {
    add_f64(level.capacity_bits);
    add_f64(level.access_energy_pj_per_bit);
    add_f64(level.bandwidth_bits_per_cycle);
  }

  void add_buffers(const OperandBuffers& buffers) {
    add_level(buffers.reg);
    add_level(buffers.local);
    add_level(buffers.global);
  }

  /// Word-wise FNV-1a over the filled array; valid only when every slot is
  /// written (in-process bucket/shard picking only — never persisted).
  void finish() {
    assert(next_ == MapCache::kKeyWords);
    stamp_hash(key_);
  }

  static void stamp_hash(MapCache::Key& key) {
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (const std::uint64_t w : key.words) {
      h ^= w;
      h *= 1099511628211ull;  // FNV prime
    }
    key.hash = h;
  }

 private:
  void add_word(std::uint64_t bits) {
    assert(next_ < MapCache::kKeyWords);
    key_.words[next_++] = bits;
  }

  MapCache::Key& key_;
  std::size_t next_ = 0;
};

/// Finalizer applied to a Key's FNV hash before masking it down to a
/// loaded-tier slot.  FNV-1a avalanches poorly in the low bits, and the
/// tier's open-addressing table is power-of-two sized — masking the raw
/// hash clusters real key sets badly enough that linear probing
/// degenerates.  (The sharded maps are immune: libstdc++ buckets modulo a
/// prime.)  This is splitmix64's mixer; in-process only, never persisted.
std::uint64_t mix_hash(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

MapCache::MapCache() {
  const char* env = std::getenv("ULD3D_NO_MAPCACHE");
  if (env != nullptr && *env != '\0') {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

MapCache& MapCache::instance() {
  static MapCache cache;
  return cache;
}

MapCache::Key MapCache::key(const nn::ConvSpec& conv, const Architecture& arch,
                            const SystemCosts& sys, std::int64_t n_cs) {
  Key key;
  KeyBuilder b(key);
  // ConvSpec (name excluded)
  b.add_i64(conv.k);
  b.add_i64(conv.c);
  b.add_i64(conv.ox);
  b.add_i64(conv.oy);
  b.add_i64(conv.fx);
  b.add_i64(conv.fy);
  b.add_i64(conv.stride);
  // Architecture (name excluded)
  b.add_i64(arch.spatial.k);
  b.add_i64(arch.spatial.c);
  b.add_i64(arch.spatial.ox);
  b.add_i64(arch.spatial.oy);
  b.add_buffers(arch.weights);
  b.add_buffers(arch.inputs);
  b.add_buffers(arch.outputs);
  b.add_f64(arch.rram_capacity_bits);
  b.add_f64(arch.rram_bandwidth_bits_per_cycle);
  b.add_f64(arch.rram_read_pj_per_bit);
  b.add_f64(arch.rram_write_pj_per_bit);
  b.add_f64(arch.mac_energy_pj);
  b.add_i64(arch.weight_bits);
  b.add_i64(arch.activation_bits);
  b.add_i64(arch.psum_bits);
  // SystemCosts
  b.add_f64(sys.mem_idle_pj_per_cycle);
  b.add_f64(sys.extra_bank_idle_fraction);
  b.add_f64(sys.cs_idle_pj_per_cycle);
  b.add_f64(sys.m3d_access_energy_scale);
  b.add_f64(sys.rram_write_occupancy);
  b.add_i64(n_cs);
  b.finish();
  return key;
}

MapCache::Key MapCache::key_from_words(
    const std::array<std::uint64_t, kKeyWords>& words) {
  Key key;
  key.words = words;
  KeyBuilder::stamp_hash(key);
  return key;
}

MapCache::Shard& MapCache::shard_for(const Key& key) {
  return shards_[key.hash % kShards];
}

const MapCache::Shard& MapCache::shard_for(const Key& key) const {
  return shards_[key.hash % kShards];
}

std::shared_ptr<const MapCache::LoadedTier> MapCache::tier() const {
  std::lock_guard<std::mutex> lock(tier_mutex_);
  return tier_;
}

std::optional<LayerCost> MapCache::lookup(const Key& key) {
  // References are stable once registered; resolving them through the
  // registry map on every lookup would serialize parallel threads.
  static Counter& m_hits =
      MetricsRegistry::instance().counter("mapper.mapcache.hits");
  static Counter& m_misses =
      MetricsRegistry::instance().counter("mapper.mapcache.misses");
  static Counter& m_file_hits =
      MetricsRegistry::instance().counter("mapper.mapcache.file_hits");
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      m_hits.add();
      return it->second.cost;
    }
  }
  if (const std::shared_ptr<const LoadedTier> loaded = tier()) {
    std::uint64_t slot = mix_hash(key.hash) & loaded->mask;
    while (loaded->index[slot] != kNoSlot) {
      const std::uint32_t e = loaded->index[slot];
      if (loaded->keys[e] == key) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        m_hits.add();
        file_hits_.fetch_add(1, std::memory_order_relaxed);
        m_file_hits.add();
        return loaded->costs[e];
      }
      slot = (slot + 1) & loaded->mask;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  m_misses.add();
  return std::nullopt;
}

void MapCache::insert(const Key& key, const LayerCost& cost) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.try_emplace(key, Entry{cost});
}

void MapCache::load_tier(std::vector<Key> keys, std::vector<LayerCost> costs) {
  assert(keys.size() == costs.size());
  std::lock_guard<std::mutex> lock(tier_mutex_);
  auto merged = std::make_shared<LoadedTier>();
  const std::size_t old_n = tier_ != nullptr ? tier_->keys.size() : 0;
  // Index sized for the union at <= 50% occupancy so probes stay short.
  std::uint64_t capacity = 16;
  while (capacity < (old_n + keys.size()) * 2) capacity <<= 1;
  merged->index.assign(capacity, kNoSlot);
  merged->mask = capacity - 1;
  if (old_n == 0) {
    // Common case (one load per process): adopt the vectors wholesale and
    // only build the index.  If the batch turns out to carry a duplicate
    // key the index would disagree with the vectors, so fall back to the
    // dedup-copy path below for that rare case.
    merged->keys = std::move(keys);
    merged->costs = std::move(costs);
    bool duplicate = false;
    for (std::size_t i = 0; i < merged->keys.size() && !duplicate; ++i) {
      std::uint64_t slot = mix_hash(merged->keys[i].hash) & merged->mask;
      while (merged->index[slot] != kNoSlot) {
        if (merged->keys[merged->index[slot]] == merged->keys[i]) {
          duplicate = true;
          break;
        }
        slot = (slot + 1) & merged->mask;
      }
      if (!duplicate) merged->index[slot] = static_cast<std::uint32_t>(i);
    }
    if (!duplicate) {
      tier_ = std::move(merged);
      return;
    }
    keys = std::move(merged->keys);
    costs = std::move(merged->costs);
    merged->keys.clear();
    merged->costs.clear();
    merged->index.assign(capacity, kNoSlot);
  }
  merged->keys.reserve(old_n + keys.size());
  merged->costs.reserve(old_n + keys.size());
  const auto add = [&merged](Key& key, LayerCost& cost) {
    std::uint64_t slot = mix_hash(key.hash) & merged->mask;
    while (merged->index[slot] != kNoSlot) {
      if (merged->keys[merged->index[slot]] == key) return;  // first wins
      slot = (slot + 1) & merged->mask;
    }
    merged->index[slot] = static_cast<std::uint32_t>(merged->keys.size());
    merged->keys.push_back(std::move(key));
    merged->costs.push_back(std::move(cost));
  };
  if (tier_ != nullptr) {
    for (std::size_t i = 0; i < old_n; ++i) {
      Key key = tier_->keys[i];
      LayerCost cost = tier_->costs[i];
      add(key, cost);
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) add(keys[i], costs[i]);
  tier_ = std::move(merged);
}

std::vector<std::pair<MapCache::Key, LayerCost>> MapCache::snapshot() const {
  std::vector<std::pair<Key, LayerCost>> out;
  out.reserve(size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.map) {
      out.emplace_back(key, entry.cost);
    }
  }
  // Loaded-tier entries, except any a computing caller also inserted into a
  // shard (identical values; skipping keeps the snapshot free of repeats).
  if (const std::shared_ptr<const LoadedTier> loaded = tier()) {
    for (std::size_t i = 0; i < loaded->keys.size(); ++i) {
      const Key& key = loaded->keys[i];
      const Shard& shard = shard_for(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.map.find(key) == shard.map.end()) {
        out.emplace_back(key, loaded->costs[i]);
      }
    }
  }
  return out;
}

void MapCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  std::lock_guard<std::mutex> lock(tier_mutex_);
  tier_.reset();
}

void MapCache::reset_counters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  file_hits_.store(0, std::memory_order_relaxed);
}

std::size_t MapCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  if (const std::shared_ptr<const LoadedTier> loaded = tier()) {
    total += loaded->keys.size();
  }
  return total;
}

}  // namespace uld3d::mapper

#include "uld3d/mapper/map_cache.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "uld3d/util/metrics.hpp"

namespace uld3d::mapper {

namespace {

/// Fills a Key's word array in a fixed field order and stamps the hash.
/// Ints and doubles both land as raw 64-bit patterns (so -0.0 vs 0.0 or
/// distinct NaN payloads conservatively read as different keys).
class KeyBuilder {
 public:
  explicit KeyBuilder(MapCache::Key& key) : key_(key) {}

  void add_i64(std::int64_t v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    add_word(bits);
  }

  void add_f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    add_word(bits);
  }

  void add_level(const BufferLevel& level) {
    add_f64(level.capacity_bits);
    add_f64(level.access_energy_pj_per_bit);
    add_f64(level.bandwidth_bits_per_cycle);
  }

  void add_buffers(const OperandBuffers& buffers) {
    add_level(buffers.reg);
    add_level(buffers.local);
    add_level(buffers.global);
  }

  /// Word-wise FNV-1a over the filled array; valid only when every slot is
  /// written (in-process bucket/shard picking only — never persisted).
  void finish() {
    assert(next_ == MapCache::kKeyWords);
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (const std::uint64_t w : key_.words) {
      h ^= w;
      h *= 1099511628211ull;  // FNV prime
    }
    key_.hash = h;
  }

 private:
  void add_word(std::uint64_t bits) {
    assert(next_ < MapCache::kKeyWords);
    key_.words[next_++] = bits;
  }

  MapCache::Key& key_;
  std::size_t next_ = 0;
};

}  // namespace

MapCache::MapCache() {
  const char* env = std::getenv("ULD3D_NO_MAPCACHE");
  if (env != nullptr && *env != '\0') {
    enabled_.store(false, std::memory_order_relaxed);
  }
}

MapCache& MapCache::instance() {
  static MapCache cache;
  return cache;
}

MapCache::Key MapCache::key(const nn::ConvSpec& conv, const Architecture& arch,
                            const SystemCosts& sys, std::int64_t n_cs) {
  Key key;
  KeyBuilder b(key);
  // ConvSpec (name excluded)
  b.add_i64(conv.k);
  b.add_i64(conv.c);
  b.add_i64(conv.ox);
  b.add_i64(conv.oy);
  b.add_i64(conv.fx);
  b.add_i64(conv.fy);
  b.add_i64(conv.stride);
  // Architecture (name excluded)
  b.add_i64(arch.spatial.k);
  b.add_i64(arch.spatial.c);
  b.add_i64(arch.spatial.ox);
  b.add_i64(arch.spatial.oy);
  b.add_buffers(arch.weights);
  b.add_buffers(arch.inputs);
  b.add_buffers(arch.outputs);
  b.add_f64(arch.rram_capacity_bits);
  b.add_f64(arch.rram_bandwidth_bits_per_cycle);
  b.add_f64(arch.rram_read_pj_per_bit);
  b.add_f64(arch.rram_write_pj_per_bit);
  b.add_f64(arch.mac_energy_pj);
  b.add_i64(arch.weight_bits);
  b.add_i64(arch.activation_bits);
  b.add_i64(arch.psum_bits);
  // SystemCosts
  b.add_f64(sys.mem_idle_pj_per_cycle);
  b.add_f64(sys.extra_bank_idle_fraction);
  b.add_f64(sys.cs_idle_pj_per_cycle);
  b.add_f64(sys.m3d_access_energy_scale);
  b.add_f64(sys.rram_write_occupancy);
  b.add_i64(n_cs);
  b.finish();
  return key;
}

MapCache::Shard& MapCache::shard_for(const Key& key) {
  return shards_[key.hash % kShards];
}

std::optional<LayerCost> MapCache::lookup(const Key& key) {
  // References are stable once registered; resolving them through the
  // registry map on every lookup would serialize parallel threads.
  static Counter& m_hits =
      MetricsRegistry::instance().counter("mapper.mapcache.hits");
  static Counter& m_misses =
      MetricsRegistry::instance().counter("mapper.mapcache.misses");
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      m_hits.add();
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  m_misses.add();
  return std::nullopt;
}

void MapCache::insert(const Key& key, const LayerCost& cost) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.try_emplace(key, cost);
}

void MapCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

void MapCache::reset_counters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

std::size_t MapCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

}  // namespace uld3d::mapper

// The paper's analytical EDP framework (Sec. III, Eqs. 1-8).
//
// Times are in clock cycles, energies in pJ.  2D and M3D designs run at the
// same target frequency (Sec. II: "2D and 3D designs are given identical
// target frequencies"), so cycle ratios equal time ratios and EDP benefits
// are frequency-independent.
#pragma once

#include <cstdint>

#include "uld3d/core/workload.hpp"

namespace uld3d::core {

/// Baseline 2D chip parameters (Fig. 6a).
struct Chip2d {
  double bandwidth_bits_per_cycle = 0.0;  ///< B_2D
  double peak_ops_per_cycle = 0.0;        ///< P_peak of the single CS
  double alpha_pj_per_bit = 0.0;          ///< alpha_2D: memory access energy
  double compute_pj_per_op = 0.0;         ///< E_C
  double cs_idle_pj_per_cycle = 0.0;      ///< E_C^idle
  double mem_idle_pj_per_cycle = 0.0;     ///< E_M,2D^idle
};

/// Iso-footprint, iso-capacity M3D chip parameters (Fig. 6b).
struct Chip3d {
  std::int64_t parallel_cs = 1;           ///< N (Eq. 2)
  double bandwidth_bits_per_cycle = 0.0;  ///< B_3D (total, split N ways)
  double alpha_pj_per_bit = 0.0;          ///< alpha_3D
  double mem_idle_pj_per_cycle = 0.0;     ///< E_M,3D^idle
  // E_C and E_C^idle are inherited from the 2D chip: the parallel CSs are
  // the same Si CMOS design (paper: E_C,3D = E_C,2D).
};

/// Result bundle for one (workload, 2D, 3D) evaluation.
struct EdpResult {
  double t2d_cycles = 0.0;   ///< Eq. (1)
  double t3d_cycles = 0.0;   ///< Eq. (4)
  double speedup = 0.0;      ///< Eq. (5)
  double e2d_pj = 0.0;       ///< Eq. (6)
  double e3d_pj = 0.0;       ///< Eq. (7)
  double energy_ratio = 0.0; ///< E_2D / E_3D (>1 means M3D uses less energy)
  double edp_benefit = 0.0;  ///< Eq. (8) = speedup * E_2D / E_3D
  std::int64_t n_max = 1;    ///< min(N#, N): CSs actually used
};

/// Eq. (1): T_C,2D = max(D0/B_2D, F0/P_peak).
[[nodiscard]] double execution_time_2d(const WorkloadPoint& w, const Chip2d& c);

/// Eq. (4): T_C,3D = max(D0*N/B_3D, F0/(N_max*P_peak)) with
/// N_max = min(N#, N).  The D0*N/B_3D term models the N-way split of B_3D
/// with the workload's traffic replicated to each partition's bank group —
/// the paper's conservative bandwidth assumption.
[[nodiscard]] double execution_time_3d(const WorkloadPoint& w, const Chip2d& c2,
                                       const Chip3d& c3);

/// Eq. (6): total 2D energy.
[[nodiscard]] double energy_2d(const WorkloadPoint& w, const Chip2d& c);

/// Eq. (7): total M3D energy, as printed in the paper (the unused
/// (N - N_max) CSs are charged idle for all of T_3D, and all N CSs are
/// charged idle for the compute slack).
[[nodiscard]] double energy_3d(const WorkloadPoint& w, const Chip2d& c2,
                               const Chip3d& c3);

/// Eqs. (5) and (8) bundled: speedup, energies, EDP benefit.
[[nodiscard]] EdpResult evaluate_edp(const WorkloadPoint& w, const Chip2d& c2,
                                     const Chip3d& c3);

/// Aggregate per-layer results into a whole-network result: cycles and
/// energies add; speedup/EDP recomputed from the sums.
[[nodiscard]] EdpResult combine_results(const std::vector<EdpResult>& results);

}  // namespace uld3d::core

// Thermal model for stacked M3D tiers (paper Eq. 17, Observations 2 & 10).
//
//   Temp_rise = sum_{i=1..Y} ( (sum_{j=1..i} R_j) + R_0 ) * P_i
//
// where R_0 is the heat-sink resistance to ambient, R_j the vertical thermal
// resistance added by the j-th interleaved tier pair, and P_i the power of
// the i-th pair (compute + memory).
#pragma once

#include <cstdint>
#include <vector>

namespace uld3d::core {

/// One interleaved compute+memory tier pair.
struct ThermalTier {
  double resistance_k_per_w = 0.0;  ///< R_j: added vertical resistance
  double power_w = 0.0;             ///< P_j = P_C,j + P_M,j
};

/// A stack of tier pairs above a heat sink.
class ThermalStack {
 public:
  explicit ThermalStack(double sink_resistance_k_per_w);

  /// Add the next tier pair on top.
  void add_tier(ThermalTier tier);

  [[nodiscard]] std::size_t tier_count() const { return tiers_.size(); }
  [[nodiscard]] double sink_resistance() const { return r0_; }

  /// Eq. (17): total temperature rise of the hottest (top) tier.
  [[nodiscard]] double temperature_rise_k() const;

  /// Throws StatusError(kThermalLimit) when the stack's rise exceeds
  /// `max_rise_k` (the typical budget is ~60 K [20]); otherwise returns the
  /// rise.  Lets sweep evaluators turn a thermal violation into a recorded
  /// per-point failure instead of a silent out-of-budget design.
  double require_within_budget(double max_rise_k) const;

  /// Largest Y such that a uniform stack of `per_tier` pairs stays within
  /// `max_rise_k` (Observation 10; typical budget ~60 K [20]).
  [[nodiscard]] static std::int64_t max_tier_pairs(double sink_resistance_k_per_w,
                                                   const ThermalTier& per_tier,
                                                   double max_rise_k);

 private:
  double r0_;
  std::vector<ThermalTier> tiers_;
};

}  // namespace uld3d::core

// Case 1 / Case 2 of the paper (Sec. III-D/E, Eqs. 9-12).
//
// When the M3D memory access FETs are width-relaxed by delta (Case 1), or
// the ILV via pitch grows by beta (Case 2), the M3D cell array grows.  To
// keep the comparison iso-footprint and iso-capacity, both chips grow to the
// M3D cell-array size, and the now-larger 2D baseline is re-optimized with
// extra parallel CSs of its own (Eq. 9).  This module evaluates the
// resulting M3D-vs-new-2D EDP benefit (Eqs. 10-12).
#pragma once

#include <cstdint>

#include "uld3d/core/area_model.hpp"
#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/workload.hpp"

namespace uld3d::core {

/// Outcome of re-optimizing both chips for a grown M3D cell array.
struct RelaxedDesignPoint {
  double m3d_cells_area_um2 = 0.0;  ///< A_M,3D^cells = (area scale) * A_M,2D^cells
  double footprint_um2 = 0.0;       ///< common footprint of both chips
  std::int64_t n_2d = 1;            ///< parallel CSs in the re-optimized 2D chip
  std::int64_t n_3d = 1;            ///< parallel CSs in the M3D chip
};

/// Compute the Case-1/Case-2 design point for a given M3D cell-array area
/// scale factor (delta for Case 1, or the via-pitch-induced growth for
/// Case 2; 1.0 = no relaxation).
///
/// Eq. (9): the grown footprint hosts
///   N_2D = 1 + floor(max(scale*A_cells - A_2D, 0) / A_C)
/// CSs in the 2D baseline (the original CS plus any that fit in the added
/// area), while the M3D chip hosts N_3D = 1 + floor(scale*A_cells_freed/A_C)
/// since the whole (grown) array still frees its Si footprint.
[[nodiscard]] RelaxedDesignPoint relaxed_design_point(const AreaModel& area,
                                                      double cell_area_scale);

/// Per-CS bandwidth model for the relaxed comparison: both chips keep the
/// same per-bank bandwidth; total bandwidth scales with each chip's CS
/// count (each CS gets a bank group), matching the Sec.-II methodology.
struct RelaxedBandwidth {
  double per_cs_bits_per_cycle = 0.0;
};

/// Eqs. (10)-(12): EDP benefit of the M3D chip vs. the re-optimized larger
/// 2D baseline.  The new 2D chip runs the workload on N_max,2D = min(N#,
/// N_2D) CSs with bandwidth N_2D-way-partitioned, mirroring Eq. (4)'s form.
[[nodiscard]] EdpResult evaluate_relaxed_edp(const WorkloadPoint& w,
                                             const Chip2d& c2,
                                             const RelaxedDesignPoint& point,
                                             const RelaxedBandwidth& bw);

}  // namespace uld3d::core

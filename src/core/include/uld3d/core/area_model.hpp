// Chip area decomposition (paper Sec. III, Fig. 6a).
//
// The baseline 2D chip of total area A_2D consists of one computing
// sub-system (CS) of area A_C, memory cell arrays A_M^cells, memory
// peripherals A_M^perif, and buses/IO A_bus.  The two ratios
//   gamma_cells = A_M^cells / A_C      (Eq. 2's driver)
//   gamma_perif = A_M^perif / A_C      (Case 3)
// determine how many parallel CSs an iso-footprint M3D chip can host.
#pragma once

#include <cstdint>

namespace uld3d::core {

/// Area breakdown of the baseline 2D chip.  All areas in um^2.
struct AreaModel {
  double cs_area_um2 = 0.0;          ///< A_C,2D: one computing sub-system
  double mem_cells_area_um2 = 0.0;   ///< A_M,2D^cells: RRAM cell arrays
  double mem_perif_area_um2 = 0.0;   ///< A_M,2D^perif: sense amps, controllers
  double bus_area_um2 = 0.0;         ///< A_bus,2D: system buses and IO

  /// gamma_2D^cells = A_M^cells / A_C.
  [[nodiscard]] double gamma_cells() const;
  /// gamma_2D^perif = A_M^perif / A_C.
  [[nodiscard]] double gamma_perif() const;
  /// A_2D: total chip footprint.
  [[nodiscard]] double total_area_um2() const;

  /// Number of parallel CSs the iso-footprint M3D chip hosts (paper Eq. 2):
  /// the original CS plus one per CS-sized chunk of Si area freed below the
  /// RRAM arrays.  The paper's bracket is interpreted as the physical
  /// packing bound floor(1 + gamma_cells): a fractional CS cannot be placed.
  [[nodiscard]] std::int64_t m3d_parallel_cs() const;

  /// Eq. (2) generalised: parallel CSs when only `usable_fraction` of the
  /// freed Si area is actually placeable (peripheral blockages, routing
  /// keep-outs found during physical design).
  [[nodiscard]] std::int64_t m3d_parallel_cs(double usable_fraction) const;

  /// Validate invariants (all areas non-negative, CS area positive).
  void validate() const;
};

}  // namespace uld3d::core

// Workload abstraction for the analytical framework (paper Sec. III-A).
//
// A workload point is the (F0, D0, N#) triple of the paper: F0 compute
// operations over D0 bits of on-chip memory traffic, partitionable into at
// most N# parallel pieces.  Helpers derive workload points from nn::Layer /
// nn::Network, where D0 counts the RRAM/global-buffer traffic of one
// inference: weight reads plus input reads plus output writes.
#pragma once

#include <cstdint>
#include <vector>

#include "uld3d/nn/network.hpp"

namespace uld3d::core {

/// The paper's (F0, D0, N#).
struct WorkloadPoint {
  double f0_ops = 0.0;          ///< compute operations
  double d0_bits = 0.0;         ///< on-chip memory traffic in bits
  std::int64_t max_partitions = 1;  ///< N#: maximum parallel partitions
  /// Portion of D0 that every parallel partition must fetch in full (e.g.
  /// the input map of a K-partitioned conv).  The remainder splits across
  /// partitions.  Negative (the default) means ALL of D0 is replicated —
  /// the paper's conservative Eq. (4) written exactly as printed.
  double d0_shared_bits = -1.0;

  /// Replicated traffic bits (resolves the -1 default to d0_bits).
  [[nodiscard]] double shared_bits() const {
    return d0_shared_bits < 0.0 ? d0_bits : d0_shared_bits;
  }

  /// Operational intensity, ops per bit.
  [[nodiscard]] double intensity() const {
    return d0_bits > 0.0 ? f0_ops / d0_bits : 0.0;
  }
};

/// How a layer's traffic is charged when deriving D0.
struct TrafficOptions {
  int weight_bits = 8;       ///< weight precision
  int activation_bits = 8;   ///< activation precision
  bool count_weights = true;
  bool count_inputs = true;
  bool count_outputs = true;
  /// RRAM writes occupy the port longer than reads; output bits are charged
  /// at this weight so D0/B matches the accelerator's real port occupancy.
  double output_write_weight = 4.0;
};

/// How a layer can be split across parallel CSs, mirroring the Sec.-II
/// accelerator's mapping (see sim::AcceleratorConfig for the same choices).
struct PartitionOptions {
  std::int64_t array_cols = 16;   ///< K spatial unrolling (tile width)
  std::int64_t array_rows = 16;   ///< C spatial unrolling (tile height)
  std::int64_t spatial_ox = 1;    ///< OX spatial unrolling
  std::int64_t spatial_oy = 1;    ///< OY spatial unrolling
  bool serial_vector_unit = true; ///< pool/eltwise run on one shared unit
  bool ds_c_partition = true;     ///< strided 1x1 convs partition over C
  /// Small-C layers pack several filter taps into the C dimension (the
  /// Sec.-II channel-packing optimization); affects utilization only.
  bool channel_tap_packing = true;
  /// When true, convolutions may also partition across output rows (hybrid
  /// K x OY splits, a mapping freedom DSE tools like ZigZag explore):
  /// N# = ceil(K/cols) * ceil(OY/spatial_oy) and traffic splits cleanly, so
  /// nothing is replicated.  The fixed Sec.-II SoC keeps this false.
  bool hybrid_pixel_partition = false;
};

/// Spatial PE utilization of a conv under `part`'s unrolling.  F0 is charged
/// as ops/utilization ("effective ops"): idle PE slots still take cycles,
/// exactly as an architectural simulator like ZigZag accounts them.
[[nodiscard]] double conv_spatial_utilization(const nn::ConvSpec& conv,
                                              const PartitionOptions& part);

/// D0 for one layer under `opts` (weights + inputs + weighted outputs).
[[nodiscard]] double layer_traffic_bits(const nn::Layer& layer,
                                        const TrafficOptions& opts);

/// Workload point for one layer.  N# follows `part`: ceil(K/array_cols) for
/// convolutions (K-partitioned systolic mapping), ceil(C/array_rows) for
/// strided 1x1 projections when ds_c_partition is set, and 1 (or the channel
/// count) for pool/eltwise layers depending on serial_vector_unit.
[[nodiscard]] WorkloadPoint layer_workload(const nn::Layer& layer,
                                           const TrafficOptions& opts,
                                           const PartitionOptions& part);

/// Aggregate workload point of a full network: F0 and D0 sum over layers;
/// N# is the compute-weighted effective partition bound, i.e. the N# that a
/// single max() roofline over the whole network behaves as.
[[nodiscard]] WorkloadPoint network_workload(const nn::Network& net,
                                             const TrafficOptions& opts,
                                             const PartitionOptions& part);

/// Per-layer workload points for a network (same order as net.layers()).
[[nodiscard]] std::vector<WorkloadPoint> layer_workloads(
    const nn::Network& net, const TrafficOptions& opts,
    const PartitionOptions& part);

/// A synthetic workload with a given operational intensity (ops/bit), used
/// by the Fig.-8 sweeps: D0 fixed at `d0_bits`, F0 = intensity * D0.
[[nodiscard]] WorkloadPoint synthetic_workload(double ops_per_bit,
                                               double d0_bits,
                                               std::int64_t max_partitions);

}  // namespace uld3d::core

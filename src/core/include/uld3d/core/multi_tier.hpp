// Case 3 of the paper (Sec. III-F): multiple interleaved compute & memory
// tiers.  With Y interleaved pairs of compute and memory tiers, and each
// memory tier carrying its own peripherals/controllers and IO, the M3D chip
// hosts N = Y * floor(1 + gamma_cells + gamma_perif) parallel CSs.
#pragma once

#include <cstdint>

#include "uld3d/core/area_model.hpp"
#include "uld3d/core/edp_model.hpp"

namespace uld3d::core {

/// Parallel CS count of a Y-pair interleaved M3D chip (paper Sec. III-F).
/// Each added compute tier contributes a full footprint of CS area, and each
/// memory tier moves both its cells AND its peripherals off the tier below.
[[nodiscard]] std::int64_t multi_tier_parallel_cs(const AreaModel& area,
                                                  std::int64_t tier_pairs);

/// Evaluate the Case-3 EDP benefit of a Y-pair M3D chip vs. the 2D baseline.
/// Bandwidth scales with the CS count (each memory tier brings its own
/// peripherals, so every CS keeps a private bank group at `per_cs_bw`).
/// Memory idle energy scales with Y (each tier's peripherals leak).
[[nodiscard]] EdpResult evaluate_multi_tier_edp(const WorkloadPoint& w,
                                                const Chip2d& c2,
                                                const AreaModel& area,
                                                std::int64_t tier_pairs,
                                                double per_cs_bw_bits_per_cycle);

}  // namespace uld3d::core

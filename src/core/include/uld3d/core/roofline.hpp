// Gables-style roofline model [12] — the foundation under the paper's
// Eq. 1.  A Roofline is a (peak throughput, memory bandwidth) pair; the
// attainable throughput of a workload with operational intensity I is
// min(P_peak, B * I).  Gables extends this to an SoC of heterogeneous
// accelerators sharing memory bandwidth; the paper's N-parallel-CS M3D chip
// is the homogeneous special case.
#pragma once

#include <cstdint>
#include <vector>

#include "uld3d/core/workload.hpp"

namespace uld3d::core {

/// A single-accelerator roofline.
struct Roofline {
  double peak_ops_per_cycle = 0.0;       ///< P_peak
  double bandwidth_bits_per_cycle = 0.0; ///< B

  /// Attainable throughput (ops/cycle) at operational intensity I (ops/bit).
  [[nodiscard]] double attainable_ops_per_cycle(double intensity) const;

  /// The ridge point: the intensity where compute and memory balance.
  [[nodiscard]] double ridge_intensity() const;

  /// Execution time (cycles) of a workload — exactly the paper's Eq. 1.
  [[nodiscard]] double execution_time_cycles(const WorkloadPoint& w) const;

  /// True when the workload sits left of the ridge (bandwidth-limited).
  [[nodiscard]] bool memory_bound(const WorkloadPoint& w) const;
};

/// One IP block of a Gables SoC: its share of compute plus the fraction of
/// the workload it executes.
struct GablesIp {
  Roofline roofline;            ///< the IP's private roofline
  double work_fraction = 1.0;   ///< share of F0 (and D0) mapped to this IP
};

/// A Gables SoC: IPs run concurrently but share `shared_bandwidth` to
/// memory; each IP is additionally capped by its private roofline.
class GablesSoc {
 public:
  explicit GablesSoc(double shared_bandwidth_bits_per_cycle);

  void add_ip(GablesIp ip);
  [[nodiscard]] std::size_t ip_count() const { return ips_.size(); }

  /// Execution time of `w`: all IPs start together; the SoC finishes when
  /// the slowest IP finishes; memory time is the shared-bandwidth bound.
  [[nodiscard]] double execution_time_cycles(const WorkloadPoint& w) const;

  /// The paper's M3D chip as a Gables SoC: n identical CSs, each taking
  /// 1/n of the work, with per-CS bandwidth `B3D / n`.
  [[nodiscard]] static GablesSoc homogeneous(std::int64_t n,
                                             const Roofline& per_cs,
                                             double shared_bandwidth);

 private:
  double shared_bandwidth_;
  std::vector<GablesIp> ips_;
};

}  // namespace uld3d::core

// The "M3D folding" baseline the paper argues against (Sec. I, refs [3-4]):
// keep the architecture fixed and fold its physical design across two (or
// more) device tiers.  Folding halves the footprint and shortens wires by
// ~1/sqrt(tiers), which trims wire energy and allows a slightly faster
// clock — but touches neither parallelism nor bandwidth, so the EDP benefit
// saturates around 1.1-1.4x.  This module quantifies that ceiling so the
// architectural design points (5x-11x) can be contrasted against it.
#pragma once

#include <cstdint>

namespace uld3d::core {

/// Energy/delay composition of the design being folded.
struct FoldingInputs {
  int tiers = 2;                     ///< device tiers the logic folds across
  double wire_energy_fraction = 0.30;  ///< share of dynamic energy in wires
  double wire_delay_fraction = 0.35;   ///< share of the critical path in wires
  /// Placement overhead recovered by folding (the ~50% footprint reduction
  /// reported by the RTL-to-GDS folding flows [3-4] also removes whitespace
  /// and buffer stages).
  double buffer_energy_fraction = 0.05;
};

/// Outcome of folding: all values are ratios vs. the unfolded 2D design.
struct FoldingBenefit {
  double footprint_ratio = 1.0;   ///< ~1/tiers
  double wirelength_ratio = 1.0;  ///< ~1/sqrt(tiers)
  double energy_ratio = 1.0;      ///< < 1: wire + buffer energy savings
  double delay_ratio = 1.0;       ///< < 1: wire-delay savings
  double edp_benefit = 1.0;       ///< 1 / (energy_ratio * delay_ratio)
};

/// Evaluate the folding-only benefit (paper expectation: ~1.1-1.4x for
/// tiers = 2, cf. [3-4]).
[[nodiscard]] FoldingBenefit evaluate_folding(const FoldingInputs& inputs);

}  // namespace uld3d::core

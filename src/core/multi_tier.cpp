#include "uld3d/core/multi_tier.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::core {

std::int64_t multi_tier_parallel_cs(const AreaModel& area,
                                    std::int64_t tier_pairs) {
  area.validate();
  expects(tier_pairs >= 1, "at least one compute/memory tier pair");
  if (tier_pairs == 1) {
    // Y = 1 is the Sec.-II configuration: peripherals stay in the Si tier
    // (they are NOT freed), so only gamma_cells contributes.
    return area.m3d_parallel_cs();
  }
  // Y >= 2: each memory tier has its own peripherals/controllers and IO on
  // its companion tier, so the full (cells + peripherals) footprint converts
  // to CS-capable area on every pair (paper: N = Y*[1 + g_cells + g_perif]).
  const double per_pair = 1.0 + area.gamma_cells() + area.gamma_perif();
  return tier_pairs *
         static_cast<std::int64_t>(std::floor(per_pair + 1e-9));
}

EdpResult evaluate_multi_tier_edp(const WorkloadPoint& w, const Chip2d& c2,
                                  const AreaModel& area,
                                  std::int64_t tier_pairs,
                                  double per_cs_bw_bits_per_cycle) {
  expects(per_cs_bw_bits_per_cycle > 0.0, "per-CS bandwidth must be positive");
  Chip3d c3;
  c3.parallel_cs = multi_tier_parallel_cs(area, tier_pairs);
  c3.bandwidth_bits_per_cycle =
      per_cs_bw_bits_per_cycle * static_cast<double>(c3.parallel_cs);
  c3.alpha_pj_per_bit = c2.alpha_pj_per_bit * 0.97;
  c3.mem_idle_pj_per_cycle =
      c2.mem_idle_pj_per_cycle * static_cast<double>(tier_pairs);
  return evaluate_edp(w, c2, c3);
}

}  // namespace uld3d::core

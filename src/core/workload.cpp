#include "uld3d/core/workload.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::core {

double layer_traffic_bits(const nn::Layer& layer, const TrafficOptions& opts) {
  expects(opts.output_write_weight >= 1.0, "write weight must be >= 1");
  double bits = 0.0;
  if (opts.count_weights) {
    bits += static_cast<double>(layer.weight_bits(opts.weight_bits));
  }
  if (opts.count_inputs) {
    bits += static_cast<double>(layer.input_bits(opts.activation_bits));
  }
  if (opts.count_outputs) {
    bits += opts.output_write_weight *
            static_cast<double>(layer.output_bits(opts.activation_bits));
  }
  return bits;
}

namespace {
double fill(std::int64_t dim, std::int64_t unroll) {
  return static_cast<double>(dim) /
         static_cast<double>(ceil_div(dim, unroll) * unroll);
}
}  // namespace

double conv_spatial_utilization(const nn::ConvSpec& conv,
                                const PartitionOptions& part) {
  double c_fill = 0.0;
  if (part.channel_tap_packing && conv.c < part.array_rows) {
    const std::int64_t taps = conv.fx * conv.fy;
    const std::int64_t packed =
        std::min<std::int64_t>(taps, part.array_rows / conv.c);
    c_fill = std::min<double>(
        1.0, static_cast<double>(conv.c * packed) /
                 static_cast<double>(part.array_rows));
  } else {
    c_fill = fill(conv.c, part.array_rows);
  }
  return fill(conv.k, part.array_cols) * c_fill *
         fill(conv.ox, part.spatial_ox) * fill(conv.oy, part.spatial_oy);
}

WorkloadPoint layer_workload(const nn::Layer& layer, const TrafficOptions& opts,
                             const PartitionOptions& part) {
  expects(part.array_cols >= 1 && part.array_rows >= 1 &&
              part.spatial_ox >= 1 && part.spatial_oy >= 1,
          "array dimensions must be >= 1");
  WorkloadPoint w;
  w.f0_ops = static_cast<double>(layer.ops());
  w.d0_bits = layer_traffic_bits(layer, opts);
  if (layer.is_conv()) {
    w.f0_ops /= conv_spatial_utilization(layer.conv(), part);
  }
  if (layer.is_conv()) {
    const auto& c = layer.conv();
    const bool ds = part.ds_c_partition && c.fx == 1 && c.fy == 1 &&
                    c.stride > 1 && c.c > part.array_rows;
    if (ds) {
      // C-partitioning splits weights AND inputs; nothing is replicated.
      w.max_partitions = ceil_div(c.c, part.array_rows);
      w.d0_shared_bits = 0.0;
    } else if (part.hybrid_pixel_partition) {
      // Hybrid K x OY partitioning: weights split along K, inputs along OY;
      // to first order nothing is replicated.
      w.max_partitions =
          ceil_div(c.k, part.array_cols) * ceil_div(c.oy, part.spatial_oy);
      w.d0_shared_bits = 0.0;
    } else {
      // K-partitioning replicates the input map to every partition.
      w.max_partitions = ceil_div(c.k, part.array_cols);
      w.d0_shared_bits = opts.count_inputs
                             ? static_cast<double>(
                                   layer.input_bits(opts.activation_bits))
                             : 0.0;
    }
  } else if (part.serial_vector_unit) {
    w.max_partitions = 1;
  } else {
    w.max_partitions =
        layer.is_pool() ? layer.pool().channels : layer.eltwise().channels;
  }
  w.max_partitions = std::max<std::int64_t>(1, w.max_partitions);
  return w;
}

WorkloadPoint network_workload(const nn::Network& net,
                               const TrafficOptions& opts,
                               const PartitionOptions& part) {
  WorkloadPoint total;
  // Effective N# of the whole network: with per-layer compute times t_l and
  // partition bounds n_l, the parallel execution takes sum(t_l / n_l), so the
  // network behaves as the compute-weighted harmonic mean of the n_l.
  double weighted_inverse = 0.0;
  total.d0_shared_bits = 0.0;
  for (const auto& layer : net.layers()) {
    const WorkloadPoint w = layer_workload(layer, opts, part);
    total.f0_ops += w.f0_ops;
    total.d0_bits += w.d0_bits;
    total.d0_shared_bits += w.shared_bits();
    weighted_inverse += w.f0_ops / static_cast<double>(w.max_partitions);
  }
  expects(total.f0_ops > 0.0, "network has no compute");
  const double harmonic = total.f0_ops / weighted_inverse;
  total.max_partitions = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(harmonic)));
  return total;
}

std::vector<WorkloadPoint> layer_workloads(const nn::Network& net,
                                           const TrafficOptions& opts,
                                           const PartitionOptions& part) {
  std::vector<WorkloadPoint> points;
  points.reserve(net.size());
  for (const auto& layer : net.layers()) {
    points.push_back(layer_workload(layer, opts, part));
  }
  return points;
}

WorkloadPoint synthetic_workload(double ops_per_bit, double d0_bits,
                                 std::int64_t max_partitions) {
  expects(ops_per_bit > 0.0 && d0_bits > 0.0, "workload must be non-trivial");
  expects(max_partitions >= 1, "N# >= 1");
  WorkloadPoint w;
  w.d0_bits = d0_bits;
  w.f0_ops = ops_per_bit * d0_bits;
  w.max_partitions = max_partitions;
  return w;
}

}  // namespace uld3d::core

#include "uld3d/core/area_model.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::core {

double AreaModel::gamma_cells() const {
  validate();
  return mem_cells_area_um2 / cs_area_um2;
}

double AreaModel::gamma_perif() const {
  validate();
  return mem_perif_area_um2 / cs_area_um2;
}

double AreaModel::total_area_um2() const {
  validate();
  return cs_area_um2 + mem_cells_area_um2 + mem_perif_area_um2 + bus_area_um2;
}

std::int64_t AreaModel::m3d_parallel_cs() const {
  return m3d_parallel_cs(1.0);
}

std::int64_t AreaModel::m3d_parallel_cs(double usable_fraction) const {
  validate();
  expects(usable_fraction > 0.0 && usable_fraction <= 1.0,
          "usable fraction must be in (0, 1]");
  const double n = 1.0 + usable_fraction * gamma_cells();
  // floor with a tiny epsilon so e.g. gamma = 7.0 - 1e-15 still yields 8.
  return static_cast<std::int64_t>(std::floor(n + 1e-9));
}

void AreaModel::validate() const {
  expects(cs_area_um2 > 0.0, "CS area must be positive");
  expects(mem_cells_area_um2 >= 0.0 && mem_perif_area_um2 >= 0.0 &&
              bus_area_um2 >= 0.0,
          "areas must be non-negative");
}

}  // namespace uld3d::core

#include "uld3d/core/folding.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::core {

FoldingBenefit evaluate_folding(const FoldingInputs& in) {
  expects(in.tiers >= 1, "tier count must be >= 1");
  expects(in.wire_energy_fraction >= 0.0 && in.wire_energy_fraction < 1.0,
          "wire energy fraction must be in [0, 1)");
  expects(in.wire_delay_fraction >= 0.0 && in.wire_delay_fraction < 1.0,
          "wire delay fraction must be in [0, 1)");
  expects(in.buffer_energy_fraction >= 0.0 &&
              in.wire_energy_fraction + in.buffer_energy_fraction < 1.0,
          "energy fractions must leave room for logic energy");

  FoldingBenefit b;
  b.footprint_ratio = 1.0 / static_cast<double>(in.tiers);
  b.wirelength_ratio = 1.0 / std::sqrt(static_cast<double>(in.tiers));

  // Wire energy scales with length (capacitance); buffers scale away with
  // the wire they repeat; cell energy is untouched.
  b.energy_ratio =
      (1.0 - in.wire_energy_fraction - in.buffer_energy_fraction) +
      (in.wire_energy_fraction + in.buffer_energy_fraction) *
          b.wirelength_ratio;

  // Buffered global wire delay is ~linear in length; logic delay fixed.
  b.delay_ratio = (1.0 - in.wire_delay_fraction) +
                  in.wire_delay_fraction * b.wirelength_ratio;

  b.edp_benefit = 1.0 / (b.energy_ratio * b.delay_ratio);
  return b;
}

}  // namespace uld3d::core

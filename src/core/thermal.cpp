#include "uld3d/core/thermal.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::core {

ThermalStack::ThermalStack(double sink_resistance_k_per_w)
    : r0_(sink_resistance_k_per_w) {
  expects(std::isfinite(r0_), "sink resistance must be finite");
  expects(r0_ >= 0.0, "sink resistance must be non-negative");
}

void ThermalStack::add_tier(ThermalTier tier) {
  expects(std::isfinite(tier.resistance_k_per_w) && std::isfinite(tier.power_w),
          "tier resistance and power must be finite");
  expects(tier.resistance_k_per_w >= 0.0, "tier resistance must be non-negative");
  expects(tier.power_w >= 0.0, "tier power must be non-negative");
  tiers_.push_back(tier);
}

double ThermalStack::temperature_rise_k() const {
  // Eq. (17): each tier's power flows down through all tiers beneath it and
  // the sink.  Accumulate the prefix resistance while walking up the stack.
  double rise = 0.0;
  double prefix_r = 0.0;
  for (const auto& tier : tiers_) {
    prefix_r += tier.resistance_k_per_w;
    rise += (prefix_r + r0_) * tier.power_w;
  }
  return rise;
}

double ThermalStack::require_within_budget(double max_rise_k) const {
  expects(max_rise_k > 0.0, "thermal budget must be positive");
  fault_site("core.thermal.budget");
  const double rise = require_finite(temperature_rise_k(), "temperature rise");
  if (rise > max_rise_k) {
    throw StatusError(
        Failure(ErrorCode::kThermalLimit,
                "stack temperature rise exceeds the thermal budget")
            .with("rise_k", rise)
            .with("budget_k", max_rise_k)
            .with("tiers", static_cast<std::int64_t>(tiers_.size())));
  }
  return rise;
}

std::int64_t ThermalStack::max_tier_pairs(double sink_resistance_k_per_w,
                                          const ThermalTier& per_tier,
                                          double max_rise_k) {
  expects(max_rise_k > 0.0, "thermal budget must be positive");
  expects(per_tier.power_w > 0.0,
          "per-tier power must be positive for a meaningful bound");
  ThermalStack stack(sink_resistance_k_per_w);
  std::int64_t y = 0;
  // The rise grows quadratically in Y, so this loop terminates quickly.
  while (true) {
    stack.add_tier(per_tier);
    if (stack.temperature_rise_k() > max_rise_k) return y;
    ++y;
    ensures(y < 100000, "thermal bound failed to converge");
  }
}

}  // namespace uld3d::core

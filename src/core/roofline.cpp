#include "uld3d/core/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::core {

double Roofline::attainable_ops_per_cycle(double intensity) const {
  expects(peak_ops_per_cycle > 0.0 && bandwidth_bits_per_cycle > 0.0,
          "roofline parameters must be positive");
  expects(intensity >= 0.0, "intensity must be non-negative");
  return std::min(peak_ops_per_cycle, bandwidth_bits_per_cycle * intensity);
}

double Roofline::ridge_intensity() const {
  expects(bandwidth_bits_per_cycle > 0.0, "bandwidth must be positive");
  return peak_ops_per_cycle / bandwidth_bits_per_cycle;
}

double Roofline::execution_time_cycles(const WorkloadPoint& w) const {
  expects(peak_ops_per_cycle > 0.0 && bandwidth_bits_per_cycle > 0.0,
          "roofline parameters must be positive");
  return require_finite(std::max(w.d0_bits / bandwidth_bits_per_cycle,
                                 w.f0_ops / peak_ops_per_cycle),
                        "roofline execution time");
}

bool Roofline::memory_bound(const WorkloadPoint& w) const {
  return w.d0_bits / bandwidth_bits_per_cycle >
         w.f0_ops / peak_ops_per_cycle;
}

GablesSoc::GablesSoc(double shared_bandwidth_bits_per_cycle)
    : shared_bandwidth_(shared_bandwidth_bits_per_cycle) {
  expects(shared_bandwidth_ > 0.0, "shared bandwidth must be positive");
}

void GablesSoc::add_ip(GablesIp ip) {
  expects(ip.work_fraction > 0.0 && ip.work_fraction <= 1.0,
          "work fraction must be in (0, 1]");
  expects(ip.roofline.peak_ops_per_cycle > 0.0 &&
              ip.roofline.bandwidth_bits_per_cycle > 0.0,
          "IP roofline must be positive");
  ips_.push_back(ip);
}

double GablesSoc::execution_time_cycles(const WorkloadPoint& w) const {
  expects(!ips_.empty(), "a Gables SoC needs at least one IP");
  // Each IP executes its slice under its private roofline; the SoC-level
  // memory system additionally bounds the total traffic.
  double slowest_ip = 0.0;
  for (const auto& ip : ips_) {
    WorkloadPoint slice = w;
    slice.f0_ops = w.f0_ops * ip.work_fraction;
    slice.d0_bits = w.d0_bits * ip.work_fraction;
    slowest_ip = std::max(slowest_ip, ip.roofline.execution_time_cycles(slice));
  }
  const double shared_memory_time = w.d0_bits / shared_bandwidth_;
  return require_finite(std::max(slowest_ip, shared_memory_time),
                        "Gables SoC execution time");
}

GablesSoc GablesSoc::homogeneous(std::int64_t n, const Roofline& per_cs,
                                 double shared_bandwidth) {
  expects(n >= 1, "need at least one CS");
  GablesSoc soc(shared_bandwidth);
  for (std::int64_t i = 0; i < n; ++i) {
    soc.add_ip({per_cs, 1.0 / static_cast<double>(n)});
  }
  return soc;
}

}  // namespace uld3d::core

#include "uld3d/core/edp_model.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::core {

namespace {

void validate(const WorkloadPoint& w) {
  expects(std::isfinite(w.f0_ops) && std::isfinite(w.d0_bits),
          "workload must be finite");
  expects(w.f0_ops >= 0.0 && w.d0_bits >= 0.0, "workload must be non-negative");
  expects(w.f0_ops > 0.0 || w.d0_bits > 0.0, "workload must be non-trivial");
  expects(w.max_partitions >= 1, "N# >= 1");
}

void validate(const Chip2d& c) {
  expects(c.bandwidth_bits_per_cycle > 0.0, "B_2D must be positive");
  expects(c.peak_ops_per_cycle > 0.0, "P_peak must be positive");
  expects(c.alpha_pj_per_bit >= 0.0 && c.compute_pj_per_op >= 0.0 &&
              c.cs_idle_pj_per_cycle >= 0.0 && c.mem_idle_pj_per_cycle >= 0.0,
          "energies must be non-negative");
}

void validate(const Chip3d& c) {
  expects(c.parallel_cs >= 1, "N >= 1");
  expects(c.bandwidth_bits_per_cycle > 0.0, "B_3D must be positive");
  expects(c.alpha_pj_per_bit >= 0.0 && c.mem_idle_pj_per_cycle >= 0.0,
          "energies must be non-negative");
}

std::int64_t n_max(const WorkloadPoint& w, const Chip3d& c3) {
  return std::min<std::int64_t>(w.max_partitions, c3.parallel_cs);
}

}  // namespace

double execution_time_2d(const WorkloadPoint& w, const Chip2d& c) {
  validate(w);
  validate(c);
  return std::max(w.d0_bits / c.bandwidth_bits_per_cycle,
                  w.f0_ops / c.peak_ops_per_cycle);
}

/// Memory term of Eq. (4): each of the N_max active partitions reads the
/// shared traffic in full plus its 1/N_max slice of the private traffic,
/// through its B_3D/N share of the bandwidth.  With everything shared (the
/// default WorkloadPoint) this is exactly the paper's D0*N/B_3D.
namespace {
double memory_time_3d(const WorkloadPoint& w, const Chip3d& c3) {
  const double n = static_cast<double>(c3.parallel_cs);
  const double nm = static_cast<double>(
      std::min<std::int64_t>(w.max_partitions, c3.parallel_cs));
  const double shared = w.shared_bits();
  const double per_partition = shared + (w.d0_bits - shared) / nm;
  return per_partition * n / c3.bandwidth_bits_per_cycle;
}
}  // namespace

double execution_time_3d(const WorkloadPoint& w, const Chip2d& c2,
                         const Chip3d& c3) {
  validate(w);
  validate(c2);
  validate(c3);
  const double nm = static_cast<double>(n_max(w, c3));
  const double compute = w.f0_ops / (nm * c2.peak_ops_per_cycle);
  return std::max(memory_time_3d(w, c3), compute);
}

double energy_2d(const WorkloadPoint& w, const Chip2d& c) {
  const double t = execution_time_2d(w, c);
  const double mem_busy = w.d0_bits / c.bandwidth_bits_per_cycle;
  const double compute_busy = w.f0_ops / c.peak_ops_per_cycle;
  return c.alpha_pj_per_bit * w.d0_bits +
         c.mem_idle_pj_per_cycle * (t - mem_busy) +
         c.cs_idle_pj_per_cycle * (t - compute_busy) +
         c.compute_pj_per_op * w.f0_ops;
}

double energy_3d(const WorkloadPoint& w, const Chip2d& c2, const Chip3d& c3) {
  const double t = execution_time_3d(w, c2, c3);
  const double n = static_cast<double>(c3.parallel_cs);
  const double nm = static_cast<double>(n_max(w, c3));
  const double mem_busy = memory_time_3d(w, c3);
  const double compute_busy = w.f0_ops / (nm * c2.peak_ops_per_cycle);
  return c3.alpha_pj_per_bit * w.d0_bits +
         c3.mem_idle_pj_per_cycle * (t - mem_busy) +
         (n - nm) * c2.cs_idle_pj_per_cycle * t +
         n * c2.cs_idle_pj_per_cycle * (t - compute_busy) +
         c2.compute_pj_per_op * w.f0_ops;
}

EdpResult evaluate_edp(const WorkloadPoint& w, const Chip2d& c2,
                       const Chip3d& c3) {
  fault_site("core.edp.evaluate");
  EdpResult r;
  r.t2d_cycles = require_finite(execution_time_2d(w, c2), "T_2D");
  r.t3d_cycles = require_finite(execution_time_3d(w, c2, c3), "T_3D");
  r.speedup = require_finite(r.t2d_cycles / r.t3d_cycles, "speedup");
  r.e2d_pj = require_finite(energy_2d(w, c2), "E_2D");
  r.e3d_pj = require_finite(energy_3d(w, c2, c3), "E_3D");
  r.energy_ratio = require_finite(r.e2d_pj / r.e3d_pj, "energy ratio");
  r.edp_benefit = require_finite(r.speedup * r.energy_ratio, "EDP benefit");
  r.n_max = n_max(w, c3);
  return r;
}

EdpResult combine_results(const std::vector<EdpResult>& results) {
  expects(!results.empty(), "cannot combine zero results");
  EdpResult total;
  total.n_max = 1;
  for (const auto& r : results) {
    total.t2d_cycles += r.t2d_cycles;
    total.t3d_cycles += r.t3d_cycles;
    total.e2d_pj += r.e2d_pj;
    total.e3d_pj += r.e3d_pj;
    total.n_max = std::max(total.n_max, r.n_max);
  }
  ensures(total.t3d_cycles > 0.0 && total.e3d_pj > 0.0,
          "combined M3D time/energy must be positive");
  total.speedup = total.t2d_cycles / total.t3d_cycles;
  total.energy_ratio = total.e2d_pj / total.e3d_pj;
  total.edp_benefit = total.speedup * total.energy_ratio;
  return total;
}

}  // namespace uld3d::core

#include "uld3d/core/relaxed_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::core {

RelaxedDesignPoint relaxed_design_point(const AreaModel& area,
                                        double cell_area_scale) {
  area.validate();
  expects(cell_area_scale >= 1.0, "cell area scale >= 1 (1 = no relaxation)");
  RelaxedDesignPoint p;
  p.m3d_cells_area_um2 = cell_area_scale * area.mem_cells_area_um2;
  const double a2d = area.total_area_um2();
  // If the grown array still fits inside the original footprint, nothing
  // changes; otherwise both chips grow to hold it (Fig. 10a).
  p.footprint_um2 = std::max(a2d, p.m3d_cells_area_um2 + area.mem_perif_area_um2 +
                                      area.cs_area_um2 + area.bus_area_um2);
  // Eq. (9): extra area beyond the original 2D chip hosts extra 2D CSs.
  const double extra = std::max(0.0, p.m3d_cells_area_um2 - a2d);
  p.n_2d = 1 + static_cast<std::int64_t>(std::floor(extra / area.cs_area_um2 + 1e-9));
  // The M3D chip frees the Si under the (grown) array for parallel CSs.
  p.n_3d = 1 + static_cast<std::int64_t>(
                   std::floor(p.m3d_cells_area_um2 / area.cs_area_um2 + 1e-9));
  ensures(p.n_3d >= p.n_2d, "M3D can never host fewer CSs than 2D");
  return p;
}

EdpResult evaluate_relaxed_edp(const WorkloadPoint& w, const Chip2d& c2,
                               const RelaxedDesignPoint& point,
                               const RelaxedBandwidth& bw) {
  expects(bw.per_cs_bits_per_cycle > 0.0, "per-CS bandwidth must be positive");

  // The re-optimized 2D baseline behaves like an "M3D" chip with N_2D CSs in
  // Eq. (10)'s numerator: T_C,2D^new = max(D0*N_2D/B_2D_total, F0/(N_max,2D*P)).
  Chip3d as_2d;
  as_2d.parallel_cs = point.n_2d;
  as_2d.bandwidth_bits_per_cycle =
      bw.per_cs_bits_per_cycle * static_cast<double>(point.n_2d);
  as_2d.alpha_pj_per_bit = c2.alpha_pj_per_bit;
  as_2d.mem_idle_pj_per_cycle = c2.mem_idle_pj_per_cycle;

  Chip3d m3d;
  m3d.parallel_cs = point.n_3d;
  m3d.bandwidth_bits_per_cycle =
      bw.per_cs_bits_per_cycle * static_cast<double>(point.n_3d);
  // M3D retains its (CNFET-selector) access energy and banked idle energy.
  m3d.alpha_pj_per_bit = c2.alpha_pj_per_bit * 0.97;
  m3d.mem_idle_pj_per_cycle = c2.mem_idle_pj_per_cycle;

  EdpResult r;
  r.t2d_cycles = execution_time_3d(w, c2, as_2d);  // Eq. (10) numerator
  r.t3d_cycles = execution_time_3d(w, c2, m3d);
  r.speedup = r.t2d_cycles / r.t3d_cycles;
  r.e2d_pj = energy_3d(w, c2, as_2d);  // Eq. (11)
  r.e3d_pj = energy_3d(w, c2, m3d);
  r.energy_ratio = r.e2d_pj / r.e3d_pj;
  r.edp_benefit = r.speedup * r.energy_ratio;  // Eq. (12)
  r.n_max = std::min<std::int64_t>(w.max_partitions, point.n_3d);
  return r;
}

}  // namespace uld3d::core

#include "uld3d/dse/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "uld3d/util/check.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/jsonv.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/provenance.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::dse {

namespace {

constexpr const char* kCheckpointKind = "uld3d-sweep-checkpoint";

/// Exact, round-trippable rendering of a double as a JSON value: 17
/// significant digits reparse to the identical bit pattern (glibc strtod is
/// correctly rounded), so resumed rows equal recomputed ones byte-for-byte.
/// Non-finite values are not JSON numbers and become the strings
/// "nan"/"inf"/"-inf".
std::string json_number_exact(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

[[noreturn]] void refuse(std::string what, const std::string& path) {
  throw StatusError(Failure(ErrorCode::kInvalidConfig, std::move(what))
                        .with("checkpoint", path));
}

double number_exact_from_json(const JsonValue& value,
                              const std::string& path) {
  if (value.is_number()) return value.as_number();
  if (value.is_string()) {
    if (value.as_string() == "nan") {
      return std::numeric_limits<double>::quiet_NaN();
    }
    if (value.as_string() == "inf") {
      return std::numeric_limits<double>::infinity();
    }
    if (value.as_string() == "-inf") {
      return -std::numeric_limits<double>::infinity();
    }
  }
  refuse("checkpoint number is neither a JSON number nor nan/inf", path);
}

/// Non-negative integer member (sizes, indices); refuses fractions.
std::size_t size_from_json(const JsonValue& value, const char* member,
                           const std::string& path) {
  if (!value.is_number() || value.as_number() < 0.0 ||
      value.as_number() != std::floor(value.as_number())) {
    refuse(std::string("checkpoint member '") + member +
               "' is not a non-negative integer",
           path);
  }
  return static_cast<std::size_t>(value.as_number());
}

std::vector<std::string> string_list_from_json(const JsonValue& value,
                                               const char* member,
                                               const std::string& path) {
  if (!value.is_array()) {
    refuse(std::string("checkpoint member '") + member + "' is not an array",
           path);
  }
  std::vector<std::string> out;
  out.reserve(value.as_array().size());
  for (const JsonValue& entry : value.as_array()) {
    if (!entry.is_string()) {
      refuse(std::string("checkpoint member '") + member +
                 "' contains a non-string",
             path);
    }
    out.push_back(entry.as_string());
  }
  return out;
}

ErrorCode error_code_from_name(const std::string& name,
                               const std::string& path) {
  static constexpr ErrorCode kAllCodes[] = {
      ErrorCode::kOk,              ErrorCode::kInvalidArgument,
      ErrorCode::kInvalidConfig,   ErrorCode::kUnknownKey,
      ErrorCode::kInfeasiblePoint, ErrorCode::kThermalLimit,
      ErrorCode::kNumericalError,  ErrorCode::kNotFound,
      ErrorCode::kFaultInjected,   ErrorCode::kInternal};
  for (const ErrorCode code : kAllCodes) {
    if (name == error_code_name(code)) return code;
  }
  refuse("checkpoint failure has unknown error code '" + name + "'", path);
}

std::string bitmap_to_hex(const std::vector<bool>& bits) {
  // Nibble j encodes bits 4j..4j+3, bit b of the digit = bit 4j+b.
  std::string out((bits.size() + 3) / 4, '0');
  for (std::size_t j = 0; j < out.size(); ++j) {
    unsigned nibble = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const std::size_t g = 4 * j + b;
      if (g < bits.size() && bits[g]) nibble |= 1u << b;
    }
    out[j] = "0123456789abcdef"[nibble];
  }
  return out;
}

std::vector<bool> bitmap_from_hex(const std::string& hex,
                                  std::size_t grid_size,
                                  const std::string& path) {
  if (hex.size() != (grid_size + 3) / 4) {
    refuse("completed bitmap length does not match the grid size "
           "(truncated checkpoint?)",
           path);
  }
  std::vector<bool> bits(grid_size, false);
  for (std::size_t j = 0; j < hex.size(); ++j) {
    const char c = hex[j];
    unsigned nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<unsigned>(c - 'a' + 10);
    } else {
      refuse("completed bitmap contains a non-hex character", path);
    }
    for (unsigned b = 0; b < 4; ++b) {
      const std::size_t g = 4 * j + b;
      if ((nibble & (1u << b)) == 0) continue;
      if (g >= grid_size) {
        refuse("completed bitmap has bits set beyond the grid size", path);
      }
      bits[g] = true;
    }
  }
  return bits;
}

/// Canonical one-line row rendering — used both for the file and for the
/// byte-for-byte sentinel cross-check in merge_shards, so "identical rows"
/// means identical text by construction.
std::string row_to_json(const SweepRow& row) {
  std::ostringstream os;
  os << "{\"index\": " << row.grid_index << ", \"params\": [";
  for (std::size_t p = 0; p < row.params.size(); ++p) {
    if (p > 0) os << ", ";
    os << json_number_exact(row.params[p]);
  }
  os << "]";
  if (row.ok()) {
    os << ", \"metrics\": [";
    for (std::size_t m = 0; m < row.metrics.size(); ++m) {
      if (m > 0) os << ", ";
      os << json_number_exact(row.metrics[m]);
    }
    os << "], \"failure\": null";
  } else {
    // Failed rows carry all-NaN metrics by the sweep contract; the loader
    // regenerates them, so only the structured Failure is stored.
    os << ", \"failure\": {\"code\": \"" << error_code_name(row.failure->code)
       << "\", \"severity\": \""
       << (row.failure->severity == Severity::kError ? "error" : "warning")
       << "\", \"message\": \"" << json_escape(row.failure->message)
       << "\", \"context\": [";
    for (std::size_t c = 0; c < row.failure->context.size(); ++c) {
      if (c > 0) os << ", ";
      os << "[\"" << json_escape(row.failure->context[c].first) << "\", \""
         << json_escape(row.failure->context[c].second) << "\"]";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

SweepRow row_from_json(const JsonValue& doc, std::size_t metric_count,
                       const std::string& path) {
  if (!doc.is_object()) refuse("checkpoint row is not an object", path);
  SweepRow row;
  row.grid_index = size_from_json(doc.at("index"), "index", path);
  const JsonValue& params = doc.at("params");
  if (!params.is_array()) refuse("checkpoint row params is not an array", path);
  row.params.reserve(params.as_array().size());
  for (const JsonValue& v : params.as_array()) {
    row.params.push_back(number_exact_from_json(v, path));
  }
  const JsonValue& failure = doc.at("failure");
  if (failure.is_null()) {
    const JsonValue& metrics = doc.at("metrics");
    if (!metrics.is_array()) {
      refuse("checkpoint row metrics is not an array", path);
    }
    row.metrics.reserve(metrics.as_array().size());
    for (const JsonValue& v : metrics.as_array()) {
      row.metrics.push_back(number_exact_from_json(v, path));
    }
  } else {
    if (!failure.is_object()) {
      refuse("checkpoint row failure is neither null nor an object", path);
    }
    Failure f(error_code_from_name(failure.at("code").as_string(), path),
              failure.at("message").as_string(),
              failure.at("severity").as_string() == "warning"
                  ? Severity::kWarning
                  : Severity::kError);
    const JsonValue& context = failure.at("context");
    if (!context.is_array()) {
      refuse("checkpoint failure context is not an array", path);
    }
    for (const JsonValue& pair : context.as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2 ||
          !pair.as_array()[0].is_string() || !pair.as_array()[1].is_string()) {
        refuse("checkpoint failure context entry is not a [key, value] pair",
               path);
      }
      f.with(pair.as_array()[0].as_string(), pair.as_array()[1].as_string());
    }
    row.failure = std::move(f);
    row.metrics.assign(metric_count,
                       std::numeric_limits<double>::quiet_NaN());
  }
  return row;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const auto bad = [&] {
    throw StatusError(
        Failure(ErrorCode::kInvalidArgument,
                "shard spec must be i/N with 0 <= i < N (e.g. 0/4)")
            .with("spec", text));
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    bad();
  }
  std::size_t index = 0;
  std::size_t count = 0;
  try {
    std::size_t used = 0;
    index = std::stoull(text.substr(0, slash), &used);
    if (used != slash) bad();
    const std::string tail = text.substr(slash + 1);
    count = std::stoull(tail, &used);
    if (used != tail.size()) bad();
  } catch (const std::logic_error&) {
    bad();
  }
  if (count < 1 || index >= count) bad();
  return ShardSpec{index, count};
}

std::vector<std::size_t> sentinel_indices(std::size_t grid_size,
                                          const ShardSpec& shard) {
  if (!shard.sharded() || grid_size == 0) return {};
  constexpr std::size_t kSentinels = 4;
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < std::min(kSentinels, grid_size); ++k) {
    const std::size_t g = k * grid_size / kSentinels;
    if (out.empty() || out.back() != g) out.push_back(g);
  }
  return out;
}

std::vector<std::size_t> shard_domain(std::size_t grid_size,
                                      const ShardSpec& shard) {
  expects(shard.count >= 1 && shard.index < shard.count,
          "shard index out of range");
  const std::vector<std::size_t> sentinels =
      sentinel_indices(grid_size, shard);
  std::vector<std::size_t> domain;
  domain.reserve(grid_size / shard.count + sentinels.size() + 1);
  auto sentinel = sentinels.begin();
  for (std::size_t g = shard.index; g < grid_size; g += shard.count) {
    while (sentinel != sentinels.end() && *sentinel < g) {
      domain.push_back(*sentinel++);
    }
    if (sentinel != sentinels.end() && *sentinel == g) ++sentinel;
    domain.push_back(g);
  }
  while (sentinel != sentinels.end()) domain.push_back(*sentinel++);
  return domain;
}

std::string sweep_fingerprint(const Grid& grid,
                              const std::vector<std::string>& metric_names,
                              const std::string& config_hash) {
  std::ostringstream os;
  os << "uld3d-sweep-fingerprint-v1\n";
  for (const Axis& axis : grid.axes()) {
    os << "axis " << axis.name << ":";
    for (const double v : axis.values) os << " " << json_number_exact(v);
    os << "\n";
  }
  for (const std::string& name : metric_names) os << "metric " << name << "\n";
  os << "config " << config_hash << "\n";
  return fnv1a_hex(os.str());
}

std::size_t SweepCheckpoint::completed_count() const {
  return static_cast<std::size_t>(
      std::count(completed.begin(), completed.end(), true));
}

std::string SweepCheckpoint::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"kind\": \"" << kCheckpointKind << "\",\n"
     << "  \"schema_version\": " << schema_version << ",\n"
     << "  \"fingerprint\": \"" << json_escape(fingerprint) << "\",\n"
     << "  \"run_id\": \"" << json_escape(run_id) << "\",\n"
     << "  \"grid_size\": " << grid_size << ",\n"
     << "  \"shard_index\": " << shard.index << ",\n"
     << "  \"shard_count\": " << shard.count << ",\n"
     << "  \"param_names\": [";
  for (std::size_t p = 0; p < param_names.size(); ++p) {
    if (p > 0) os << ", ";
    os << "\"" << json_escape(param_names[p]) << "\"";
  }
  os << "],\n  \"metric_names\": [";
  for (std::size_t m = 0; m < metric_names.size(); ++m) {
    if (m > 0) os << ", ";
    os << "\"" << json_escape(metric_names[m]) << "\"";
  }
  os << "],\n  \"completed_bitmap\": \"" << bitmap_to_hex(completed)
     << "\",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << (r > 0 ? ",\n    " : "\n    ") << row_to_json(rows[r]);
  }
  os << (rows.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

void save_checkpoint(const SweepCheckpoint& checkpoint,
                     const std::string& path) {
  if (!write_file_atomic(path, checkpoint.to_json())) {
    throw StatusError(Failure(ErrorCode::kInternal,
                              "could not write sweep checkpoint")
                          .with("checkpoint", path));
  }
}

SweepCheckpoint load_checkpoint(const std::string& path) {
  const JsonValue root = json_parse_file(path);
  if (!root.is_object()) refuse("checkpoint is not a JSON object", path);
  if (root.string_or("kind", "") != kCheckpointKind) {
    refuse("file is not a uld3d sweep checkpoint (wrong or missing kind)",
           path);
  }
  SweepCheckpoint ckpt;
  ckpt.schema_version = static_cast<int>(
      size_from_json(root.at("schema_version"), "schema_version", path));
  if (ckpt.schema_version != kCheckpointSchemaVersion) {
    refuse("unsupported checkpoint schema_version " +
               std::to_string(ckpt.schema_version) + " (this build reads " +
               std::to_string(kCheckpointSchemaVersion) + ")",
           path);
  }
  ckpt.fingerprint = root.at("fingerprint").as_string();
  // Absent in pre-telemetry checkpoints; informational either way.
  ckpt.run_id = root.string_or("run_id", "");
  ckpt.grid_size = size_from_json(root.at("grid_size"), "grid_size", path);
  ckpt.shard.index =
      size_from_json(root.at("shard_index"), "shard_index", path);
  ckpt.shard.count =
      size_from_json(root.at("shard_count"), "shard_count", path);
  if (ckpt.shard.count < 1 || ckpt.shard.index >= ckpt.shard.count) {
    refuse("checkpoint shard_index/shard_count are inconsistent", path);
  }
  ckpt.param_names =
      string_list_from_json(root.at("param_names"), "param_names", path);
  ckpt.metric_names =
      string_list_from_json(root.at("metric_names"), "metric_names", path);
  if (ckpt.metric_names.empty()) {
    refuse("checkpoint has no metric names", path);
  }
  ckpt.completed = bitmap_from_hex(root.at("completed_bitmap").as_string(),
                                   ckpt.grid_size, path);

  const JsonValue& rows = root.at("rows");
  if (!rows.is_array()) refuse("checkpoint rows is not an array", path);
  // Crash-consistency check: the bitmap and the row list must agree
  // exactly — same count, same indices, ascending.  A file torn by a
  // mid-write kill (impossible with the atomic writer, but checkpoints can
  // come from other machines) or a hand-edited one is refused here.
  if (rows.as_array().size() != ckpt.completed_count()) {
    refuse("completed bitmap count (" +
               std::to_string(ckpt.completed_count()) +
               ") does not match the row count (" +
               std::to_string(rows.as_array().size()) + ")",
           path);
  }
  const std::vector<std::size_t> domain =
      shard_domain(ckpt.grid_size, ckpt.shard);
  ckpt.rows.reserve(rows.as_array().size());
  std::size_t last_index = 0;
  for (const JsonValue& row_doc : rows.as_array()) {
    SweepRow row = row_from_json(row_doc, ckpt.metric_names.size(), path);
    if (row.grid_index >= ckpt.grid_size) {
      refuse("checkpoint row index is outside the grid", path);
    }
    if (!ckpt.rows.empty() && row.grid_index <= last_index) {
      refuse("checkpoint rows are not in ascending grid-index order", path);
    }
    if (!ckpt.completed[row.grid_index]) {
      refuse("checkpoint row " + std::to_string(row.grid_index) +
                 " has no completed bit set",
             path);
    }
    if (!std::binary_search(domain.begin(), domain.end(), row.grid_index)) {
      refuse("checkpoint row " + std::to_string(row.grid_index) +
                 " is outside the shard's domain",
             path);
    }
    if (row.params.size() != ckpt.param_names.size() ||
        row.metrics.size() != ckpt.metric_names.size()) {
      refuse("checkpoint row " + std::to_string(row.grid_index) +
                 " has the wrong parameter/metric width",
             path);
    }
    last_index = row.grid_index;
    ckpt.rows.push_back(std::move(row));
  }
  return ckpt;
}

void validate_checkpoint(const SweepCheckpoint& checkpoint,
                         std::size_t grid_size,
                         const std::string& fingerprint,
                         const ShardSpec& shard) {
  if (checkpoint.fingerprint != fingerprint) {
    throw StatusError(
        Failure(ErrorCode::kInvalidConfig,
                "checkpoint was produced by a different sweep (grid spec, "
                "metrics, or config changed); refusing to resume")
            .with("checkpoint_fingerprint", checkpoint.fingerprint)
            .with("expected_fingerprint", fingerprint));
  }
  if (checkpoint.grid_size != grid_size) {
    throw StatusError(Failure(ErrorCode::kInvalidConfig,
                              "checkpoint grid size does not match")
                          .with("checkpoint_grid_size",
                                static_cast<std::int64_t>(checkpoint.grid_size))
                          .with("expected_grid_size",
                                static_cast<std::int64_t>(grid_size)));
  }
  if (checkpoint.shard.index != shard.index ||
      checkpoint.shard.count != shard.count) {
    throw StatusError(
        Failure(ErrorCode::kInvalidConfig,
                "checkpoint belongs to a different shard")
            .with("checkpoint_shard",
                  std::to_string(checkpoint.shard.index) + "/" +
                      std::to_string(checkpoint.shard.count))
            .with("expected_shard", std::to_string(shard.index) + "/" +
                                        std::to_string(shard.count)));
  }
}

SweepInterrupted::SweepInterrupted(std::size_t completed, std::size_t total)
    : Error("sweep interrupted after " + std::to_string(completed) + " of " +
            std::to_string(total) +
            " points; state checkpointed, re-run with resume to continue"),
      completed_(completed),
      total_(total) {}

SweepResult run_sweep_resumable(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate,
    const ResumableOptions& options) {
  expects(!metric_names.empty(), "sweep needs at least one metric");
  expects(options.checkpoint_interval >= 1,
          "checkpoint interval must be at least 1");
  const std::size_t grid_size = grid.size();
  const std::vector<std::size_t> domain =
      shard_domain(grid_size, options.shard);
  const std::string fingerprint =
      sweep_fingerprint(grid, metric_names, options.config_hash);
  std::vector<std::string> param_names;
  param_names.reserve(grid.axis_count());
  for (const Axis& axis : grid.axes()) param_names.push_back(axis.name);

  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("dse.sweep.runs").add();
  registry.gauge("dse.sweep.grid_size").set(static_cast<double>(grid_size));
  Counter& m_resumed = registry.counter("dse.sweep.resumed_points");
  Counter& m_flushes = registry.counter("dse.sweep.checkpoint_flushes");
  TraceSpan sweep_span("dse.sweep.resumable", "dse");
  StageTimer sweep_stage("dse.sweep.resumable");

  // Row slots indexed by grid index; `done[g]` is the in-memory bitmap.
  // A worker fills rows[g] completely, then release-stores done[g]; the
  // flusher acquire-loads done[g] before reading rows[g], so a snapshot
  // taken mid-sweep only ever contains fully-written rows.
  std::vector<SweepRow> rows(grid_size);
  std::vector<std::atomic<bool>> done(grid_size);

  const bool checkpointing = !options.checkpoint_path.empty();
  std::size_t resumed = 0;
  if (checkpointing && file_exists(options.checkpoint_path)) {
    if (!options.resume) {
      throw StatusError(
          Failure(ErrorCode::kInvalidConfig,
                  "checkpoint file already exists; enable resume to continue "
                  "it or remove the file to start over")
              .with("checkpoint", options.checkpoint_path));
    }
    SweepCheckpoint ckpt = load_checkpoint(options.checkpoint_path);
    validate_checkpoint(ckpt, grid_size, fingerprint, options.shard);
    for (SweepRow& row : ckpt.rows) {
      const std::size_t g = row.grid_index;
      rows[g] = std::move(row);
      done[g].store(true, std::memory_order_relaxed);
    }
    resumed = ckpt.rows.size();
    m_resumed.add(resumed);
  }

  std::vector<std::size_t> todo;
  todo.reserve(domain.size() - resumed);
  for (const std::size_t g : domain) {
    if (!done[g].load(std::memory_order_relaxed)) todo.push_back(g);
  }

  // Fault plans trip on arrival order (see run_sweep); pin to one thread.
  const int jobs = FaultInjector::instance().armed()
                       ? 1
                       : parallel::resolve_jobs(options.jobs);
  registry.gauge("dse.sweep.jobs").set(static_cast<double>(jobs));

  if (EventSink::enabled()) {
    EventSink& sink = EventSink::instance();
    sink.emit_sweep_start(fingerprint, grid_size, param_names, metric_names,
                          domain.size(), jobs);
    if (options.shard.sharded()) {
      sink.emit_shard_info(options.shard.index, options.shard.count,
                           domain.size(),
                           sentinel_indices(grid_size, options.shard));
    }
  }
  std::optional<ProgressReporter> progress;
  if (progress_enabled()) progress.emplace("sweep", domain.size(), resumed);

  std::mutex flush_mutex;
  std::atomic<std::size_t> completed{resumed};
  const auto flush = [&] {  // caller holds flush_mutex
    if (!checkpointing) return;
    SweepCheckpoint snapshot;
    snapshot.fingerprint = fingerprint;
    snapshot.run_id = current_run_context().run_id;
    snapshot.grid_size = grid_size;
    snapshot.shard = options.shard;
    snapshot.param_names = param_names;
    snapshot.metric_names = metric_names;
    snapshot.completed.assign(grid_size, false);
    for (const std::size_t g : domain) {
      if (!done[g].load(std::memory_order_acquire)) continue;
      snapshot.completed[g] = true;
      snapshot.rows.push_back(rows[g]);
    }
    // Durability order: the checkpoint_flush event syncs the sink BEFORE the
    // checkpoint lands on disk, so every row in the saved checkpoint has its
    // point_done event durable — resume never leaves a row without an event.
    EventSink::instance().emit_checkpoint_flush(
        snapshot.rows.size(), domain.size(), options.checkpoint_path);
    save_checkpoint(snapshot, options.checkpoint_path);
    m_flushes.add();
  };

  // Sweep-point deduplication over the points still TO DO this run (resumed
  // rows are already final, and a representative must be freshly evaluated
  // so its aliases copy a row that exists).  `work` holds one grid index per
  // work item — all of `todo` without dedup, each key class's lowest-index
  // remaining point with it.  Aliases are filled in the SAME work item as
  // their representative: rows are fully written before their done[] bit is
  // release-stored, so checkpoint snapshots stay consistent and an
  // interrupt loses at most the in-flight batch, which deterministically
  // re-evaluates on resume.
  const bool dedup = options.point_key != nullptr && sweep_dedup_enabled();
  std::vector<std::size_t> work = todo;
  std::unordered_map<std::size_t, std::vector<std::size_t>> aliases_by_rep;
  if (dedup && !todo.empty()) {
    std::unordered_map<std::string, std::size_t> first_by_key;
    first_by_key.reserve(todo.size());
    work.clear();
    for (const std::size_t g : todo) {  // ascending, so reps stay ascending
      const auto [it, inserted] =
          first_by_key.try_emplace(options.point_key(grid.point(g)), g);
      if (inserted) {
        work.push_back(g);
      } else {
        aliases_by_rep[it->second].push_back(g);
      }
    }
    registry.counter("dse.sweep.dedup_unique")
        .add(static_cast<std::uint64_t>(work.size()));
    registry.counter("dse.sweep.dedup_aliased")
        .add(static_cast<std::uint64_t>(todo.size() - work.size()));
  }

  const auto finish_point = [&](std::size_t g) {
    if (progress.has_value()) {
      rows[g].ok() ? progress->add_ok() : progress->add_failed();
    }
    done[g].store(true, std::memory_order_release);
    const std::size_t now =
        completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (checkpointing && (now - resumed) % options.checkpoint_interval == 0) {
      const std::lock_guard<std::mutex> lock(flush_mutex);
      flush();
    }
  };

  const auto body = [&](std::size_t k) {
    if (interrupt_requested()) {
      throw SweepInterrupted(completed.load(std::memory_order_relaxed),
                             domain.size());
    }
    const std::size_t g = work[k];
    rows[g] =
        evaluate_sweep_point(grid, g, metric_names, evaluate, options.policy);
    finish_point(g);
    const auto aliases = aliases_by_rep.find(g);  // read-only map: safe
    if (aliases != aliases_by_rep.end()) {
      for (const std::size_t a : aliases->second) {
        rows[a] = alias_sweep_point(grid, a, rows[g]);
        finish_point(a);
      }
    }
  };

  parallel::ForOptions for_opts{.jobs = jobs};
  if (progress.has_value()) {
    for_opts.on_chunk_done = [&](std::size_t n) {
      progress->on_chunk_done(n);
    };
  }
  try {
    parallel::parallel_for_indexed(work.size(), body, for_opts);
  } catch (...) {
    // Keep whatever finished: an interrupt, a kFailFast failure, or a
    // library bug all leave a resumable checkpoint behind.  A flush
    // failure must not mask the original exception.
    const std::lock_guard<std::mutex> lock(flush_mutex);
    try {
      flush();
    } catch (...) {
    }
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(flush_mutex);
    flush();  // final, complete state (merge inputs must be complete)
  }

  std::vector<SweepRow> out;
  out.reserve(domain.size());
  for (const std::size_t g : domain) out.push_back(std::move(rows[g]));
  return SweepResult(std::move(param_names),
                     std::vector<std::string>(metric_names), std::move(out));
}

SweepResult merge_shards(const Grid& grid,
                         const std::vector<std::string>& metric_names,
                         const std::string& config_hash,
                         const std::vector<std::string>& checkpoint_paths) {
  expects(!checkpoint_paths.empty(), "merge needs at least one checkpoint");
  const std::size_t grid_size = grid.size();
  const std::string fingerprint =
      sweep_fingerprint(grid, metric_names, config_hash);
  std::vector<std::string> param_names;
  param_names.reserve(grid.axis_count());
  for (const Axis& axis : grid.axes()) param_names.push_back(axis.name);

  const std::size_t count = checkpoint_paths.size();
  std::vector<SweepCheckpoint> shards(count);
  std::vector<bool> seen(count, false);
  for (const std::string& path : checkpoint_paths) {
    SweepCheckpoint ckpt = load_checkpoint(path);
    if (ckpt.fingerprint != fingerprint || ckpt.grid_size != grid_size) {
      validate_checkpoint(ckpt, grid_size, fingerprint, ckpt.shard);
    }
    if (ckpt.shard.count != count) {
      refuse("checkpoint is shard " + std::to_string(ckpt.shard.index) +
                 "/" + std::to_string(ckpt.shard.count) + " but " +
                 std::to_string(count) + " file(s) were given to merge",
             path);
    }
    if (seen[ckpt.shard.index]) {
      refuse("two checkpoints claim shard " +
                 std::to_string(ckpt.shard.index) + "/" +
                 std::to_string(count),
             path);
    }
    const std::size_t domain_size =
        shard_domain(grid_size, ckpt.shard).size();
    if (ckpt.completed_count() != domain_size) {
      refuse("shard checkpoint is incomplete (" +
                 std::to_string(ckpt.completed_count()) + " of " +
                 std::to_string(domain_size) +
                 " points); finish the shard before merging",
             path);
    }
    seen[ckpt.shard.index] = true;
    shards[ckpt.shard.index] = std::move(ckpt);
  }

  // Cross-shard consistency: every shard evaluated the shared sentinel
  // points independently; their canonical serializations must be
  // byte-identical or the shard runs were not equivalent (different
  // binary, config drift the fingerprint cannot see, flaky hardware).
  const ShardSpec any_shard{0, count};
  for (const std::size_t g : sentinel_indices(grid_size, any_shard)) {
    std::string reference;
    std::size_t reference_shard = 0;
    for (std::size_t s = 0; s < count; ++s) {
      const auto& shard_rows = shards[s].rows;
      const auto it = std::lower_bound(
          shard_rows.begin(), shard_rows.end(), g,
          [](const SweepRow& row, std::size_t index) {
            return row.grid_index < index;
          });
      ensures(it != shard_rows.end() && it->grid_index == g,
              "complete shard checkpoint is missing a sentinel row");
      const std::string text = row_to_json(*it);
      if (reference.empty()) {
        reference = text;
        reference_shard = s;
      } else if (text != reference) {
        throw StatusError(
            Failure(ErrorCode::kInvalidConfig,
                    "sentinel point differs between shards; the shard runs "
                    "were not byte-equivalent (different binary or "
                    "environment?)")
                .with("grid_index", static_cast<std::int64_t>(g))
                .with("shard_a", checkpoint_paths[reference_shard])
                .with("shard_b", checkpoint_paths[s]));
      }
    }
  }

  // Stitch: every grid point comes from its OWNING shard (sentinel copies
  // from other shards were only for the consistency check above).
  std::vector<SweepRow> rows;
  rows.reserve(grid_size);
  std::vector<std::size_t> cursor(count, 0);
  for (std::size_t g = 0; g < grid_size; ++g) {
    const std::size_t owner = g % count;
    auto& shard_rows = shards[owner].rows;
    std::size_t& c = cursor[owner];
    while (c < shard_rows.size() && shard_rows[c].grid_index < g) ++c;
    ensures(c < shard_rows.size() && shard_rows[c].grid_index == g,
            "complete shard checkpoint is missing an owned row");
    rows.push_back(std::move(shard_rows[c]));
    ++c;
  }
  return SweepResult(std::move(param_names),
                     std::vector<std::string>(metric_names), std::move(rows));
}

}  // namespace uld3d::dse

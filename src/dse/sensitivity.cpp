#include "uld3d/dse/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::dse {

namespace {

/// Evaluate one perturbed point; non-finite objectives become
/// StatusError(kNumericalError) so both failure shapes take the same path.
double evaluate_checked(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& params, const std::string& parameter,
    const char* side) {
  fault_site("dse.sensitivity.point");
  const double value = objective(params);
  if (!std::isfinite(value)) {
    throw StatusError(Failure(ErrorCode::kNumericalError,
                              "objective is not finite")
                          .with("parameter", parameter)
                          .with("side", side));
  }
  return value;
}

}  // namespace

std::vector<Sensitivity> analyze_sensitivity(
    const std::vector<std::string>& names, const std::vector<double>& baseline,
    const std::function<double(const std::vector<double>&)>& objective,
    double step, ErrorPolicy policy, int jobs) {
  expects(names.size() == baseline.size(),
          "one name per baseline parameter required");
  expects(step > 0.0 && step < 1.0, "relative step must be in (0, 1)");
  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter& m_params = registry.counter("dse.sensitivity.params");
  Counter& m_failed = registry.counter("dse.sensitivity.failed");
  Histogram& m_param_us = registry.histogram("dse.sensitivity.param_us");
  TraceSpan analysis_span("dse.sensitivity", "dse");
  StageTimer analysis_stage("dse.sensitivity");
  // The baseline evaluation is always serial and fail-fast — without it no
  // elasticity is defined.
  const double base_objective = objective(baseline);
  expects(std::abs(base_objective) > 0.0,
          "objective must be non-zero at the baseline");
  expects(std::isfinite(base_objective),
          "objective must be finite at the baseline");

  // Same serial-fallback rule as run_sweep: injected trips are arrival-
  // ordered, so an armed injector forces one thread.
  const int effective_jobs = FaultInjector::instance().armed()
                                 ? 1
                                 : parallel::resolve_jobs(jobs);

  std::vector<Sensitivity> results(names.size());
  const auto evaluate_parameter = [&](std::size_t i) {
    Sensitivity& s = results[i];
    s.parameter = names[i];
    s.baseline_value = baseline[i];
    TraceSpan param_span(names[i], "dse");
    ScopedTimer param_timer(m_param_us);
    m_params.add();
    try {
      std::vector<double> params = baseline;
      params[i] = baseline[i] * (1.0 - step);
      s.objective_minus = evaluate_checked(objective, params, names[i], "-");
      params[i] = baseline[i] * (1.0 + step);
      s.objective_plus = evaluate_checked(objective, params, names[i], "+");
      s.elasticity = (s.objective_plus - s.objective_minus) /
                     (2.0 * step * base_objective);
    } catch (const InvariantError&) {
      throw;  // library bug: never downgrade to a per-parameter failure
    } catch (const std::exception& error) {
      if (policy == ErrorPolicy::kFailFast) throw;
      if (const auto* status = dynamic_cast<const StatusError*>(&error)) {
        s.failure = status->failure();
      } else {
        s.failure = Failure(ErrorCode::kInfeasiblePoint, error.what())
                        .with("parameter", names[i]);
      }
      s.objective_minus = std::numeric_limits<double>::quiet_NaN();
      s.objective_plus = std::numeric_limits<double>::quiet_NaN();
      s.elasticity = std::numeric_limits<double>::quiet_NaN();
      m_failed.add();
    }
  };
  parallel::parallel_for_indexed(names.size(), evaluate_parameter,
                                 {.jobs = effective_jobs});
  return results;
}

Table sensitivity_table(std::vector<Sensitivity> results) {
  std::sort(results.begin(), results.end(),
            [](const Sensitivity& a, const Sensitivity& b) {
              if (a.ok() != b.ok()) return a.ok();  // failed rows sink
              if (!a.ok()) return false;
              return std::abs(a.elasticity) > std::abs(b.elasticity);
            });
  Table table({"Parameter", "Baseline", "Obj @ -5%", "Obj @ +5%",
               "Elasticity"});
  for (const auto& s : results) {
    if (s.ok()) {
      table.add_row({s.parameter, format_double(s.baseline_value, 3),
                     format_double(s.objective_minus, 3),
                     format_double(s.objective_plus, 3),
                     format_double(s.elasticity, 3)});
    } else {
      table.add_row({s.parameter, format_double(s.baseline_value, 3), "-", "-",
                     error_code_name(s.failure->code)});
    }
  }
  return table;
}

}  // namespace uld3d::dse

#include "uld3d/dse/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::dse {

std::vector<Sensitivity> analyze_sensitivity(
    const std::vector<std::string>& names, const std::vector<double>& baseline,
    const std::function<double(const std::vector<double>&)>& objective,
    double step) {
  expects(names.size() == baseline.size(),
          "one name per baseline parameter required");
  expects(step > 0.0 && step < 1.0, "relative step must be in (0, 1)");
  const double base_objective = objective(baseline);
  expects(std::abs(base_objective) > 0.0,
          "objective must be non-zero at the baseline");

  std::vector<Sensitivity> results;
  results.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    Sensitivity s;
    s.parameter = names[i];
    s.baseline_value = baseline[i];
    std::vector<double> params = baseline;
    params[i] = baseline[i] * (1.0 - step);
    s.objective_minus = objective(params);
    params[i] = baseline[i] * (1.0 + step);
    s.objective_plus = objective(params);
    s.elasticity = (s.objective_plus - s.objective_minus) /
                   (2.0 * step * base_objective);
    results.push_back(std::move(s));
  }
  return results;
}

Table sensitivity_table(std::vector<Sensitivity> results) {
  std::sort(results.begin(), results.end(),
            [](const Sensitivity& a, const Sensitivity& b) {
              return std::abs(a.elasticity) > std::abs(b.elasticity);
            });
  Table table({"Parameter", "Baseline", "Obj @ -5%", "Obj @ +5%",
               "Elasticity"});
  for (const auto& s : results) {
    table.add_row({s.parameter, format_double(s.baseline_value, 3),
                   format_double(s.objective_minus, 3),
                   format_double(s.objective_plus, 3),
                   format_double(s.elasticity, 3)});
  }
  return table;
}

}  // namespace uld3d::dse

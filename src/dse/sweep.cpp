#include "uld3d/dse/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "uld3d/util/check.hpp"

namespace uld3d::dse {

Grid& Grid::axis(std::string name, std::vector<double> values) {
  expects(!values.empty(), "axis needs at least one value: " + name);
  for (const auto& existing : axes_) {
    expects(existing.name != name, "duplicate axis name: " + name);
  }
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

std::size_t Grid::size() const {
  std::size_t n = axes_.empty() ? 0 : 1;
  for (const auto& a : axes_) n *= a.values.size();
  return n;
}

std::vector<double> Grid::point(std::size_t index) const {
  expects(index < size(), "grid index out of range");
  std::vector<double> values(axes_.size());
  // Row-major: the LAST axis varies fastest.
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const auto& axis = axes_[a];
    values[a] = axis.values[index % axis.values.size()];
    index /= axis.values.size();
  }
  return values;
}

SweepResult::SweepResult(std::vector<std::string> param_names,
                         std::vector<std::string> metric_names,
                         std::vector<SweepRow> rows)
    : param_names_(std::move(param_names)),
      metric_names_(std::move(metric_names)),
      rows_(std::move(rows)) {
  for (const auto& row : rows_) {
    expects(row.params.size() == param_names_.size(),
            "row parameter width mismatch");
    expects(row.metrics.size() == metric_names_.size(),
            "row metric width mismatch");
  }
}

std::size_t SweepResult::metric_index(const std::string& name) const {
  const auto it = std::find(metric_names_.begin(), metric_names_.end(), name);
  expects(it != metric_names_.end(), "unknown metric: " + name);
  return static_cast<std::size_t>(it - metric_names_.begin());
}

std::vector<std::size_t> SweepResult::pareto_front(
    const std::string& benefit_metric, const std::string& cost_metric) const {
  const std::size_t bi = metric_index(benefit_metric);
  const std::size_t ci = metric_index(cost_metric);
  std::vector<std::size_t> order(rows_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows_[a].metrics[ci] != rows_[b].metrics[ci]) {
      return rows_[a].metrics[ci] < rows_[b].metrics[ci];
    }
    return rows_[a].metrics[bi] > rows_[b].metrics[bi];
  });
  std::vector<std::size_t> front;
  double best_benefit = -1.0e300;
  for (const std::size_t i : order) {
    if (rows_[i].metrics[bi] > best_benefit) {
      best_benefit = rows_[i].metrics[bi];
      front.push_back(i);
    }
  }
  return front;
}

std::size_t SweepResult::best(const std::string& metric) const {
  expects(!rows_.empty(), "empty sweep has no best row");
  const std::size_t mi = metric_index(metric);
  std::size_t best_row = 0;
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i].metrics[mi] > rows_[best_row].metrics[mi]) best_row = i;
  }
  return best_row;
}

Table SweepResult::to_table(int digits) const {
  std::vector<std::string> headers = param_names_;
  headers.insert(headers.end(), metric_names_.begin(), metric_names_.end());
  Table table(std::move(headers));
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.params.size() + row.metrics.size());
    for (const double v : row.params) cells.push_back(format_double(v, digits));
    for (const double v : row.metrics) cells.push_back(format_double(v, digits));
    table.add_row(std::move(cells));
  }
  return table;
}

SweepResult run_sweep(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate) {
  expects(grid.axis_count() > 0, "sweep needs at least one axis");
  expects(!metric_names.empty(), "sweep needs at least one metric");
  std::vector<std::string> param_names;
  param_names.reserve(grid.axis_count());
  for (const auto& axis : grid.axes()) param_names.push_back(axis.name);

  std::vector<SweepRow> rows;
  rows.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SweepRow row;
    row.params = grid.point(i);
    row.metrics = evaluate(row.params);
    expects(row.metrics.size() == metric_names.size(),
            "evaluator returned wrong metric count");
    rows.push_back(std::move(row));
  }
  return SweepResult(std::move(param_names),
                     std::vector<std::string>(metric_names), std::move(rows));
}

}  // namespace uld3d::dse

#include "uld3d/dse/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <sstream>

#include "uld3d/dse/checkpoint.hpp"  // sweep_fingerprint
#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/flightrec.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::dse {

namespace {

std::atomic<bool>& dedup_flag() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("ULD3D_NO_SWEEP_DEDUP");
    return env == nullptr || *env == '\0';
  }()};
  return enabled;
}

}  // namespace

bool sweep_dedup_enabled() {
  return dedup_flag().load(std::memory_order_relaxed);
}

void set_sweep_dedup_enabled(bool enabled) {
  dedup_flag().store(enabled, std::memory_order_relaxed);
}

Grid& Grid::axis(std::string name, std::vector<double> values) {
  expects(!values.empty(), "axis needs at least one value: " + name);
  for (const auto& existing : axes_) {
    expects(existing.name != name, "duplicate axis name: " + name);
  }
  axes_.push_back({std::move(name), std::move(values)});
  return *this;
}

std::size_t Grid::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& a : axes_) {
    const std::size_t len = a.values.size();
    if (n > std::numeric_limits<std::size_t>::max() / len) {
      throw StatusError(
          Failure(ErrorCode::kInvalidArgument,
                  "grid size overflows std::size_t")
              .with("axis", a.name));
    }
    n *= len;
  }
  return n;
}

std::vector<double> Grid::point(std::size_t index) const {
  expects(index < size(), "grid index out of range");
  std::vector<double> values(axes_.size());
  // Row-major: the LAST axis varies fastest.
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const auto& axis = axes_[a];
    values[a] = axis.values[index % axis.values.size()];
    index /= axis.values.size();
  }
  return values;
}

SweepResult::SweepResult(std::vector<std::string> param_names,
                         std::vector<std::string> metric_names,
                         std::vector<SweepRow> rows)
    : param_names_(std::move(param_names)),
      metric_names_(std::move(metric_names)),
      rows_(std::move(rows)) {
  metric_index_.reserve(metric_names_.size());
  for (std::size_t m = 0; m < metric_names_.size(); ++m) {
    metric_index_.emplace(metric_names_[m], m);
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& row = rows_[i];
    expects(row.params.size() == param_names_.size(),
            "row parameter width mismatch");
    expects(row.metrics.size() == metric_names_.size(),
            "row metric width mismatch");
    (row.ok() ? ok_rows_ : failed_rows_).push_back(i);
  }
}

std::size_t SweepResult::metric_index(const std::string& name) const {
  const auto it = metric_index_.find(name);
  expects(it != metric_index_.end(), "unknown metric: " + name);
  return it->second;
}

std::size_t SweepResult::failed_count() const { return failed_rows_.size(); }

std::size_t SweepResult::ok_count() const { return ok_rows_.size(); }

std::vector<std::size_t> SweepResult::failed_rows() const {
  return failed_rows_;
}

std::vector<std::size_t> SweepResult::pareto_front(
    const std::string& benefit_metric, const std::string& cost_metric) const {
  const std::size_t bi = metric_index(benefit_metric);
  const std::size_t ci = metric_index(cost_metric);
  std::vector<std::size_t> order = ok_rows_;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows_[a].metrics[ci] != rows_[b].metrics[ci]) {
      return rows_[a].metrics[ci] < rows_[b].metrics[ci];
    }
    return rows_[a].metrics[bi] > rows_[b].metrics[bi];
  });
  std::vector<std::size_t> front;
  double best_benefit = -1.0e300;
  for (const std::size_t i : order) {
    if (rows_[i].metrics[bi] > best_benefit) {
      best_benefit = rows_[i].metrics[bi];
      front.push_back(i);
    }
  }
  return front;
}

std::size_t SweepResult::best(const std::string& metric) const {
  expects(!rows_.empty(), "empty sweep has no best row");
  const std::size_t mi = metric_index(metric);
  std::size_t best_row = rows_.size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i].ok()) continue;
    if (best_row == rows_.size() ||
        rows_[i].metrics[mi] > rows_[best_row].metrics[mi]) {
      best_row = i;
    }
  }
  if (best_row == rows_.size()) {
    throw StatusError(
        Failure(ErrorCode::kInfeasiblePoint,
                "every design point in the sweep failed; no best row")
            .with("failed", static_cast<std::int64_t>(failed_count())));
  }
  return best_row;
}

Table SweepResult::to_table(int digits) const {
  std::vector<std::string> headers = param_names_;
  headers.insert(headers.end(), metric_names_.begin(), metric_names_.end());
  headers.push_back("status");
  Table table(std::move(headers));
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.params.size() + row.metrics.size() + 1);
    for (const double v : row.params) cells.push_back(format_double(v, digits));
    for (const double v : row.metrics) {
      cells.push_back(row.ok() ? format_double(v, digits) : "-");
    }
    cells.push_back(row.ok() ? "ok" : error_code_name(row.failure->code));
    table.add_row(std::move(cells));
  }
  return table;
}

std::string SweepResult::failure_summary() const {
  const std::size_t failed = failed_count();
  if (failed == 0) return {};
  // A mostly-failed 10k-point sweep would otherwise build a multi-megabyte
  // string; the first few points carry all the diagnostic signal.
  constexpr std::size_t kMaxReported = 20;
  // Itemize in GRID-INDEX order, not row-storage order: a resumed or merged
  // sweep must produce a summary byte-identical to an uninterrupted run's
  // even if its rows were assembled in a different order.
  std::vector<std::size_t> order;
  order.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i].ok()) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rows_[a].grid_index < rows_[b].grid_index;
                   });
  std::ostringstream os;
  os << failed << " of " << rows_.size() << " design points failed:\n";
  std::size_t reported = 0;
  for (const std::size_t i : order) {
    const auto& row = rows_[i];
    if (reported == kMaxReported) {
      os << "  ... and " << (failed - kMaxReported)
         << " more failing point(s)\n";
      break;
    }
    os << "  point " << row.grid_index << " (";
    for (std::size_t p = 0; p < row.params.size(); ++p) {
      if (p > 0) os << ", ";
      os << param_names_[p] << "=" << format_double(row.params[p], 4);
    }
    os << "): " << row.failure->to_string() << "\n";
    ++reported;
  }
  return os.str();
}

namespace {

/// Classify an evaluation failure into a structured Failure.
Failure classify(const std::exception& error) {
  if (const auto* status = dynamic_cast<const StatusError*>(&error)) {
    return status->failure();
  }
  if (dynamic_cast<const PreconditionError*>(&error) != nullptr) {
    return Failure(ErrorCode::kInfeasiblePoint, error.what());
  }
  return Failure(ErrorCode::kInternal, error.what());
}

}  // namespace

SweepRow evaluate_sweep_point(
    const Grid& grid, std::size_t grid_index,
    const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate,
    ErrorPolicy policy) {
  // Registry handles are stable for the process lifetime, so hoist the
  // lookups once; Counter::add is one branch when metrics are disabled.
  MetricsRegistry& registry = MetricsRegistry::instance();
  static Counter& m_points = registry.counter("dse.sweep.points");
  static Counter& m_ok = registry.counter("dse.sweep.ok");
  static Counter& m_failed = registry.counter("dse.sweep.failed");
  static Counter& m_skipped = registry.counter("dse.sweep.skipped");
  static Histogram& m_point_us = registry.histogram("dse.sweep.point_us");

  // Event timing reads the clock only when the sink is live — the disabled
  // cost of this whole block is the telemetry_enabled() branch.
  const bool events = EventSink::enabled();
  const auto event_start = events ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};

  SweepRow row;
  row.grid_index = grid_index;
  row.params = grid.point(grid_index);
  std::optional<std::vector<double>> metrics;
  try {
    TraceSpan point_span("dse.sweep.point", "dse");
    // Always-on breadcrumb: the postmortem dump pins which grid index was
    // in flight on each worker (also the ULD3D_CRASH_AT injection point
    // the fatal-path tests target).
    flightrec::event("dse.point", grid_index);
    ScopedTimer point_timer(m_point_us);
    m_points.add();
    fault_site("dse.sweep.point");
    metrics = evaluate(row.params);
  } catch (const InvariantError&) {
    throw;  // library bug: never downgrade to a per-point failure
  } catch (const std::exception& error) {
    if (policy == ErrorPolicy::kFailFast) throw;
    row.failure = classify(error);
  }
  if (metrics.has_value()) {
    // A wrong metric count is an evaluator contract bug, not a bad design
    // point — it aborts the sweep under every policy.
    expects(metrics->size() == metric_names.size(),
            "evaluator returned wrong metric count");
    for (std::size_t m = 0; m < metrics->size(); ++m) {
      if (std::isfinite((*metrics)[m])) continue;
      Failure failure =
          Failure(ErrorCode::kNumericalError, "metric is not finite")
              .with("metric", metric_names[m])
              .with("value", std::isnan((*metrics)[m]) ? "nan" : "inf");
      if (policy == ErrorPolicy::kFailFast) {
        throw StatusError(std::move(failure));
      }
      row.failure = std::move(failure);
      break;
    }
    if (row.ok()) row.metrics = std::move(*metrics);
  }
  if (!row.ok()) {
    row.metrics.assign(metric_names.size(),
                       std::numeric_limits<double>::quiet_NaN());
    // Counted as both: a failed point, and one the policy skipped-and-
    // recorded (compare against fault.injected_trips to split a run
    // report into injected vs organic failures).
    m_failed.add();
    m_skipped.add();
  } else {
    m_ok.add();
  }
  if (events) {
    const double dur_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - event_start)
                              .count();
    EventFailure failure;
    if (!row.ok()) {
      failure.code = error_code_name(row.failure->code);
      failure.message = row.failure->message;
      failure.context = row.failure->context;
    }
    EventSink::instance().emit_point_done(grid_index, row.params, row.metrics,
                                          row.ok() ? nullptr : &failure,
                                          dur_us);
  }
  return row;
}

SweepRow alias_sweep_point(const Grid& grid, std::size_t grid_index,
                           const SweepRow& representative) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  static Counter& m_points = registry.counter("dse.sweep.points");
  static Counter& m_ok = registry.counter("dse.sweep.ok");
  static Counter& m_failed = registry.counter("dse.sweep.failed");
  static Counter& m_skipped = registry.counter("dse.sweep.skipped");
  static Histogram& m_point_us = registry.histogram("dse.sweep.point_us");

  const bool events = EventSink::enabled();
  const auto event_start = events ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};

  SweepRow row;
  row.grid_index = grid_index;
  row.params = grid.point(grid_index);
  {
    // Same breadcrumb and counters as a real evaluation; the recorded
    // duration is just the fan-out copy, which is what the point cost.
    flightrec::event("dse.point", grid_index);
    ScopedTimer point_timer(m_point_us);
    m_points.add();
    row.metrics = representative.metrics;
    row.failure = representative.failure;
  }
  if (row.ok()) {
    m_ok.add();
  } else {
    m_failed.add();
    m_skipped.add();
  }
  if (events) {
    const double dur_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - event_start)
                              .count();
    EventFailure failure;
    if (!row.ok()) {
      failure.code = error_code_name(row.failure->code);
      failure.message = row.failure->message;
      failure.context = row.failure->context;
    }
    EventSink::instance().emit_point_done(grid_index, row.params, row.metrics,
                                          row.ok() ? nullptr : &failure,
                                          dur_us);
  }
  return row;
}

SweepResult run_sweep(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate,
    const SweepOptions& options) {
  expects(!metric_names.empty(), "sweep needs at least one metric");
  const std::size_t grid_size = grid.size();
  std::vector<std::string> param_names;
  param_names.reserve(grid.axis_count());
  for (const auto& axis : grid.axes()) param_names.push_back(axis.name);

  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter& m_runs = registry.counter("dse.sweep.runs");
  registry.gauge("dse.sweep.grid_size").set(static_cast<double>(grid_size));
  m_runs.add();
  TraceSpan sweep_span("dse.sweep", "dse");
  // Stage-level resource attribution for the whole sweep: wall + thread CPU
  // + alloc/RSS, feeding the stage event and the stage.dse.sweep.* metrics.
  StageTimer sweep_stage("dse.sweep");
  const bool timed = metrics_enabled();
  const auto sweep_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};

  // Fault plans trip on ARRIVAL order at each site, which only the serial
  // loop reproduces — an armed injector pins the sweep to one thread.
  const int jobs = FaultInjector::instance().armed()
                       ? 1
                       : parallel::resolve_jobs(options.jobs);
  registry.gauge("dse.sweep.jobs").set(static_cast<double>(jobs));

  // The fingerprint hashes every axis value — only pay for it when the
  // sweep_start event will actually be written.
  if (EventSink::enabled()) {
    EventSink::instance().emit_sweep_start(
        sweep_fingerprint(grid, metric_names, options.config_hash), grid_size,
        param_names, metric_names, grid_size, jobs);
  }
  std::optional<ProgressReporter> progress;
  if (progress_enabled()) progress.emplace("sweep", grid_size);

  // Pre-sized row slots indexed by grid index: assembly order (and thus
  // the result) is bit-identical to the serial loop at any jobs count.
  std::vector<SweepRow> rows(grid_size);
  const auto evaluate_point = [&](std::size_t i) {
    rows[i] =
        evaluate_sweep_point(grid, i, metric_names, evaluate, options.policy);
    if (progress.has_value()) {
      rows[i].ok() ? progress->add_ok() : progress->add_failed();
    }
  };
  parallel::ForOptions for_opts{.jobs = jobs};
  if (progress.has_value()) {
    for_opts.on_chunk_done = [&](std::size_t n) {
      progress->on_chunk_done(n);
    };
  }
  // Sweep-point deduplication: group grid indices by the caller's canonical
  // evaluation key, evaluate only the lowest-index representative of each
  // class, and fan its outcome out to the aliases.  Rows are bit-identical
  // to the dense loop (aliases copy the representative's metrics/failure
  // and keep their own params/grid_index); kFailFast is preserved because
  // the first failing point's representative has the minimal index of its
  // class and fails iff the point does, so parallel_for rethrows the same
  // exception the dense loop would.
  const bool dedup = options.point_key != nullptr && sweep_dedup_enabled();
  if (dedup && grid_size > 0) {
    std::vector<std::size_t> rep_of(grid_size);
    std::vector<std::size_t> reps;  // ascending by construction
    {
      std::unordered_map<std::string, std::size_t> first_by_key;
      first_by_key.reserve(grid_size);
      for (std::size_t i = 0; i < grid_size; ++i) {
        const auto [it, inserted] =
            first_by_key.try_emplace(options.point_key(grid.point(i)), i);
        rep_of[i] = it->second;
        if (inserted) reps.push_back(i);
      }
    }
    registry.counter("dse.sweep.dedup_unique")
        .add(static_cast<std::uint64_t>(reps.size()));
    registry.counter("dse.sweep.dedup_aliased")
        .add(static_cast<std::uint64_t>(grid_size - reps.size()));
    parallel::parallel_for_indexed(
        reps.size(), [&](std::size_t j) { evaluate_point(reps[j]); },
        for_opts);
    for (std::size_t i = 0; i < grid_size; ++i) {
      if (rep_of[i] == i) continue;
      rows[i] = alias_sweep_point(grid, i, rows[rep_of[i]]);
      if (progress.has_value()) {
        rows[i].ok() ? progress->add_ok() : progress->add_failed();
        progress->on_chunk_done(1);
      }
    }
  } else {
    parallel::parallel_for_indexed(grid_size, evaluate_point, for_opts);
  }
  if (timed) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    if (seconds > 0.0 && grid_size > 0) {
      registry.gauge("dse.sweep.points_per_sec")
          .set(static_cast<double>(grid_size) / seconds);
    }
  }
  return SweepResult(std::move(param_names),
                     std::vector<std::string>(metric_names), std::move(rows));
}

}  // namespace uld3d::dse

// Design-space sweep engine: Cartesian parameter grids, metric evaluation,
// Pareto-front extraction, and tabular export.  Used by the benchmark
// harnesses and the design_space_explorer example; model-agnostic (the
// evaluation callback closes over whatever chip/workload objects it needs).
//
// Fault tolerance: under the default ErrorPolicy::kSkipAndRecord a design
// point whose evaluation throws (or returns a non-finite metric) becomes a
// *failed* SweepRow carrying a structured Failure instead of aborting the
// whole sweep; `pareto_front`/`best` ignore failed rows and
// `failure_summary()` reports them.  ErrorPolicy::kFailFast rethrows at the
// first bad point (the pre-diagnostics behaviour).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "uld3d/util/status.hpp"
#include "uld3d/util/table.hpp"

namespace uld3d::dse {

/// One swept parameter and its values.
struct Axis {
  std::string name;
  std::vector<double> values;
};

/// A Cartesian grid over named axes.
class Grid {
 public:
  /// Append an axis; returns *this for chaining.
  Grid& axis(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
  /// Product of axis lengths; throws StatusError(kInvalidArgument) naming
  /// the offending axis when the product overflows std::size_t.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// The `index`-th grid point (row-major over axes in insertion order).
  [[nodiscard]] std::vector<double> point(std::size_t index) const;

 private:
  std::vector<Axis> axes_;
};

/// What a sweep does when evaluating one design point fails.
enum class ErrorPolicy {
  kFailFast,       ///< rethrow: one bad point aborts the sweep
  kSkipAndRecord,  ///< record a failed row and continue (default)
};

struct SweepOptions {
  ErrorPolicy policy = ErrorPolicy::kSkipAndRecord;
  /// Worker threads evaluating points (0 = the global parallel::jobs()).
  /// Any jobs count yields bit-identical rows; kFailFast still rethrows
  /// the first failure in INDEX order (later points may have been
  /// speculatively evaluated before cancellation).  An armed FaultInjector
  /// pins the sweep to jobs=1 so trip arrival order stays deterministic.
  int jobs = 0;
  /// Caller config fingerprint folded into the sweep_start telemetry
  /// event's fingerprint (same role as ResumableOptions::config_hash on the
  /// checkpoint path, so both runners label the same study identically).
  std::string config_hash = {};
  /// Canonical EVALUATION key of one grid point — sweep-point deduplication.
  /// Points with equal keys are certified by the caller to evaluate
  /// identically (e.g. an axis like a thermal budget that the evaluator
  /// never reads), so the runner evaluates only the lowest-grid-index
  /// representative of each key class and fans its metrics/failure out to
  /// the aliases (each keeps its own params and grid_index).  The key must
  /// cover EVERY input the evaluator reads; rows are then bit-identical to
  /// a dedup-off run.  nullptr (the default) disables deduplication, as
  /// does ULD3D_NO_SWEEP_DEDUP / set_sweep_dedup_enabled(false).  Counters:
  /// "dse.sweep.dedup_unique" / "dse.sweep.dedup_aliased".
  std::function<std::string(const std::vector<double>&)> point_key;
};

/// Sweep-point-dedup lever: on by default, `ULD3D_NO_SWEEP_DEDUP` (set
/// non-empty) disables it at startup, the setter at runtime (differential
/// tests, A/B timing).  Off simply means every point is evaluated, even
/// when a point_key is supplied — output is byte-identical either way.
[[nodiscard]] bool sweep_dedup_enabled();
void set_sweep_dedup_enabled(bool enabled);

/// One evaluated design point.  Failed rows keep their params, carry NaN
/// metrics, and record why they failed.
struct SweepRow {
  std::vector<double> params;   ///< one value per axis
  std::vector<double> metrics;  ///< one value per metric (NaN when failed)
  std::optional<Failure> failure;  ///< set iff evaluation failed
  /// Position in the flattened grid index space.  Equal to the row's
  /// position in `SweepResult::rows()` for a plain full-grid sweep, but a
  /// sharded/merged result holds a subset, so reports (failure_summary)
  /// label points by this index — stable across shard/resume boundaries.
  std::size_t grid_index = 0;

  [[nodiscard]] bool ok() const { return !failure.has_value(); }
};

/// All evaluated points of a sweep.
class SweepResult {
 public:
  SweepResult(std::vector<std::string> param_names,
              std::vector<std::string> metric_names,
              std::vector<SweepRow> rows);

  [[nodiscard]] const std::vector<SweepRow>& rows() const { return rows_; }
  [[nodiscard]] const std::vector<std::string>& param_names() const {
    return param_names_;
  }
  [[nodiscard]] const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// Column index of a metric; throws for unknown names.
  [[nodiscard]] std::size_t metric_index(const std::string& name) const;

  [[nodiscard]] std::size_t ok_count() const;
  [[nodiscard]] std::size_t failed_count() const;
  [[nodiscard]] std::vector<std::size_t> failed_rows() const;

  /// Indices of *feasible* rows on the Pareto front that MAXIMIZES
  /// `benefit_metric` while MINIMIZING `cost_metric`, sorted by ascending
  /// cost.  Failed rows never appear on the front.
  [[nodiscard]] std::vector<std::size_t> pareto_front(
      const std::string& benefit_metric, const std::string& cost_metric) const;

  /// Row index with the best (largest) value of `metric` among feasible
  /// rows; throws StatusError(kInfeasiblePoint) when every row failed.
  [[nodiscard]] std::size_t best(const std::string& metric) const;

  /// Render as a uld3d::Table (params, metrics, then a status column;
  /// failed rows show "-" metrics and their error code).
  [[nodiscard]] Table to_table(int digits = 2) const;

  /// Human-readable report of the failed points: a header with counts and
  /// one line per failed row with its parameters and reason.  Empty string
  /// when every point succeeded.
  [[nodiscard]] std::string failure_summary() const;

 private:
  std::vector<std::string> param_names_;
  std::vector<std::string> metric_names_;
  std::vector<SweepRow> rows_;
  /// Precomputed in the constructor (rows_ is immutable afterwards) so the
  /// report/export paths over million-row sweeps are not accidentally
  /// quadratic: metric_index was a linear name scan per call and
  /// pareto_front/failed_rows re-filtered every row per call.
  std::unordered_map<std::string, std::size_t> metric_index_;
  std::vector<std::size_t> ok_rows_;      ///< indices of ok rows, ascending
  std::vector<std::size_t> failed_rows_;  ///< indices of failed rows, ascending
};

/// Evaluate `metrics(point)` at every grid point.  The callback returns one
/// value per metric name (checked; a mismatch is an evaluator bug and
/// always throws regardless of policy).  An empty grid yields an empty
/// SweepResult with the metric names intact.  Per-point behaviour on
/// failure follows `options.policy`.
[[nodiscard]] SweepResult run_sweep(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate,
    const SweepOptions& options = {});

/// Evaluate ONE grid point into a SweepRow following `policy`.  This is the
/// single evaluation kernel shared by run_sweep and the checkpoint-aware
/// runner (uld3d/dse/checkpoint.hpp): identical failure classification,
/// metric-count checking, and NaN handling on both paths, so a resumed or
/// sharded sweep's rows are bit-identical to an uninterrupted full run's.
/// Throws under ErrorPolicy::kFailFast exactly like the sweep loop.
[[nodiscard]] SweepRow evaluate_sweep_point(
    const Grid& grid, std::size_t grid_index,
    const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate,
    ErrorPolicy policy);

/// Build the row for an ALIASED grid point from its already-evaluated
/// representative (sweep-point deduplication fan-out): the alias keeps its
/// own params and grid_index but copies the representative's metrics and
/// failure verbatim.  Performs the same counter/event bookkeeping as
/// evaluate_sweep_point (points/ok/failed/skipped, point_done event) so a
/// run report has the same shape with dedup on or off.  Shared by
/// run_sweep and the checkpoint-aware runner.
[[nodiscard]] SweepRow alias_sweep_point(const Grid& grid,
                                         std::size_t grid_index,
                                         const SweepRow& representative);

}  // namespace uld3d::dse

// Design-space sweep engine: Cartesian parameter grids, metric evaluation,
// Pareto-front extraction, and tabular export.  Used by the benchmark
// harnesses and the design_space_explorer example; model-agnostic (the
// evaluation callback closes over whatever chip/workload objects it needs).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "uld3d/util/table.hpp"

namespace uld3d::dse {

/// One swept parameter and its values.
struct Axis {
  std::string name;
  std::vector<double> values;
};

/// A Cartesian grid over named axes.
class Grid {
 public:
  /// Append an axis; returns *this for chaining.
  Grid& axis(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
  [[nodiscard]] std::size_t size() const;  ///< product of axis lengths
  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// The `index`-th grid point (row-major over axes in insertion order).
  [[nodiscard]] std::vector<double> point(std::size_t index) const;

 private:
  std::vector<Axis> axes_;
};

/// One evaluated design point.
struct SweepRow {
  std::vector<double> params;   ///< one value per axis
  std::vector<double> metrics;  ///< one value per metric
};

/// All evaluated points of a sweep.
class SweepResult {
 public:
  SweepResult(std::vector<std::string> param_names,
              std::vector<std::string> metric_names,
              std::vector<SweepRow> rows);

  [[nodiscard]] const std::vector<SweepRow>& rows() const { return rows_; }
  [[nodiscard]] const std::vector<std::string>& param_names() const {
    return param_names_;
  }
  [[nodiscard]] const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  /// Column index of a metric; throws for unknown names.
  [[nodiscard]] std::size_t metric_index(const std::string& name) const;

  /// Indices of rows on the Pareto front that MAXIMIZES `benefit_metric`
  /// while MINIMIZING `cost_metric`, sorted by ascending cost.
  [[nodiscard]] std::vector<std::size_t> pareto_front(
      const std::string& benefit_metric, const std::string& cost_metric) const;

  /// Row index with the best (largest) value of `metric`.
  [[nodiscard]] std::size_t best(const std::string& metric) const;

  /// Render as a uld3d::Table (params then metrics, `digits` decimals).
  [[nodiscard]] Table to_table(int digits = 2) const;

 private:
  std::vector<std::string> param_names_;
  std::vector<std::string> metric_names_;
  std::vector<SweepRow> rows_;
};

/// Evaluate `metrics(point)` at every grid point.  The callback returns one
/// value per metric name (checked).
[[nodiscard]] SweepResult run_sweep(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate);

}  // namespace uld3d::dse

// Checkpoint/restart + deterministic sharding for design-space sweeps —
// the machinery that turns `run_sweep`'s one-process, one-pass batch loop
// into restartable, distributable units of work (ROADMAP item 2: overnight
// 10^5–10^6-point sweeps across many machines).
//
// Three pieces:
//
//  * `SweepCheckpoint` — the versioned on-disk sweep state: a
//    completed-point bitmap over the flattened grid index space, the
//    serialized `SweepRow`s (including FAILED rows, so
//    ErrorPolicy::kSkipAndRecord / failure_summary() semantics survive a
//    resume boundary), and an FNV-1a provenance fingerprint of the grid
//    spec + metric names + caller config.  Saved atomically
//    (write-temp-then-rename, util/checkpoint.hpp) so a kill mid-write
//    never corrupts state; `load_checkpoint` re-validates the bitmap
//    against the row list so a torn or hand-edited file is refused, and
//    `validate_checkpoint` refuses a checkpoint whose fingerprint does not
//    match the grid it is being resumed against.
//
//  * `run_sweep_resumable` — a resume-aware, shard-aware run_sweep.
//    Completed points are loaded from the checkpoint and NOT re-evaluated;
//    the rest are evaluated through the same `evaluate_sweep_point` kernel
//    as run_sweep, so the final rows are bit-identical to an uninterrupted
//    full run at any jobs count.  The runner flushes a checkpoint every
//    `checkpoint_interval` completed points, on any exception, and on the
//    interrupt flag (SIGINT/SIGTERM via util/checkpoint.hpp), in which
//    case it throws `SweepInterrupted` — the CLI maps that to the distinct
//    "interrupted, resumable" exit code.
//
//  * sharding + `merge_shards` — `ShardSpec{i, N}` deterministically
//    partitions the grid index space (shard i owns indices g with
//    g % N == i) and every shard additionally evaluates a small set of
//    shared SENTINEL points.  `merge_shards` stitches complete shard
//    checkpoints back into the full-grid result, refusing mismatched
//    fingerprints, missing shards, and sentinel rows that are not
//    byte-for-byte identical across shards (the cross-machine consistency
//    check: different binaries/FPU modes on shard machines are caught
//    instead of silently merged).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uld3d/dse/sweep.hpp"

namespace uld3d::dse {

/// Bumped when the on-disk layout changes; older files are refused.
inline constexpr int kCheckpointSchemaVersion = 1;

/// One deterministic slice of the grid index space: shard `index` of
/// `count` owns indices g with g % count == index (strided, so expensive
/// regions of the grid spread evenly across machines).  {0, 1} = the whole
/// grid (unsharded).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  [[nodiscard]] bool sharded() const { return count > 1; }
};

/// Parse "i/N" (e.g. "0/4"); throws StatusError(kInvalidArgument) unless
/// 0 <= i < N and N >= 1.
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& text);

/// The sentinel points every shard evaluates in ADDITION to its own slice:
/// up to 4 indices spread evenly over the grid.  Deterministic in
/// grid_size alone, so all shards agree on the set; empty for unsharded
/// runs (count == 1) where cross-checking would be vacuous.
[[nodiscard]] std::vector<std::size_t> sentinel_indices(
    std::size_t grid_size, const ShardSpec& shard);

/// All indices `shard` evaluates (owned slice ∪ sentinels), ascending.
[[nodiscard]] std::vector<std::size_t> shard_domain(std::size_t grid_size,
                                                    const ShardSpec& shard);

/// FNV-1a provenance fingerprint of the sweep identity: axis names +
/// values (exact, 17-significant-digit rendering), metric names, and the
/// caller's `config_hash` (e.g. fnv1a_hex of the study config file +
/// network name).  A checkpoint records this and is refused against any
/// grid/config whose fingerprint differs.
[[nodiscard]] std::string sweep_fingerprint(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::string& config_hash);

/// In-memory image of the on-disk sweep state.
struct SweepCheckpoint {
  int schema_version = kCheckpointSchemaVersion;
  std::string fingerprint;  ///< sweep_fingerprint() of the producing run
  /// RunId of the most recent writer (util/telemetry); joins the checkpoint
  /// with that run's events/metrics/trace.  Informational only — resume
  /// accepts any run_id (a resumed sweep is a new run by design).
  std::string run_id;
  std::size_t grid_size = 0;
  ShardSpec shard;
  std::vector<std::string> param_names;
  std::vector<std::string> metric_names;
  /// Bit g set iff grid point g has been evaluated (only bits inside the
  /// shard's domain can be set).
  std::vector<bool> completed;
  /// One row per set bit, ascending grid_index.  Doubles round-trip
  /// bit-exactly through the file, so resumed rows equal recomputed ones.
  std::vector<SweepRow> rows;

  [[nodiscard]] std::size_t completed_count() const;

  /// Render as the versioned JSON document (schema in DESIGN.md §13).
  [[nodiscard]] std::string to_json() const;
};

/// Serialize + atomically write `checkpoint` to `path`.  Throws
/// StatusError(kInternal) when the file cannot be written.
void save_checkpoint(const SweepCheckpoint& checkpoint,
                     const std::string& path);

/// Parse `path` and enforce internal consistency: schema version, bitmap
/// length, bitmap popcount == row count, every row's bit set, rows
/// ascending and inside the shard domain, row widths matching the names.
/// Throws JsonParseError on unreadable/malformed JSON and
/// StatusError(kInvalidConfig) on a structurally inconsistent document (a
/// torn or tampered file).
[[nodiscard]] SweepCheckpoint load_checkpoint(const std::string& path);

/// Refuse `checkpoint` unless it matches the sweep about to run: same
/// fingerprint (grid spec + metrics + config), same grid size, same shard.
/// Throws StatusError(kInvalidConfig) naming the mismatch.
void validate_checkpoint(const SweepCheckpoint& checkpoint,
                         std::size_t grid_size,
                         const std::string& fingerprint,
                         const ShardSpec& shard);

/// Thrown when the interrupt flag stops a resumable sweep.  The partial
/// state has already been flushed to the checkpoint path; re-running with
/// resume enabled continues where this run stopped.
class SweepInterrupted : public Error {
 public:
  SweepInterrupted(std::size_t completed, std::size_t total);

  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  std::size_t completed_ = 0;
  std::size_t total_ = 0;
};

struct ResumableOptions {
  ErrorPolicy policy = ErrorPolicy::kSkipAndRecord;
  int jobs = 0;               ///< as SweepOptions::jobs
  ShardSpec shard;            ///< slice of the grid this process owns
  std::string checkpoint_path;  ///< "" = no checkpointing (sharding only)
  /// Load an existing checkpoint_path instead of starting fresh.  When
  /// false and the file exists, the runner refuses to overwrite it
  /// (StatusError(kInvalidConfig)) — silently clobbering completed work is
  /// never the right default.
  bool resume = false;
  /// Flush the checkpoint after this many newly completed points (and
  /// always at the end, and on interrupt/exception).
  std::size_t checkpoint_interval = 64;
  /// Caller config fingerprint folded into sweep_fingerprint().
  std::string config_hash;
  /// Canonical evaluation key for sweep-point deduplication — same contract
  /// as SweepOptions::point_key.  Grouping happens over the points still
  /// TO DO this run (resumed rows are already final); each class's
  /// lowest-index remaining point is evaluated and its aliases are filled
  /// in the same work item, so a checkpoint snapshot only ever contains
  /// fully-written rows and rows stay bit-identical to a dedup-off run
  /// across any interrupt/resume schedule.
  std::function<std::string(const std::vector<double>&)> point_key;
};

/// Resume-aware, shard-aware run_sweep.  The returned result holds the
/// shard's domain rows ascending by grid_index (the full grid for an
/// unsharded run) and is bit-identical — rows, failure_summary(), table
/// output — to the corresponding slice of a plain run_sweep at any jobs
/// count, whether or not the run was interrupted and resumed in between.
/// Throws SweepInterrupted when stopped by the interrupt flag.
[[nodiscard]] SweepResult run_sweep_resumable(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        evaluate,
    const ResumableOptions& options);

/// Stitch complete shard checkpoints back into the full-grid result.
/// Every file must validate against `fingerprint` and `grid_size`, the
/// shards must form exactly {0..N-1} of a common N with every domain point
/// completed, and each sentinel point's serialized row must be
/// byte-identical across all shards that evaluated it.  Throws
/// StatusError(kInvalidConfig) on any violation.
[[nodiscard]] SweepResult merge_shards(
    const Grid& grid, const std::vector<std::string>& metric_names,
    const std::string& config_hash,
    const std::vector<std::string>& checkpoint_paths);

}  // namespace uld3d::dse

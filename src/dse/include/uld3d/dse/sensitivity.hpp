// One-at-a-time sensitivity analysis: how much a scalar objective moves per
// relative perturbation of each input parameter.  Used to rank which
// technology/architecture knobs (bandwidth, gamma_cells, access energy,
// via pitch, ...) dominate the M3D EDP benefit.
//
// Fault tolerance mirrors dse::run_sweep: under the default
// ErrorPolicy::kSkipAndRecord a parameter whose perturbed evaluation throws
// (or yields a non-finite objective) is reported as a failed Sensitivity
// entry instead of aborting the whole analysis.  The *baseline* evaluation
// is always fail-fast — without it no elasticity is defined.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "uld3d/dse/sweep.hpp"
#include "uld3d/util/status.hpp"
#include "uld3d/util/table.hpp"

namespace uld3d::dse {

/// Result for one parameter.
struct Sensitivity {
  std::string parameter;
  double baseline_value = 0.0;
  double objective_minus = 0.0;  ///< objective at (1 - step) * value
  double objective_plus = 0.0;   ///< objective at (1 + step) * value
  /// Normalized elasticity: d(objective)/objective per d(param)/param,
  /// central-differenced.  |1.0| means proportional response.
  double elasticity = 0.0;
  std::optional<Failure> failure;  ///< set iff a perturbed evaluation failed

  [[nodiscard]] bool ok() const { return !failure.has_value(); }
};

/// Compute elasticities of `objective(params)` around `baseline`, one
/// parameter at a time, with a relative `step` (default 5%).  Per-parameter
/// failures follow `policy`; failed entries carry NaN elasticities.
/// Parameters are evaluated on `jobs` threads (0 = global parallel::jobs())
/// into pre-sized slots, so the result is bit-identical at any jobs count;
/// an armed FaultInjector pins the analysis to jobs=1 (arrival-order trips).
[[nodiscard]] std::vector<Sensitivity> analyze_sensitivity(
    const std::vector<std::string>& names, const std::vector<double>& baseline,
    const std::function<double(const std::vector<double>&)>& objective,
    double step = 0.05, ErrorPolicy policy = ErrorPolicy::kSkipAndRecord,
    int jobs = 0);

/// Render sensitivities as a table, largest |elasticity| first; failed
/// entries sink to the bottom with their error code in place of numbers.
[[nodiscard]] Table sensitivity_table(std::vector<Sensitivity> results);

}  // namespace uld3d::dse

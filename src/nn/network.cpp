#include "uld3d/nn/network.hpp"

#include <algorithm>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {

Network::Network(std::string name, std::vector<Layer> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  expects(!layers_.empty(), "a network needs at least one layer");
}

const Layer& Network::layer(std::size_t index) const {
  expects(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

std::int64_t Network::total_ops() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.ops();
  return total;
}

std::int64_t Network::total_macs() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.macs();
  return total;
}

std::int64_t Network::total_weights() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.weight_count();
  return total;
}

std::int64_t Network::total_weight_bits(int bits_per_weight) const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.weight_bits(bits_per_weight);
  return total;
}

std::int64_t Network::peak_activation_bits(int bits_per_activation) const {
  std::int64_t peak = 0;
  for (const auto& l : layers_) {
    peak = std::max(peak, l.input_bits(bits_per_activation) +
                              l.output_bits(bits_per_activation));
  }
  return peak;
}

}  // namespace uld3d::nn

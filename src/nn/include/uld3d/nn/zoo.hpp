// Model zoo: exact layer-by-layer descriptions of the CNNs the paper
// evaluates (Fig. 5: AlexNet, VGG, ResNet-18, ResNet-152; Table I:
// ResNet-18 per-layer).  Shapes follow the standard ImageNet variants.
#pragma once

#include <string>
#include <vector>

#include "uld3d/nn/network.hpp"

namespace uld3d::nn {

[[nodiscard]] Network make_alexnet();
[[nodiscard]] Network make_vgg16();
[[nodiscard]] Network make_resnet18();
[[nodiscard]] Network make_resnet34();
[[nodiscard]] Network make_resnet50();
[[nodiscard]] Network make_resnet152();

/// Lookup by case-insensitive name ("resnet18", "ResNet-18", ...).
/// Throws PreconditionError for unknown names.
[[nodiscard]] Network make_network(const std::string& name);

/// Names accepted by make_network().
[[nodiscard]] std::vector<std::string> zoo_names();

}  // namespace uld3d::nn

// Random CNN generator for property/fuzz testing: produces structurally
// valid networks (channel counts chain, spatial sizes shrink monotonically)
// with randomized depth, widths, kernel sizes, strides, and optional
// residual blocks — so model-level invariants can be checked far outside
// the zoo's six fixed topologies.
#pragma once

#include "uld3d/nn/network.hpp"
#include "uld3d/util/rng.hpp"

namespace uld3d::nn {

struct GeneratorOptions {
  int min_stages = 2;
  int max_stages = 5;
  int min_blocks_per_stage = 1;
  int max_blocks_per_stage = 3;
  std::int64_t max_channels = 512;
  std::int64_t input_size = 64;   ///< input feature-map side
  bool allow_residual = true;     ///< emit DS + ADD residual blocks
  bool end_with_classifier = true;
};

/// Generate a random, structurally valid CNN.  Deterministic in `rng`.
[[nodiscard]] Network random_network(Rng& rng,
                                     const GeneratorOptions& options = {});

}  // namespace uld3d::nn

// Neural-network layer descriptors.
//
// The reproduction evaluates inference of CNN workloads (AlexNet, VGG,
// ResNet) on the paper's accelerators.  Layers carry exact shapes so compute
// operations (F0) and data footprints (D0) are derived, not estimated.
// Dimension naming follows the paper's Table II: K = output channels,
// C = input channels, OX/OY = output width/height, FX/FY = filter
// width/height.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace uld3d::nn {

/// 2-D convolution (a fully-connected layer is a 1x1 conv on a 1x1 map).
struct ConvSpec {
  std::string name;
  std::int64_t k = 0;    ///< output channels
  std::int64_t c = 0;    ///< input channels
  std::int64_t ox = 0;   ///< output width
  std::int64_t oy = 0;   ///< output height
  std::int64_t fx = 1;   ///< filter width
  std::int64_t fy = 1;   ///< filter height
  std::int64_t stride = 1;

  [[nodiscard]] std::int64_t input_x() const { return (ox - 1) * stride + fx; }
  [[nodiscard]] std::int64_t input_y() const { return (oy - 1) * stride + fy; }
};

/// Pooling (max or average); carries no weights.
struct PoolSpec {
  std::string name;
  std::int64_t channels = 0;
  std::int64_t ox = 0;
  std::int64_t oy = 0;
  std::int64_t fx = 1;
  std::int64_t fy = 1;
  std::int64_t stride = 1;
};

/// Residual element-wise addition of two equal-shaped activation maps.
struct EltwiseAddSpec {
  std::string name;
  std::int64_t channels = 0;
  std::int64_t ox = 0;
  std::int64_t oy = 0;
};

/// A network layer.
class Layer {
 public:
  using Spec = std::variant<ConvSpec, PoolSpec, EltwiseAddSpec>;

  explicit Layer(Spec spec);

  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] bool is_conv() const;
  [[nodiscard]] bool is_pool() const;
  [[nodiscard]] bool is_eltwise() const;
  [[nodiscard]] const ConvSpec& conv() const;
  [[nodiscard]] const PoolSpec& pool() const;
  [[nodiscard]] const EltwiseAddSpec& eltwise() const;
  [[nodiscard]] const Spec& spec() const { return spec_; }

  /// Compute operations for one inference (a MAC counts as 2 ops, following
  /// the usual convention and the paper's ops-per-cycle P_peak definition).
  [[nodiscard]] std::int64_t ops() const;

  /// MAC count (convs only; zero otherwise).
  [[nodiscard]] std::int64_t macs() const;

  /// Weight parameter count (zero for pool/eltwise).
  [[nodiscard]] std::int64_t weight_count() const;

  /// Weight storage in bits at `bits_per_weight` precision.
  [[nodiscard]] std::int64_t weight_bits(int bits_per_weight) const;

  /// Input activation bits consumed (unique pixels, not reuse-weighted).
  [[nodiscard]] std::int64_t input_bits(int bits_per_activation) const;

  /// Output activation bits produced.
  [[nodiscard]] std::int64_t output_bits(int bits_per_activation) const;

 private:
  Spec spec_;
};

/// Convenience builders.
[[nodiscard]] Layer make_conv(std::string name, std::int64_t k, std::int64_t c,
                              std::int64_t ox, std::int64_t oy, std::int64_t fx,
                              std::int64_t fy, std::int64_t stride = 1);
[[nodiscard]] Layer make_fc(std::string name, std::int64_t out_features,
                            std::int64_t in_features);
[[nodiscard]] Layer make_pool(std::string name, std::int64_t channels,
                              std::int64_t ox, std::int64_t oy, std::int64_t fx,
                              std::int64_t fy, std::int64_t stride);
[[nodiscard]] Layer make_eltwise(std::string name, std::int64_t channels,
                                 std::int64_t ox, std::int64_t oy);

}  // namespace uld3d::nn

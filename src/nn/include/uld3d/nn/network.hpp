// A network is an ordered list of layers with aggregate accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uld3d/nn/layer.hpp"

namespace uld3d::nn {

class Network {
 public:
  Network(std::string name, std::vector<Layer> layers);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }
  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t index) const;

  /// Total compute operations for one inference.
  [[nodiscard]] std::int64_t total_ops() const;
  /// Total MACs for one inference.
  [[nodiscard]] std::int64_t total_macs() const;
  /// Total weight parameters.
  [[nodiscard]] std::int64_t total_weights() const;
  /// Model weight storage in bits.
  [[nodiscard]] std::int64_t total_weight_bits(int bits_per_weight) const;
  /// Largest single-layer activation working set (input + output), bits.
  [[nodiscard]] std::int64_t peak_activation_bits(int bits_per_activation) const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

}  // namespace uld3d::nn

#include "uld3d/nn/generator.hpp"

#include <algorithm>
#include <string>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {

namespace {

std::int64_t pick(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
}

}  // namespace

Network random_network(Rng& rng, const GeneratorOptions& opt) {
  expects(opt.min_stages >= 1 && opt.max_stages >= opt.min_stages,
          "stage bounds must be ordered and positive");
  expects(opt.min_blocks_per_stage >= 1 &&
              opt.max_blocks_per_stage >= opt.min_blocks_per_stage,
          "block bounds must be ordered and positive");
  expects(opt.max_channels >= 16, "need room for at least 16 channels");
  expects(opt.input_size >= 8, "input must be at least 8x8");

  std::vector<Layer> layers;
  std::int64_t channels = 3;
  std::int64_t size = opt.input_size;
  int layer_id = 0;

  // Stem: a strided conv into a modest channel count.
  const std::int64_t stem_channels = pick(rng, 2, 6) * 8;
  const std::int64_t stem_kernel = 2 * pick(rng, 1, 3) + 1;  // 3, 5, 7
  size /= 2;
  layers.push_back(make_conv("G" + std::to_string(layer_id++) + " STEM",
                             stem_channels, channels, size, size, stem_kernel,
                             stem_kernel, 2));
  channels = stem_channels;

  const int stages =
      static_cast<int>(pick(rng, opt.min_stages, opt.max_stages));
  for (int stage = 0; stage < stages && size >= 4; ++stage) {
    const std::int64_t out_channels =
        std::min(opt.max_channels, channels * pick(rng, 1, 2));
    const bool downsample = stage > 0 && size >= 8;
    if (downsample) size /= 2;

    const int blocks = static_cast<int>(
        pick(rng, opt.min_blocks_per_stage, opt.max_blocks_per_stage));
    for (int block = 0; block < blocks; ++block) {
      const std::string prefix = "G" + std::to_string(layer_id++) + " ";
      const bool residual = opt.allow_residual && rng.below(2) == 0;
      const std::int64_t in_ch = channels;
      const std::int64_t stride = (block == 0 && downsample) ? 2 : 1;
      if (residual && (in_ch != out_channels || stride > 1)) {
        layers.push_back(make_conv(prefix + "DS", out_channels, in_ch, size,
                                   size, 1, 1, stride));
      }
      const std::int64_t kernel = 2 * pick(rng, 0, 1) + 1;  // 1 or 3
      layers.push_back(make_conv(prefix + "CONV", out_channels, in_ch, size,
                                 size, kernel, kernel, stride));
      if (residual) {
        layers.push_back(make_eltwise(prefix + "ADD", out_channels, size, size));
      }
      channels = out_channels;
    }
    // Occasional pooling between stages.
    if (rng.below(3) == 0 && size >= 8) {
      size /= 2;
      layers.push_back(make_pool("G" + std::to_string(layer_id++) + " POOL",
                                 channels, size, size, 2, 2, 2));
    }
  }

  if (opt.end_with_classifier) {
    layers.push_back(make_pool("GAP", channels, 1, 1, size, size, size));
    layers.push_back(make_fc("FC", pick(rng, 10, 1000), channels));
  }

  return Network("random-" + std::to_string(rng.below(1u << 30)),
                 std::move(layers));
}

}  // namespace uld3d::nn

#include "uld3d/nn/zoo.hpp"

#include <algorithm>
#include <cctype>

#include "uld3d/util/check.hpp"

namespace uld3d::nn {

namespace {

/// Append one ResNet "basic block" (two 3x3 convs + residual add), used by
/// ResNet-18/34.  `stage` and `block` build Table-I style names such as
/// "L2.0 CONV1".  When `downsample` is true the block's first conv strides by
/// 2 and a 1x1 projection ("L2.0 DS") joins the skip path.
void append_basic_block(std::vector<Layer>& layers, int stage, int block,
                        std::int64_t channels, std::int64_t out_xy,
                        bool downsample) {
  const std::string prefix =
      "L" + std::to_string(stage) + "." + std::to_string(block) + " ";
  const std::int64_t in_ch = downsample ? channels / 2 : channels;
  const std::int64_t stride1 = downsample ? 2 : 1;
  if (downsample) {
    layers.push_back(make_conv(prefix + "DS", channels, in_ch, out_xy, out_xy,
                               1, 1, 2));
  }
  layers.push_back(make_conv(prefix + "CONV1", channels, in_ch, out_xy, out_xy,
                             3, 3, stride1));
  layers.push_back(
      make_conv(prefix + "CONV2", channels, channels, out_xy, out_xy, 3, 3, 1));
  layers.push_back(make_eltwise(prefix + "ADD", channels, out_xy, out_xy));
}

/// Append one ResNet "bottleneck block" (1x1 reduce, 3x3, 1x1 expand), used
/// by ResNet-50/152.  `in_ch` is the block's input channel count; the
/// internal width is `width` and the output is 4*width.
void append_bottleneck_block(std::vector<Layer>& layers, int stage, int block,
                             std::int64_t in_ch, std::int64_t width,
                             std::int64_t out_xy, bool spatial_downsample) {
  const std::string prefix =
      "L" + std::to_string(stage) + "." + std::to_string(block) + " ";
  const std::int64_t out_ch = 4 * width;
  const std::int64_t stride = spatial_downsample ? 2 : 1;
  if (in_ch != out_ch || spatial_downsample) {
    layers.push_back(make_conv(prefix + "DS", out_ch, in_ch, out_xy, out_xy, 1,
                               1, stride));
  }
  // The 1x1 reduce runs at the block's input resolution (out_xy * stride).
  layers.push_back(make_conv(prefix + "CONV1", width, in_ch, out_xy * stride,
                             out_xy * stride, 1, 1, 1));
  // The 3x3 conv carries the stride in torchvision's v1.5 ResNet.
  layers.push_back(
      make_conv(prefix + "CONV2", width, width, out_xy, out_xy, 3, 3, stride));
  layers.push_back(
      make_conv(prefix + "CONV3", out_ch, width, out_xy, out_xy, 1, 1, 1));
  layers.push_back(make_eltwise(prefix + "ADD", out_ch, out_xy, out_xy));
}

Network make_resnet_basic(const std::string& name,
                          const std::vector<int>& blocks_per_stage) {
  std::vector<Layer> layers;
  layers.push_back(make_conv("CONV1", 64, 3, 112, 112, 7, 7, 2));
  layers.push_back(make_pool("POOL1", 64, 56, 56, 3, 3, 2));
  const std::int64_t widths[4] = {64, 128, 256, 512};
  const std::int64_t maps[4] = {56, 28, 14, 7};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < blocks_per_stage[static_cast<std::size_t>(stage)];
         ++block) {
      const bool downsample = stage > 0 && block == 0;
      append_basic_block(layers, stage + 1, block, widths[stage], maps[stage],
                         downsample);
    }
  }
  layers.push_back(make_pool("AVGPOOL", 512, 1, 1, 7, 7, 7));
  layers.push_back(make_fc("FC", 1000, 512));
  return Network(name, std::move(layers));
}

Network make_resnet_bottleneck(const std::string& name,
                               const std::vector<int>& blocks_per_stage) {
  std::vector<Layer> layers;
  layers.push_back(make_conv("CONV1", 64, 3, 112, 112, 7, 7, 2));
  layers.push_back(make_pool("POOL1", 64, 56, 56, 3, 3, 2));
  const std::int64_t widths[4] = {64, 128, 256, 512};
  const std::int64_t maps[4] = {56, 28, 14, 7};
  std::int64_t in_ch = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < blocks_per_stage[static_cast<std::size_t>(stage)];
         ++block) {
      const bool spatial_ds = stage > 0 && block == 0;
      append_bottleneck_block(layers, stage + 1, block, in_ch, widths[stage],
                              maps[stage], spatial_ds);
      in_ch = 4 * widths[stage];
    }
  }
  layers.push_back(make_pool("AVGPOOL", 2048, 1, 1, 7, 7, 7));
  layers.push_back(make_fc("FC", 1000, 2048));
  return Network(name, std::move(layers));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](unsigned char c) { return c == '-' || c == '_'; }),
          s.end());
  return s;
}

}  // namespace

Network make_alexnet() {
  std::vector<Layer> layers;
  layers.push_back(make_conv("CONV1", 96, 3, 55, 55, 11, 11, 4));
  layers.push_back(make_pool("POOL1", 96, 27, 27, 3, 3, 2));
  layers.push_back(make_conv("CONV2", 256, 96, 27, 27, 5, 5, 1));
  layers.push_back(make_pool("POOL2", 256, 13, 13, 3, 3, 2));
  layers.push_back(make_conv("CONV3", 384, 256, 13, 13, 3, 3, 1));
  layers.push_back(make_conv("CONV4", 384, 384, 13, 13, 3, 3, 1));
  layers.push_back(make_conv("CONV5", 256, 384, 13, 13, 3, 3, 1));
  layers.push_back(make_pool("POOL5", 256, 6, 6, 3, 3, 2));
  layers.push_back(make_fc("FC6", 4096, 9216));
  layers.push_back(make_fc("FC7", 4096, 4096));
  layers.push_back(make_fc("FC8", 1000, 4096));
  return Network("AlexNet", std::move(layers));
}

Network make_vgg16() {
  std::vector<Layer> layers;
  struct Stage {
    std::int64_t channels;
    int convs;
    std::int64_t map;
  };
  const Stage stages[] = {{64, 2, 224}, {128, 2, 112}, {256, 3, 56},
                          {512, 3, 28}, {512, 3, 14}};
  std::int64_t in_ch = 3;
  int index = 1;
  for (const auto& stage : stages) {
    for (int i = 0; i < stage.convs; ++i) {
      layers.push_back(make_conv("CONV" + std::to_string(index++), stage.channels,
                                 in_ch, stage.map, stage.map, 3, 3, 1));
      in_ch = stage.channels;
    }
    layers.push_back(make_pool("POOL" + std::to_string(index - 1), stage.channels,
                               stage.map / 2, stage.map / 2, 2, 2, 2));
  }
  layers.push_back(make_fc("FC6", 4096, 25088));
  layers.push_back(make_fc("FC7", 4096, 4096));
  layers.push_back(make_fc("FC8", 1000, 4096));
  return Network("VGG-16", std::move(layers));
}

Network make_resnet18() { return make_resnet_basic("ResNet-18", {2, 2, 2, 2}); }

Network make_resnet34() { return make_resnet_basic("ResNet-34", {3, 4, 6, 3}); }

Network make_resnet50() {
  return make_resnet_bottleneck("ResNet-50", {3, 4, 6, 3});
}

Network make_resnet152() {
  return make_resnet_bottleneck("ResNet-152", {3, 8, 36, 3});
}

Network make_network(const std::string& name) {
  const std::string key = lower(name);
  if (key == "alexnet") return make_alexnet();
  if (key == "vgg16" || key == "vgg") return make_vgg16();
  if (key == "resnet18") return make_resnet18();
  if (key == "resnet34") return make_resnet34();
  if (key == "resnet50") return make_resnet50();
  if (key == "resnet152") return make_resnet152();
  expects(false, "unknown network: " + name);
  return make_resnet18();  // unreachable
}

std::vector<std::string> zoo_names() {
  return {"AlexNet", "VGG-16", "ResNet-18", "ResNet-34", "ResNet-50",
          "ResNet-152"};
}

}  // namespace uld3d::nn

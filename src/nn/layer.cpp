#include "uld3d/nn/layer.hpp"

#include "uld3d/util/check.hpp"

namespace uld3d::nn {

namespace {

void validate(const ConvSpec& s) {
  expects(s.k > 0 && s.c > 0 && s.ox > 0 && s.oy > 0 && s.fx > 0 && s.fy > 0 &&
              s.stride > 0,
          "conv dimensions must be positive: " + s.name);
}

void validate(const PoolSpec& s) {
  expects(s.channels > 0 && s.ox > 0 && s.oy > 0 && s.fx > 0 && s.fy > 0 &&
              s.stride > 0,
          "pool dimensions must be positive: " + s.name);
}

void validate(const EltwiseAddSpec& s) {
  expects(s.channels > 0 && s.ox > 0 && s.oy > 0,
          "eltwise dimensions must be positive: " + s.name);
}

}  // namespace

Layer::Layer(Spec spec) : spec_(std::move(spec)) {
  std::visit([](const auto& s) { validate(s); }, spec_);
}

const std::string& Layer::name() const {
  return std::visit([](const auto& s) -> const std::string& { return s.name; },
                    spec_);
}

bool Layer::is_conv() const { return std::holds_alternative<ConvSpec>(spec_); }
bool Layer::is_pool() const { return std::holds_alternative<PoolSpec>(spec_); }
bool Layer::is_eltwise() const {
  return std::holds_alternative<EltwiseAddSpec>(spec_);
}

const ConvSpec& Layer::conv() const {
  expects(is_conv(), "layer is not a convolution: " + name());
  return std::get<ConvSpec>(spec_);
}

const PoolSpec& Layer::pool() const {
  expects(is_pool(), "layer is not a pool: " + name());
  return std::get<PoolSpec>(spec_);
}

const EltwiseAddSpec& Layer::eltwise() const {
  expects(is_eltwise(), "layer is not an eltwise add: " + name());
  return std::get<EltwiseAddSpec>(spec_);
}

std::int64_t Layer::macs() const {
  if (!is_conv()) return 0;
  const auto& s = conv();
  return s.k * s.c * s.ox * s.oy * s.fx * s.fy;
}

std::int64_t Layer::ops() const {
  if (is_conv()) return 2 * macs();
  if (is_pool()) {
    const auto& s = pool();
    return s.channels * s.ox * s.oy * s.fx * s.fy;  // one compare/add per tap
  }
  const auto& s = eltwise();
  return s.channels * s.ox * s.oy;  // one add per element
}

std::int64_t Layer::weight_count() const {
  if (!is_conv()) return 0;
  const auto& s = conv();
  return s.k * s.c * s.fx * s.fy;
}

std::int64_t Layer::weight_bits(int bits_per_weight) const {
  expects(bits_per_weight > 0, "precision must be positive");
  return weight_count() * bits_per_weight;
}

std::int64_t Layer::input_bits(int bits_per_activation) const {
  expects(bits_per_activation > 0, "precision must be positive");
  if (is_conv()) {
    const auto& s = conv();
    return s.c * s.input_x() * s.input_y() * bits_per_activation;
  }
  if (is_pool()) {
    const auto& s = pool();
    const std::int64_t ix = (s.ox - 1) * s.stride + s.fx;
    const std::int64_t iy = (s.oy - 1) * s.stride + s.fy;
    return s.channels * ix * iy * bits_per_activation;
  }
  const auto& s = eltwise();
  return 2 * s.channels * s.ox * s.oy * bits_per_activation;  // two operands
}

std::int64_t Layer::output_bits(int bits_per_activation) const {
  expects(bits_per_activation > 0, "precision must be positive");
  if (is_conv()) {
    const auto& s = conv();
    return s.k * s.ox * s.oy * bits_per_activation;
  }
  if (is_pool()) {
    const auto& s = pool();
    return s.channels * s.ox * s.oy * bits_per_activation;
  }
  const auto& s = eltwise();
  return s.channels * s.ox * s.oy * bits_per_activation;
}

Layer make_conv(std::string name, std::int64_t k, std::int64_t c,
                std::int64_t ox, std::int64_t oy, std::int64_t fx,
                std::int64_t fy, std::int64_t stride) {
  ConvSpec s;
  s.name = std::move(name);
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = oy;
  s.fx = fx;
  s.fy = fy;
  s.stride = stride;
  return Layer(s);
}

Layer make_fc(std::string name, std::int64_t out_features,
              std::int64_t in_features) {
  return make_conv(std::move(name), out_features, in_features, 1, 1, 1, 1, 1);
}

Layer make_pool(std::string name, std::int64_t channels, std::int64_t ox,
                std::int64_t oy, std::int64_t fx, std::int64_t fy,
                std::int64_t stride) {
  PoolSpec s;
  s.name = std::move(name);
  s.channels = channels;
  s.ox = ox;
  s.oy = oy;
  s.fx = fx;
  s.fy = fy;
  s.stride = stride;
  return Layer(s);
}

Layer make_eltwise(std::string name, std::int64_t channels, std::int64_t ox,
                   std::int64_t oy) {
  EltwiseAddSpec s;
  s.name = std::move(name);
  s.channels = channels;
  s.ox = ox;
  s.oy = oy;
  return Layer(s);
}

}  // namespace uld3d::nn

#include "uld3d/phys/occupancy_index.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "uld3d/util/batch.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/simd.hpp"

namespace uld3d::phys {

namespace {

std::atomic<bool>& placer_index_flag() {
  static std::atomic<bool> enabled{std::getenv("ULD3D_NO_PLACER_INDEX") ==
                                       nullptr ||
                                   std::getenv("ULD3D_NO_PLACER_INDEX")[0] ==
                                       '\0'};
  return enabled;
}

}  // namespace

bool placer_index_enabled() {
  return placer_index_flag().load(std::memory_order_relaxed);
}

void set_placer_index_enabled(bool enabled) {
  placer_index_flag().store(enabled, std::memory_order_relaxed);
}

void OccupancyIndex::refresh(const std::uint8_t* occupied, std::int64_t nx,
                             std::int64_t ny) {
  if (!dirty_ && nx == nx_ && ny == ny_) return;
  expects(nx >= 0 && ny >= 0, "grid dimensions must be non-negative");
  nx_ = nx;
  ny_ = ny;
  sat_.assign(static_cast<std::size_t>((nx + 1) * (ny + 1)), 0);
  prev_occ_.assign(static_cast<std::size_t>(nx * ny), -1);
  const std::int64_t stride = nx + 1;
  // SAT build as batch kernels (exact integer ops, so SIMD and scalar paths
  // are identical): per row, the running occupancy count is an inclusive
  // prefix sum of the 0/1 bins and the last-occupied column is an inclusive
  // prefix max of (occupied ? x : -1) — both served by the shared AVX2
  // scans in util/simd (scalar under ULD3D_NO_SIMD / non-AVX2 CPUs).
  thread_local util::AlignedVector<std::uint32_t> ones;
  thread_local util::AlignedVector<std::uint32_t> row_sums;
  thread_local util::AlignedVector<std::int32_t> occ_cols;
  ones.resize(static_cast<std::size_t>(nx));
  row_sums.resize(static_cast<std::size_t>(nx));
  occ_cols.resize(static_cast<std::size_t>(nx));
  for (std::int64_t y = 0; y < ny; ++y) {
    const std::uint8_t* row = occupied + y * nx;
    const std::uint32_t* sat_above =
        sat_.data() + static_cast<std::size_t>(y * stride);
    std::uint32_t* sat_row =
        sat_.data() + static_cast<std::size_t>((y + 1) * stride);
    std::int32_t* prev_row = prev_occ_.data() + static_cast<std::size_t>(y * nx);
    for (std::int64_t x = 0; x < nx; ++x) {
      const bool occ = row[x] != 0;
      ones[static_cast<std::size_t>(x)] = occ ? 1u : 0u;
      occ_cols[static_cast<std::size_t>(x)] =
          occ ? static_cast<std::int32_t>(x) : -1;
    }
    simd::prefix_sum_u32(ones.data(), row_sums.data(),
                         static_cast<std::size_t>(nx));
    simd::prefix_max_i32(occ_cols.data(), prev_row,
                         static_cast<std::size_t>(nx));
    for (std::int64_t x = 0; x < nx; ++x) {
      sat_row[x + 1] = sat_above[x + 1] + row_sums[static_cast<std::size_t>(x)];
    }
  }
  dirty_ = false;
}

std::int64_t OccupancyIndex::count(std::int64_t bx0, std::int64_t by0,
                                   std::int64_t bx1, std::int64_t by1) const {
  ensures(!dirty_, "occupancy index queried while stale");
  bx0 = std::clamp<std::int64_t>(bx0, 0, nx_);
  bx1 = std::clamp<std::int64_t>(bx1, 0, nx_);
  by0 = std::clamp<std::int64_t>(by0, 0, ny_);
  by1 = std::clamp<std::int64_t>(by1, 0, ny_);
  if (bx0 >= bx1 || by0 >= by1) return 0;
  const std::int64_t stride = nx_ + 1;
  const auto at = [&](std::int64_t y, std::int64_t x) -> std::int64_t {
    return sat_[static_cast<std::size_t>(y * stride + x)];
  };
  return at(by1, bx1) - at(by0, bx1) - at(by1, bx0) + at(by0, bx0);
}

std::int64_t OccupancyIndex::rightmost_occupied(std::int64_t bx0,
                                                std::int64_t by0,
                                                std::int64_t bx1,
                                                std::int64_t by1) const {
  ensures(!dirty_, "occupancy index queried while stale");
  bx0 = std::clamp<std::int64_t>(bx0, 0, nx_);
  bx1 = std::clamp<std::int64_t>(bx1, 0, nx_);
  by0 = std::clamp<std::int64_t>(by0, 0, ny_);
  by1 = std::clamp<std::int64_t>(by1, 0, ny_);
  if (bx0 >= bx1 || by0 >= by1) return -1;
  std::int64_t rightmost = -1;
  for (std::int64_t y = by0; y < by1; ++y) {
    const std::int32_t p = prev_occ_[static_cast<std::size_t>(y * nx_ + bx1 - 1)];
    if (p >= bx0 && p > rightmost) rightmost = p;
  }
  return rightmost;
}

std::int64_t OccupancyIndex::occupied_bins() const {
  ensures(!dirty_, "occupancy index queried while stale");
  if (nx_ == 0 || ny_ == 0) return 0;
  return sat_[static_cast<std::size_t>((nx_ + 1) * (ny_ + 1) - 1)];
}

RectBuckets::RectBuckets(double width_um, double height_um,
                         std::size_t expected) {
  expects(width_um > 0.0 && height_um > 0.0,
          "bucket extent must be positive");
  const auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(
          expected, 1)))));
  cols_ = std::clamp<std::int64_t>(side, 1, 64);
  rows_ = cols_;
  cell_w_ = width_um / static_cast<double>(cols_);
  cell_h_ = height_um / static_cast<double>(rows_);
  cells_.resize(static_cast<std::size_t>(cols_ * rows_));
}

void RectBuckets::bucket_span(const Rect& rect, std::int64_t& cx0,
                              std::int64_t& cy0, std::int64_t& cx1,
                              std::int64_t& cy1) const {
  // Conservative (clamped) cover of the rect; a rect touching a cell
  // boundary may be filed under one extra cell, which only costs a spurious
  // candidate test, never a missed one.
  cx0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.x0 / cell_w_)), 0, cols_ - 1);
  cy0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.y0 / cell_h_)), 0, rows_ - 1);
  cx1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.x1 / cell_w_)), 0, cols_ - 1);
  cy1 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.y1 / cell_h_)), 0, rows_ - 1);
}

void RectBuckets::clear() {
  for (auto& cell : cells_) cell.clear();
}

void RectBuckets::insert(std::size_t id, const Rect& rect) {
  std::int64_t cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
  bucket_span(rect, cx0, cy0, cx1, cy1);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      cells_[static_cast<std::size_t>(cy * cols_ + cx)].push_back({id, rect});
    }
  }
}

void RectBuckets::remove(std::size_t id, const Rect& rect) {
  std::int64_t cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
  bucket_span(rect, cx0, cy0, cx1, cy1);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      auto& cell = cells_[static_cast<std::size_t>(cy * cols_ + cx)];
      for (std::size_t i = 0; i < cell.size(); ++i) {
        if (cell[i].id == id) {
          cell[i] = cell.back();
          cell.pop_back();
          break;
        }
      }
    }
  }
}

std::optional<Rect> RectBuckets::overlaps_any(const Rect& q,
                                              std::size_t self) const {
  std::int64_t cx0 = 0, cy0 = 0, cx1 = 0, cy1 = 0;
  bucket_span(q, cx0, cy0, cx1, cy1);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (const Entry& e : cells_[static_cast<std::size_t>(cy * cols_ + cx)]) {
        if (e.id != self && e.rect.overlaps(q)) return e.rect;
      }
    }
  }
  return std::nullopt;
}

}  // namespace uld3d::phys

#include "uld3d/phys/thermal_map.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::phys {

ThermalMap::ThermalMap(const PowerModel& power, const tech::TierStack& stack,
                       double die_width_um, double die_height_um,
                       double sink_resistance_mm2_k_per_w, double bin_um,
                       int smoothing_passes)
    : nx_(0), ny_(0), bin_um_(bin_um) {
  expects(die_width_um > 0.0 && die_height_um > 0.0,
          "die dimensions must be positive");
  expects(bin_um > 0.0, "bin size must be positive");
  expects(sink_resistance_mm2_k_per_w >= 0.0,
          "sink resistance must be non-negative");
  expects(smoothing_passes >= 0, "smoothing passes must be non-negative");
  nx_ = ceil_to_int(die_width_um / bin_um);
  ny_ = ceil_to_int(die_height_um / bin_um);
  rise_k_.assign(static_cast<std::size_t>(nx_ * ny_), 0.0);

  // Vertical resistance of one bin column: the full stack plus the sink,
  // normalised to the bin's area.
  const double bin_mm2 = bin_um * bin_um / 1.0e6;
  double stack_r_mm2 = 0.0;
  for (const auto& tier : stack.tiers()) {
    stack_r_mm2 += tier.thermal_resistance_mm2_k_per_w;
  }
  const double column_r = (stack_r_mm2 + sink_resistance_mm2_k_per_w) / bin_mm2;

  // Deposit each component's power into the bins it covers (W per bin).
  for (const auto& c : power.components()) {
    const double density_mw_per_um2 = c.power_mw / c.rect.area();
    const std::int64_t bx0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::floor(c.rect.x0 / bin_um)), 0, nx_ - 1);
    const std::int64_t by0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::floor(c.rect.y0 / bin_um)), 0, ny_ - 1);
    const std::int64_t bx1 =
        std::clamp<std::int64_t>(ceil_to_int(c.rect.x1 / bin_um), 1, nx_);
    const std::int64_t by1 =
        std::clamp<std::int64_t>(ceil_to_int(c.rect.y1 / bin_um), 1, ny_);
    for (std::int64_t y = by0; y < by1; ++y) {
      for (std::int64_t x = bx0; x < bx1; ++x) {
        const Rect bin = Rect::at(static_cast<double>(x) * bin_um,
                                  static_cast<double>(y) * bin_um, bin_um,
                                  bin_um);
        const double power_w =
            density_mw_per_um2 * overlap_area(bin, c.rect) * 1.0e-3;
        rise_k_[static_cast<std::size_t>(y * nx_ + x)] += power_w * column_r;
      }
    }
  }

  // Lateral spreading: simple 4-neighbor diffusion passes.
  std::vector<double> next(rise_k_.size());
  for (int pass = 0; pass < smoothing_passes; ++pass) {
    for (std::int64_t y = 0; y < ny_; ++y) {
      for (std::int64_t x = 0; x < nx_; ++x) {
        const auto at = [&](std::int64_t xx, std::int64_t yy) {
          xx = std::clamp<std::int64_t>(xx, 0, nx_ - 1);
          yy = std::clamp<std::int64_t>(yy, 0, ny_ - 1);
          return rise_k_[static_cast<std::size_t>(yy * nx_ + xx)];
        };
        next[static_cast<std::size_t>(y * nx_ + x)] =
            0.5 * at(x, y) + 0.125 * (at(x - 1, y) + at(x + 1, y) +
                                      at(x, y - 1) + at(x, y + 1));
      }
    }
    rise_k_.swap(next);
  }
}

double ThermalMap::max_rise_k() const {
  double peak = 0.0;
  for (const double r : rise_k_) peak = std::max(peak, r);
  return peak;
}

double ThermalMap::mean_rise_k() const {
  if (rise_k_.empty()) return 0.0;
  double sum = 0.0;
  for (const double r : rise_k_) sum += r;
  return sum / static_cast<double>(rise_k_.size());
}

double ThermalMap::rise_at(double x_um, double y_um) const {
  const std::int64_t x = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(x_um / bin_um_), 0, nx_ - 1);
  const std::int64_t y = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(y_um / bin_um_), 0, ny_ - 1);
  return rise_k_[static_cast<std::size_t>(y * nx_ + x)];
}

std::string ThermalMap::to_ascii() const {
  static constexpr char kRamp[] = " .:-=+*#@";
  const double peak = max_rise_k();
  std::ostringstream os;
  for (std::int64_t y = ny_ - 1; y >= 0; --y) {
    for (std::int64_t x = 0; x < nx_; ++x) {
      const double r = rise_k_[static_cast<std::size_t>(y * nx_ + x)];
      const int level =
          peak > 0.0 ? std::min(8, static_cast<int>(r / peak * 8.999)) : 0;
      os << kRamp[level];
    }
    os << '\n';
  }
  os << "peak rise " << max_rise_k() << " K, mean " << mean_rise_k() << " K\n";
  return os.str();
}

}  // namespace uld3d::phys

#include "uld3d/phys/power.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::phys {

void PowerModel::add(PowerComponent component) {
  expects(component.power_mw >= 0.0, "power must be non-negative: " + component.name);
  expects(component.rect.valid(), "component footprint must be valid: " + component.name);
  components_.push_back(std::move(component));
}

double PowerModel::total_mw() const {
  double total = 0.0;
  for (const auto& c : components_) total += c.power_mw;
  return total;
}

double PowerModel::tier_mw(tech::TierKind tier) const {
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.tier == tier) total += c.power_mw;
  }
  return total;
}

std::vector<TierPower> PowerModel::per_tier() const {
  std::vector<TierPower> tiers;
  for (const tech::TierKind kind :
       {tech::TierKind::kSiCmosFeol, tech::TierKind::kRram,
        tech::TierKind::kCnfetFeol}) {
    tiers.push_back({kind, tier_mw(kind)});
  }
  return tiers;
}

double PowerModel::upper_tier_fraction() const {
  const double total = total_mw();
  if (total <= 0.0) return 0.0;
  return (tier_mw(tech::TierKind::kRram) + tier_mw(tech::TierKind::kCnfetFeol)) /
         total;
}

double PowerModel::peak_density_mw_per_mm2(double width_um, double height_um,
                                           double bin_um) const {
  expects(width_um > 0.0 && height_um > 0.0, "die dimensions must be positive");
  expects(bin_um > 0.0, "bin size must be positive");
  const std::int64_t nx = ceil_to_int(width_um / bin_um);
  const std::int64_t ny = ceil_to_int(height_um / bin_um);
  std::vector<double> bins(static_cast<std::size_t>(nx * ny), 0.0);

  for (const auto& c : components_) {
    const double density = c.power_mw / c.rect.area();  // mW per um^2
    const std::int64_t bx0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::floor(c.rect.x0 / bin_um)), 0, nx - 1);
    const std::int64_t by0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::floor(c.rect.y0 / bin_um)), 0, ny - 1);
    const std::int64_t bx1 =
        std::clamp<std::int64_t>(ceil_to_int(c.rect.x1 / bin_um), 1, nx);
    const std::int64_t by1 =
        std::clamp<std::int64_t>(ceil_to_int(c.rect.y1 / bin_um), 1, ny);
    for (std::int64_t y = by0; y < by1; ++y) {
      for (std::int64_t x = bx0; x < bx1; ++x) {
        const Rect bin = Rect::at(static_cast<double>(x) * bin_um,
                                  static_cast<double>(y) * bin_um, bin_um,
                                  bin_um);
        bins[static_cast<std::size_t>(y * nx + x)] +=
            density * overlap_area(bin, c.rect);
      }
    }
  }

  const double bin_mm2 = bin_um * bin_um / 1.0e6;
  double peak = 0.0;
  for (const double p : bins) peak = std::max(peak, p / bin_mm2);
  return peak;
}

}  // namespace uld3d::phys

#include "uld3d/phys/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::phys {

Floorplan::Floorplan(double width_um, double height_um, tech::TierStack stack,
                     double bin_um)
    : width_um_(width_um),
      height_um_(height_um),
      bin_um_(bin_um),
      nx_(0),
      ny_(0),
      stack_(std::move(stack)) {
  expects(width_um > 0.0 && height_um > 0.0, "die dimensions must be positive");
  expects(bin_um > 0.0, "bin size must be positive");
  nx_ = ceil_to_int(width_um / bin_um);
  ny_ = ceil_to_int(height_um / bin_um);
  expects(nx_ * ny_ <= 64 * 1024 * 1024, "floorplan grid too fine");
  for (const auto& tier : stack_.tiers()) {
    if (tier.kind == tech::TierKind::kBeolMetal) continue;  // routing only
    grids_.push_back(
        {tier.kind, std::vector<std::uint8_t>(
                        static_cast<std::size_t>(nx_ * ny_), 0)});
  }
}

const Floorplan::TierGrid* Floorplan::grid_for(tech::TierKind tier) const {
  for (const auto& g : grids_) {
    if (g.kind == tier) return &g;
  }
  return nullptr;
}

Floorplan::TierGrid* Floorplan::grid_for(tech::TierKind tier) {
  for (auto& g : grids_) {
    if (g.kind == tier) return &g;
  }
  return nullptr;
}

void Floorplan::bin_range(const Rect& rect, std::int64_t& bx0, std::int64_t& by0,
                          std::int64_t& bx1, std::int64_t& by1) const {
  bx0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.x0 / bin_um_)), 0, nx_);
  by0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.y0 / bin_um_)), 0, ny_);
  bx1 = std::clamp<std::int64_t>(ceil_to_int(rect.x1 / bin_um_), 0, nx_);
  by1 = std::clamp<std::int64_t>(ceil_to_int(rect.y1 / bin_um_), 0, ny_);
}

void Floorplan::mark(TierGrid& grid, const Rect& rect) {
  std::int64_t bx0 = 0, by0 = 0, bx1 = 0, by1 = 0;
  bin_range(rect, bx0, by0, bx1, by1);
  for (std::int64_t y = by0; y < by1; ++y) {
    for (std::int64_t x = bx0; x < bx1; ++x) {
      grid.occupied[static_cast<std::size_t>(y * nx_ + x)] = 1;
    }
  }
}

bool Floorplan::clear_in(const TierGrid& grid, const Rect& rect) const {
  std::int64_t bx0 = 0, by0 = 0, bx1 = 0, by1 = 0;
  bin_range(rect, bx0, by0, bx1, by1);
  for (std::int64_t y = by0; y < by1; ++y) {
    for (std::int64_t x = bx0; x < bx1; ++x) {
      if (grid.occupied[static_cast<std::size_t>(y * nx_ + x)] != 0) {
        return false;
      }
    }
  }
  return true;
}

bool Floorplan::place_macro(const Macro& macro, double x, double y) {
  const Rect rect = Rect::at(x, y, macro.width_um, macro.height_um);
  if (rect.x1 > width_um_ + 1e-6 || rect.y1 > height_um_ + 1e-6 ||
      rect.x0 < -1e-6 || rect.y0 < -1e-6) {
    return false;
  }
  for (const auto& g : grids_) {
    if (macro.blocks(g.kind) && !clear_in(g, rect)) return false;
  }
  for (auto& g : grids_) {
    if (macro.blocks(g.kind)) mark(g, rect);
  }
  macros_.push_back({macro, rect});
  return true;
}

std::optional<Rect> Floorplan::place_macro_anywhere(const Macro& macro) {
  for (std::int64_t by = 0; by < ny_; ++by) {
    for (std::int64_t bx = 0; bx < nx_; ++bx) {
      const double x = static_cast<double>(bx) * bin_um_;
      const double y = static_cast<double>(by) * bin_um_;
      if (place_macro(macro, x, y)) {
        return Rect::at(x, y, macro.width_um, macro.height_um);
      }
    }
  }
  return std::nullopt;
}

bool Floorplan::allocate_region(tech::TierKind tier, const Rect& rect) {
  TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  if (!clear_in(*grid, rect)) return false;
  mark(*grid, rect);
  return true;
}

bool Floorplan::region_free(tech::TierKind tier, const Rect& rect) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  return clear_in(*grid, rect);
}

std::optional<Rect> Floorplan::find_free_region(tech::TierKind tier,
                                                double w_um,
                                                double h_um) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  const std::int64_t bw = ceil_to_int(w_um / bin_um_);
  const std::int64_t bh = ceil_to_int(h_um / bin_um_);
  for (std::int64_t by = 0; by + bh <= ny_; ++by) {
    for (std::int64_t bx = 0; bx + bw <= nx_; ++bx) {
      const Rect rect = Rect::at(static_cast<double>(bx) * bin_um_,
                                 static_cast<double>(by) * bin_um_,
                                 static_cast<double>(bw) * bin_um_,
                                 static_cast<double>(bh) * bin_um_);
      if (clear_in(*grid, rect)) return rect;
    }
  }
  return std::nullopt;
}

double Floorplan::free_area_um2(tech::TierKind tier) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  std::int64_t free_bins = 0;
  for (const std::uint8_t occ : grid->occupied) {
    if (occ == 0) ++free_bins;
  }
  return static_cast<double>(free_bins) * bin_um_ * bin_um_;
}

double Floorplan::utilization(tech::TierKind tier) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  std::int64_t used = 0;
  for (const std::uint8_t occ : grid->occupied) {
    if (occ != 0) ++used;
  }
  return static_cast<double>(used) / static_cast<double>(nx_ * ny_);
}

}  // namespace uld3d::phys

#include "uld3d/phys/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::phys {

Floorplan::Floorplan(double width_um, double height_um, tech::TierStack stack,
                     double bin_um)
    : width_um_(width_um),
      height_um_(height_um),
      bin_um_(bin_um),
      nx_(0),
      ny_(0),
      stack_(std::move(stack)) {
  expects(width_um > 0.0 && height_um > 0.0, "die dimensions must be positive");
  expects(bin_um > 0.0, "bin size must be positive");
  nx_ = ceil_to_int(width_um / bin_um);
  ny_ = ceil_to_int(height_um / bin_um);
  expects(nx_ * ny_ <= 64 * 1024 * 1024, "floorplan grid too fine");
  for (const auto& tier : stack_.tiers()) {
    if (tier.kind == tech::TierKind::kBeolMetal) continue;  // routing only
    grids_.push_back(
        {tier.kind, std::vector<std::uint8_t>(
                        static_cast<std::size_t>(nx_ * ny_), 0),
         OccupancyIndex{}});
  }
}

const Floorplan::TierGrid* Floorplan::grid_for(tech::TierKind tier) const {
  for (const auto& g : grids_) {
    if (g.kind == tier) return &g;
  }
  return nullptr;
}

Floorplan::TierGrid* Floorplan::grid_for(tech::TierKind tier) {
  for (auto& g : grids_) {
    if (g.kind == tier) return &g;
  }
  return nullptr;
}

BinSpan Floorplan::bin_span(const Rect& rect) const {
  BinSpan s;
  s.x0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.x0 / bin_um_)), 0, nx_);
  s.y0 = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(rect.y0 / bin_um_)), 0, ny_);
  s.x1 = std::clamp<std::int64_t>(ceil_to_int(rect.x1 / bin_um_), 0, nx_);
  s.y1 = std::clamp<std::int64_t>(ceil_to_int(rect.y1 / bin_um_), 0, ny_);
  return s;
}

void Floorplan::refresh_index(const TierGrid& grid) const {
  grid.index.refresh(grid.occupied.data(), nx_, ny_);
}

void Floorplan::mark(TierGrid& grid, const Rect& rect) {
  const BinSpan s = bin_span(rect);
  for (std::int64_t y = s.y0; y < s.y1; ++y) {
    for (std::int64_t x = s.x0; x < s.x1; ++x) {
      grid.occupied[static_cast<std::size_t>(y * nx_ + x)] = 1;
    }
  }
  grid.index.invalidate();
}

bool Floorplan::clear_in(const TierGrid& grid, const Rect& rect) const {
  const BinSpan s = bin_span(rect);
  if (placer_index_enabled()) {
    refresh_index(grid);
    return grid.index.rect_clear(s.x0, s.y0, s.x1, s.y1);
  }
  for (std::int64_t y = s.y0; y < s.y1; ++y) {
    for (std::int64_t x = s.x0; x < s.x1; ++x) {
      if (grid.occupied[static_cast<std::size_t>(y * nx_ + x)] != 0) {
        return false;
      }
    }
  }
  return true;
}

std::int64_t Floorplan::rightmost_occupied_col(tech::TierKind tier,
                                               const Rect& rect) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  const BinSpan s = bin_span(rect);
  if (placer_index_enabled()) {
    refresh_index(*grid);
    return grid->index.rightmost_occupied(s.x0, s.y0, s.x1, s.y1);
  }
  std::int64_t rightmost = -1;
  for (std::int64_t y = s.y0; y < s.y1; ++y) {
    for (std::int64_t x = s.x1 - 1; x > rightmost; --x) {
      if (grid->occupied[static_cast<std::size_t>(y * nx_ + x)] != 0) {
        if (x >= s.x0) rightmost = x;
        break;
      }
    }
  }
  return rightmost;
}

bool Floorplan::place_macro(const Macro& macro, double x, double y) {
  const Rect rect = Rect::at(x, y, macro.width_um, macro.height_um);
  if (rect.x1 > width_um_ + 1e-6 || rect.y1 > height_um_ + 1e-6 ||
      rect.x0 < -1e-6 || rect.y0 < -1e-6) {
    return false;
  }
  for (const auto& g : grids_) {
    if (macro.blocks(g.kind) && !clear_in(g, rect)) return false;
  }
  for (auto& g : grids_) {
    if (macro.blocks(g.kind)) mark(g, rect);
  }
  macros_.push_back({macro, rect});
  return true;
}

std::optional<Rect> Floorplan::place_macro_anywhere(const Macro& macro) {
  if (!placer_index_enabled()) {
    // Naive reference scan: try every bin position in row-major order.
    for (std::int64_t by = 0; by < ny_; ++by) {
      for (std::int64_t bx = 0; bx < nx_; ++bx) {
        const double x = static_cast<double>(bx) * bin_um_;
        const double y = static_cast<double>(by) * bin_um_;
        if (place_macro(macro, x, y)) {
          return Rect::at(x, y, macro.width_um, macro.height_um);
        }
      }
    }
    return std::nullopt;
  }
  // Run-skipping scan, same first-fit order as the naive loop: a blocked
  // candidate learns the rightmost occupied column inside its bin window
  // and every following candidate whose window still starts at or before
  // that column is rejected without re-querying (it provably contains the
  // same occupied bin — the window rows are fixed along a scan row and the
  // window right edge only grows).
  for (std::int64_t by = 0; by < ny_; ++by) {
    const double y = static_cast<double>(by) * bin_um_;
    if (y + macro.height_um > height_um_ + 1e-6) {
      // place_macro rejects on the die's top edge; y only grows from here,
      // so no later row can succeed either (same comparison, monotone y).
      return std::nullopt;
    }
    std::int64_t skip_col = -1;
    for (std::int64_t bx = 0; bx < nx_; ++bx) {
      const double x = static_cast<double>(bx) * bin_um_;
      const Rect rect = Rect::at(x, y, macro.width_um, macro.height_um);
      if (rect.x1 > width_um_ + 1e-6) break;  // off the right edge; monotone
      const BinSpan s = bin_span(rect);
      if (s.x0 <= skip_col) continue;
      bool blocked = false;
      for (const auto& g : grids_) {
        if (!macro.blocks(g.kind)) continue;
        refresh_index(g);
        if (!g.index.rect_clear(s.x0, s.y0, s.x1, s.y1)) {
          skip_col = g.index.rightmost_occupied(s.x0, s.y0, s.x1, s.y1);
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      if (place_macro(macro, x, y)) {
        return Rect::at(x, y, macro.width_um, macro.height_um);
      }
    }
  }
  return std::nullopt;
}

bool Floorplan::allocate_region(tech::TierKind tier, const Rect& rect) {
  TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  if (!clear_in(*grid, rect)) return false;
  mark(*grid, rect);
  return true;
}

bool Floorplan::region_free(tech::TierKind tier, const Rect& rect) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  return clear_in(*grid, rect);
}

std::optional<Rect> Floorplan::find_free_region(tech::TierKind tier,
                                                double w_um,
                                                double h_um) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  const std::int64_t bw = ceil_to_int(w_um / bin_um_);
  const std::int64_t bh = ceil_to_int(h_um / bin_um_);
  const bool fast = placer_index_enabled();
  if (fast) refresh_index(*grid);
  for (std::int64_t by = 0; by + bh <= ny_; ++by) {
    std::int64_t skip_col = -1;
    for (std::int64_t bx = 0; bx + bw <= nx_; ++bx) {
      const Rect rect = Rect::at(static_cast<double>(bx) * bin_um_,
                                 static_cast<double>(by) * bin_um_,
                                 static_cast<double>(bw) * bin_um_,
                                 static_cast<double>(bh) * bin_um_);
      if (fast) {
        const BinSpan s = bin_span(rect);
        if (s.x0 <= skip_col) continue;
        if (!grid->index.rect_clear(s.x0, s.y0, s.x1, s.y1)) {
          skip_col = grid->index.rightmost_occupied(s.x0, s.y0, s.x1, s.y1);
          continue;
        }
        return rect;
      }
      if (clear_in(*grid, rect)) return rect;
    }
  }
  return std::nullopt;
}

double Floorplan::free_area_um2(tech::TierKind tier) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  if (placer_index_enabled()) {
    refresh_index(*grid);
    return static_cast<double>(nx_ * ny_ - grid->index.occupied_bins()) *
           bin_um_ * bin_um_;
  }
  std::int64_t free_bins = 0;
  for (const std::uint8_t occ : grid->occupied) {
    if (occ == 0) ++free_bins;
  }
  return static_cast<double>(free_bins) * bin_um_ * bin_um_;
}

double Floorplan::utilization(tech::TierKind tier) const {
  const TierGrid* grid = grid_for(tier);
  expects(grid != nullptr, "tier has no placement grid");
  if (placer_index_enabled()) {
    refresh_index(*grid);
    return static_cast<double>(grid->index.occupied_bins()) /
           static_cast<double>(nx_ * ny_);
  }
  std::int64_t used = 0;
  for (const std::uint8_t occ : grid->occupied) {
    if (occ != 0) ++used;
  }
  return static_cast<double>(used) / static_cast<double>(nx_ * ny_);
}

}  // namespace uld3d::phys

#include "uld3d/phys/timing.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::phys {

TimingReport estimate_timing(const tech::StdCellLibrary& lib,
                             const TimingParams& params,
                             double critical_wire_um,
                             double buffer_interval_um,
                             double target_frequency_mhz) {
  expects(params.logic_depth > 0, "logic depth must be positive");
  expects(critical_wire_um >= 0.0, "wire length must be non-negative");
  expects(buffer_interval_um > 0.0, "buffer interval must be positive");
  expects(target_frequency_mhz > 0.0, "target frequency must be positive");

  TimingReport r;
  r.logic_delay_ns = static_cast<double>(params.logic_depth) *
                     lib.fo4_delay_ps() * 1.0e-3;

  // Buffered wire: quadratic Elmore delay per segment, linear in segments.
  const double segments = std::max(1.0, critical_wire_um / buffer_interval_um);
  const double seg_len = critical_wire_um / segments;
  const double seg_delay_ps =
      0.5 * params.wire_r_ohm_per_um * params.wire_c_ff_per_um * seg_len *
          seg_len * 1.0e-3 +           // RC in ohm*fF = 1e-3 ps
      lib.cell("BUF_X8").delay_ps;     // repeater
  r.wire_delay_ns = segments * seg_delay_ps * 1.0e-3;

  r.critical_path_ns = (r.logic_delay_ns + r.wire_delay_ns) * params.derate +
                       params.clock_uncertainty_ns;
  r.achieved_frequency_mhz = units::period_ns_to_mhz(r.critical_path_ns);
  const double target_period = units::mhz_to_period_ns(target_frequency_mhz);
  r.slack_ns = target_period - r.critical_path_ns;
  r.meets_target = r.slack_ns >= 0.0;
  if (r.meets_target) {
    // Designs are clocked at the (common) target, not faster (Sec. II).
    r.achieved_frequency_mhz = target_frequency_mhz;
  }
  return r;
}

}  // namespace uld3d::phys

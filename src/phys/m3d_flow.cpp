#include "uld3d/phys/m3d_flow.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/log.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/rng.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::phys {

M3dFlow::M3dFlow(PlacerOptions placer_options, std::uint64_t seed)
    : placer_options_(placer_options), seed_(seed) {}

namespace {

struct DesignAreas {
  double cells_um2 = 0.0;
  double periph_um2 = 0.0;
  double cs_um2 = 0.0;     // logic + SRAM of ONE CS
  double bus_um2 = 0.0;
};

DesignAreas compute_areas(const FlowInput& input, bool m3d,
                          std::int64_t cs_count) {
  DesignAreas a;
  const auto macro = input.pdk.rram_macro(
      input.rram_capacity_bits, static_cast<int>(std::max<std::int64_t>(
                                    1, m3d ? cs_count : 1)),
      m3d);
  a.cells_um2 = macro.cell_array_area_um2;
  a.periph_um2 = macro.periph_area_um2;
  a.cs_um2 = input.cs_logic_area_um2 + input.cs_sram_area_um2;
  a.bus_um2 = 0.03 * (a.cells_um2 + a.periph_um2 + a.cs_um2);
  return a;
}

}  // namespace

DesignReport M3dFlow::run_design(const FlowInput& input, bool m3d,
                                 std::int64_t cs_count, double die_width_um,
                                 double die_height_um) const {
  expects(input.rram_capacity_bits > 0.0, "RRAM capacity must be positive");
  expects(input.cs_logic_area_um2 > 0.0 && input.cs_sram_area_um2 > 0.0,
          "CS areas must be positive");
  expects(input.cs_logic_gates > 0, "CS gate count must be positive");
  expects(cs_count >= 1, "at least one CS");

  if (die_width_um <= 0.0 || die_height_um <= 0.0) {
    // Auto-sized die: if placement fails at the initial whitespace, grow the
    // die a few percent and re-floorplan — the iteration loop of a real
    // flow's floorplan step.
    DesignReport report = run_design_once(input, m3d, cs_count, 0.0, 0.0);
    for (int attempt = 0; attempt < 6 && !report.feasible; ++attempt) {
      const double grown = report.die_width_um * 1.05;
      report = run_design_once(input, m3d, cs_count, grown, grown);
    }
    return report;
  }
  return run_design_once(input, m3d, cs_count, die_width_um, die_height_um);
}

DesignReport M3dFlow::run_design_once(const FlowInput& input, bool m3d,
                                      std::int64_t cs_count,
                                      double die_width_um,
                                      double die_height_um) const {
  DesignReport report;
  report.name = m3d ? "M3D" : "2D";
  TraceSpan design_span(m3d ? "phys.flow.design_m3d" : "phys.flow.design_2d",
                        "phys");
  StageTimer design_stage(m3d ? "phys.flow.design_m3d"
                              : "phys.flow.design_2d");
  MetricsRegistry::instance().counter("phys.flow.designs").add();
  const DesignAreas areas = compute_areas(input, m3d, cs_count);
  const std::int64_t banks = m3d ? cs_count : 1;

  // --- die sizing (floorplan step) ---
  if (die_width_um <= 0.0 || die_height_um <= 0.0) {
    // Everything sits side by side in the Si tier; 12% whitespace, the
    // routability margin a block-level flow typically needs.
    const double total =
        (areas.cells_um2 + areas.periph_um2 +
         areas.cs_um2 * static_cast<double>(m3d ? 1 : cs_count) + areas.bus_um2) *
        1.12;
    die_width_um = std::sqrt(total);
    die_height_um = std::sqrt(total);
  }
  report.die_width_um = die_width_um;
  report.die_height_um = die_height_um;
  report.footprint_mm2 = die_width_um * die_height_um / 1.0e6;

  const auto stack = m3d ? tech::TierStack::make_m3d_130nm()
                         : tech::TierStack::make_2d_baseline_130nm();
  Floorplan fp(die_width_um, die_height_um, stack, /*bin_um=*/50.0);

  // --- macro placement: RRAM arrays as one macro per bank, peripherals as
  //     strips beside their bank ---
  // Hard macros reshape through a small aspect ladder if the first-choice
  // shape does not fit (mirroring a floorplanner's macro legalization).
  const auto place_with_aspects = [&fp](const Macro& proto) {
    constexpr double kAspects[] = {1.0, 2.0, 0.5, 4.0, 0.25, 8.0, 0.125};
    for (const double aspect : kAspects) {
      Macro m = proto;
      const double area = proto.area_um2();
      m.width_um = std::sqrt(area * aspect);
      m.height_um = std::sqrt(area / aspect);
      if (fp.place_macro_anywhere(m)) return true;
    }
    return false;
  };

  // RRAM arrays are physically organized as multiple sub-array macros per
  // bank group (Fig. 2b/2d show several array tiles), which also packs well.
  const std::int64_t subarrays_per_bank = m3d ? 1 : 4;
  const double sub_cells =
      areas.cells_um2 / static_cast<double>(banks * subarrays_per_bank);
  const double sub_periph =
      areas.periph_um2 / static_cast<double>(banks * subarrays_per_bank);
  std::vector<std::size_t> bank_macro_index;
  std::vector<std::size_t> periph_macro_index;
  {
    TraceSpan floorplan_span("phys.flow.floorplan", "phys");
    for (std::int64_t b = 0; b < banks; ++b) {
      const std::string suffix = "_bank" + std::to_string(b);
      for (std::int64_t s = 0; s < subarrays_per_bank; ++s) {
        const std::string name = "rram" + suffix + "_" + std::to_string(s);
        const Macro array = m3d ? Macro::rram_array_m3d(name, sub_cells)
                                : Macro::rram_array_2d(name, sub_cells);
        if (!place_with_aspects(array)) {
          log_warning("flow: RRAM array did not fit: " + name);
          MetricsRegistry::instance().counter("phys.flow.infeasible").add();
          return report;  // infeasible
        }
        if (s == 0) bank_macro_index.push_back(fp.macros().size() - 1);
        // Each sub-array carries its own strip of sense amps/controllers.
        const Macro periph = Macro::rram_periph(
            "periph" + suffix + "_" + std::to_string(s), sub_periph);
        if (!place_with_aspects(periph)) {
          log_warning("flow: peripheral strip did not fit: " + periph.name);
          MetricsRegistry::instance().counter("phys.flow.infeasible").add();
          return report;
        }
        if (s == 0) periph_macro_index.push_back(fp.macros().size() - 1);
      }
    }
    MetricsRegistry::instance()
        .counter("phys.flow.macros_placed")
        .add(fp.macros().size());
  }

  // --- CS placement: logic + SRAM soft blocks, pulled toward their bank ---
  std::vector<SoftBlock> blocks;
  for (std::int64_t c = 0; c < cs_count; ++c) {
    const std::size_t bank =
        bank_macro_index[static_cast<std::size_t>(c % banks)];
    SoftBlock logic;
    logic.name = "cs" + std::to_string(c) + "_logic";
    logic.area_um2 = input.cs_logic_area_um2;
    logic.tier = tech::TierKind::kSiCmosFeol;
    logic.affinities = {{bank, 1.0}};
    blocks.push_back(logic);
    // Buffers split into two SRAM macros (ping/pong halves of the double
    // buffer), which also pack into smaller gaps.
    for (int half = 0; half < 2; ++half) {
      SoftBlock sram;
      sram.name = "cs" + std::to_string(c) + "_sram" + std::to_string(half);
      sram.area_um2 = input.cs_sram_area_um2 / 2.0;
      sram.tier = tech::TierKind::kSiCmosFeol;
      sram.affinities = {{bank, 0.5}};
      blocks.push_back(sram);
    }
  }
  Rng rng(seed_);
  const Placer placer(placer_options_);
  const PlacementResult placement = [&] {
    TraceSpan place_span("phys.flow.place", "phys");
    return placer.place(fp, blocks, rng);
  }();
  if (metrics_enabled()) {
    MetricsRegistry& registry = MetricsRegistry::instance();
    registry.counter("phys.flow.blocks_placed").add(placement.blocks.size());
    if (!placement.success) registry.counter("phys.flow.infeasible").add();
  }
  report.cs_placed = static_cast<std::int64_t>(placement.blocks.size() / 3);
  report.feasible = placement.success;
  report.unplaced = placement.unplaced;
  report.placed_macros = fp.macros();
  report.placed_blocks = placement.blocks;
  report.si_utilization = fp.utilization(tech::TierKind::kSiCmosFeol);

  // --- route estimate ---
  const WirelengthParams wl_params;
  {
    TraceSpan route_span("phys.flow.route", "phys");
    report.intra_cs_wirelength_um =
        donath_total_wirelength_um(input.cs_logic_gates,
                                   input.cs_logic_area_um2, wl_params) *
        static_cast<double>(cs_count);
    report.placement_hpwl_um = placement.total_hpwl_um;
    report.inter_block_wirelength_um = placement.total_hpwl_um * 64.0;  // bus width
    report.total_wirelength_um =
        report.intra_cs_wirelength_um + report.inter_block_wirelength_um;
    report.buffers = estimate_buffers(report.total_wirelength_um, wl_params);
    if (m3d) {
      const double cells =
          input.rram_capacity_bits / input.pdk.rram().bits_per_cell;
      report.ilv_count = static_cast<std::int64_t>(
          cells * input.pdk.ilv().vias_per_rram_cell);
    }

    // --- global-routing congestion: every CS block routes a bus to its
    //     bank group (64-track data for logic, 32-track for buffer halves) ---
    // `placement.blocks` omits unplaced blocks, so the source CS must come
    // from source_index (the soft blocks were pushed [logic, sram0, sram1]
    // per CS) — deriving it from the position `i` would shift every block
    // after an unplaced one onto the wrong bank.
    std::vector<Route> routes;
    for (std::size_t i = 0; i < placement.blocks.size(); ++i) {
      const std::size_t cs = placement.source_index[i] / 3;
      const std::size_t bank =
          bank_macro_index[cs % bank_macro_index.size()];
      const bool is_logic =
          placement.blocks[i].macro.name.find("_logic") != std::string::npos;
      routes.push_back({placement.blocks[i].rect.center(),
                        fp.macros()[bank].rect.center(),
                        is_logic ? 64.0 : 32.0});
    }
    const CongestionMap congestion(die_width_um, die_height_um, routes);
    report.bus_routes = routes;
    report.congestion_peak = congestion.peak_utilization();
    report.congestion_overflow = congestion.overflow_fraction();
  }

  // --- timing ---
  {
    TraceSpan timing_span("phys.flow.timing", "phys");
    double critical_wire = 0.0;
    for (const auto& block : placement.blocks) {
      for (const std::size_t bank : bank_macro_index) {
        // Longest CS-to-its-bank route actually used.
        critical_wire = std::max(
            critical_wire, center_distance(block.rect, fp.macros()[bank].rect));
      }
    }
    report.timing = estimate_timing(input.pdk.si_library(), TimingParams{},
                                    critical_wire, wl_params.buffer_interval_um,
                                    input.target_frequency_mhz);
  }

  // --- power ---
  TraceSpan power_span("phys.flow.power", "phys");
  PowerModel power;
  for (std::size_t i = 0; i < placement.blocks.size(); ++i) {
    const auto& block = placement.blocks[i];
    const bool is_logic = block.macro.name.find("_logic") != std::string::npos;
    power.add({block.macro.name, tech::TierKind::kSiCmosFeol, block.rect,
               is_logic ? input.cs_dynamic_mw_each : 0.1});
  }
  // Memory power spreads over ALL array / peripheral macros by area share
  // (a bank's sense amps are distributed along its sub-array strips).
  double array_area = 0.0;
  double periph_area = 0.0;
  for (const auto& m : fp.macros()) {
    if (m.macro.kind == MacroKind::kRramArray) array_area += m.rect.area();
    if (m.macro.kind == MacroKind::kRramPeriph) periph_area += m.rect.area();
  }
  for (const auto& m : fp.macros()) {
    if (m.macro.kind == MacroKind::kRramArray) {
      const double share = m.rect.area() / array_area;
      // In-array access power lives on the RRAM tier; the selector
      // switching power lives on the CNFET tier in M3D (on Si below in 2D).
      power.add({"cells_" + m.macro.name, tech::TierKind::kRram, m.rect,
                 input.mem_cell_access_mw * share});
      power.add({"sel_" + m.macro.name,
                 m3d ? tech::TierKind::kCnfetFeol : tech::TierKind::kSiCmosFeol,
                 m.rect, input.cnfet_selector_mw * share});
    } else if (m.macro.kind == MacroKind::kRramPeriph) {
      const double share = m.rect.area() / periph_area;
      power.add({"power_" + m.macro.name, tech::TierKind::kSiCmosFeol, m.rect,
                 input.mem_periph_dynamic_mw * share});
    }
  }
  report.total_power_mw = power.total_mw();
  report.tier_power = power.per_tier();
  report.power = power;
  report.upper_tier_power_fraction = power.upper_tier_fraction();
  report.peak_density_mw_per_mm2 =
      power.peak_density_mw_per_mm2(die_width_um, die_height_um);
  return report;
}

FlowComparison M3dFlow::run_comparison(const FlowInput& input,
                                       std::int64_t m3d_cs_count) const {
  FlowComparison cmp;
  cmp.design_2d = run_design(input, /*m3d=*/false, /*cs_count=*/1);
  cmp.design_3d = run_design(input, /*m3d=*/true, m3d_cs_count,
                             cmp.design_2d.die_width_um,
                             cmp.design_2d.die_height_um);
  cmp.iso_footprint =
      std::abs(cmp.design_3d.footprint_mm2 - cmp.design_2d.footprint_mm2) <
      1e-9;
  if (cmp.design_2d.total_wirelength_um > 0.0 && cmp.design_3d.cs_placed > 0) {
    cmp.wirelength_per_cs_ratio =
        (cmp.design_3d.total_wirelength_um /
         static_cast<double>(cmp.design_3d.cs_placed)) /
        cmp.design_2d.total_wirelength_um;
  }
  if (cmp.design_2d.peak_density_mw_per_mm2 > 0.0) {
    cmp.peak_density_ratio = cmp.design_3d.peak_density_mw_per_mm2 /
                             cmp.design_2d.peak_density_mw_per_mm2;
  }
  return cmp;
}

}  // namespace uld3d::phys

#include "uld3d/phys/geometry.hpp"

#include <cmath>

namespace uld3d::phys {

double overlap_area(const Rect& a, const Rect& b) {
  const double w = std::min(a.x1, b.x1) - std::max(a.x0, b.x0);
  const double h = std::min(a.y1, b.y1) - std::max(a.y0, b.y0);
  return (w > 0.0 && h > 0.0) ? w * h : 0.0;
}

double center_distance(const Rect& a, const Rect& b) {
  const Point ca = a.center();
  const Point cb = b.center();
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

}  // namespace uld3d::phys

#include "uld3d/phys/wirelength.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {

double donath_average_wirelength_um(std::int64_t gates, double area_um2,
                                    const WirelengthParams& p) {
  expects(gates > 0, "gate count must be positive");
  expects(area_um2 > 0.0, "area must be positive");
  expects(p.rent_exponent > 0.0 && p.rent_exponent < 1.0,
          "Rent exponent must be in (0, 1)");
  const double pitch = std::sqrt(area_um2 / static_cast<double>(gates));
  if (p.rent_exponent > 0.5) {
    // Donath: L_avg ~ pitch * N^(p - 0.5) (up to a dataflow constant ~0.9).
    const double n = static_cast<double>(gates);
    return 0.9 * pitch * std::pow(n, p.rent_exponent - 0.5);
  }
  // p <= 0.5: locality dominates; average length is a few pitches.
  return 2.0 * pitch;
}

double donath_total_wirelength_um(std::int64_t gates, double area_um2,
                                  const WirelengthParams& p) {
  return donath_average_wirelength_um(gates, area_um2, p) *
         p.wires_per_gate * static_cast<double>(gates);
}

double folding_scale(int tiers) {
  expects(tiers >= 1, "tier count must be >= 1");
  return 1.0 / std::sqrt(static_cast<double>(tiers));
}

std::int64_t estimate_buffers(double total_wirelength_um,
                              const WirelengthParams& p) {
  expects(total_wirelength_um >= 0.0, "wirelength must be non-negative");
  expects(p.buffer_interval_um > 0.0, "buffer interval must be positive");
  return static_cast<std::int64_t>(total_wirelength_um / p.buffer_interval_um);
}

}  // namespace uld3d::phys

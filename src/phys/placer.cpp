#include "uld3d/phys/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {

double SoftBlock::width_um() const { return std::sqrt(area_um2 * aspect); }
double SoftBlock::height_um() const { return std::sqrt(area_um2 / aspect); }

Placer::Placer(PlacerOptions options) : options_(options) {
  expects(options_.grid_step_um > 0.0, "grid step must be positive");
  expects(options_.anneal_moves >= 0, "anneal moves must be non-negative");
  expects(options_.cooling > 0.0 && options_.cooling < 1.0,
          "cooling factor must be in (0, 1)");
}

namespace {

/// Weighted HPWL of one block at `rect` toward its anchors.
double block_cost(const SoftBlock& block, const Rect& rect,
                  const std::vector<PlacedMacro>& fixed) {
  double cost = 0.0;
  for (const auto& [index, weight] : block.affinities) {
    if (index < fixed.size()) {
      cost += weight * center_distance(rect, fixed[index].rect);
    }
  }
  return cost;
}

/// Expand a rectangle to the floorplan's bin boundaries — occupancy is
/// committed at bin granularity, so legality must be checked on the
/// bin-expanded footprint or adjacent blocks could collide at commit time.
Rect bin_expand(const Rect& rect, double bin) {
  return {std::floor(rect.x0 / bin) * bin, std::floor(rect.y0 / bin) * bin,
          std::ceil(rect.x1 / bin - 1e-9) * bin,
          std::ceil(rect.y1 / bin - 1e-9) * bin};
}

/// Legal = inside the die, free of fixed blockages, disjoint from siblings.
bool legal(const Floorplan& fp, const SoftBlock& block, const Rect& rect,
           const std::vector<Rect>& placed, std::size_t self) {
  const Rect q = bin_expand(rect, fp.bin_um());
  if (q.x0 < 0.0 || q.y0 < 0.0 || q.x1 > fp.width_um() + 1e-6 ||
      q.y1 > fp.height_um() + 1e-6) {
    return false;
  }
  if (!fp.region_free(block.tier, q)) return false;
  for (std::size_t i = 0; i < placed.size(); ++i) {
    if (i == self || !placed[i].valid()) continue;
    if (bin_expand(placed[i], fp.bin_um()).overlaps(q)) return false;
  }
  return true;
}

}  // namespace

PlacementResult Placer::place(Floorplan& fp,
                              const std::vector<SoftBlock>& blocks,
                              Rng& rng) const {
  PlacementResult result;
  const auto& fixed = fp.macros();

  // Constructive pass: biggest blocks first, best legal candidate position.
  std::vector<std::size_t> order(blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return blocks[a].area_um2 > blocks[b].area_um2;
  });

  std::vector<Rect> rects(blocks.size());  // invalid until placed
  const double step = options_.grid_step_um;

  // Soft blocks may reshape: each aspect candidate is scanned and the best
  // legal (position, shape) wins.  Mild aspect distortion is slightly
  // penalized so square shapes are preferred when space allows.
  constexpr double kAspects[] = {1.0, 2.0, 0.5, 3.0, 1.0 / 3.0, 4.0, 0.25};

  const auto try_place = [&](std::size_t bi, double scan_step,
                             double penalty_weight) -> Rect {
    const SoftBlock& block = blocks[bi];
    double best_cost = std::numeric_limits<double>::infinity();
    Rect best{};
    for (const double aspect_scale : kAspects) {
      const double aspect = block.aspect * aspect_scale;
      const double w = std::sqrt(block.area_um2 * aspect);
      const double h = std::sqrt(block.area_um2 / aspect);
      const double distortion_penalty =
          penalty_weight * fp.width_um() * std::abs(std::log(aspect_scale));
      for (double y = 0.0; y + h <= fp.height_um() + 1e-6; y += scan_step) {
        for (double x = 0.0; x + w <= fp.width_um() + 1e-6; x += scan_step) {
          const Rect rect = Rect::at(x, y, w, h);
          if (!legal(fp, block, rect, rects, bi)) continue;
          const double cost = block_cost(block, rect, fixed) + distortion_penalty;
          if (cost < best_cost) {
            best_cost = cost;
            best = rect;
          }
        }
      }
    }
    return best;
  };

  // First-fit bottom-left scan, ignoring affinities — the dense-packing
  // fallback when affinity-driven placement fragments the free space.
  const auto shelf_place = [&](std::size_t bi) -> Rect {
    const SoftBlock& block = blocks[bi];
    for (const double aspect_scale : kAspects) {
      const double aspect = block.aspect * aspect_scale;
      const double w = std::sqrt(block.area_um2 * aspect);
      const double h = std::sqrt(block.area_um2 / aspect);
      for (double y = 0.0; y + h <= fp.height_um() + 1e-6; y += fp.bin_um()) {
        for (double x = 0.0; x + w <= fp.width_um() + 1e-6; x += fp.bin_um()) {
          const Rect rect = Rect::at(x, y, w, h);
          if (legal(fp, block, rect, rects, bi)) return rect;
        }
      }
    }
    return {};
  };

  bool any_failed = false;
  for (const std::size_t bi : order) {
    expects(blocks[bi].area_um2 > 0.0,
            "soft block area must be positive: " + blocks[bi].name);
    Rect best = try_place(bi, step, 0.02);
    if (!best.valid()) {
      // Second chance: finer scan, any shape accepted.
      best = try_place(bi, step / 2.0, 0.0);
    }
    if (!best.valid()) any_failed = true;
    rects[bi] = best;
  }

  if (any_failed) {
    // Affinity-driven placement fragmented the free space; redo the whole
    // placement as a dense bottom-left shelf packing (feasibility first,
    // wirelength second), then let annealing recover locality.
    std::fill(rects.begin(), rects.end(), Rect{});
    for (const std::size_t bi : order) {
      rects[bi] = shelf_place(bi);
      if (!rects[bi].valid()) result.unplaced.push_back(blocks[bi].name);
    }
  }

  // Annealing refinement: random relocations, accept downhill (or uphill
  // with Boltzmann probability).
  double temperature = options_.initial_temperature;
  const std::int64_t cols =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(fp.width_um() / step));
  const std::int64_t rows =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(fp.height_um() / step));
  for (int move = 0; move < options_.anneal_moves && !blocks.empty(); ++move) {
    const std::size_t bi = static_cast<std::size_t>(rng.below(blocks.size()));
    if (!rects[bi].valid()) continue;
    const SoftBlock& block = blocks[bi];
    const double x = static_cast<double>(rng.below(static_cast<std::uint64_t>(cols))) * step;
    const double y = static_cast<double>(rng.below(static_cast<std::uint64_t>(rows))) * step;
    // Keep the shape chosen by the constructive pass.
    const Rect candidate =
        Rect::at(x, y, rects[bi].width(), rects[bi].height());
    if (!legal(fp, block, candidate, rects, bi)) continue;
    const double old_cost = block_cost(block, rects[bi], fixed);
    const double new_cost = block_cost(block, candidate, fixed);
    const double delta = new_cost - old_cost;
    if (delta < 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      rects[bi] = candidate;
    }
    temperature *= options_.cooling;
  }

  // Commit to the floorplan.
  result.success = result.unplaced.empty();
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    if (!rects[bi].valid()) continue;
    const bool ok = fp.allocate_region(blocks[bi].tier, rects[bi]);
    ensures(ok, "placement committed an illegal region: " + blocks[bi].name);
    Macro m;
    m.name = blocks[bi].name;
    m.kind = MacroKind::kSramBuffer;  // generic soft block marker
    m.width_um = rects[bi].width();
    m.height_um = rects[bi].height();
    result.blocks.push_back({m, rects[bi]});
    result.total_hpwl_um += block_cost(blocks[bi], rects[bi], fixed);
  }
  return result;
}

}  // namespace uld3d::phys

#include "uld3d/phys/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>

#include "uld3d/util/check.hpp"
#include "uld3d/util/metrics.hpp"

namespace uld3d::phys {

double SoftBlock::width_um() const { return std::sqrt(area_um2 * aspect); }
double SoftBlock::height_um() const { return std::sqrt(area_um2 / aspect); }

Placer::Placer(PlacerOptions options) : options_(options) {
  expects(options_.grid_step_um > 0.0, "grid step must be positive");
  expects(options_.anneal_moves >= 0, "anneal moves must be non-negative");
  expects(options_.cooling > 0.0 && options_.cooling < 1.0,
          "cooling factor must be in (0, 1)");
}

namespace {

/// Weighted HPWL of one block at `rect` toward its anchors.  Affinity
/// indices are validated once at the top of Placer::place.
double block_cost(const SoftBlock& block, const Rect& rect,
                  const std::vector<PlacedMacro>& fixed) {
  double cost = 0.0;
  for (const auto& [index, weight] : block.affinities) {
    cost += weight * center_distance(rect, fixed[index].rect);
  }
  return cost;
}

/// Expand a rectangle to the floorplan's bin boundaries — occupancy is
/// committed at bin granularity, so legality must be checked on the
/// bin-expanded footprint or adjacent blocks could collide at commit time.
Rect bin_expand(const Rect& rect, double bin) {
  return {std::floor(rect.x0 / bin) * bin, std::floor(rect.y0 / bin) * bin,
          std::ceil(rect.x1 / bin - 1e-9) * bin,
          std::ceil(rect.y1 / bin - 1e-9) * bin};
}

/// Legal = inside the die, free of fixed blockages, disjoint from siblings.
/// Reference implementation: the full sibling scan, no index involved.
bool legal_naive(const Floorplan& fp, const SoftBlock& block, const Rect& rect,
                 const std::vector<Rect>& placed, std::size_t self) {
  const Rect q = bin_expand(rect, fp.bin_um());
  if (q.x0 < 0.0 || q.y0 < 0.0 || q.x1 > fp.width_um() + 1e-6 ||
      q.y1 > fp.height_um() + 1e-6) {
    return false;
  }
  if (!fp.region_free(block.tier, q)) return false;
  for (std::size_t i = 0; i < placed.size(); ++i) {
    if (i == self || !placed[i].valid()) continue;
    if (bin_expand(placed[i], fp.bin_um()).overlaps(q)) return false;
  }
  return true;
}

/// Left-to-right skip state for one scan row.  A blocked candidate records
/// what blocked it; later candidates in the same row whose bin-expanded
/// window still reaches the blocker are rejected without a query (the
/// window rows are fixed along a row and its right edge only grows, so the
/// blocker provably still collides).
struct RowSkip {
  std::int64_t grid_col = -1;  ///< rightmost occupied grid column hit
  double sibling_x1 = -1.0;    ///< right edge (um) of a colliding sibling

  [[nodiscard]] bool covers(const Floorplan& fp, const Rect& q) const {
    if (q.x0 < sibling_x1) return true;
    return grid_col >= 0 && fp.bin_span(q).x0 <= grid_col;
  }
};

}  // namespace

PlacementResult Placer::place(Floorplan& fp,
                              const std::vector<SoftBlock>& blocks,
                              Rng& rng) const {
  PlacementResult result;
  const auto& fixed = fp.macros();
  for (const auto& block : blocks) {
    for (const auto& [index, weight] : block.affinities) {
      expects(index < fixed.size(),
              "affinity index " + std::to_string(index) +
                  " out of range (fixed macros: " +
                  std::to_string(fixed.size()) + ") for block: " + block.name);
    }
  }

  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter& c_scanned = registry.counter("phys.placer.candidates_scanned");
  Counter& c_skipped = registry.counter("phys.placer.candidates_skipped");
  Counter& c_legal = registry.counter("phys.placer.legal_checks");

  // Fast-path state: bin-expanded rects of currently placed siblings.  The
  // buckets mirror `rects` exactly (insert on place, remove+insert on an
  // accepted anneal move), so a bucket query equals the naive sibling scan.
  const bool fast = placer_index_enabled();
  const double bin = fp.bin_um();
  RectBuckets buckets(fp.width_um(), fp.height_um(),
                      std::max<std::size_t>(blocks.size(), 1));

  // Constructive pass: biggest blocks first, best legal candidate position.
  std::vector<std::size_t> order(blocks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return blocks[a].area_um2 > blocks[b].area_um2;
  });

  std::vector<Rect> rects(blocks.size());  // invalid until placed
  const double step = options_.grid_step_um;

  // Fast-path legality for one candidate.  Identical verdict to
  // legal_naive (same bounds comparisons; the occupancy index and the
  // buckets answer the same queries), but a blocked candidate feeds the
  // row-skip state.
  const auto legal_fast = [&](const SoftBlock& block, const Rect& q,
                              std::size_t self, RowSkip& skip) -> bool {
    if (q.x0 < 0.0 || q.y0 < 0.0 || q.x1 > fp.width_um() + 1e-6 ||
        q.y1 > fp.height_um() + 1e-6) {
      return false;
    }
    c_legal.add();
    if (!fp.region_free(block.tier, q)) {
      skip.grid_col = fp.rightmost_occupied_col(block.tier, q);
      return false;
    }
    if (const auto hit = buckets.overlaps_any(q, self)) {
      skip.sibling_x1 = std::max(skip.sibling_x1, hit->x1);
      return false;
    }
    return true;
  };

  // Soft blocks may reshape: each aspect candidate is scanned and the best
  // legal (position, shape) wins.  Mild aspect distortion is slightly
  // penalized so square shapes are preferred when space allows.
  constexpr double kAspects[] = {1.0, 2.0, 0.5, 3.0, 1.0 / 3.0, 4.0, 0.25};

  const auto try_place = [&](std::size_t bi, double scan_step,
                             double penalty_weight) -> Rect {
    const SoftBlock& block = blocks[bi];
    double best_cost = std::numeric_limits<double>::infinity();
    Rect best{};
    for (const double aspect_scale : kAspects) {
      const double aspect = block.aspect * aspect_scale;
      const double w = std::sqrt(block.area_um2 * aspect);
      const double h = std::sqrt(block.area_um2 / aspect);
      const double distortion_penalty =
          penalty_weight * fp.width_um() * std::abs(std::log(aspect_scale));
      for (double y = 0.0; y + h <= fp.height_um() + 1e-6; y += scan_step) {
        RowSkip skip;
        for (double x = 0.0; x + w <= fp.width_um() + 1e-6; x += scan_step) {
          const Rect rect = Rect::at(x, y, w, h);
          if (fast) {
            const Rect q = bin_expand(rect, bin);
            if (skip.covers(fp, q)) {
              c_skipped.add();
              continue;
            }
            c_scanned.add();
            if (!legal_fast(block, q, bi, skip)) continue;
          } else {
            c_scanned.add();
            if (!legal_naive(fp, block, rect, rects, bi)) continue;
          }
          const double cost = block_cost(block, rect, fixed) + distortion_penalty;
          if (cost < best_cost) {
            best_cost = cost;
            best = rect;
          }
        }
      }
    }
    return best;
  };

  // First-fit bottom-left scan, ignoring affinities — the dense-packing
  // fallback when affinity-driven placement fragments the free space.
  const auto shelf_place = [&](std::size_t bi) -> Rect {
    const SoftBlock& block = blocks[bi];
    for (const double aspect_scale : kAspects) {
      const double aspect = block.aspect * aspect_scale;
      const double w = std::sqrt(block.area_um2 * aspect);
      const double h = std::sqrt(block.area_um2 / aspect);
      for (double y = 0.0; y + h <= fp.height_um() + 1e-6; y += fp.bin_um()) {
        RowSkip skip;
        for (double x = 0.0; x + w <= fp.width_um() + 1e-6; x += fp.bin_um()) {
          const Rect rect = Rect::at(x, y, w, h);
          if (fast) {
            const Rect q = bin_expand(rect, bin);
            if (skip.covers(fp, q)) {
              c_skipped.add();
              continue;
            }
            c_scanned.add();
            if (legal_fast(block, q, bi, skip)) return rect;
          } else {
            c_scanned.add();
            if (legal_naive(fp, block, rect, rects, bi)) return rect;
          }
        }
      }
    }
    return {};
  };

  const auto commit_rect = [&](std::size_t bi, const Rect& rect) {
    rects[bi] = rect;
    if (fast && rect.valid()) buckets.insert(bi, bin_expand(rect, bin));
  };

  bool any_failed = false;
  for (const std::size_t bi : order) {
    expects(blocks[bi].area_um2 > 0.0,
            "soft block area must be positive: " + blocks[bi].name);
    Rect best = try_place(bi, step, 0.02);
    if (!best.valid()) {
      // Second chance: finer scan, any shape accepted.
      best = try_place(bi, step / 2.0, 0.0);
    }
    if (!best.valid()) any_failed = true;
    commit_rect(bi, best);
  }

  if (any_failed) {
    // Affinity-driven placement fragmented the free space; redo the whole
    // placement as a dense bottom-left shelf packing (feasibility first,
    // wirelength second), then let annealing recover locality.
    std::fill(rects.begin(), rects.end(), Rect{});
    buckets.clear();
    for (const std::size_t bi : order) {
      commit_rect(bi, shelf_place(bi));
      if (!rects[bi].valid()) result.unplaced.push_back(blocks[bi].name);
    }
  }

  // Annealing refinement: random relocations, accept downhill (or uphill
  // with Boltzmann probability).
  double temperature = options_.initial_temperature;
  const std::int64_t cols =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(fp.width_um() / step));
  const std::int64_t rows =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(fp.height_um() / step));
  for (int move = 0; move < options_.anneal_moves && !blocks.empty(); ++move) {
    const std::size_t bi = static_cast<std::size_t>(rng.below(blocks.size()));
    if (!rects[bi].valid()) continue;
    const SoftBlock& block = blocks[bi];
    const double x = static_cast<double>(rng.below(static_cast<std::uint64_t>(cols))) * step;
    const double y = static_cast<double>(rng.below(static_cast<std::uint64_t>(rows))) * step;
    // Keep the shape chosen by the constructive pass.
    const Rect candidate =
        Rect::at(x, y, rects[bi].width(), rects[bi].height());
    c_scanned.add();
    if (fast) {
      RowSkip skip;  // single candidate; the hints are unused
      const Rect q = bin_expand(candidate, bin);
      if (!legal_fast(block, q, bi, skip)) continue;
    } else {
      if (!legal_naive(fp, block, candidate, rects, bi)) continue;
    }
    const double old_cost = block_cost(block, rects[bi], fixed);
    const double new_cost = block_cost(block, candidate, fixed);
    const double delta = new_cost - old_cost;
    if (delta < 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      if (fast) {
        buckets.remove(bi, bin_expand(rects[bi], bin));
        buckets.insert(bi, bin_expand(candidate, bin));
      }
      rects[bi] = candidate;
    }
    temperature *= options_.cooling;
  }

  // Commit to the floorplan.
  result.success = result.unplaced.empty();
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    if (!rects[bi].valid()) continue;
    const bool ok = fp.allocate_region(blocks[bi].tier, rects[bi]);
    ensures(ok, "placement committed an illegal region: " + blocks[bi].name);
    Macro m;
    m.name = blocks[bi].name;
    m.kind = MacroKind::kSramBuffer;  // generic soft block marker
    m.width_um = rects[bi].width();
    m.height_um = rects[bi].height();
    result.blocks.push_back({m, rects[bi]});
    result.source_index.push_back(bi);
    result.total_hpwl_um += block_cost(blocks[bi], rects[bi], fixed);
  }
  return result;
}

}  // namespace uld3d::phys

#include "uld3d/phys/render.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {

namespace {

char glyph_for(const PlacedMacro& placed) {
  switch (placed.macro.kind) {
    case MacroKind::kRramArray: return 'R';
    case MacroKind::kRramPeriph: return 'p';
    case MacroKind::kIoRing: return 'i';
    case MacroKind::kSramBuffer: break;  // soft blocks: name-derived below
  }
  // Soft blocks: 'L' for CS logic, 's' for SRAM halves, else 'b'.
  if (placed.macro.name.find("logic") != std::string::npos) return 'L';
  if (placed.macro.name.find("sram") != std::string::npos) return 's';
  return 'b';
}

void paint(std::vector<std::string>& grid, const Rect& rect, char glyph,
           double ux, double uy) {
  const int rows = static_cast<int>(grid.size());
  const int cols = rows > 0 ? static_cast<int>(grid[0].size()) : 0;
  const int x0 = std::clamp(static_cast<int>(rect.x0 / ux), 0, cols);
  const int x1 = std::clamp(static_cast<int>(rect.x1 / ux + 0.5), 0, cols);
  const int y0 = std::clamp(static_cast<int>(rect.y0 / uy), 0, rows);
  const int y1 = std::clamp(static_cast<int>(rect.y1 / uy + 0.5), 0, rows);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = glyph;
    }
  }
}

}  // namespace

std::string render_ascii_floorplan(double die_width_um, double die_height_um,
                                   const std::vector<PlacedMacro>& macros,
                                   const std::vector<PlacedMacro>& blocks,
                                   int width_chars) {
  expects(die_width_um > 0.0 && die_height_um > 0.0,
          "die dimensions must be positive");
  expects(width_chars >= 8, "need at least 8 columns");
  // Terminal characters are ~2x taller than wide; halve the row count.
  const int height_chars = std::max(
      4, static_cast<int>(width_chars * die_height_um / die_width_um / 2.0));
  const double ux = die_width_um / width_chars;
  const double uy = die_height_um / height_chars;

  std::vector<std::string> grid(static_cast<std::size_t>(height_chars),
                                std::string(static_cast<std::size_t>(width_chars), '.'));
  for (const auto& m : macros) paint(grid, m.rect, glyph_for(m), ux, uy);
  for (const auto& b : blocks) paint(grid, b.rect, glyph_for(b), ux, uy);

  std::ostringstream os;
  os << '+' << std::string(static_cast<std::size_t>(width_chars), '-') << "+\n";
  // y grows upward: print top row first.
  for (int y = height_chars - 1; y >= 0; --y) {
    os << '|' << grid[static_cast<std::size_t>(y)] << "|\n";
  }
  os << '+' << std::string(static_cast<std::size_t>(width_chars), '-') << "+\n";
  os << "R=RRAM array  p=peripherals  L=CS logic  s=CS SRAM  .=free\n";
  return os.str();
}

std::string export_def(const std::string& design_name, double die_width_um,
                       double die_height_um,
                       const std::vector<PlacedMacro>& macros,
                       const std::vector<PlacedMacro>& blocks) {
  expects(!design_name.empty(), "design name required");
  std::ostringstream os;
  os << "VERSION 5.8 ;\nDESIGN " << design_name << " ;\nUNITS DISTANCE MICRONS 1 ;\n";
  os << "DIEAREA ( 0 0 ) ( " << static_cast<long long>(die_width_um) << " "
     << static_cast<long long>(die_height_um) << " ) ;\n";
  const std::size_t total = macros.size() + blocks.size();
  os << "COMPONENTS " << total << " ;\n";
  const auto emit = [&os](const PlacedMacro& p) {
    os << "- " << p.macro.name << " " << to_string(p.macro.kind) << " + FIXED ( "
       << static_cast<long long>(p.rect.x0) << " "
       << static_cast<long long>(p.rect.y0) << " ) N ;\n";
  };
  for (const auto& m : macros) emit(m);
  for (const auto& b : blocks) emit(b);
  os << "END COMPONENTS\nEND DESIGN\n";
  return os.str();
}

}  // namespace uld3d::phys

// Block-level placer: greedy constructive placement plus simulated-annealing
// refinement, minimizing weighted HPWL to fixed macros.  This is the
// "custom monolithic 3D place" step of the paper's Fig.-4b flow at block
// granularity: computing sub-systems and their buffers are soft blocks that
// must land in the Si free space left by the (partial) RRAM blockages.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "uld3d/phys/floorplan.hpp"
#include "uld3d/util/rng.hpp"

namespace uld3d::phys {

/// A rectangular soft block to be placed on one tier.
struct SoftBlock {
  std::string name;
  double area_um2 = 0.0;
  double aspect = 1.0;           ///< width/height ratio
  tech::TierKind tier = tech::TierKind::kSiCmosFeol;
  /// (fixed-macro index in the floorplan, connection weight) pairs; the
  /// placer pulls the block toward these anchors.  Every index must refer
  /// to a macro already placed in the floorplan handed to Placer::place
  /// (checked there; an out-of-range index is a caller bug).
  std::vector<std::pair<std::size_t, double>> affinities;

  [[nodiscard]] double width_um() const;
  [[nodiscard]] double height_um() const;
};

struct PlacerOptions {
  double grid_step_um = 100.0;    ///< candidate-position granularity
  int anneal_moves = 2000;        ///< refinement move attempts
  /// Starting temperature in um of HPWL.  Kept near the typical single-move
  /// delta so refinement polishes the constructive result instead of
  /// scrambling it.
  double initial_temperature = 400.0;
  double cooling = 0.997;
};

struct PlacementResult {
  bool success = false;           ///< every block found a legal spot
  std::vector<PlacedMacro> blocks;  ///< placed soft blocks (as macros)
  /// For each entry of `blocks`, the index of its source block in the
  /// vector handed to Placer::place.  `blocks` omits unplaced blocks, so
  /// positions alone cannot recover which input a placement belongs to —
  /// callers that map blocks back to their design unit (e.g. the flow's
  /// block -> bank routing) must go through this.
  std::vector<std::size_t> source_index;
  double total_hpwl_um = 0.0;     ///< weighted anchor HPWL after refinement
  std::vector<std::string> unplaced;  ///< names of blocks that did not fit
};

class Placer {
 public:
  explicit Placer(PlacerOptions options = {});

  /// Place `blocks` into `fp` (which already contains the fixed macros).
  /// On success the blocks' regions are allocated in the floorplan.
  PlacementResult place(Floorplan& fp, const std::vector<SoftBlock>& blocks,
                        Rng& rng) const;

 private:
  PlacerOptions options_;
};

}  // namespace uld3d::phys

// Global-routing congestion estimate: every logical connection contributes
// an L-shaped (two-segment Manhattan) route between its endpoints; demand
// accumulates per bin and is compared against the bin's track supply from
// the metal stack.  The M3D question it answers: do eight CS-to-bank buses
// over the RRAM arrays still fit the routing resources the 2D design had?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uld3d/phys/geometry.hpp"

namespace uld3d::phys {

/// One logical connection to route.
struct Route {
  Point from;
  Point to;
  double tracks = 1.0;  ///< parallel wires (e.g. a 64-bit bus = 64 tracks)
};

struct CongestionParams {
  double bin_um = 250.0;
  /// Routing tracks a bin offers per metal layer: bin width / wire pitch.
  double wire_pitch_um = 0.46;   // intermediate-metal pitch at 130 nm
  int routing_layers = 4;        // layers available for global routing
};

class CongestionMap {
 public:
  CongestionMap(double die_width_um, double die_height_um,
                const std::vector<Route>& routes,
                const CongestionParams& params = {});

  /// Demand / supply of the worst bin.
  [[nodiscard]] double peak_utilization() const;
  /// Mean utilization over all bins.
  [[nodiscard]] double mean_utilization() const;
  /// Fraction of bins whose demand exceeds supply (overflow).
  [[nodiscard]] double overflow_fraction() const;
  [[nodiscard]] std::int64_t bins_x() const { return nx_; }
  [[nodiscard]] std::int64_t bins_y() const { return ny_; }

  /// Coarse ASCII utilization map (space . : - = + * # @).
  [[nodiscard]] std::string to_ascii() const;

 private:
  void add_segment(Point a, Point b, double tracks);

  std::int64_t nx_;
  std::int64_t ny_;
  double bin_um_;
  double supply_per_bin_;
  std::vector<double> demand_;
};

}  // namespace uld3d::phys

// Hard macros and their per-tier blockages (paper Fig. 3 / Sec. II).
//
// The essential physical-design fact the paper exploits: an RRAM cell array
// with Si access FETs fully blocks the Si CMOS tier underneath it (Fig. 3e),
// but the same array with CNFET access FETs blocks only the RRAM and CNFET
// tiers — the Si tier below becomes placeable, with only the memory
// peripherals remaining as Si blockages.
#pragma once

#include <string>

#include "uld3d/phys/geometry.hpp"
#include "uld3d/tech/tier_stack.hpp"

namespace uld3d::phys {

enum class MacroKind {
  kRramArray,    ///< RRAM cell array (cells + access FETs)
  kRramPeriph,   ///< sense amps / controllers (always Si CMOS)
  kSramBuffer,   ///< CS double-buffer SRAM (Si CMOS)
  kIoRing,       ///< pads and system bus
};

[[nodiscard]] const char* to_string(MacroKind kind);

/// A hard macro with per-tier-kind blockage flags.
struct Macro {
  std::string name;
  MacroKind kind = MacroKind::kRramArray;
  double width_um = 0.0;
  double height_um = 0.0;
  bool blocks_si = true;     ///< occupies the Si CMOS FEOL tier
  bool blocks_rram = false;  ///< occupies the RRAM tier
  bool blocks_cnfet = false; ///< occupies the CNFET tier

  [[nodiscard]] double area_um2() const { return width_um * height_um; }
  [[nodiscard]] bool blocks(tech::TierKind tier) const;

  /// RRAM cell array with Si access FETs (2D baseline): blocks Si + RRAM.
  [[nodiscard]] static Macro rram_array_2d(std::string name, double area_um2,
                                           double aspect = 1.0);
  /// RRAM cell array with CNFET access FETs (M3D): blocks RRAM + CNFET only;
  /// the Si tier underneath is free for placement.
  [[nodiscard]] static Macro rram_array_m3d(std::string name, double area_um2,
                                            double aspect = 1.0);
  /// Memory peripherals: Si blockage in both designs.
  [[nodiscard]] static Macro rram_periph(std::string name, double area_um2,
                                         double aspect = 4.0);
  /// CS SRAM buffer macro (Si).
  [[nodiscard]] static Macro sram_buffer(std::string name, double area_um2);
};

/// A macro at a fixed location.
struct PlacedMacro {
  Macro macro;
  Rect rect;
};

}  // namespace uld3d::phys

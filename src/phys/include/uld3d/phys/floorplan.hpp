// Grid-based multi-tier floorplan with per-tier blockage maps.
//
// The die is discretized into square bins; each placement tier (Si CMOS,
// RRAM, CNFET) keeps an occupancy grid.  Macros mark bins on every tier they
// block; standard-cell regions are then allocated from free Si (or CNFET)
// bins.  This mirrors the paper's methodology of expressing the RRAM arrays
// as partial blockages in the M3D flow (Sec. II).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "uld3d/phys/macro.hpp"
#include "uld3d/phys/occupancy_index.hpp"
#include "uld3d/tech/tier_stack.hpp"

namespace uld3d::phys {

/// A rectangle's (clamped) window of grid bins: columns [x0, x1), rows
/// [y0, y1).  The single source of truth for um -> bin quantization; every
/// occupancy query and every fast-path skip decision goes through it, so
/// the run-skipping scans can never disagree with the naive loops about
/// which bins a rectangle covers.
struct BinSpan {
  std::int64_t x0 = 0;
  std::int64_t y0 = 0;
  std::int64_t x1 = 0;
  std::int64_t y1 = 0;
};

class Floorplan {
 public:
  /// A die of `width_um` x `height_um` on `stack`, discretized into bins of
  /// `bin_um` on a side.
  Floorplan(double width_um, double height_um, tech::TierStack stack,
            double bin_um = 100.0);

  [[nodiscard]] double width_um() const { return width_um_; }
  [[nodiscard]] double height_um() const { return height_um_; }
  [[nodiscard]] double die_area_um2() const { return width_um_ * height_um_; }
  [[nodiscard]] const tech::TierStack& stack() const { return stack_; }
  [[nodiscard]] double bin_um() const { return bin_um_; }

  /// Try to place `macro` with its lower-left corner at (x, y).  Fails (and
  /// changes nothing) if it leaves the die or collides on any blocked tier.
  bool place_macro(const Macro& macro, double x, double y);

  /// Scan for the first legal lower-left position for `macro` and place it.
  /// Returns the placed rectangle, or nullopt if the macro cannot fit.
  std::optional<Rect> place_macro_anywhere(const Macro& macro);

  /// All placed macros, in placement order.
  [[nodiscard]] const std::vector<PlacedMacro>& macros() const { return macros_; }

  /// Mark a rectangular standard-cell region as occupied on one tier.
  /// Returns false (no change) if any bin there is already occupied.
  bool allocate_region(tech::TierKind tier, const Rect& rect);

  /// Find a free rectangle of at least w x h on `tier` (first fit).
  [[nodiscard]] std::optional<Rect> find_free_region(tech::TierKind tier,
                                                     double w_um,
                                                     double h_um) const;

  /// Free area on a placement tier (um^2, bin-quantized).
  [[nodiscard]] double free_area_um2(tech::TierKind tier) const;

  /// Fraction of a tier's bins that are occupied.
  [[nodiscard]] double utilization(tech::TierKind tier) const;

  /// True if the rectangle is fully free on the tier.
  [[nodiscard]] bool region_free(tech::TierKind tier, const Rect& rect) const;

  [[nodiscard]] std::int64_t bins_x() const { return nx_; }
  [[nodiscard]] std::int64_t bins_y() const { return ny_; }

  /// The grid-bin window `rect` covers (clamped to the grid).
  [[nodiscard]] BinSpan bin_span(const Rect& rect) const;

  /// Rightmost occupied column of `tier` inside `rect`'s bin window, or -1
  /// when the window is clear.  Skip hint for left-to-right candidate
  /// scans: any window starting at or before the returned column over the
  /// same rows is still blocked by that bin.
  [[nodiscard]] std::int64_t rightmost_occupied_col(tech::TierKind tier,
                                                    const Rect& rect) const;

 private:
  struct TierGrid {
    tech::TierKind kind;
    std::vector<std::uint8_t> occupied;  // nx * ny
    /// Lazily rebuilt query accelerator over `occupied`; mutable because a
    /// stale index is refreshed from const queries (it is a cache).  Lazy
    /// rebuild makes even const queries non-reentrant: one thread per
    /// Floorplan.
    mutable OccupancyIndex index;
  };

  [[nodiscard]] const TierGrid* grid_for(tech::TierKind tier) const;
  [[nodiscard]] TierGrid* grid_for(tech::TierKind tier);
  void mark(TierGrid& grid, const Rect& rect);
  [[nodiscard]] bool clear_in(const TierGrid& grid, const Rect& rect) const;
  /// Refresh the grid's occupancy index if stale.
  void refresh_index(const TierGrid& grid) const;

  double width_um_;
  double height_um_;
  double bin_um_;
  std::int64_t nx_;
  std::int64_t ny_;
  tech::TierStack stack_;
  std::vector<TierGrid> grids_;
  std::vector<PlacedMacro> macros_;
};

}  // namespace uld3d::phys

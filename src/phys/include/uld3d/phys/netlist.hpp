// Gate-level structural netlist abstraction — the "synthesized netlist" the
// Fig.-4b flow starts from.  Cells are instances of standard-library types;
// nets connect cell pins.  The netlist supports area/energy/leakage rollups
// against a StdCellLibrary, type histograms (synthesis reports), and HPWL
// evaluation under a placement, so the statistical Donath wire model can be
// cross-checked against a real structural design.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uld3d/phys/geometry.hpp"
#include "uld3d/tech/std_cell_library.hpp"

namespace uld3d::phys {

/// One placed-instance record.
struct NetlistCell {
  std::string name;  ///< hierarchical instance name
  std::string type;  ///< library cell type, e.g. "FA_X1"
};

/// One multi-pin net (cell indices into the netlist).
struct NetlistNet {
  std::string name;
  std::vector<std::int32_t> cells;
};

class Netlist {
 public:
  /// Add an instance; returns its index.
  std::int32_t add_cell(std::string name, std::string type);
  /// Add a net over existing cell indices (>= 2 pins).
  void add_net(std::string name, std::vector<std::int32_t> cells);

  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }
  [[nodiscard]] const std::vector<NetlistCell>& cells() const { return cells_; }
  [[nodiscard]] const std::vector<NetlistNet>& nets() const { return nets_; }

  /// Total placed area against `lib`; throws if a type is unknown.
  [[nodiscard]] double area_um2(const tech::StdCellLibrary& lib) const;
  /// Total leakage (nW) against `lib`.
  [[nodiscard]] double leakage_nw(const tech::StdCellLibrary& lib) const;
  /// Gate-equivalents against `lib`.
  [[nodiscard]] std::int64_t gate_equivalents(
      const tech::StdCellLibrary& lib) const;
  /// Instance-count histogram by cell type (a synthesis report).
  [[nodiscard]] std::map<std::string, std::int64_t> type_histogram() const;

  /// Sum of per-net half-perimeter wirelength under `positions` (one point
  /// per cell, same indexing).
  [[nodiscard]] double hpwl_um(const std::vector<Point>& positions) const;

 private:
  std::vector<NetlistCell> cells_;
  std::vector<NetlistNet> nets_;
};

/// Row-major placement of all cells into `region`, in index order, at the
/// library's average cell pitch.  Generators that emit cells in spatial
/// order (e.g. PE-by-PE) therefore get a topology-faithful placement.
[[nodiscard]] std::vector<Point> place_row_major(
    const Netlist& netlist, const Rect& region,
    const tech::StdCellLibrary& lib);

}  // namespace uld3d::phys

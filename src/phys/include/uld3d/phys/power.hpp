// Power accounting with per-tier breakdown and a spatial density map
// (paper Observation 2: M3D upper-tier power <1% of chip power, so peak
// power density rises by just ~1% vs. the 2D design).
#pragma once

#include <string>
#include <vector>

#include "uld3d/phys/geometry.hpp"
#include "uld3d/tech/tier_stack.hpp"

namespace uld3d::phys {

/// One power-dissipating block.
struct PowerComponent {
  std::string name;
  tech::TierKind tier = tech::TierKind::kSiCmosFeol;
  Rect rect;           ///< footprint over which the power spreads
  double power_mw = 0.0;
};

/// Per-tier total.
struct TierPower {
  tech::TierKind tier;
  double power_mw = 0.0;
};

class PowerModel {
 public:
  void add(PowerComponent component);

  [[nodiscard]] double total_mw() const;
  [[nodiscard]] double tier_mw(tech::TierKind tier) const;
  [[nodiscard]] std::vector<TierPower> per_tier() const;
  [[nodiscard]] const std::vector<PowerComponent>& components() const {
    return components_;
  }

  /// Fraction of total power above the Si CMOS tier (RRAM + CNFET tiers).
  [[nodiscard]] double upper_tier_fraction() const;

  /// Peak areal power density (mW/mm^2) over a `bin_um` grid covering
  /// `width_um` x `height_um`; all tiers stack into the same areal bin.
  [[nodiscard]] double peak_density_mw_per_mm2(double width_um,
                                               double height_um,
                                               double bin_um = 250.0) const;

 private:
  std::vector<PowerComponent> components_;
};

}  // namespace uld3d::phys

// Acceleration structures for the placement engine.
//
// The phys flow's hot side is occupancy *queries*: every aspect candidate of
// every soft block asks "is this rectangle free?" against the floorplan's
// byte grids, and the placer asks "does this rectangle overlap a placed
// sibling?" thousands of times per anneal.  Marks, by contrast, are rare
// (one per committed macro/region).  Two structures exploit that asymmetry:
//
//  * OccupancyIndex — a summed-area table (2D prefix sum) over one tier's
//    occupancy bytes, plus a per-row "previous occupied column" table.  A
//    rectangle query becomes four lookups (O(1)); a blocked scan learns the
//    rightmost occupied column inside its window in O(rows) and can jump its
//    x cursor past the whole blocking run instead of advancing one bin.
//    The index is rebuilt lazily: `invalidate()` on mark, `refresh()` before
//    the next query (rebuild is O(nx*ny), amortized over many queries).
//
//  * RectBuckets — a uniform-bucket spatial index over placed rectangles,
//    replacing the placer's O(placed) sibling-overlap loop.  Queries test
//    only rectangles sharing a bucket with the probe; the overlap predicate
//    itself is Rect::overlaps on the exact stored rectangles, so the answer
//    is identical to the full loop.
//
// Both structures are pure accelerators: every fast path they serve is
// bit-identical to the naive implementation (same scan order, same
// tie-breaks, same RNG consumption), which the randomized differential
// suite in tests/test_phys_occupancy_index.cpp asserts.  Setting the
// environment variable `ULD3D_NO_PLACER_INDEX` (non-empty) at startup
// disables the fast paths process-wide, mirroring `ULD3D_NO_MAPCACHE`;
// `set_placer_index_enabled` toggles them at runtime (tests, A/B timing).
//
// Neither class is thread-safe for concurrent mutation; each thread owns
// its Floorplan/Placer state (the chip_summary fan-out builds one flow per
// task), and the enable flag is a single relaxed atomic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "uld3d/phys/geometry.hpp"

namespace uld3d::phys {

/// True when the placement fast paths (occupancy index, run-skipping,
/// spatial buckets) are active.  Reads ULD3D_NO_PLACER_INDEX once on first
/// use; one relaxed atomic load per call afterwards.
[[nodiscard]] bool placer_index_enabled();

/// Runtime override of the fast-path flag (tests and A/B baselines).
void set_placer_index_enabled(bool enabled);

/// Summed-area occupancy index over a row-major byte grid of nx * ny bins
/// (non-zero byte = occupied).  The grid is passed into `refresh`, not
/// owned, so the index can live inside a copyable/movable grid holder.
class OccupancyIndex {
 public:
  OccupancyIndex() = default;

  /// Mark the index stale (call after any grid mutation).
  void invalidate() { dirty_ = true; }

  [[nodiscard]] bool fresh() const { return !dirty_; }

  /// Rebuild from `occupied` if stale; no-op when fresh.  Queries require a
  /// refresh against the grid's current content since the last invalidate.
  void refresh(const std::uint8_t* occupied, std::int64_t nx, std::int64_t ny);

  /// Number of occupied bins in [bx0, bx1) x [by0, by1), clamped to the
  /// grid; empty windows count zero.
  [[nodiscard]] std::int64_t count(std::int64_t bx0, std::int64_t by0,
                                   std::int64_t bx1, std::int64_t by1) const;

  /// True when the window holds no occupied bin.
  [[nodiscard]] bool rect_clear(std::int64_t bx0, std::int64_t by0,
                                std::int64_t bx1, std::int64_t by1) const {
    return count(bx0, by0, bx1, by1) == 0;
  }

  /// Largest occupied column in [bx0, bx1) over rows [by0, by1), or -1 when
  /// the window is clear.  A left-to-right scan whose window is blocked can
  /// resume at the returned column + 1: every window starting at or before
  /// it still contains that occupied bin.
  [[nodiscard]] std::int64_t rightmost_occupied(std::int64_t bx0,
                                                std::int64_t by0,
                                                std::int64_t bx1,
                                                std::int64_t by1) const;

  /// Occupied bins in the whole grid (O(1)).
  [[nodiscard]] std::int64_t occupied_bins() const;

 private:
  bool dirty_ = true;
  std::int64_t nx_ = 0;
  std::int64_t ny_ = 0;
  /// (nx+1) * (ny+1) inclusive prefix sums; sat_[(y+1)*(nx+1) + (x+1)] is
  /// the occupied count of [0, x] x [0, y].  The grid cap (64M bins) fits
  /// in 32 bits.
  std::vector<std::uint32_t> sat_;
  /// nx * ny; prev_occ_[y*nx + x] is the largest occupied column <= x in
  /// row y, or -1.
  std::vector<std::int32_t> prev_occ_;
};

/// Uniform-bucket spatial index over identified rectangles.  `overlaps_any`
/// applies Rect::overlaps to the exact rectangles given to `insert`, so its
/// verdict matches a full linear scan; the buckets only narrow which
/// rectangles are tested.
class RectBuckets {
 public:
  /// Buckets covering [0, width_um] x [0, height_um]; `expected` sizes the
  /// bucket grid (~one rect per bucket).
  RectBuckets(double width_um, double height_um, std::size_t expected);

  /// Drop every stored rectangle.
  void clear();

  /// Store `rect` under `id`.  A given id must be removed before it is
  /// re-inserted.
  void insert(std::size_t id, const Rect& rect);

  /// Remove the rectangle previously inserted under `id` (`rect` must be
  /// the same rectangle).
  void remove(std::size_t id, const Rect& rect);

  /// Some stored rectangle with id != `self` overlapping `q`, or nullopt.
  /// Any overlapping rectangle may be returned (used as a skip hint; the
  /// boolean outcome is what legality depends on).
  [[nodiscard]] std::optional<Rect> overlaps_any(const Rect& q,
                                                 std::size_t self) const;

 private:
  struct Entry {
    std::size_t id;
    Rect rect;
  };

  void bucket_span(const Rect& rect, std::int64_t& cx0, std::int64_t& cy0,
                   std::int64_t& cx1, std::int64_t& cy1) const;

  std::int64_t cols_ = 1;
  std::int64_t rows_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  std::vector<std::vector<Entry>> cells_;
};

}  // namespace uld3d::phys

// Human-readable exports of a placed design: an ASCII floorplan sketch
// (the poor engineer's GDS screenshot, Fig. 2b/2d style) and a DEF-like
// textual dump for downstream tooling.
#pragma once

#include <string>
#include <vector>

#include "uld3d/phys/macro.hpp"

namespace uld3d::phys {

/// Render placed macros/blocks into a character grid of `width_chars`
/// columns (rows follow from the aspect ratio).  Each macro is filled with
/// a letter derived from its kind/name; later entries draw over earlier
/// ones; '.' is empty die.
[[nodiscard]] std::string render_ascii_floorplan(
    double die_width_um, double die_height_um,
    const std::vector<PlacedMacro>& macros,
    const std::vector<PlacedMacro>& blocks, int width_chars = 64);

/// A minimal DEF-flavoured dump: DIEAREA in database units (1 DBU = 1 um)
/// plus one COMPONENTS entry per placed macro/block with FIXED placement.
[[nodiscard]] std::string export_def(const std::string& design_name,
                                     double die_width_um,
                                     double die_height_um,
                                     const std::vector<PlacedMacro>& macros,
                                     const std::vector<PlacedMacro>& blocks);

}  // namespace uld3d::phys

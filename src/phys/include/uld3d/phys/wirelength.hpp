// Wirelength and buffering estimation.
//
// Intra-block wiring uses the Donath/Rent statistical model; inter-block
// wiring uses the placer's HPWL.  Folding a block across two device tiers
// (the M3D benefit reported by the RTL-to-GDS studies [3-4] the paper builds
// on) halves its footprint and shortens average wires by ~1/sqrt(2).
#pragma once

#include <cstdint>

namespace uld3d::phys {

struct WirelengthParams {
  double rent_exponent = 0.6;      ///< p for random logic
  double wires_per_gate = 1.4;     ///< average two-pin-equivalent nets/gate
  double buffer_interval_um = 1500.0;  ///< optimal repeater spacing @130nm
};

/// Donath estimate of the average wire length (um) in a placed block of
/// `gates` cells covering `area_um2`.
[[nodiscard]] double donath_average_wirelength_um(std::int64_t gates,
                                                  double area_um2,
                                                  const WirelengthParams& p);

/// Total intra-block wirelength (um).
[[nodiscard]] double donath_total_wirelength_um(std::int64_t gates,
                                                double area_um2,
                                                const WirelengthParams& p);

/// Wirelength scale factor when a block folds across `tiers` device tiers
/// with ultra-dense ILVs: footprint divides by `tiers`, average Manhattan
/// length scales ~ 1/sqrt(tiers).
[[nodiscard]] double folding_scale(int tiers);

/// Repeater count for `total_wirelength_um` of routed wire.
[[nodiscard]] std::int64_t estimate_buffers(double total_wirelength_um,
                                            const WirelengthParams& p);

}  // namespace uld3d::phys

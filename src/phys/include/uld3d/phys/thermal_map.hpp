// Spatial thermal estimate: per-bin temperature rise from the power model
// and the vertical tier-stack resistance (the 2-D refinement of Eq. 17 —
// each bin column conducts its own power to the sink, plus a neighbor-
// smoothing pass standing in for lateral spreading in the substrate).
#pragma once

#include <string>
#include <vector>

#include "uld3d/phys/power.hpp"
#include "uld3d/tech/tier_stack.hpp"

namespace uld3d::phys {

class ThermalMap {
 public:
  /// Build from dissipating components: each bin's rise is
  /// (stack resistance above the sink for that bin's area) * (bin power),
  /// then laterally smoothed with `smoothing_passes` of 4-neighbor
  /// averaging.  `sink_resistance_mm2_k_per_w` is the heat-sink resistance
  /// normalised per mm^2.
  ThermalMap(const PowerModel& power, const tech::TierStack& stack,
             double die_width_um, double die_height_um,
             double sink_resistance_mm2_k_per_w, double bin_um = 250.0,
             int smoothing_passes = 2);

  [[nodiscard]] double max_rise_k() const;
  [[nodiscard]] double mean_rise_k() const;
  /// Rise at the bin containing (x, y).
  [[nodiscard]] double rise_at(double x_um, double y_um) const;
  [[nodiscard]] std::int64_t bins_x() const { return nx_; }
  [[nodiscard]] std::int64_t bins_y() const { return ny_; }

  /// Coarse ASCII heat map (space . : - = + * # @ from cold to hot).
  [[nodiscard]] std::string to_ascii() const;

 private:
  std::int64_t nx_;
  std::int64_t ny_;
  double bin_um_;
  std::vector<double> rise_k_;  // nx * ny
};

}  // namespace uld3d::phys

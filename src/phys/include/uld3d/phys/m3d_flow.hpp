// The RTL-to-GDS-style flow driver (paper Fig. 4b), at block granularity:
// floorplan (macros + blockages) -> place (greedy + annealing) -> route
// estimate (Donath + HPWL) -> timing -> power/density report.
//
// Running the same input once as a 2D baseline (Si access FETs, CNFET tier
// blocked for placement) and once as M3D (CNFET access FETs, Si freed under
// the arrays, N parallel CSs) reproduces the paper's Fig. 2 comparison and
// Observation 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "uld3d/phys/congestion.hpp"
#include "uld3d/phys/floorplan.hpp"
#include "uld3d/phys/placer.hpp"
#include "uld3d/phys/power.hpp"
#include "uld3d/phys/timing.hpp"
#include "uld3d/phys/wirelength.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::phys {

/// Everything the flow needs about the design (no dependency on the
/// higher-level accelerator modules; they populate this struct).
struct FlowInput {
  tech::FoundryM3dPdk pdk = tech::FoundryM3dPdk::make_130nm();
  double rram_capacity_bits = 0.0;
  double cs_logic_area_um2 = 0.0;   ///< std-cell part of one CS
  double cs_sram_area_um2 = 0.0;    ///< buffer macro of one CS
  std::int64_t cs_logic_gates = 0;  ///< for the Donath wire model
  // Average power at the target frequency (the accel layer derives these
  // from simulation results; defaults are representative).
  double cs_dynamic_mw_each = 4.0;     ///< one busy CS
  double mem_periph_dynamic_mw = 2.0;  ///< sense amps/controllers (Si tier)
  double mem_cell_access_mw = 0.25;    ///< in-array access power (RRAM tier)
  double cnfet_selector_mw = 0.05;     ///< access-FET switching (CNFET tier)
  double target_frequency_mhz = 20.0;
};

/// Post-"route" report for one design.
struct DesignReport {
  std::string name;
  bool feasible = false;           ///< all macros and CSs placed legally
  std::vector<std::string> unplaced;  ///< blocks that found no legal spot
  std::vector<PlacedMacro> placed_macros;  ///< fixed macros, placement order
  std::vector<PlacedMacro> placed_blocks;  ///< soft blocks after refinement
  double die_width_um = 0.0;
  double die_height_um = 0.0;
  double footprint_mm2 = 0.0;
  double si_utilization = 0.0;
  std::int64_t cs_placed = 0;
  double intra_cs_wirelength_um = 0.0;   ///< Donath, all CSs
  double placement_hpwl_um = 0.0;  ///< weighted anchor HPWL of the placement
  double inter_block_wirelength_um = 0.0;  ///< placement HPWL (memory buses)
  double total_wirelength_um = 0.0;
  /// The CS-to-bank bus connections fed to the congestion estimate, one per
  /// placed soft block, in `placed_blocks` order.  Each block routes to the
  /// bank group of its *source* CS (recovered through
  /// PlacementResult::source_index, so unplaced blocks cannot shift later
  /// blocks onto the wrong bank).
  std::vector<Route> bus_routes;
  std::int64_t buffers = 0;
  std::int64_t ilv_count = 0;      ///< vertical ILVs (M3D only)
  double congestion_peak = 0.0;      ///< worst-bin routing utilization
  double congestion_overflow = 0.0;  ///< fraction of over-capacity bins
  TimingReport timing;
  double total_power_mw = 0.0;
  PowerModel power;               ///< full component list (thermal maps etc.)
  std::vector<TierPower> tier_power;
  double upper_tier_power_fraction = 0.0;
  double peak_density_mw_per_mm2 = 0.0;
};

/// Side-by-side 2D-vs-M3D outcome (the Fig. 2 summary).
struct FlowComparison {
  DesignReport design_2d;
  DesignReport design_3d;
  bool iso_footprint = false;
  /// M3D / 2D total wirelength divided by the CS-count ratio: wire spent per
  /// computing sub-system (the M3D chip holds N times the logic, so raw
  /// totals are not comparable).
  double wirelength_per_cs_ratio = 0.0;
  double peak_density_ratio = 0.0;     ///< M3D / 2D peak power density
};

class M3dFlow {
 public:
  explicit M3dFlow(PlacerOptions placer_options = {}, std::uint64_t seed = 1);

  /// Run one design.  `m3d` selects the technology variant; `cs_count` is 1
  /// for the baseline.  If `die_width/height_um` are positive the die size
  /// is fixed (used to hold the M3D design to the 2D footprint).
  [[nodiscard]] DesignReport run_design(const FlowInput& input, bool m3d,
                                        std::int64_t cs_count,
                                        double die_width_um = 0.0,
                                        double die_height_um = 0.0) const;

  /// The full Sec.-II comparison: size the die for the 2D baseline, then
  /// place `m3d_cs_count` CSs into the identical M3D footprint.
  [[nodiscard]] FlowComparison run_comparison(const FlowInput& input,
                                              std::int64_t m3d_cs_count) const;

 private:
  [[nodiscard]] DesignReport run_design_once(const FlowInput& input, bool m3d,
                                             std::int64_t cs_count,
                                             double die_width_um,
                                             double die_height_um) const;

  PlacerOptions placer_options_;
  std::uint64_t seed_;
};

}  // namespace uld3d::phys

// 2-D geometry primitives for floorplanning.  Axis-aligned, micrometres.
#pragma once

#include <algorithm>

namespace uld3d::phys {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Axis-aligned rectangle [x0, x1) x [y0, y1).
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  [[nodiscard]] double width() const { return x1 - x0; }
  [[nodiscard]] double height() const { return y1 - y0; }
  [[nodiscard]] double area() const { return width() * height(); }
  [[nodiscard]] Point center() const { return {(x0 + x1) / 2, (y0 + y1) / 2}; }
  [[nodiscard]] bool valid() const { return x1 > x0 && y1 > y0; }

  [[nodiscard]] bool overlaps(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
  [[nodiscard]] bool contains(const Rect& o) const {
    return x0 <= o.x0 && o.x1 <= x1 && y0 <= o.y0 && o.y1 <= y1;
  }
  [[nodiscard]] bool contains(const Point& p) const {
    return x0 <= p.x && p.x < x1 && y0 <= p.y && p.y < y1;
  }

  [[nodiscard]] static Rect at(double x, double y, double w, double h) {
    return {x, y, x + w, y + h};
  }
};

/// Overlap area of two rectangles (0 when disjoint).
[[nodiscard]] double overlap_area(const Rect& a, const Rect& b);

/// Manhattan distance between rectangle centers.
[[nodiscard]] double center_distance(const Rect& a, const Rect& b);

}  // namespace uld3d::phys

// Static timing estimate: logic depth at library FO4 delay plus buffered
// global-wire delay, checked against the design's target frequency (the
// paper's relaxed 20 MHz target at the 130 nm node).
#pragma once

#include <cstdint>

#include "uld3d/tech/std_cell_library.hpp"

namespace uld3d::phys {

struct TimingParams {
  int logic_depth = 24;              ///< gate stages on the critical path
  double wire_r_ohm_per_um = 0.8;    ///< unit resistance (intermediate metal)
  double wire_c_ff_per_um = 0.2;     ///< unit capacitance
  double clock_uncertainty_ns = 2.0; ///< skew + jitter margin
  double derate = 1.15;              ///< OCV-style pessimism
};

struct TimingReport {
  double logic_delay_ns = 0.0;
  double wire_delay_ns = 0.0;
  double critical_path_ns = 0.0;
  double achieved_frequency_mhz = 0.0;
  bool meets_target = false;
  double slack_ns = 0.0;
};

/// Estimate the critical path of a block with `critical_wire_um` of global
/// wire (buffered every `buffer_interval_um`) and check the target.
[[nodiscard]] TimingReport estimate_timing(const tech::StdCellLibrary& lib,
                                           const TimingParams& params,
                                           double critical_wire_um,
                                           double buffer_interval_um,
                                           double target_frequency_mhz);

}  // namespace uld3d::phys

#include "uld3d/phys/netlist.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {

std::int32_t Netlist::add_cell(std::string name, std::string type) {
  expects(!type.empty(), "cell type required");
  cells_.push_back({std::move(name), std::move(type)});
  return static_cast<std::int32_t>(cells_.size() - 1);
}

void Netlist::add_net(std::string name, std::vector<std::int32_t> cells) {
  expects(cells.size() >= 2, "a net connects at least two pins: " + name);
  for (const std::int32_t c : cells) {
    expects(c >= 0 && static_cast<std::size_t>(c) < cells_.size(),
            "net references unknown cell: " + name);
  }
  nets_.push_back({std::move(name), std::move(cells)});
}

double Netlist::area_um2(const tech::StdCellLibrary& lib) const {
  double area = 0.0;
  for (const auto& cell : cells_) area += lib.cell(cell.type).area_um2;
  return area;
}

double Netlist::leakage_nw(const tech::StdCellLibrary& lib) const {
  double leak = 0.0;
  for (const auto& cell : cells_) leak += lib.cell(cell.type).leakage_nw;
  return leak;
}

std::int64_t Netlist::gate_equivalents(const tech::StdCellLibrary& lib) const {
  std::int64_t ge = 0;
  for (const auto& cell : cells_) ge += lib.cell(cell.type).gate_equivalents;
  return ge;
}

std::map<std::string, std::int64_t> Netlist::type_histogram() const {
  std::map<std::string, std::int64_t> histogram;
  for (const auto& cell : cells_) ++histogram[cell.type];
  return histogram;
}

double Netlist::hpwl_um(const std::vector<Point>& positions) const {
  expects(positions.size() == cells_.size(),
          "one position per cell required");
  double total = 0.0;
  for (const auto& net : nets_) {
    double x0 = 1.0e300;
    double x1 = -1.0e300;
    double y0 = 1.0e300;
    double y1 = -1.0e300;
    for (const std::int32_t c : net.cells) {
      const Point& p = positions[static_cast<std::size_t>(c)];
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
    total += (x1 - x0) + (y1 - y0);
  }
  return total;
}

std::vector<Point> place_row_major(const Netlist& netlist, const Rect& region,
                                   const tech::StdCellLibrary& lib) {
  expects(region.valid(), "placement region must be valid");
  expects(netlist.cell_count() > 0, "netlist is empty");
  // Average cell footprint sets a square pseudo-pitch.
  const double pitch = std::sqrt(netlist.area_um2(lib) /
                                 static_cast<double>(netlist.cell_count()));
  const auto columns = static_cast<std::int64_t>(
      std::max(1.0, std::floor(region.width() / pitch)));
  std::vector<Point> positions;
  positions.reserve(netlist.cell_count());
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto col = static_cast<std::int64_t>(i) % columns;
    const auto row = static_cast<std::int64_t>(i) / columns;
    positions.push_back({region.x0 + (static_cast<double>(col) + 0.5) * pitch,
                         region.y0 + (static_cast<double>(row) + 0.5) * pitch});
  }
  return positions;
}

}  // namespace uld3d::phys

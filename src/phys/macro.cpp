#include "uld3d/phys/macro.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {

const char* to_string(MacroKind kind) {
  switch (kind) {
    case MacroKind::kRramArray: return "RramArray";
    case MacroKind::kRramPeriph: return "RramPeriph";
    case MacroKind::kSramBuffer: return "SramBuffer";
    case MacroKind::kIoRing: return "IoRing";
  }
  return "?";
}

bool Macro::blocks(tech::TierKind tier) const {
  switch (tier) {
    case tech::TierKind::kSiCmosFeol: return blocks_si;
    case tech::TierKind::kRram: return blocks_rram;
    case tech::TierKind::kCnfetFeol: return blocks_cnfet;
    case tech::TierKind::kBeolMetal: return false;  // routing stays legal
  }
  return false;
}

namespace {

Macro sized(std::string name, MacroKind kind, double area_um2, double aspect) {
  expects(area_um2 > 0.0, "macro area must be positive: " + name);
  expects(aspect > 0.0, "macro aspect must be positive: " + name);
  Macro m;
  m.name = std::move(name);
  m.kind = kind;
  m.width_um = std::sqrt(area_um2 * aspect);
  m.height_um = std::sqrt(area_um2 / aspect);
  return m;
}

}  // namespace

Macro Macro::rram_array_2d(std::string name, double area_um2, double aspect) {
  Macro m = sized(std::move(name), MacroKind::kRramArray, area_um2, aspect);
  m.blocks_si = true;   // Si access FETs underneath (Fig. 3e)
  m.blocks_rram = true;
  m.blocks_cnfet = false;
  return m;
}

Macro Macro::rram_array_m3d(std::string name, double area_um2, double aspect) {
  Macro m = sized(std::move(name), MacroKind::kRramArray, area_um2, aspect);
  m.blocks_si = false;  // access FETs moved to the CNFET tier
  m.blocks_rram = true;
  m.blocks_cnfet = true;
  return m;
}

Macro Macro::rram_periph(std::string name, double area_um2, double aspect) {
  Macro m = sized(std::move(name), MacroKind::kRramPeriph, area_um2, aspect);
  m.blocks_si = true;
  return m;
}

Macro Macro::sram_buffer(std::string name, double area_um2) {
  Macro m = sized(std::move(name), MacroKind::kSramBuffer, area_um2, 2.0);
  m.blocks_si = true;
  return m;
}

}  // namespace uld3d::phys

#include "uld3d/phys/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::phys {

CongestionMap::CongestionMap(double die_width_um, double die_height_um,
                             const std::vector<Route>& routes,
                             const CongestionParams& params)
    : nx_(0), ny_(0), bin_um_(params.bin_um) {
  expects(die_width_um > 0.0 && die_height_um > 0.0,
          "die dimensions must be positive");
  expects(params.bin_um > 0.0, "bin size must be positive");
  expects(params.wire_pitch_um > 0.0, "wire pitch must be positive");
  expects(params.routing_layers >= 1, "need at least one routing layer");
  nx_ = ceil_to_int(die_width_um / bin_um_);
  ny_ = ceil_to_int(die_height_um / bin_um_);
  demand_.assign(static_cast<std::size_t>(nx_ * ny_), 0.0);
  // Tracks crossing one bin: bin width over pitch, per layer.
  supply_per_bin_ = bin_um_ / params.wire_pitch_um *
                    static_cast<double>(params.routing_layers);

  for (const auto& route : routes) {
    expects(route.tracks > 0.0, "route width must be positive");
    // L-route: horizontal leg at the source's y, then vertical leg.
    const Point corner{route.to.x, route.from.y};
    add_segment(route.from, corner, route.tracks);
    add_segment(corner, route.to, route.tracks);
  }
}

void CongestionMap::add_segment(Point a, Point b, double tracks) {
  const auto bin_of = [&](double v, std::int64_t n) {
    return std::clamp<std::int64_t>(
        static_cast<std::int64_t>(v / bin_um_), 0, n - 1);
  };
  const std::int64_t ax = bin_of(a.x, nx_);
  const std::int64_t ay = bin_of(a.y, ny_);
  const std::int64_t bx = bin_of(b.x, nx_);
  const std::int64_t by = bin_of(b.y, ny_);
  if (ay == by) {
    for (std::int64_t x = std::min(ax, bx); x <= std::max(ax, bx); ++x) {
      demand_[static_cast<std::size_t>(ay * nx_ + x)] += tracks;
    }
  } else {
    for (std::int64_t y = std::min(ay, by); y <= std::max(ay, by); ++y) {
      demand_[static_cast<std::size_t>(y * nx_ + ax)] += tracks;
    }
  }
}

double CongestionMap::peak_utilization() const {
  double peak = 0.0;
  for (const double d : demand_) peak = std::max(peak, d);
  return peak / supply_per_bin_;
}

double CongestionMap::mean_utilization() const {
  if (demand_.empty()) return 0.0;
  double sum = 0.0;
  for (const double d : demand_) sum += d;
  return sum / static_cast<double>(demand_.size()) / supply_per_bin_;
}

double CongestionMap::overflow_fraction() const {
  if (demand_.empty()) return 0.0;
  std::int64_t over = 0;
  for (const double d : demand_) {
    if (d > supply_per_bin_) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(demand_.size());
}

std::string CongestionMap::to_ascii() const {
  static constexpr char kRamp[] = " .:-=+*#@";
  std::ostringstream os;
  for (std::int64_t y = ny_ - 1; y >= 0; --y) {
    for (std::int64_t x = 0; x < nx_; ++x) {
      const double u =
          demand_[static_cast<std::size_t>(y * nx_ + x)] / supply_per_bin_;
      const int level = std::min(8, static_cast<int>(u * 8.999));
      os << kRamp[level];
    }
    os << '\n';
  }
  os << "peak " << peak_utilization() * 100.0 << "% of tracks, overflow "
     << overflow_fraction() * 100.0 << "% of bins\n";
  return os.str();
}

}  // namespace uld3d::phys

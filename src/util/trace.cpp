#include "uld3d/util/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/log.hpp"
#include "uld3d/util/metrics.hpp"  // json_escape
#include "uld3d/util/resource.hpp"
#include "uld3d/util/telemetry.hpp"

namespace uld3d {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
}  // namespace trace_detail

namespace {

std::string format_us(double us) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << us;
  return os.str();
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_enabled(bool enabled) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (enabled && events_.empty()) {
      epoch_ = std::chrono::steady_clock::now();
    }
  }
  trace_detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::configure_from_env() {
  const char* path = std::getenv("ULD3D_TRACE");
  if (path == nullptr || *path == '\0') return;
  env_path_ = path;
  set_enabled(true);
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  expects(capacity >= 1, "trace capacity must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Surface the drop in the metrics export too — a truncated trace that
    // only said so in a private counter was effectively silent.
    MetricsRegistry::instance().counter("trace.dropped_events").add();
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> events = this->events();
  const std::uint64_t dropped = this->dropped();
  const RunContext run = current_run_context();
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
     << "\"run_id\": \"" << json_escape(run.run_id) << "\", \"shard\": \""
     << run.shard_label() << "\", \"dropped_events\": " << dropped
     << "},\n  \"traceEvents\": [";
  bool first = true;
  // Metadata events first: a process name plus one thread_name per flight-
  // recorder slot that has one, so Perfetto shows "uld3d-wk3" instead of a
  // raw tid.  Trace tids ARE flight-recorder thread ids (see TraceSpan).
  os << "\n    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
     << "\"args\": {\"name\": \"uld3d\"}}";
  first = false;
  for (std::uint32_t tid = 0; tid < flightrec::thread_count(); ++tid) {
    const char* tname = flightrec::thread_name(tid);
    if (*tname == '\0') continue;
    os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << tid << ", \"args\": {\"name\": \""
       << json_escape(tname) << "\"}}";
  }
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
       << json_escape(e.category) << "\", \"ph\": \"X\", \"ts\": "
       << format_us(e.ts_us) << ", \"dur\": " << format_us(e.dur_us)
       << ", \"pid\": 1, \"tid\": " << e.tid << ", \"args\": {\"cpu_us\": "
       << format_us(e.cpu_us) << ", \"alloc_bytes\": " << e.alloc_bytes
       << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  expects(!path.empty(), "trace output path required");
  const std::uint64_t dropped = this->dropped();
  if (dropped > 0) {
    log_warning("trace buffer overflowed: " + std::to_string(dropped) +
                " event(s) dropped — the written trace is truncated "
                "(raise TraceRecorder::set_capacity)");
  }
  return write_file_atomic(path, to_chrome_json());
}

Table TraceRecorder::summary_table() const {
  const std::vector<TraceEvent> events = this->events();

  struct Agg {
    std::uint64_t calls = 0;
    double total_us = 0.0;
    double max_us = 0.0;
    double cpu_us = 0.0;
  };
  std::map<std::string, Agg> by_name;
  double window_begin = std::numeric_limits<double>::infinity();
  double window_end = -std::numeric_limits<double>::infinity();
  for (const auto& e : events) {
    Agg& a = by_name[e.name];
    a.calls += 1;
    a.total_us += e.dur_us;
    a.max_us = std::max(a.max_us, e.dur_us);
    a.cpu_us += e.cpu_us;
    window_begin = std::min(window_begin, e.ts_us);
    window_end = std::max(window_end, e.ts_us + e.dur_us);
  }
  const double window_us = events.empty() ? 0.0 : window_end - window_begin;

  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  Table table(
      {"Span", "Calls", "Total ms", "Mean ms", "Max ms", "CPU ms", "% wall"});
  for (const auto& [name, a] : rows) {
    const double total_ms = a.total_us / 1000.0;
    const double mean_ms = total_ms / static_cast<double>(a.calls);
    const double share =
        window_us > 0.0 ? 100.0 * a.total_us / window_us : 0.0;
    table.add_row({name, std::to_string(a.calls), format_double(total_ms, 3),
                   format_double(mean_ms, 3), format_double(a.max_us / 1000.0, 3),
                   format_double(a.cpu_us / 1000.0, 3), format_double(share, 1)});
  }
  return table;
}

void TraceSpan::begin(std::string_view name, std::string_view category) {
  name_.assign(name);
  category_.assign(category);
  start_us_ = TraceRecorder::instance().now_us();
  start_cpu_us_ = thread_cpu_time_us();
  start_alloc_ = thread_alloc_bytes();
  active_ = true;
}

void TraceSpan::finish() {
  TraceRecorder& recorder = TraceRecorder::instance();
  // A span that was open when tracing stopped still records: its timestamps
  // are valid and dropping it would truncate the outermost scopes.
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.ts_us = start_us_;
  event.dur_us = recorder.now_us() - start_us_;
  // Trace tids are flight-recorder thread ids, so the Chrome trace, the
  // thread_name metadata, and the postmortem dump all agree on identity.
  event.tid = flightrec::thread_id();
  event.cpu_us = thread_cpu_time_us() - start_cpu_us_;
  event.alloc_bytes = thread_alloc_bytes() - start_alloc_;
  recorder.record(std::move(event));
}

}  // namespace uld3d

#include "uld3d/util/export.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/log.hpp"

namespace uld3d {

std::string csv_export_dir() {
  const char* dir = std::getenv("ULD3D_CSV_DIR");
  return dir == nullptr ? std::string{} : std::string{dir};
}

std::string emit_table(std::ostream& os, const Table& table,
                       const std::string& title, const std::string& slug) {
  expects(!slug.empty(), "export slug must be non-empty");
  table.print(os, title);
  const std::string dir = csv_export_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + slug + ".csv";
  std::ofstream file(path);
  if (!file) {
    log_warning("could not open CSV export file: " + path);
    return {};
  }
  file << table.to_csv();
  return path;
}

}  // namespace uld3d

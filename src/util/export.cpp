#include "uld3d/util/export.hpp"

#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/log.hpp"

namespace uld3d {

std::string csv_export_dir() {
  const char* dir = std::getenv("ULD3D_CSV_DIR");
  return dir == nullptr ? std::string{} : std::string{dir};
}

std::string emit_table(std::ostream& os, const Table& table,
                       const std::string& title, const std::string& slug) {
  expects(!slug.empty(), "export slug must be non-empty");
  table.print(os, title);
  const std::string dir = csv_export_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + slug + ".csv";
  if (!write_file_atomic(path, table.to_csv())) return {};
  return path;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace uld3d

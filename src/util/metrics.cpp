#include "uld3d/util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/log.hpp"
#include "uld3d/util/telemetry.hpp"

namespace uld3d {

namespace metrics_detail {
std::atomic<bool> g_enabled{false};
}  // namespace metrics_detail

namespace {

/// Format a double for JSON/CSV: plain integers stay integral, everything
/// else gets enough digits to round-trip the interesting range.
std::string format_number(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

/// Relaxed add for pre-C++20-fetch_add-on-double toolchains.
void atomic_add(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  expects(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
          "histogram bucket bounds must be sorted ascending");
  expects(std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) ==
              upper_bounds_.end(),
          "histogram bucket bounds must be distinct");
}

void Histogram::observe(double value) {
  if (!metrics_enabled()) return;
  std::size_t bucket = upper_bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    counts.push_back(b.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  const std::uint64_t n = count();
  if (n == 0 || upper_bounds_.empty()) return 0.0;
  const double rank = q * static_cast<double>(n);
  const auto counts = bucket_counts();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket < rank && i + 1 < counts.size()) {
      cumulative += in_bucket;
      continue;
    }
    // Overflow bucket has no upper edge — clamp to the last finite bound
    // (the same convention Prometheus' histogram_quantile uses).
    if (i >= upper_bounds_.size()) return upper_bounds_.back();
    const double upper = upper_bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : upper_bounds_[i - 1];
    if (in_bucket <= 0.0) return upper;
    return lower + (upper - lower) * (rank - cumulative) / in_bucket;
  }
  return upper_bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  expects(!name.empty(), "metric name required");
  std::lock_guard<std::mutex> lock(mutex_);
  expects(gauges_.count(name) == 0 && histograms_.count(name) == 0,
          "metric already registered with a different kind: " + name);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  expects(!name.empty(), "metric name required");
  std::lock_guard<std::mutex> lock(mutex_);
  expects(counters_.count(name) == 0 && histograms_.count(name) == 0,
          "metric already registered with a different kind: " + name);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  expects(!name.empty(), "metric name required");
  if (upper_bounds.empty()) {
    // Microsecond-scale durations: 1us .. 10s, decades.
    upper_bounds = {1.0, 10.0, 100.0, 1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  expects(counters_.count(name) == 0 && gauges_.count(name) == 0,
          "metric already registered with a different kind: " + name);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Construct before inserting: a throwing constructor (bad bounds) must
    // not leave a null slot behind for snapshot()/reset_values() to trip on.
    auto histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    it = histograms_.emplace(name, std::move(histogram)).first;
  }
  return *it->second;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.value = h->mean();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    const auto counts = h->bucket_counts();
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      s.buckets.emplace_back(bounds[i], counts[i]);
    }
    s.buckets.emplace_back(std::numeric_limits<double>::infinity(),
                           counts.back());
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

Table MetricsRegistry::to_table() const {
  Table table({"Metric", "Kind", "Value", "Count", "Mean", "p50", "p95",
               "p99"});
  for (const auto& s : snapshot()) {
    if (s.kind == MetricKind::kHistogram) {
      table.add_row({s.name, metric_kind_name(s.kind), format_number(s.sum),
                     std::to_string(s.count), format_number(s.value),
                     format_number(s.p50), format_number(s.p95),
                     format_number(s.p99)});
    } else {
      table.add_row({s.name, metric_kind_name(s.kind), format_number(s.value),
                     "-", "-", "-", "-", "-"});
    }
  }
  return table;
}

std::string MetricsRegistry::to_json() const {
  // Run/shard labels join this document with the matching telemetry events
  // and trace file (empty strings when no run context was set).
  const RunContext run = current_run_context();
  std::ostringstream os;
  os << "{\n  \"run_id\": \"" << json_escape(run.run_id)
     << "\",\n  \"shard\": \"" << run.shard_label()
     << "\",\n  \"metrics\": [";
  bool first = true;
  for (const auto& s : snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\": \"" << json_escape(s.name) << "\", \"kind\": \""
       << metric_kind_name(s.kind) << "\"";
    if (s.kind == MetricKind::kHistogram) {
      os << ", \"count\": " << s.count << ", \"sum\": " << format_number(s.sum)
         << ", \"p50\": " << format_number(s.p50)
         << ", \"p95\": " << format_number(s.p95)
         << ", \"p99\": " << format_number(s.p99) << ", \"buckets\": [";
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        if (i > 0) os << ", ";
        os << "{\"le\": ";
        if (std::isinf(s.buckets[i].first)) {
          os << "\"+Inf\"";
        } else {
          os << format_number(s.buckets[i].first);
        }
        os << ", \"count\": " << s.buckets[i].second << "}";
      }
      os << "]";
    } else {
      os << ", \"value\": " << format_number(s.value);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  Table table({"name", "kind", "value", "count", "sum", "p50", "p95", "p99"});
  for (const auto& s : snapshot()) {
    table.add_row({s.name, metric_kind_name(s.kind), format_number(s.value),
                   std::to_string(s.count), format_number(s.sum),
                   format_number(s.p50), format_number(s.p95),
                   format_number(s.p99)});
  }
  return table.to_csv();
}

bool MetricsRegistry::write_file(const std::string& path) const {
  expects(!path.empty(), "metrics output path required");
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  return write_file_atomic(path, json ? to_json() : to_csv());
}

}  // namespace uld3d

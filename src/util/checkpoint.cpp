#include "uld3d/util/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/log.hpp"

namespace uld3d {

namespace {

// Only async-signal-safe operations are allowed in a handler; a volatile
// sig_atomic_t store is the canonical one.
volatile std::sig_atomic_t g_interrupt_requested = 0;
volatile std::sig_atomic_t g_interrupt_signal = 0;

extern "C" void interrupt_handler(int signal_number) {
  g_interrupt_requested = 1;
  g_interrupt_signal = signal_number;
}

/// Flush OS buffers to stable storage so the subsequent rename publishes a
/// fully-persisted file (rename alone is enough for kill-safety; fsync adds
/// power-loss safety).  Best-effort: a filesystem without fsync support
/// must not fail the write.
void best_effort_fsync(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& content) {
  expects(!path.empty(), "atomic write needs a destination path");
  const std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream file(temp_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      log_warning("could not open temp file for atomic write: " + temp_path);
      return false;
    }
    file << content;
    file.flush();
    if (!file.good()) {
      file.close();
      std::remove(temp_path.c_str());
      log_warning("short write to temp file (disk full?): " + temp_path);
      return false;
    }
  }
  best_effort_fsync(temp_path);
  try {
    // A crash "here" — after the temp is complete but before the rename —
    // is the interesting window: the destination must stay untouched.
    fault_site("util.export.atomic_write");
  } catch (...) {
    std::remove(temp_path.c_str());
    throw;
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    log_warning("could not rename temp file into place: " + temp_path +
                " -> " + path);
    return false;
  }
  return true;
}

void install_interrupt_handlers() {
  std::signal(SIGINT, interrupt_handler);
  std::signal(SIGTERM, interrupt_handler);
}

bool interrupt_requested() { return g_interrupt_requested != 0; }

int interrupt_signal() { return static_cast<int>(g_interrupt_signal); }

void set_interrupt_requested(bool requested) {
  g_interrupt_requested = requested ? 1 : 0;
  if (!requested) g_interrupt_signal = 0;
}

}  // namespace uld3d

#include "uld3d/util/log.hpp"

#include <atomic>
#include <iostream>

namespace uld3d {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << "[uld3d " << level_name(level) << "] " << message << '\n';
}

}  // namespace uld3d

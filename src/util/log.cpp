#include "uld3d/util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

namespace uld3d {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<bool> g_timestamps{false};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::string wall_clock_hms() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
#if defined(_WIN32)
  localtime_s(&tm, &seconds);
#else
  localtime_r(&seconds, &tm);
#endif
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buffer;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_timestamps(bool enabled) { g_timestamps.store(enabled); }

bool log_timestamps() { return g_timestamps.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Compose off-lock, write as one guarded operation: concurrent sweep
  // threads must never interleave halves of two messages.
  std::string line = "[uld3d ";
  line += level_name(level);
  if (g_timestamps.load()) {
    line += ' ';
    line += wall_clock_hms();
  }
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::cerr << line;
}

}  // namespace uld3d

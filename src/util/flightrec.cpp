#include "uld3d/util/flightrec.hpp"

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>

#include "uld3d/util/export.hpp"
#include "uld3d/util/log.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/provenance.hpp"
#include "uld3d/util/telemetry.hpp"

// Signal-safety rules for this file (DESIGN.md §15): everything reachable
// from fatal_signal_handler()/terminate_handler() — i.e. write_postmortem()
// and below — may use only async-signal-safe primitives: write(2)/open(2)/
// close(2), relaxed loads of lock-free atomics, and byte copies into
// fixed buffers pre-allocated at install time.  No malloc, no std::string,
// no snprintf (locale-dependent), no mutexes, no function-local statics
// with dynamic initialization.  Everything that needs formatting machinery
// (the run/provenance header, the output path, metric handles) is prepared
// eagerly in install_postmortem() while the process is still healthy.

namespace uld3d::flightrec {
namespace {

enum : std::uint8_t { kTypeNone = 0, kTypeSpanBegin, kTypeSpanEnd, kTypeEvent };

// One record is 56 bytes: a global sequence number (cheaper than a clock
// read and still totally ordered across threads), an argument, a type tag,
// and an inline truncated name.
struct Record {
  std::uint64_t seq = 0;
  std::uint64_t arg = 0;
  std::uint8_t type = kTypeNone;
  char name[kNameBytes - 1] = {};
};

// Per-thread state.  `head` counts records ever written by the owner (the
// ring holds the last kRingCapacity of them); `depth` is the live span
// nesting.  Both are written only by the owning thread with relaxed
// ordering — the dumper reads them racily from the crashing thread, which
// is exactly the fidelity a flight recorder promises (the last few records
// of *other* threads may be mid-update; each field is still tear-free).
struct ThreadRing {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint32_t> depth{0};
  char name[16] = {};
  char stack[kMaxSpanDepth][kNameBytes] = {};
  Record records[kRingCapacity] = {};
};

// Static pool: zero-initialized BSS (~1 MiB), so ring access never
// allocates and is valid from any context, including signal handlers.
ThreadRing g_rings[kMaxThreads];
std::atomic<std::uint32_t> g_thread_slots{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_sequence{0};

void copy_name(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::uint32_t acquire_thread_slot() {
  const std::uint32_t id =
      g_thread_slots.fetch_add(1, std::memory_order_relaxed);
  return id < kMaxThreads ? id : kOverflowThreadId;
}

// ---------------------------------------------------------------------------
// ULD3D_CRASH_AT test hook: `ULD3D_CRASH_AT=<name>[:N]` raises SIGSEGV on
// the Nth record whose name matches — the deterministic crash injector the
// fatal-path tests use.  raise() (not a wild store) keeps the injection
// clean under ASan.  Three-state lazy env parse so the armed/unarmed check
// on the hot path is a single relaxed load.
std::atomic<int> g_crash_state{0};  // 0 = env unread, 1 = unarmed, 2 = armed
char g_crash_name[kNameBytes] = {};
std::uint64_t g_crash_target = 1;
std::atomic<std::uint64_t> g_crash_hits{0};

int crash_hook_init() {
  int state = 1;
  if (const char* spec = std::getenv("ULD3D_CRASH_AT"); spec && *spec) {
    std::string_view s(spec);
    if (const auto colon = s.rfind(':'); colon != std::string_view::npos) {
      const std::uint64_t n = std::strtoull(spec + colon + 1, nullptr, 10);
      g_crash_target = n > 0 ? n : 1;
      s = s.substr(0, colon);
    }
    copy_name(g_crash_name, sizeof g_crash_name, s);
    state = 2;
  }
  g_crash_state.store(state, std::memory_order_relaxed);
  return state;
}

inline void crash_hook(std::string_view name) {
  int state = g_crash_state.load(std::memory_order_relaxed);
  if (state == 0) state = crash_hook_init();
  if (state != 2 || name != std::string_view(g_crash_name)) return;
  if (g_crash_hits.fetch_add(1, std::memory_order_relaxed) + 1 ==
      g_crash_target) {
    std::raise(SIGSEGV);
  }
}

// ---------------------------------------------------------------------------
// Recording (the single-digit-ns path)

// The one slot claim per thread lives in thread_id(); everything else must
// route through it so the id reported to trace/postmortem consumers is the
// ring actually written to.
inline ThreadRing* this_thread_ring() {
  const std::uint32_t id = thread_id();
  if (id == kOverflowThreadId) return nullptr;
  return &g_rings[id];
}

inline void push(ThreadRing& ring, std::uint8_t type, std::string_view name,
                 std::uint64_t arg) {
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Record& slot = ring.records[head % kRingCapacity];
  slot.seq = g_sequence.fetch_add(1, std::memory_order_relaxed);
  slot.arg = arg;
  slot.type = type;
  copy_name(slot.name, sizeof slot.name, name);
  ring.head.store(head + 1, std::memory_order_relaxed);
}

}  // namespace

std::uint32_t thread_id() {
  thread_local const std::uint32_t id = acquire_thread_slot();
  return id;
}

void span_begin(std::string_view name) {
  ThreadRing* ring = this_thread_ring();
  if (ring == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t depth = ring->depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) {
    copy_name(ring->stack[depth], kNameBytes, name);
  }
  ring->depth.store(depth + 1, std::memory_order_relaxed);
  push(*ring, kTypeSpanBegin, name, depth);
  crash_hook(name);
}

void span_end() {
  ThreadRing* ring = this_thread_ring();
  if (ring == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t depth = ring->depth.load(std::memory_order_relaxed);
  const char* name = "";
  if (depth > 0) {
    ring->depth.store(depth - 1, std::memory_order_relaxed);
    if (depth - 1 < kMaxSpanDepth) name = ring->stack[depth - 1];
  }
  push(*ring, kTypeSpanEnd, name, depth > 0 ? depth - 1 : 0);
}

void event(std::string_view name, std::uint64_t arg) {
  ThreadRing* ring = this_thread_ring();
  if (ring == nullptr) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  push(*ring, kTypeEvent, name, arg);
  crash_hook(name);
}

void set_thread_name(const char* name) {
  ThreadRing* ring = this_thread_ring();
  if (ring != nullptr) {
    copy_name(ring->name, sizeof ring->name, name);
  }
#if defined(__linux__)
  char os_name[16];  // pthread_setname_np caps names at 15 chars + NUL
  copy_name(os_name, sizeof os_name, name);
  pthread_setname_np(pthread_self(), os_name);
#endif
}

const char* thread_name(std::uint32_t id) {
  if (id >= kMaxThreads) return "";
  return g_rings[id].name;
}

std::size_t thread_count() {
  const std::uint32_t slots = g_thread_slots.load(std::memory_order_relaxed);
  return slots < kMaxThreads ? slots : kMaxThreads;
}

std::uint64_t records_dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Postmortem dumper

namespace {

constexpr std::size_t kPathBytes = 512;
constexpr std::size_t kHeaderBytes = 8192;
constexpr std::size_t kMaxMetricHandles = 16;

std::atomic<bool> g_installed{false};
std::atomic<int> g_dump_claimed{0};
char g_path[kPathBytes] = {};
// Pre-formatted JSON prefix: `{"schema": ..., "run": ..., "provenance": {...}`
// — everything that needs std::string formatting, rendered at install time.
char g_header[kHeaderBytes] = {};

// Metric handles captured at install time.  MetricsRegistry handles are
// stable for the process lifetime and Counter::value()/Gauge is a relaxed
// atomic load, so reading them in a signal handler is safe — unlike
// MetricsRegistry::snapshot(), which takes a mutex and allocates.
struct MetricHandle {
  const char* name = nullptr;  // string literal
  const Counter* counter = nullptr;
};
MetricHandle g_metric_handles[kMaxMetricHandles];
std::size_t g_metric_handle_count = 0;
EventSink* g_event_sink = nullptr;

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
constexpr std::size_t kNumFatalSignals =
    sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);
struct sigaction g_old_actions[kNumFatalSignals];
bool g_handlers_installed = false;

const char* signal_label(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

// Buffered write(2) wrapper — the only output machinery the dump path uses.
class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  ~FdWriter() { flush(); }

  void str(const char* s) { bytes(s, std::strlen(s)); }

  void u64(std::uint64_t v) {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  // JSON string payload: names here come from code literals, so escaping
  // just neutralizes anything that would break the document.
  void json_str(const char* s) {
    put('"');
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      put(c == '"' || c == '\\' || c < 0x20 ? '_' : *s);
    }
    put('"');
  }

  void flush() {
    const char* p = buf_;
    std::size_t left = used_;
    while (left > 0) {
      const ssize_t wrote = ::write(fd_, p, left);
      if (wrote <= 0) {
        if (wrote < 0 && errno == EINTR) continue;
        break;
      }
      p += wrote;
      left -= static_cast<std::size_t>(wrote);
    }
    used_ = 0;
  }

 private:
  void put(char c) {
    if (used_ == sizeof buf_) flush();
    buf_[used_++] = c;
  }
  void bytes(const char* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) put(p[i]);
  }

  int fd_;
  char buf_[4096];
  std::size_t used_ = 0;
};

const char* record_type_label(std::uint8_t type) {
  switch (type) {
    case kTypeSpanBegin: return "span_begin";
    case kTypeSpanEnd: return "span_end";
    case kTypeEvent: return "event";
    default: return "none";
  }
}

void dump_thread(FdWriter& w, std::uint32_t id, bool dumping_thread) {
  const ThreadRing& ring = g_rings[id];
  w.str("{\"id\": ");
  w.u64(id);
  w.str(", \"name\": ");
  w.json_str(ring.name);
  w.str(", \"dumping\": ");
  w.str(dumping_thread ? "true" : "false");
  const std::uint32_t depth = ring.depth.load(std::memory_order_relaxed);
  w.str(", \"span_depth\": ");
  w.u64(depth);
  w.str(", \"active_spans\": [");
  const std::uint32_t shown =
      depth < kMaxSpanDepth ? depth : static_cast<std::uint32_t>(kMaxSpanDepth);
  for (std::uint32_t i = 0; i < shown; ++i) {
    if (i > 0) w.str(", ");
    w.json_str(ring.stack[i]);
  }
  w.str("], \"records\": [");
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  const std::uint64_t start = head > kRingCapacity ? head - kRingCapacity : 0;
  for (std::uint64_t s = start; s < head; ++s) {
    const Record& r = ring.records[s % kRingCapacity];
    if (s > start) w.str(", ");
    w.str("{\"seq\": ");
    w.u64(r.seq);
    w.str(", \"type\": \"");
    w.str(record_type_label(r.type));
    w.str("\", \"name\": ");
    w.json_str(r.name);
    w.str(", \"arg\": ");
    w.u64(r.arg);
    w.str("}");
  }
  w.str("]}");
}

void notice(const char* reason) {
  // Best-effort stderr breadcrumb so a human tailing the log finds the dump.
  const char* parts[] = {"uld3d: fatal (", reason, "), postmortem: ", g_path,
                         "\n"};
  for (const char* part : parts) {
    const std::size_t len = std::strlen(part);
    if (::write(STDERR_FILENO, part, len) < 0) break;
  }
}

extern "C" void fatal_signal_handler(int sig) {
  if (g_dump_claimed.exchange(1) == 0) {
    write_postmortem(signal_label(sig), sig);
    notice(signal_label(sig));
  }
  // Restore the pre-existing disposition and re-raise so the default action
  // (core dump / kill status) still happens and wait() observers see the
  // real signal.  SIGINT/SIGTERM stay with the checkpoint latch in
  // util/checkpoint.cpp — the two handler sets are disjoint by design.
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    if (kFatalSignals[i] == sig) {
      sigaction(sig, &g_old_actions[i], nullptr);
      break;
    }
  }
  ::raise(sig);
}

[[noreturn]] void terminate_handler() {
  if (g_dump_claimed.exchange(1) == 0) {
    write_postmortem("terminate", 0);
    notice("terminate");
  }
  // abort() delivers SIGABRT; our handler's dump guard is already claimed,
  // so it just restores the default disposition and dies with it.
  std::abort();
}

std::string format_header(const std::string& path) {
  const RunContext ctx = current_run_context();
  const Provenance prov = capture_provenance();
  std::ostringstream os;
  os << "{\"schema\": 1, \"kind\": \"postmortem\", \"run\": \""
     << json_escape(ctx.run_id) << "\", \"shard\": \""
     << json_escape(ctx.shard_label()) << "\", \"path\": \""
     << json_escape(path) << "\", \"provenance\": {\"git_sha\": \""
     << json_escape(prov.git_sha) << "\", \"compiler\": \""
     << json_escape(prov.compiler) << "\", \"build_type\": \""
     << json_escape(prov.build_type) << "\", \"hostname\": \""
     << json_escape(prov.hostname) << "\", \"timestamp_utc\": \""
     << json_escape(prov.timestamp_utc) << "\", \"jobs\": " << prov.jobs
     << ", \"hardware_concurrency\": " << prov.hardware_concurrency << "}";
  return os.str();
}

}  // namespace

bool install_postmortem(const std::string& path) {
  if (path.size() + 1 > kPathBytes) {
    log_warning("flightrec: postmortem path too long, dumper not armed");
    return false;
  }
  const std::string header = format_header(path);
  if (header.size() + 1 > kHeaderBytes) {
    log_warning("flightrec: postmortem header too long, dumper not armed");
    return false;
  }
  std::memcpy(g_path, path.c_str(), path.size() + 1);
  std::memcpy(g_header, header.c_str(), header.size() + 1);

  // Curated snapshot handles: the counters a postmortem reader actually
  // wants next to the ring ("how far did the sweep get, was the cache warm,
  // did fault injection fire").  find-or-create keeps this list decoupled
  // from registration order; untouched counters just read 0.
  MetricsRegistry& reg = MetricsRegistry::instance();
  static constexpr const char* kCurated[] = {
      "dse.sweep.points",       "dse.sweep.ok",
      "dse.sweep.failed",       "dse.sweep.skipped",
      "dse.sweep.resumed_points", "mapper.mapcache.hits",
      "mapper.mapcache.misses", "phys.flow.designs",
      "trace.dropped_events",   "fault.injected_trips",
  };
  g_metric_handle_count = 0;
  for (const char* name : kCurated) {
    g_metric_handles[g_metric_handle_count++] = {name, &reg.counter(name)};
  }
  g_event_sink = &EventSink::instance();

  if (!g_handlers_installed) {
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = fatal_signal_handler;
    sigemptyset(&action.sa_mask);
    for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
      sigaction(kFatalSignals[i], &action, &g_old_actions[i]);
    }
    std::set_terminate(terminate_handler);
    g_handlers_installed = true;
  }
  g_installed.store(true, std::memory_order_release);
  return true;
}

bool postmortem_installed() {
  return g_installed.load(std::memory_order_acquire);
}

const char* postmortem_path() {
  return postmortem_installed() ? g_path : "";
}

bool write_postmortem(const char* reason, int signal_number) {
  if (!postmortem_installed()) return false;
  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  {
    FdWriter w(fd);
    w.str(g_header);
    w.str(", \"reason\": ");
    w.json_str(reason);
    w.str(", \"signal\": ");
    w.u64(static_cast<std::uint64_t>(signal_number));
    const std::uint32_t dumper = thread_id();
    w.str(", \"threads\": [");
    const std::size_t threads = thread_count();
    for (std::uint32_t id = 0; id < threads; ++id) {
      if (id > 0) w.str(", ");
      dump_thread(w, id, id == dumper);
    }
    w.str("], \"records_dropped\": ");
    w.u64(records_dropped());
    w.str(", \"metrics\": {");
    for (std::size_t i = 0; i < g_metric_handle_count; ++i) {
      if (i > 0) w.str(", ");
      w.json_str(g_metric_handles[i].name);
      w.str(": ");
      w.u64(g_metric_handles[i].counter->value());
    }
    w.str("}, \"events_emitted\": ");
    w.u64(g_event_sink != nullptr ? g_event_sink->emitted() : 0);
    w.str("}\n");
    w.flush();
  }
  ::close(fd);
  return true;
}

}  // namespace uld3d::flightrec

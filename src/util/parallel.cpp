#include "uld3d/util/parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string>

#include "uld3d/util/check.hpp"
#include "uld3d/util/flightrec.hpp"
#include "uld3d/util/log.hpp"

namespace uld3d::parallel {

namespace {

std::atomic<int> g_jobs{0};  // 0 = unset, fall through to default_jobs()

int parse_env_jobs() {
  const char* env = std::getenv("ULD3D_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > kMaxJobs) {
    log_warning(std::string("ignoring invalid ULD3D_JOBS value: ") + env);
    return 1;
  }
  return static_cast<int>(v);
}

}  // namespace

int hardware_concurrency() {
  static const int cores = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return cores;
}

int default_jobs() {
  static const int env_jobs = parse_env_jobs();
  return env_jobs;
}

int jobs() {
  const int j = g_jobs.load(std::memory_order_relaxed);
  return j > 0 ? j : default_jobs();
}

void set_jobs(int n) {
  expects(n >= 0 && n <= kMaxJobs,
          "jobs must be in [0, " + std::to_string(kMaxJobs) +
              "] (0 restores the default)");
  g_jobs.store(n, std::memory_order_relaxed);
}

int resolve_jobs(int override_jobs) {
  if (override_jobs > 0) return std::min(override_jobs, kMaxJobs);
  return jobs();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_workers(int count) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(threads_.size()) < count) {
    queues_.push_back(std::make_unique<WorkerQueue>());
    const std::size_t self = threads_.size();
    threads_.emplace_back([this, self] { worker_main(self); });
  }
}

int ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::submit(std::function<void()> task) {
  WorkerQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    expects(!queues_.empty(), "ThreadPool::submit needs at least one worker");
    const std::size_t slot =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    queue = queues_[slot].get();
  }
  {
    std::lock_guard<std::mutex> lock(queue->mutex);
    queue->tasks.push_back(std::move(task));
  }
  // High-water tracking: the +1 below takes pending_ to depth d; remember
  // the deepest d seen.  Relaxed CAS loop — contention here is one word.
  const std::size_t depth = pending_.load(std::memory_order_relaxed) + 1;
  std::size_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  {
    // Publishing `pending_` under wake_mutex_ pairs with the wait predicate:
    // a worker is either before its predicate check (and will see the new
    // count) or inside wait (and will receive the notify).
    std::lock_guard<std::mutex> lock(wake_mutex_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_.notify_one();
}

bool ThreadPool::try_take(std::size_t self, std::function<void()>& out) {
  // Snapshot the stable WorkerQueue pointers; the vector may grow
  // concurrently but existing pointees never move.
  std::vector<WorkerQueue*> queues;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues.reserve(queues_.size());
    for (const auto& q : queues_) queues.push_back(q.get());
  }
  // Own queue first (LIFO for locality), then steal round-robin (FIFO —
  // thieves take the oldest task, the classic Chase–Lev orientation).
  for (std::size_t k = 0; k < queues.size(); ++k) {
    WorkerQueue* queue = queues[(self + k) % queues.size()];
    std::lock_guard<std::mutex> lock(queue->mutex);
    if (queue->tasks.empty()) continue;
    if (k == 0) {
      out = std::move(queue->tasks.back());
      queue->tasks.pop_back();
    } else {
      out = std::move(queue->tasks.front());
      queue->tasks.pop_front();
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_main(std::size_t self) {
  // Visible in the flight recorder / postmortem dump, Chrome trace
  // thread_name metadata, and OS tools (top -H, gdb, perf).
  char name[16];
  std::snprintf(name, sizeof name, "uld3d-wk%zu", self);
  flightrec::set_thread_name(name);
  for (;;) {
    std::function<void()> task;
    if (try_take(self, task)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

namespace {

/// Shared state of one parallel_for region.  Heap-allocated (shared_ptr)
/// so a queued-but-never-started pool task outliving the call is a safe
/// no-op: it can only touch `body` after claiming an index, and no index
/// remains once the caller has returned.
struct Region {
  Region(std::size_t n_, std::size_t grain_,
         const std::function<void(std::size_t)>* body_,
         const std::function<void(std::size_t)>* hook_)
      : n(n_), grain(grain_), body(body_), hook(hook_) {}

  const std::size_t n;
  const std::size_t grain;
  const std::function<void(std::size_t)>* body;
  /// Progress observer (ForOptions::on_chunk_done), or nullptr.  Same
  /// lifetime argument as `body`: only reachable after claiming an index.
  const std::function<void(std::size_t)>* hook;

  std::atomic<std::size_t> next{0};
  /// Indices above this are skipped — set to the lowest failing index so a
  /// fail-fast sweep stops claiming work past the failure, while every
  /// index BELOW the final first-failure still runs (serial equivalence).
  std::atomic<std::size_t> cancel_above{
      std::numeric_limits<std::size_t>::max()};

  std::mutex mutex;
  std::condition_variable done;
  std::size_t active = 0;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  void participate() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++active;
    }
    for (;;) {
      const std::size_t start =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (start >= n) break;
      const std::size_t end = std::min(start + grain, n);
      for (std::size_t i = start; i < end; ++i) {
        if (i > cancel_above.load(std::memory_order_relaxed)) continue;
        try {
          (*body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
            cancel_above.store(i, std::memory_order_relaxed);
          }
        }
      }
      if (hook != nullptr) {
        // An observer exception must not masquerade as a body failure (it
        // would corrupt the lowest-failing-index contract) — swallow it.
        try {
          (*hook)(end - start);
        } catch (...) {
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      --active;
    }
    done.notify_all();
  }

  /// Completion = every index claimed AND no participant still running.
  /// Never waits on queued-but-unstarted pool tasks, so saturated or
  /// nested pools cannot deadlock the region.
  void wait_done() {
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [this] {
      return active == 0 && next.load(std::memory_order_relaxed) >= n;
    });
  }
};

}  // namespace

void parallel_for_indexed(std::size_t n,
                          const std::function<void(std::size_t)>& body,
                          ForOptions opts) {
  if (n == 0) return;
  expects(static_cast<bool>(body), "parallel_for_indexed needs a body");
  const std::size_t grain = opts.grain == 0 ? 1 : opts.grain;
  const int effective_jobs = resolve_jobs(opts.jobs);
  const std::size_t chunks = (n + grain - 1) / grain;
  if (effective_jobs <= 1 || chunks <= 1) {
    // jobs=1 IS the serial loop: same order, exceptions propagate as-is.
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
      if (opts.on_chunk_done) {
        try {
          opts.on_chunk_done(1);
        } catch (...) {
        }
      }
    }
    return;
  }

  const std::size_t helpers = std::min<std::size_t>(
      static_cast<std::size_t>(effective_jobs) - 1, chunks - 1);
  auto region = std::make_shared<Region>(
      n, grain, &body, opts.on_chunk_done ? &opts.on_chunk_done : nullptr);
  ThreadPool& pool = ThreadPool::instance();
  pool.ensure_workers(static_cast<int>(helpers));
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([region] { region->participate(); });
  }
  region->participate();  // the calling thread is always a participant
  region->wait_done();
  // Move the exception OUT of the region before rethrowing: a stale queued
  // task may drop the last region reference after we return, and it must
  // not co-own (or last-release) the exception object the caller is
  // inspecting in its catch block.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(region->mutex);
    error = std::move(region->error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace uld3d::parallel

#include "uld3d/util/status.hpp"

#include <algorithm>
#include <sstream>

namespace uld3d {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "kOk";
    case ErrorCode::kInvalidArgument: return "kInvalidArgument";
    case ErrorCode::kInvalidConfig: return "kInvalidConfig";
    case ErrorCode::kUnknownKey: return "kUnknownKey";
    case ErrorCode::kInfeasiblePoint: return "kInfeasiblePoint";
    case ErrorCode::kThermalLimit: return "kThermalLimit";
    case ErrorCode::kNumericalError: return "kNumericalError";
    case ErrorCode::kNotFound: return "kNotFound";
    case ErrorCode::kFaultInjected: return "kFaultInjected";
    case ErrorCode::kInternal: return "kInternal";
  }
  return "kInternal";
}

namespace {

std::string format_number(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace

Failure& Failure::with(std::string key, double value) {
  context.emplace_back(std::move(key), format_number(value));
  return *this;
}

Failure& Failure::with(std::string key, std::int64_t value) {
  context.emplace_back(std::move(key), std::to_string(value));
  return *this;
}

std::string Failure::to_string() const {
  std::ostringstream os;
  os << error_code_name(code) << ": " << message;
  if (!context.empty()) {
    os << " (";
    for (std::size_t i = 0; i < context.size(); ++i) {
      if (i > 0) os << ", ";
      os << context[i].first << "=" << context[i].second;
    }
    os << ")";
  }
  return os.str();
}

Failure& Diagnostics::add(Failure failure) {
  entries_.push_back(std::move(failure));
  return entries_.back();
}

Failure& Diagnostics::error(ErrorCode code, std::string message) {
  return add(Failure(code, std::move(message), Severity::kError));
}

Failure& Diagnostics::warn(ErrorCode code, std::string message) {
  return add(Failure(code, std::move(message), Severity::kWarning));
}

std::size_t Diagnostics::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(), [](const Failure& f) {
        return f.severity == Severity::kError;
      }));
}

std::size_t Diagnostics::warning_count() const {
  return entries_.size() - error_count();
}

bool Diagnostics::has(ErrorCode code) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [code](const Failure& f) { return f.code == code; });
}

void Diagnostics::merge(const Diagnostics& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::string Diagnostics::to_string() const {
  std::ostringstream os;
  for (const auto& f : entries_) {
    os << (f.severity == Severity::kError ? "error: " : "warning: ")
       << f.to_string() << "\n";
  }
  return os.str();
}

void Diagnostics::throw_if_errors(bool strict) const {
  for (const auto& f : entries_) {
    if (f.severity == Severity::kError || strict) {
      Failure first = f;
      if (size() > 1) {
        first.with("total_diagnostics", static_cast<std::int64_t>(size()));
      }
      throw StatusError(std::move(first));
    }
  }
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Single-row dynamic programming; strings here are short config keys.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

std::string nearest_match(const std::string& word,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance) {
  std::string best;
  std::size_t best_distance = max_distance + 1;
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(word, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

}  // namespace uld3d

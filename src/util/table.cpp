#include "uld3d/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/export.hpp"

namespace uld3d {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t digits = 0;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) ++digits;
  }
  // Ratios like "5.66x" and percentages count as numeric for alignment.
  return digits * 2 >= cell.size();
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  expects(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(),
          "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << "=== " << title << " ===\n";

  const auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      os << ' ';
      if (align_right && looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_, /*align_right=*/false);
  os << '|';
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_right=*/true);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << to_string(title);
}

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_ratio(double value, int digits) {
  return format_double(value, digits) + "x";
}

}  // namespace uld3d

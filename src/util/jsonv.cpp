#include "uld3d/util/jsonv.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace uld3d {

namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal (expected 'true')");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal (expected 'false')");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal (expected 'null')");
        return JsonValue();
      default: return parse_number();
    }
  }

  /// RAII nesting-depth guard: parse_object/parse_array recurse through
  /// parse_value, so pathological input like "[[[[..." would otherwise
  /// exhaust the real call stack (a crash, not a clean parse error).
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                     " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonValue::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate halves pass through
          // as-is; our emitters only \u-escape control characters anyway).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    // Strict RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — strtod alone would also accept "+5", ".5", "0x1p3", "inf", which a
    // torn or hand-edited artifact must not smuggle past the parser.
    const std::size_t start = pos_;
    const auto digit = [&] {
      return pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) {
      pos_ = start;
      fail("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero stands alone ("01" is not JSON)
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) {
        pos_ = start;
        fail("malformed number: expected digits after '.'");
      }
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) {
        pos_ = start;
        fail("malformed number: expected digits in exponent");
      }
      while (digit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  /// Deep enough for any artifact this repo emits, shallow enough that the
  /// parser rejects hostile nesting long before the call stack gives out.
  static constexpr std::size_t kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  expects(kind_ == Kind::kBool,
          std::string("JSON value is ") + kind_name(kind_) + ", not bool");
  return bool_;
}

double JsonValue::as_number() const {
  expects(kind_ == Kind::kNumber,
          std::string("JSON value is ") + kind_name(kind_) + ", not number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  expects(kind_ == Kind::kString,
          std::string("JSON value is ") + kind_name(kind_) + ", not string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  expects(kind_ == Kind::kArray,
          std::string("JSON value is ") + kind_name(kind_) + ", not array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  expects(kind_ == Kind::kObject,
          std::string("JSON value is ") + kind_name(kind_) + ", not object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  expects(value != nullptr, "missing JSON object member '" + key + "'");
  return *value;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_number() ? value->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::move(fallback);
}

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw JsonParseError("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return json_parse(buffer.str());
}

}  // namespace uld3d

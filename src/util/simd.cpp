#include "uld3d/util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <limits>

#include "uld3d/util/metrics.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define ULD3D_SIMD_X86 1
#include <immintrin.h>
#define ULD3D_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define ULD3D_SIMD_X86 0
#endif

namespace uld3d::simd {

namespace {

struct Dispatch {
  bool cpu_avx2 = false;
  bool env_disabled = false;
};

/// CPUID + environment, read exactly once per process.
const Dispatch& dispatch() {
  static const Dispatch d = [] {
    Dispatch out;
#if ULD3D_SIMD_X86
    out.cpu_avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
    const char* env = std::getenv("ULD3D_NO_SIMD");
    out.env_disabled = env != nullptr && env[0] != '\0';
    return out;
  }();
  return d;
}

std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> force{false};
  return force;
}

}  // namespace

bool cpu_has_avx2() { return dispatch().cpu_avx2; }

bool disabled_by_env() { return dispatch().env_disabled; }

void set_force_scalar(bool force) {
  force_scalar_flag().store(force, std::memory_order_relaxed);
}

Isa active_isa() {
  const Dispatch& d = dispatch();
  if (d.env_disabled || !d.cpu_avx2 ||
      force_scalar_flag().load(std::memory_order_relaxed)) {
    return Isa::kScalar;
  }
  return Isa::kAvx2;
}

bool avx2_active() { return active_isa() == Isa::kAvx2; }

const char* isa_name() {
  if (active_isa() == Isa::kAvx2) return "avx2";
  // Distinguish "this machine has no AVX2" from "AVX2 was suppressed", so
  // provenance records why a run took the scalar path.
  if (cpu_has_avx2()) return "scalar-forced";
  return "scalar";
}

void record_dispatch_metric() {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().gauge("simd.dispatch").set(
      active_isa() == Isa::kAvx2 ? 1.0 : 0.0);
}

// ---------------------------------------------------------------------------
// argmin_strict
// ---------------------------------------------------------------------------

namespace {

std::size_t argmin_strict_scalar(const double* x, std::size_t n) {
  double best = std::numeric_limits<double>::infinity();
  std::size_t win = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] < best) {
      best = x[i];
      win = i;
    }
  }
  return win;
}

#if ULD3D_SIMD_X86
ULD3D_TARGET_AVX2 std::size_t argmin_strict_avx2(const double* x,
                                                 std::size_t n) {
  // Running minimum via the same `<` predicate as the serial recurrence:
  // lanes where v < best replace best (NaNs compare false and are skipped).
  __m256d best4 = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d lt = _mm256_cmp_pd(v, best4, _CMP_LT_OQ);
    best4 = _mm256_blendv_pd(best4, v, lt);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, best4);
  // Explicitly clear the upper YMM halves once the 256-bit work is done:
  // leaving them dirty imposes a false dependency on every SSE-encoded
  // double op executed afterwards.  (GCC inserts vzeroupper for plain
  // returns from target("avx2") clones but not reliably for every exit
  // shape, so the kernels do it themselves.)
  _mm256_zeroupper();
  double best = std::numeric_limits<double>::infinity();
  for (const double lane : lanes) {
    if (lane < best) best = lane;
  }
  for (; i < n; ++i) {
    if (x[i] < best) best = x[i];
  }
  if (best == std::numeric_limits<double>::infinity()) return n;
  // Deterministic serial tie-break: the serial recurrence ends on the FIRST
  // index attaining the minimum (later ties fail the strict `<`), so the
  // first `==` match reproduces it exactly (±0.0 ties compare equal).
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j] == best) return j;
  }
  return n;  // unreachable for well-formed input
}
#endif

}  // namespace

std::size_t argmin_strict(const double* x, std::size_t n) {
#if ULD3D_SIMD_X86
  if (n >= 8 && avx2_active()) return argmin_strict_avx2(x, n);
#endif
  return argmin_strict_scalar(x, n);
}

// ---------------------------------------------------------------------------
// prefix_sum_u32 / prefix_max_i32
// ---------------------------------------------------------------------------

namespace {

void prefix_sum_u32_scalar(const std::uint32_t* x, std::uint32_t* out,
                           std::size_t n) {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i];
    out[i] = acc;
  }
}

void prefix_max_i32_scalar(const std::int32_t* x, std::int32_t* out,
                           std::size_t n) {
  std::int32_t acc = std::numeric_limits<std::int32_t>::min();
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > acc) acc = x[i];
    out[i] = acc;
  }
}

#if ULD3D_SIMD_X86
/// In-register inclusive scan of 8 x i32 (classic shift-add ladder; the
/// 128-bit shifts stay within lanes, the permute carries the low lane's
/// total into the high lane).  `op` is add or max.
ULD3D_TARGET_AVX2 inline __m256i scan8_add(__m256i v) {
  v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
  v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
  const __m256i low_total =
      _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(3));
  const __m256i carry = _mm256_blend_epi32(_mm256_setzero_si256(), low_total,
                                           0xF0);
  return _mm256_add_epi32(v, carry);
}

ULD3D_TARGET_AVX2 void prefix_sum_u32_avx2(const std::uint32_t* x,
                                           std::uint32_t* out,
                                           std::size_t n) {
  std::uint32_t acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i scanned = scan8_add(v);
    const __m256i shifted =
        _mm256_add_epi32(scanned, _mm256_set1_epi32(static_cast<int>(acc)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), shifted);
    acc = out[i + 7];
  }
  _mm256_zeroupper();  // see argmin_strict_avx2
  for (; i < n; ++i) {
    acc += x[i];
    out[i] = acc;
  }
}

ULD3D_TARGET_AVX2 inline __m256i scan8_max(__m256i v) {
  const __m256i kMin =
      _mm256_set1_epi32(std::numeric_limits<std::int32_t>::min());
  // The shift ladder injects zeros; re-seed those lanes with INT32_MIN so a
  // shifted-in zero can never beat a genuinely negative running max.
  __m256i s = _mm256_slli_si256(v, 4);
  s = _mm256_blend_epi32(s, kMin, 0x11);  // lanes 0 and 4 lost their value
  v = _mm256_max_epi32(v, s);
  s = _mm256_slli_si256(v, 8);
  s = _mm256_blend_epi32(s, kMin, 0x33);  // lanes 0,1 / 4,5
  v = _mm256_max_epi32(v, s);
  const __m256i low_total =
      _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(3));
  const __m256i carry = _mm256_blend_epi32(kMin, low_total, 0xF0);
  return _mm256_max_epi32(v, carry);
}

ULD3D_TARGET_AVX2 void prefix_max_i32_avx2(const std::int32_t* x,
                                           std::int32_t* out,
                                           std::size_t n) {
  std::int32_t acc = std::numeric_limits<std::int32_t>::min();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i scanned =
        _mm256_max_epi32(scan8_max(v), _mm256_set1_epi32(acc));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), scanned);
    acc = out[i + 7];
  }
  _mm256_zeroupper();  // see argmin_strict_avx2
  for (; i < n; ++i) {
    if (x[i] > acc) acc = x[i];
    out[i] = acc;
  }
}
#endif

}  // namespace

void prefix_sum_u32(const std::uint32_t* x, std::uint32_t* out,
                    std::size_t n) {
#if ULD3D_SIMD_X86
  if (n >= 16 && avx2_active()) {
    prefix_sum_u32_avx2(x, out, n);
    return;
  }
#endif
  prefix_sum_u32_scalar(x, out, n);
}

void prefix_max_i32(const std::int32_t* x, std::int32_t* out, std::size_t n) {
#if ULD3D_SIMD_X86
  if (n >= 16 && avx2_active()) {
    prefix_max_i32_avx2(x, out, n);
    return;
  }
#endif
  prefix_max_i32_scalar(x, out, n);
}

}  // namespace uld3d::simd

#include "uld3d/util/fault.hpp"

#include <array>
#include <cstdlib>

#include "uld3d/util/metrics.hpp"

namespace uld3d {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, Failure failure,
                        std::uint64_t skip, std::uint64_t count) {
  expects(!site.empty(), "fault site name required");
  expects(count >= 1, "fault count must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  plans_[site] = Plan{std::move(failure), skip, count, 0};
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_from_spec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return;
  const std::string text(spec);
  const std::size_t eq = text.find('=');
  expects(eq != std::string::npos && eq > 0,
          "fault spec must be site=kCode[:skip[:count]]: " + text);
  const std::string site = text.substr(0, eq);
  std::string rest = text.substr(eq + 1);

  std::uint64_t skip = 0;
  std::uint64_t count = 1;
  std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    const std::string tail = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    colon = tail.find(':');
    skip = static_cast<std::uint64_t>(
        std::strtoull(tail.substr(0, colon).c_str(), nullptr, 10));
    if (colon != std::string::npos) {
      count = static_cast<std::uint64_t>(
          std::strtoull(tail.substr(colon + 1).c_str(), nullptr, 10));
      if (count == 0) count = 1;
    }
  }

  static constexpr std::array<ErrorCode, 8> kCodes = {
      ErrorCode::kInvalidArgument, ErrorCode::kInvalidConfig,
      ErrorCode::kUnknownKey,      ErrorCode::kInfeasiblePoint,
      ErrorCode::kThermalLimit,    ErrorCode::kNumericalError,
      ErrorCode::kNotFound,        ErrorCode::kFaultInjected};
  ErrorCode code = ErrorCode::kFaultInjected;
  for (const ErrorCode candidate : kCodes) {
    if (rest == error_code_name(candidate)) {
      code = candidate;
      break;
    }
  }
  arm(site, Failure(code, "injected fault").with("site", site), skip, count);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.erase(site);
  armed_.store(!plans_.empty(), std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::hit_count(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plans_.find(site);
  return it == plans_.end() ? 0 : it->second.hits;
}

void FaultInjector::check(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plans_.find(site);
  if (it == plans_.end()) return;
  Plan& plan = it->second;
  const std::uint64_t hit = plan.hits++;
  if (hit >= plan.skip && hit < plan.skip + plan.count) {
    // Distinguishes injected from organic failures in run reports: sweep
    // skip counters tally every failed point, this one only the trips.
    MetricsRegistry::instance().counter("fault.injected_trips").add();
    throw StatusError(plan.failure);
  }
}

}  // namespace uld3d

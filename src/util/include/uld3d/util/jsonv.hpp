// Minimal JSON document model + recursive-descent parser.
//
// Exists so the tools that *consume* the repo's own JSON artifacts
// (BENCH_*.json from util/bench, metrics/trace exports) can do so without an
// external dependency.  It parses the full JSON grammar (RFC 8259) except
// \uXXXX surrogate pairs, which are preserved verbatim; numbers are doubles.
//
//   const JsonValue doc = json_parse(text);          // throws JsonParseError
//   doc.at("suite").as_string();
//   for (const JsonValue& b : doc.at("benchmarks").as_array()) ...
//
// Object member order is preserved (vector of pairs, not a map) so emitted
// and re-parsed documents diff cleanly.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "uld3d/util/check.hpp"

namespace uld3d {

/// Thrown by json_parse on malformed input; the message carries a byte
/// offset and a short description of what was expected.
class JsonParseError : public Error {
 public:
  using Error::Error;
};

/// One JSON value: null, bool, number, string, array, or object.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw PreconditionError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup.  `find` returns nullptr when absent (or when this
  /// value is not an object); `at` throws PreconditionError instead.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// Convenience: member `key` as a double/string, or `fallback` when the
  /// member is absent or of the wrong kind.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse `text` as a single JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  Throws JsonParseError on malformed input.
[[nodiscard]] JsonValue json_parse(const std::string& text);

/// Read and parse a JSON file.  Throws JsonParseError when the file cannot
/// be read or does not parse.
[[nodiscard]] JsonValue json_parse_file(const std::string& path);

}  // namespace uld3d

// Minimal leveled logger.  Quiet by default; benchmarks and examples raise
// the level when they want progress output.
//
// Thread-safe: each message is composed off-lock and written to stderr as a
// single mutex-guarded write, so messages from concurrently evaluated sweep
// points never interleave mid-line.  `set_log_timestamps(true)` adds a
// wall-clock `HH:MM:SS.mmm` field to the prefix for long-running sweeps.
#pragma once

#include <string>

namespace uld3d {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Set the global log threshold (messages below it are dropped).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Toggle the `HH:MM:SS.mmm` timestamp field in the message prefix
/// (off by default to keep test/CI output stable).
void set_log_timestamps(bool enabled);
[[nodiscard]] bool log_timestamps();

/// Emit a message at `level` to stderr if it passes the threshold.
void log_message(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log_message(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log_message(LogLevel::kInfo, m); }
inline void log_warning(const std::string& m) { log_message(LogLevel::kWarning, m); }
inline void log_error(const std::string& m) { log_message(LogLevel::kError, m); }

}  // namespace uld3d

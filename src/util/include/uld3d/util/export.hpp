// Shared export helpers: CSV table export plus the single home of the
// CSV/JSON string-escaping entry points used by every emitter in the tree
// (util/table CSV cells, util/metrics + util/trace JSON documents, and the
// util/bench BENCH_*.json files).
//
// Every harness prints its table to stdout; setting the environment
// variable ULD3D_CSV_DIR additionally writes each table as
// `<dir>/<slug>.csv`, so figure data can be re-plotted without parsing
// terminal output.
#pragma once

#include <iosfwd>
#include <string>

#include "uld3d/util/table.hpp"

namespace uld3d {

/// Print `table` (with `title`) to `os`, and, if ULD3D_CSV_DIR is set in
/// the environment, also write `<dir>/<slug>.csv`.  Returns the path
/// written, or an empty string when export is disabled.
std::string emit_table(std::ostream& os, const Table& table,
                       const std::string& title, const std::string& slug);

/// The directory configured via ULD3D_CSV_DIR, or empty.
[[nodiscard]] std::string csv_export_dir();

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters become escape sequences; non-ASCII
/// bytes pass through untouched so UTF-8 survives).  This is the single
/// definition; util/metrics re-exports it for back compatibility.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Escape one CSV cell RFC-4180 style: cells containing commas, quotes, or
/// newlines are wrapped in double quotes with embedded quotes doubled;
/// anything else is returned verbatim.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace uld3d

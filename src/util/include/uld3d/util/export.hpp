// Optional CSV export for benchmark/reproduction tables.
//
// Every harness prints its table to stdout; setting the environment
// variable ULD3D_CSV_DIR additionally writes each table as
// `<dir>/<slug>.csv`, so figure data can be re-plotted without parsing
// terminal output.
#pragma once

#include <iosfwd>
#include <string>

#include "uld3d/util/table.hpp"

namespace uld3d {

/// Print `table` (with `title`) to `os`, and, if ULD3D_CSV_DIR is set in
/// the environment, also write `<dir>/<slug>.csv`.  Returns the path
/// written, or an empty string when export is disabled.
std::string emit_table(std::ostream& os, const Table& table,
                       const std::string& title, const std::string& slug);

/// The directory configured via ULD3D_CSV_DIR, or empty.
[[nodiscard]] std::string csv_export_dir();

}  // namespace uld3d

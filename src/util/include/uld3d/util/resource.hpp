// Per-stage resource attribution primitives (DESIGN.md §15).
//
// StageTimer/TraceSpan sample these at entry and exit so stage telemetry
// events, trace summaries, and the metrics export can attribute CPU time,
// allocation volume, and RSS high-water to individual pipeline stages —
// not just wall-clock time, which on a loaded pool says little about who
// is actually hungry.
//
// Semantics:
//  - `cpu_us` is CLOCK_THREAD_CPUTIME_ID of the *calling* thread, so a
//    stage's delta is jobs-independent: it measures the work the executing
//    thread did, not how long the wall waited.
//  - `alloc_bytes` counts bytes *requested* through `operator new` on the
//    calling thread (cumulative; frees are not subtracted — it is an
//    allocation-pressure meter, not a live-heap gauge).  The counting hook
//    is off unless `ULD3D_ALLOC_STATS` is set (or enabled via
//    set_alloc_stats_enabled); when off the reading is 0 and the hook's
//    cost is one relaxed load per allocation.
//  - `rss_hwm_kb` is the *process* RSS high-water (getrusage) at sample
//    time; a stage reports the high-water at its end, answering "had the
//    process peaked by the time this stage finished".
#pragma once

#include <cstdint>

namespace uld3d {

/// A point-in-time resource reading for the calling thread; StageTimer and
/// TraceSpan store differences of these (rss_hwm_kb excepted — see above).
struct ResourceSample {
  double cpu_us = 0.0;
  std::uint64_t alloc_bytes = 0;
  std::int64_t rss_hwm_kb = 0;
};

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID; 0.0 where unavailable).
[[nodiscard]] double thread_cpu_time_us();

/// Cumulative bytes the calling thread has requested via operator new while
/// allocation stats were enabled.
[[nodiscard]] std::uint64_t thread_alloc_bytes();

/// Whether the operator-new counting hook is live.  Lazily seeded from the
/// ULD3D_ALLOC_STATS environment variable ("" or "0" = off).
[[nodiscard]] bool alloc_stats_enabled();
void set_alloc_stats_enabled(bool enabled);

/// One call bundling all three readings.
[[nodiscard]] ResourceSample sample_thread_resources();

}  // namespace uld3d

// Small math helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "uld3d/util/check.hpp"

namespace uld3d {

/// Integer ceiling division for non-negative operands.
constexpr std::int64_t ceil_div(std::int64_t numerator, std::int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

/// Floating-point "is close" with a relative tolerance (and a small absolute
/// floor so comparisons near zero behave sensibly).
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  return std::abs(a - b) <= std::max(abs_tol, rel_tol * std::max(std::abs(a), std::abs(b)));
}

/// Relative difference |a-b| / max(|a|,|b|); zero when both are zero.
inline double relative_difference(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 ? 0.0 : std::abs(a - b) / scale;
}

/// Round a positive double up to the next integer, as the paper's ceiling
/// brackets do in Eqs. (2) and (9).
inline std::int64_t ceil_to_int(double value) {
  expects(value >= 0.0, "ceil_to_int requires a non-negative value");
  return static_cast<std::int64_t>(std::ceil(value - 1e-12));
}

/// Geometric-mean accumulator used by the benchmark summaries.
class GeometricMean {
 public:
  void add(double value) {
    expects(value > 0.0, "geometric mean requires positive samples");
    log_sum_ += std::log(value);
    ++count_;
  }
  [[nodiscard]] double value() const {
    return count_ == 0 ? 1.0 : std::exp(log_sum_ / static_cast<double>(count_));
  }
  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  double log_sum_ = 0.0;
  std::int64_t count_ = 0;
};

}  // namespace uld3d

// Deterministic parallel execution for the sweep/search hot paths.
//
// Two pieces:
//
//  * `ThreadPool` — one lazy process-wide pool of worker threads with
//    per-worker deques and work stealing.  Workers sleep on a condition
//    variable when idle; the pool only ever grows (threads are cheap to
//    park, and shrinking would complicate the steal protocol for nothing).
//
//  * `parallel_for_indexed(n, body)` — run `body(i)` for every i in [0, n)
//    on the pool, with the calling thread always participating.  Callers
//    write into PRE-SIZED slots indexed by i, so the assembled output is
//    bit-identical to the serial loop regardless of thread count.  With an
//    effective jobs count of 1 (or a single chunk) the primitive IS the
//    serial loop — same code path, same exception behaviour, zero pool
//    involvement.
//
// Determinism contract (DESIGN.md §10): for a pure-per-index body the
// result slots, and the exception thrown (if any), are identical at every
// jobs count.  When bodies throw, the exception rethrown after the region
// drains is the one raised by the LOWEST failing index — exactly what the
// serial loop would have thrown first — and indices above it are cancelled
// (not yet started chunks skip them).  Indices below the first failure are
// always evaluated.
//
// Jobs resolution: explicit per-call override > `set_jobs()` > the
// `ULD3D_JOBS` environment variable > 1 (serial).  The library default is
// deliberately serial so embedders opt in; the CLI opts in to all cores
// via `--jobs` / hardware_concurrency (see tools/uld3d_cli.cpp).
//
// NOT handled here: fault-injection arrival order.  FaultInjector plans
// trip on the order sites are *reached*, which only a serial loop
// reproduces — converted call sites pin themselves to jobs=1 while the
// injector is armed (see dse/sweep.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace uld3d::parallel {

/// Upper bound on any jobs setting (sanity cap, not a tuning knob).
inline constexpr int kMaxJobs = 1024;

/// std::thread::hardware_concurrency(), never less than 1.
[[nodiscard]] int hardware_concurrency();

/// The process default: `ULD3D_JOBS` clamped to [1, kMaxJobs] (invalid or
/// unset means 1 — serial).  Read once, at first use.
[[nodiscard]] int default_jobs();

/// The current global jobs setting (`set_jobs`, else `default_jobs`).
[[nodiscard]] int jobs();

/// Set the global jobs count.  `n == 0` restores `default_jobs()`; values
/// above kMaxJobs are rejected.  Safe to call between parallel regions at
/// any point in the process lifetime (the determinism tests run the same
/// work at jobs 1, 2, and 8 in one process).
void set_jobs(int n);

/// Per-call resolution: a positive `override_jobs` wins, else `jobs()`.
[[nodiscard]] int resolve_jobs(int override_jobs);

/// Process-wide work-stealing pool.  Tasks are pushed round-robin onto
/// per-worker deques; owners pop LIFO (locality), thieves steal FIFO.
/// Never submit a task that blocks on another queued task — regions below
/// only ever wait on *running* participants, and nested parallel_for calls
/// keep the nesting thread working, so the pool cannot deadlock on itself.
class ThreadPool {
 public:
  /// The lazy global instance.  First use spawns no threads; workers are
  /// created on demand by `ensure_workers`.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Grow the pool to at least `count` workers (never shrinks).
  void ensure_workers(int count);

  /// Enqueue `task` for any worker.  Requires at least one worker.
  void submit(std::function<void()> task);

  [[nodiscard]] int worker_count() const;

  /// Tasks submitted but not yet started — the live queue depth a progress
  /// display shows to distinguish a wedged pool from a long tail.
  [[nodiscard]] std::size_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// The deepest the queue has ever been in this process (bench provenance
  /// records it so timing noise correlates with CPU pressure).
  [[nodiscard]] std::size_t queue_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }

 private:
  ThreadPool() = default;

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t self);
  [[nodiscard]] bool try_take(std::size_t self, std::function<void()>& out);

  /// Guards the queues_/threads_ vectors themselves (growth + indexing);
  /// each queue's deque is guarded by its own mutex.
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> queue_high_water_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

struct ForOptions {
  /// 0 = use the global `jobs()`; otherwise an explicit per-call count.
  int jobs = 0;
  /// Indices claimed per chunk.  Larger grains amortize the claim + body
  /// dispatch for very cheap bodies; 1 (default) maximizes balance.
  std::size_t grain = 1;
  /// Called with the number of indices a participant just finished (once
  /// per chunk; per index on the serial path).  Runs on the participant's
  /// thread, concurrently with other chunks — it must be thread-safe and
  /// must NOT touch result slots; exceptions it throws are swallowed so a
  /// misbehaving observer can never change the region's outcome.  Drives
  /// the live progress display (util/telemetry).
  std::function<void(std::size_t)> on_chunk_done = {};
};

/// Run `body(i)` for every i in [0, n).  See the file comment for the
/// determinism and exception contract.  The calling thread always runs
/// chunks itself, so this never deadlocks waiting on a saturated pool and
/// nests safely (an inner parallel_for on a pool thread just participates).
void parallel_for_indexed(std::size_t n,
                          const std::function<void(std::size_t)>& body,
                          ForOptions opts = {});

}  // namespace uld3d::parallel

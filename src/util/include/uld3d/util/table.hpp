// ASCII table and CSV rendering used by the benchmark harnesses to print the
// paper-style tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace uld3d {

/// Column-aligned ASCII table with an optional title, printed in the style
///
///   === Title ===
///   | Layer      | Speedup | Energy | EDP benefit |
///   |------------|---------|--------|-------------|
///   | CONV1+POOL |   3.14x |  1.00x |       2.93x |
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows currently in the table.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with box-drawing pipes, right-aligning numeric-looking cells.
  [[nodiscard]] std::string to_string(const std::string& title = {}) const;

  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os, const std::string& title = {}) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format `value` with `digits` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int digits = 2);

/// Format a benefit multiplier like the paper: "5.66x".
[[nodiscard]] std::string format_ratio(double value, int digits = 2);

}  // namespace uld3d

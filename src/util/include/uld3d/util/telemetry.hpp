// Streaming run telemetry: an NDJSON event bus plus the run identity that
// labels every artifact a run produces.
//
// Three pieces:
//
//  * `RunContext` — the run's identity: a RunId (provenance hash + a
//    process-local counter, no randomness) and the shard i/N this process
//    owns.  Set once near main() via `set_current_run_context`; the metrics
//    JSON exporter, the Chrome trace exporter, the sweep checkpoint writer,
//    and every telemetry event read it back so artifacts from one run (or
//    one shard of a fleet) join on the same labels — the per-request
//    plumbing the future DSE server needs (ROADMAP item 1).
//
//  * `EventSink` — a process-wide, thread-safe appender of schema-versioned
//    NDJSON events (`run_start`, `sweep_start`, `point_done`,
//    `checkpoint_flush`, `shard_info`, `progress`, `stage`, `run_end`) to a
//    file.  Disabled by default with the same single-relaxed-atomic-bool
//    gate as util/metrics: every emit site pays one predictable branch when
//    telemetry is off.  Writes are buffered and flushed on checkpoint
//    boundaries, on `close()`, and whenever the buffer grows large; a
//    killed process therefore leaves a *parseable prefix* (whole lines
//    only) behind — the stream is append-only, never rewritten, so crash
//    semantics are "everything up to the last flush".  `ULD3D_EVENTS=FILE`
//    mirrors the CLI's `--events FILE`.
//
//  * `ProgressReporter` — live sweep progress for humans: EWMA points/sec,
//    ok/failed counts, ETA, and pool queue depth on stderr.  TTY-aware
//    (single-line \r redraw on a terminal, plain throttled lines when
//    piped).  Driven from `ForOptions::on_chunk_done` so it never touches
//    result slots — jobs=N determinism is untouched.  It also mirrors
//    throttled `progress` events into the EventSink.
//
// Event schema (DESIGN.md §14): every line is one JSON object
//   {"schema": 1, "ev": "<type>", "run": "<run_id>", "shard": "i/N",
//    "ts_ms": <unix milliseconds>, ...type-specific fields...}
// Doubles are rendered with 17 significant digits so payloads (sweep params
// and metrics) round-trip bit-exactly — `uld3d-report --canon` relies on
// this to compare event streams from different jobs counts byte-for-byte.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "uld3d/util/metrics.hpp"   // metrics_enabled (StageTimer gate)
#include "uld3d/util/resource.hpp"  // ResourceSample (stage attribution)

namespace uld3d {

struct Provenance;  // uld3d/util/provenance.hpp

/// Bumped when the event line layout changes; uld3d-report refuses newer.
inline constexpr int kTelemetrySchemaVersion = 1;

namespace telemetry_detail {
extern std::atomic<bool> g_enabled;
}  // namespace telemetry_detail

/// True when an events file is open and emitting.  One relaxed load — the
/// whole cost of a disabled emit site is this branch.
inline bool telemetry_enabled() {
  return telemetry_detail::g_enabled.load(std::memory_order_relaxed);
}

/// The identity of one run (one process invocation, one shard of a fleet).
struct RunContext {
  /// fnv1a hex of the run's provenance identity plus a process-local
  /// counter ("<hash>-<n>"): unique across machines and across runs on one
  /// machine without any randomness.  Empty = no context set.
  std::string run_id;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// "i/N" — the label stamped on events and exports.
  [[nodiscard]] std::string shard_label() const {
    return std::to_string(shard_index) + "/" + std::to_string(shard_count);
  }
};

/// Build a RunContext from the process provenance (git SHA, hostname,
/// timestamp, pid) and a monotonically increasing counter.  Random-free by
/// construction so repeated calls are distinct but reproducible in tests.
[[nodiscard]] RunContext make_run_context(std::size_t shard_index = 0,
                                          std::size_t shard_count = 1);

/// The process-wide current run context (empty run_id until set).  Set it
/// once near main(), before spawning sweep workers; reads are cheap copies
/// under a mutex and safe from any thread.
void set_current_run_context(const RunContext& context);
[[nodiscard]] RunContext current_run_context();

/// One failed point's structured failure, flattened for the event payload.
struct EventFailure {
  std::string code;     ///< error_code_name(), e.g. "kInfeasiblePoint"
  std::string message;
  std::vector<std::pair<std::string, std::string>> context;
};

/// Process-wide NDJSON event appender.  All emitters are safe to call from
/// any thread; line assembly happens off-lock and the append is one
/// mutex-guarded buffer write.
class EventSink {
 public:
  static EventSink& instance();

  static bool enabled() { return telemetry_enabled(); }

  /// Open `path` for appending (the resume flow re-opens the same file and
  /// the canon analyzer unions the runs) and enable emission.  Returns
  /// false and logs a warning when the file cannot be opened.
  bool open(const std::string& path);

  /// Reads ULD3D_EVENTS; a non-empty value opens that file.  Mirrors
  /// TraceRecorder::configure_from_env for script-launched runs.
  void configure_from_env();
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Flush buffered lines to the file; `sync` additionally fsyncs so the
  /// lines survive a SIGKILL (used on checkpoint boundaries: a point that
  /// made it into a checkpoint always has its point_done event on disk).
  void flush(bool sync = false);

  /// Flush + fsync + close + disable.  Idempotent.
  void close();

  /// Events emitted (accepted) since open.
  [[nodiscard]] std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

  // --- typed emitters -----------------------------------------------------
  // Each is one predicted branch when the sink is disabled; argument
  // construction at call sites must be guarded by the caller when it is not
  // free (same discipline as TraceSpan's string copies).

  void emit_run_start(const Provenance& provenance,
                      const std::string& command) {
    if (!enabled()) return;
    run_start_impl(provenance, command);
  }

  void emit_run_end(const std::string& status, int exit_code) {
    if (!enabled()) return;
    run_end_impl(status, exit_code);
  }

  void emit_sweep_start(const std::string& fingerprint, std::size_t grid_size,
                        const std::vector<std::string>& param_names,
                        const std::vector<std::string>& metric_names,
                        std::size_t domain_size, int jobs) {
    if (!enabled()) return;
    sweep_start_impl(fingerprint, grid_size, param_names, metric_names,
                     domain_size, jobs);
  }

  /// `failure == nullptr` means the point succeeded; failed points carry
  /// the full structured Failure (the complete SweepRow payload).
  void emit_point_done(std::size_t grid_index,
                       const std::vector<double>& params,
                       const std::vector<double>& metrics,
                       const EventFailure* failure, double dur_us) {
    if (!enabled()) return;
    point_done_impl(grid_index, params, metrics, failure, dur_us);
  }

  void emit_checkpoint_flush(std::size_t completed, std::size_t total,
                             const std::string& path) {
    if (!enabled()) return;
    checkpoint_flush_impl(completed, total, path);
  }

  void emit_shard_info(std::size_t shard_index, std::size_t shard_count,
                       std::size_t domain_size,
                       const std::vector<std::size_t>& sentinels) {
    if (!enabled()) return;
    shard_info_impl(shard_index, shard_count, domain_size, sentinels);
  }

  void emit_progress(std::size_t done, std::size_t total, std::size_t ok,
                     std::size_t failed, double points_per_sec, double eta_s,
                     std::size_t queue_depth) {
    if (!enabled()) return;
    progress_impl(done, total, ok, failed, points_per_sec, eta_s,
                  queue_depth);
  }

  /// A named pipeline stage completed (mapper search, phys flow stages,
  /// sensitivity analysis) — the coarse time breakdown uld3d-report shows.
  /// Takes a string_view so a disabled emit never constructs a std::string
  /// from a literal at the call site (bench_perf_kernels gates this cost).
  void emit_stage(std::string_view name, double dur_us) {
    if (!enabled()) return;
    stage_impl(name, dur_us, nullptr);
  }

  /// Stage completion with resource attribution: `resources` carries the
  /// executing thread's CPU/alloc deltas and the process RSS high-water at
  /// stage end (util/resource.hpp), adding cpu_us/alloc_bytes/rss_kb fields
  /// to the stage event.  Additive — schema stays 1, and stage events are
  /// outside the canonical projection, so determinism checks are unaffected.
  void emit_stage(std::string_view name, double dur_us,
                  const ResourceSample& resources) {
    if (!enabled()) return;
    stage_impl(name, dur_us, &resources);
  }

 private:
  EventSink() = default;

  void run_start_impl(const Provenance& provenance,
                      const std::string& command);
  void run_end_impl(const std::string& status, int exit_code);
  void sweep_start_impl(const std::string& fingerprint, std::size_t grid_size,
                        const std::vector<std::string>& param_names,
                        const std::vector<std::string>& metric_names,
                        std::size_t domain_size, int jobs);
  void point_done_impl(std::size_t grid_index,
                       const std::vector<double>& params,
                       const std::vector<double>& metrics,
                       const EventFailure* failure, double dur_us);
  void checkpoint_flush_impl(std::size_t completed, std::size_t total,
                             const std::string& path);
  void shard_info_impl(std::size_t shard_index, std::size_t shard_count,
                       std::size_t domain_size,
                       const std::vector<std::size_t>& sentinels);
  void progress_impl(std::size_t done, std::size_t total, std::size_t ok,
                     std::size_t failed, double points_per_sec, double eta_s,
                     std::size_t queue_depth);
  void stage_impl(std::string_view name, double dur_us,
                  const ResourceSample* resources);

  /// Append one complete, newline-terminated line to the buffer.
  void append_line(std::string line);

  std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  std::atomic<std::uint64_t> emitted_{0};
};

/// Fold one completed stage into the metrics registry as
/// `stage.<name>.calls/.wall_us/.cpu_us/.alloc_bytes` counters plus a
/// `stage.<name>.rss_hwm_kb` gauge.  No-op when metrics are disabled.
void record_stage_metrics(std::string_view name, double dur_us,
                          const ResourceSample& resources);

/// RAII stage timer: emits a `stage` event with the scope's wall-clock
/// duration plus resource attribution (thread CPU time, allocation delta,
/// RSS high-water — util/resource.hpp), and feeds the same numbers into
/// the metrics export.  Free when both telemetry and metrics are disabled
/// (no clock read, no copy) — the same shape as TraceSpan.
class StageTimer {
 public:
  explicit StageTimer(std::string_view name) {
    if (!EventSink::enabled() && !metrics_enabled()) return;
    name_.assign(name);
    start_ = std::chrono::steady_clock::now();
    start_resources_ = sample_thread_resources();
    active_ = true;
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double dur_us =
        std::chrono::duration<double, std::micro>(elapsed).count();
    const ResourceSample end = sample_thread_resources();
    ResourceSample delta;
    delta.cpu_us = end.cpu_us - start_resources_.cpu_us;
    delta.alloc_bytes = end.alloc_bytes - start_resources_.alloc_bytes;
    // RSS high-water is a process-wide monotone; the stage reports where it
    // stood at stage end, not a delta (deltas of a high-water mislead).
    delta.rss_hwm_kb = end.rss_hwm_kb;
    EventSink::instance().emit_stage(name_, dur_us, delta);
    record_stage_metrics(name_, dur_us, delta);
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
  ResourceSample start_resources_{};
  bool active_ = false;
};

/// Turn the live progress display on (the CLI's `--progress`).  Off by
/// default so library users and byte-compared CLI runs see no extra stderr.
void set_progress_enabled(bool enabled);
[[nodiscard]] bool progress_enabled();

/// Live progress for one fixed-size batch of work (a sweep).  `on_chunk`
/// is cheap enough to call from every parallel_for chunk: an atomic add
/// plus a time check; the redraw itself is throttled and mutex-guarded.
class ProgressReporter {
 public:
  /// `label` prefixes every line (e.g. "sweep"); `total` is the number of
  /// work items expected.  Counts may start nonzero on resume.
  ProgressReporter(std::string label, std::size_t total,
                   std::size_t already_done = 0);
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;
  /// Prints the final 100% line (with a trailing newline on a TTY).
  ~ProgressReporter();

  /// Record `n` items finished; redraws/emits when the throttle allows.
  void on_chunk_done(std::size_t n);
  /// Outcome counts, fed by the evaluation body (the chunk hook only knows
  /// how many items finished, not whether they passed).
  void add_ok(std::size_t n = 1) {
    ok_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_failed(std::size_t n = 1) {
    failed_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t done() const {
    return done_.load(std::memory_order_relaxed);
  }

  /// Smoothed points/sec as of the last redraw (0.0 before the first rate
  /// window closes).  Counts only points evaluated *this* process: both
  /// `done_` and the rate window start seeded with `already_done`, so
  /// resume-skipped points never inflate the rate or deflate the ETA.
  [[nodiscard]] double ewma_points_per_sec() {
    std::lock_guard<std::mutex> lock(mutex_);
    return ewma_pps_;
  }

 private:
  void draw(bool final);

  const std::string label_;
  const std::size_t total_;
  const std::size_t resumed_;
  const bool tty_;
  std::atomic<std::size_t> done_;
  std::atomic<std::size_t> ok_{0};
  std::atomic<std::size_t> failed_{0};
  std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_draw_;
  std::chrono::steady_clock::time_point last_rate_sample_;
  std::size_t last_rate_done_ = 0;
  double ewma_pps_ = 0.0;  ///< EWMA of points/sec, guarded by mutex_
};

}  // namespace uld3d

// Scoped-timer tracing with Chrome trace_event export.
//
// An RAII `TraceSpan` records one wall-clock span into the process-wide
// `TraceRecorder`; spans nest naturally because inner scopes close first.
// The recorded timeline exports as Chrome `trace_event` JSON — load it in
// chrome://tracing or https://ui.perfetto.dev — or aggregates into a
// per-span-name summary table for end-of-run reports.
//
//   TraceSpan sweep("dse.sweep", "dse");
//   for (...) { TraceSpan point("dse.sweep.point", "dse"); evaluate(...); }
//   TraceRecorder::instance().write_chrome_trace("trace.json");
//
// Like util/metrics and util/fault, tracing is disabled by default; a
// disabled span costs the always-on flight-recorder record (~5 ns, see
// util/flightrec.hpp) plus one relaxed atomic-bool load — no clock read,
// no string copy, no allocation.  `ULD3D_TRACE=<file>` (or the CLI's
// `--trace <file>`) enables recording; the event buffer is bounded
// (`set_capacity`), dropping and counting further events rather than
// growing without limit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "uld3d/util/flightrec.hpp"
#include "uld3d/util/table.hpp"

namespace uld3d {

namespace trace_detail {
extern std::atomic<bool> g_enabled;
}  // namespace trace_detail

/// One completed span ("ph":"X" in the Chrome trace event format).
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   ///< start, microseconds since the recorder epoch
  double dur_us = 0.0;  ///< wall-clock duration in microseconds
  std::uint32_t tid = 0;
  double cpu_us = 0.0;  ///< executing thread's CPU time inside the span
  std::uint64_t alloc_bytes = 0;  ///< bytes requested via operator new
                                  ///< inside the span (0 unless
                                  ///< ULD3D_ALLOC_STATS is on)
};

/// Process-wide bounded buffer of completed spans.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  static bool enabled() {
    return trace_detail::g_enabled.load(std::memory_order_relaxed);
  }
  /// Enabling (re)anchors the epoch when the buffer is empty.
  void set_enabled(bool enabled);

  /// Reads ULD3D_TRACE; a non-empty value enables recording and is
  /// remembered as `env_path()` so the CLI can write the file at exit.
  void configure_from_env();
  [[nodiscard]] const std::string& env_path() const { return env_path_; }

  /// Maximum buffered events; further events are dropped (and counted).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder epoch (steady clock).
  [[nodiscard]] double now_us() const;

  void record(TraceEvent event);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;
  void clear();  ///< drop all events and re-anchor the epoch

  /// Chrome trace_event JSON ("traceEvents" array of complete events).
  [[nodiscard]] std::string to_chrome_json() const;
  /// Returns false (and logs a warning) when the file cannot be opened.
  bool write_chrome_trace(const std::string& path) const;

  /// Aggregate by span name: calls, total/mean wall time, share of the
  /// traced wall window.  Sorted by descending total time.
  [[nodiscard]] Table summary_table() const;

 private:
  TraceRecorder();

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1u << 20;
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::string env_path_;
};

/// RAII span.  Both arguments are only copied when tracing is enabled, so
/// passing `layer.name()` in a hot loop is free in the disabled case.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, std::string_view category = "uld3d") {
    // The flight recorder sees every span regardless of whether tracing is
    // armed — it is the always-on forensic layer (util/flightrec.hpp), and
    // its ~5 ns record is the whole cost of a disabled span now.
    flightrec::span_begin(name);
    if (!TraceRecorder::enabled()) return;
    begin(name, category);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    flightrec::span_end();
    if (active_) finish();
  }

 private:
  void begin(std::string_view name, std::string_view category);
  void finish();

  std::string name_;
  std::string category_;
  double start_us_ = 0.0;
  double start_cpu_us_ = 0.0;
  std::uint64_t start_alloc_ = 0;
  bool active_ = false;
};

}  // namespace uld3d

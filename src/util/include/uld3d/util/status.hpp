// Structured error handling for fault-tolerant evaluation.
//
// The exception types in check.hpp express *programming* errors (violated
// preconditions and invariants).  Large design-space studies additionally
// need *data* errors — an infeasible design point, a thermal-limit
// violation, a NaN escaping a model — that must be recorded and skipped
// rather than abort a whole sweep.  This header provides the taxonomy:
//
//   ErrorCode    what went wrong, machine-readable
//   Failure      code + message + key/value context
//   StatusError  an exception that carries a Failure across layers that
//                still unwind (model boundaries throw it; sweeps catch it)
//   Result<T>    value-or-Failure, for call sites that want no unwinding
//   Diagnostics  a collector that accumulates many Failures (e.g. every
//                range violation in a config) instead of stopping at one
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "uld3d/util/check.hpp"

namespace uld3d {

/// Machine-readable failure categories, ordered roughly by layer.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< bad value passed to an API (caller bug)
  kInvalidConfig,     ///< config file range violation / unparsable value
  kUnknownKey,        ///< config key or section not in the schema
  kInfeasiblePoint,   ///< design point violates a geometric/capacity bound
  kThermalLimit,      ///< Eq. (17) temperature rise exceeds the budget
  kNumericalError,    ///< non-finite value escaped a model
  kNotFound,          ///< named entity (metric, layer, file) absent
  kFaultInjected,     ///< produced by the test-only FaultInjector
  kInternal,          ///< invariant failure / unclassified exception
};

/// Stable identifier, e.g. "kThermalLimit".
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// Severity of a recorded failure: warnings (e.g. unknown-key typos) do not
/// make a Diagnostics fail unless the caller opts into strict mode.
enum class Severity { kWarning, kError };

/// One structured failure: code + message + ordered key/value context.
struct Failure {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  Severity severity = Severity::kError;
  std::vector<std::pair<std::string, std::string>> context;

  Failure() = default;
  Failure(ErrorCode c, std::string msg, Severity sev = Severity::kError)
      : code(c), message(std::move(msg)), severity(sev) {}

  /// Attach context; returns *this for chaining.
  Failure& with(std::string key, std::string value) {
    context.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Failure& with(std::string key, double value);
  Failure& with(std::string key, std::int64_t value);

  /// "kNumericalError: EDP benefit is not finite (n_cs=8, capacity_mb=64)"
  [[nodiscard]] std::string to_string() const;
};

/// Exception carrying a structured Failure across layers that unwind.
/// Model boundaries throw this; sweep engines catch it and record the
/// Failure on the offending design point.
class StatusError : public Error {
 public:
  explicit StatusError(Failure failure)
      : Error(failure.to_string()), failure_(std::move(failure)) {}

  [[nodiscard]] const Failure& failure() const { return failure_; }
  [[nodiscard]] ErrorCode code() const { return failure_.code; }

 private:
  Failure failure_;
};

/// Value-or-Failure, for call sites that prefer explicit propagation to
/// exceptions.  `value()` on a failed Result throws the carried Failure.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Failure failure) : state_(std::move(failure)) {} // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] ErrorCode code() const {
    return ok() ? ErrorCode::kOk : failure().code;
  }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw StatusError(std::get<Failure>(state_));
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw StatusError(std::get<Failure>(state_));
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw StatusError(std::get<Failure>(state_));
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  /// Only valid when !ok().
  [[nodiscard]] const Failure& failure() const {
    ensures(!ok(), "failure() called on an ok Result");
    return std::get<Failure>(state_);
  }

 private:
  std::variant<T, Failure> state_;
};

/// Accumulates failures instead of throwing on the first one; used by
/// config validation (report every range violation in one pass) and by
/// sweep engines (collect per-point failures).
class Diagnostics {
 public:
  /// Record a failure; returns a reference for `.with(...)` chaining.
  Failure& add(Failure failure);
  Failure& error(ErrorCode code, std::string message);
  Failure& warn(ErrorCode code, std::string message);

  [[nodiscard]] const std::vector<Failure>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;

  /// No errors recorded (warnings alone keep a Diagnostics ok).
  [[nodiscard]] bool ok() const { return error_count() == 0; }
  [[nodiscard]] bool has(ErrorCode code) const;

  void merge(const Diagnostics& other);
  void clear() { entries_.clear(); }

  /// One line per entry, "error: ..." / "warning: ..." prefixed.
  [[nodiscard]] std::string to_string() const;

  /// Throw StatusError with the first error if any was recorded; with
  /// `strict`, warnings count as errors too.
  void throw_if_errors(bool strict = false) const;

 private:
  std::vector<Failure> entries_;
};

/// Guard at a model boundary: returns `value` if finite, otherwise throws
/// StatusError(kNumericalError) naming `what`.
inline double require_finite(double value, const std::string& what) {
  if (!std::isfinite(value)) {
    throw StatusError(Failure(ErrorCode::kNumericalError,
                              what + " is not finite")
                          .with("value", std::isnan(value)
                                             ? std::string("nan")
                                             : (value > 0 ? "+inf" : "-inf")));
  }
  return value;
}

/// Levenshtein edit distance (used for unknown-key suggestions).
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b);

/// The candidate closest to `word` within `max_distance` edits, or "" when
/// nothing is close enough.  Ties break toward the earliest candidate.
[[nodiscard]] std::string nearest_match(
    const std::string& word, const std::vector<std::string>& candidates,
    std::size_t max_distance = 3);

}  // namespace uld3d

// Run provenance: which commit, compiler, machine, and configuration
// produced an artifact.  Captured once per process and embedded in every
// BENCH_*.json document (util/bench) so results are comparable across runs
// and commits — the same discipline architectural simulators like ZigZag
// and Timeloop apply to their evaluation outputs.
//
// Build-time facts (git SHA, compiler, flags, build type) come from a
// CMake-configured header; runtime facts (hostname, timestamp) are read at
// capture time.  Config-file *content* hashes are recorded alongside so a
// changed experiment configuration is distinguishable from a code change.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uld3d {

struct Provenance {
  std::string git_sha;        ///< 40-hex HEAD commit, or "unknown"
  bool git_dirty = false;     ///< uncommitted changes at configure time
  std::string compiler;       ///< e.g. "GNU 13.2.0"
  std::string compiler_flags; ///< effective CXX flags for the build type
  std::string build_type;     ///< e.g. "Release"
  std::string system;         ///< e.g. "Linux-x86_64"
  std::string project_version;
  std::string hostname;       ///< captured at runtime
  std::string timestamp_utc;  ///< ISO-8601 UTC at capture, e.g. 2026-08-06T12:00:00Z
  std::int64_t unix_time_s = 0;
  int jobs = 1;                  ///< parallel::jobs() at capture time
  int hardware_concurrency = 1;  ///< cores visible to the process
  /// SIMD dispatch of the batch kernels at capture time: "avx2", "scalar",
  /// or "scalar-forced" (ULD3D_NO_SIMD suppressed an available AVX2 unit).
  /// Records which kernel family produced a result — byte-identical by
  /// contract, but the distinction matters when chasing a timing regression.
  std::string simd_isa;
  /// Peak resident set size in KiB (getrusage ru_maxrss; 0 where
  /// unavailable).  Lets BENCH_*.json correlate timing noise with memory
  /// pressure; bench refreshes it at finish() so it covers the run.
  std::int64_t peak_rss_kb = 0;
  /// Deepest the global ThreadPool queue has been in this process — a
  /// proxy for CPU oversubscription during the run.
  std::uint64_t pool_queue_high_water = 0;
  /// Named configuration fingerprints: (name, fnv1a hex of the content).
  std::vector<std::pair<std::string, std::string>> config_hashes;
};

/// Current peak RSS in KiB (getrusage; 0 on platforms without it).
[[nodiscard]] std::int64_t peak_rss_kb();

/// Capture the current process's provenance (build facts + hostname +
/// timestamp).  `config_hashes` starts empty; callers append their own.
[[nodiscard]] Provenance capture_provenance();

/// 64-bit FNV-1a of `content` — the repo's canonical content fingerprint
/// for configs (stable, dependency-free; not cryptographic).
[[nodiscard]] std::uint64_t fnv1a_hash(std::string_view content);

/// fnv1a_hash rendered as a fixed-width 16-char lowercase hex string.
[[nodiscard]] std::string fnv1a_hex(std::string_view content);

/// Render `p` as a JSON object (no trailing newline), suitable for
/// embedding as the "provenance" member of a larger document.  `indent` is
/// the number of spaces prefixed to each member line.
[[nodiscard]] std::string provenance_json(const Provenance& p,
                                          int indent = 2);

}  // namespace uld3d

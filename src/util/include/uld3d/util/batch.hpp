// Aligned contiguous arrays for structure-of-arrays batch kernels.
//
// `AlignedVector<T>` is a deliberately minimal grow-only buffer: 64-byte
// aligned storage (cache line / full AVX2 vector), `resize` without value
// preservation, and no per-element construction — exactly what a batch
// scratch that is overwritten every call needs, and nothing a std::vector
// would add (zero-fill on resize, unaligned allocator).  Trivial types
// only.
//
// The intended usage pattern is a thread-local scratch reused across calls
// (see mapper::evaluate_conv): capacity ratchets up to the largest batch
// seen and is never released mid-run, so steady-state batch evaluation
// performs zero heap allocations (visible via ULD3D_ALLOC_STATS).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>

namespace uld3d::util {

inline constexpr std::size_t kBatchAlignment = 64;

template <typename T>
class AlignedVector {
  static_assert(std::is_trivial_v<T>,
                "AlignedVector skips construction; trivial types only");

 public:
  AlignedVector() = default;
  ~AlignedVector() { release(); }

  AlignedVector(const AlignedVector&) = delete;
  AlignedVector& operator=(const AlignedVector&) = delete;
  AlignedVector(AlignedVector&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  AlignedVector& operator=(AlignedVector&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  /// Set the logical size; existing contents are NOT preserved when the
  /// buffer grows (batch scratches are fully overwritten each call).
  void resize(std::size_t n) {
    if (n > capacity_) {
      release();
      data_ = static_cast<T*>(::operator new[](
          n * sizeof(T), std::align_val_t{kBatchAlignment}));
      capacity_ = n;
    }
    size_ = n;
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{kBatchAlignment});
      data_ = nullptr;
    }
    capacity_ = 0;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace uld3d::util

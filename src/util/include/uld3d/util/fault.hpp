// Deterministic fault injection for exercising degraded paths.
//
// Model boundaries declare named fault *sites* (`fault_site("core.edp.evaluate")`);
// tests arm a site with a Failure and a hit window, and the site throws a
// StatusError exactly on the chosen hits.  Entirely inert unless armed — the
// hot-path cost of an unarmed process is one boolean load per site.
//
//   FaultInjector::instance().arm("dse.sweep.point",
//       Failure(ErrorCode::kThermalLimit, "injected"), /*skip=*/2);
//   ... run_sweep(...)   // the 3rd evaluated point fails
//   FaultInjector::instance().reset();
//
// The CLI arms sites from the ULD3D_FAULT environment variable
// ("site=kCode[:skip[:count]]") so exit-code discipline for model errors is
// testable end to end without recompiling.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "uld3d/util/status.hpp"

namespace uld3d {

class FaultInjector {
 public:
  /// Process-wide injector.  Thread-safe: sites may be checked from
  /// util/parallel pool threads (the unarmed fast path is one relaxed
  /// atomic load; armed plans mutate under a mutex).  Note that trip
  /// *ordering* is arrival order, so parallel call sites that need
  /// deterministic trips fall back to serial while the injector is armed
  /// (see dse/sweep.cpp).
  static FaultInjector& instance();

  /// Arm `site`: after `skip` passing hits, the next `count` hits throw
  /// StatusError(failure).  Re-arming a site replaces its previous plan.
  void arm(const std::string& site, Failure failure, std::uint64_t skip = 0,
           std::uint64_t count = 1);

  /// Parse "site=kCode[:skip[:count]]" (e.g. from ULD3D_FAULT); unknown code
  /// names map to kFaultInjected.  Null/empty spec is a no-op.
  void arm_from_spec(const char* spec);

  void disarm(const std::string& site);
  void reset();  ///< disarm everything and zero hit counters

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }
  /// Hits observed at `site` since it was armed (0 for unarmed sites).
  [[nodiscard]] std::uint64_t hit_count(const std::string& site) const;

  /// Called by fault sites; throws when the site is armed and due.
  void check(const std::string& site);

 private:
  struct Plan {
    Failure failure;
    std::uint64_t skip = 0;
    std::uint64_t count = 1;
    std::uint64_t hits = 0;
  };
  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::map<std::string, Plan> plans_;
};

/// Declare a fault site.  No-op unless the injector has at least one armed
/// site (checked before any map lookup or string work).
inline void fault_site(const char* name) {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.armed()) injector.check(name);
}

}  // namespace uld3d

// Shared benchmark harness for the repo's reproduction binaries.
//
// Every `bench/bench_*.cpp` builds one `bench::Harness`, times its
// computation through it, records the suite's model-fidelity scalars (EDP
// benefits, model-vs-mapper deviations, ...), and finishes:
//
//   int main(int argc, char** argv) {
//     uld3d::bench::Harness h("fig5_models", argc, argv);
//     const auto results = h.time("evaluate", [&] { ...compute... });
//     ...print the human-readable table once, from `results`...
//     h.value("resnet18_edp_benefit", results.edp, "ratio");
//     return h.finish();
//   }
//
// Iteration/repetition policy
// ---------------------------
// `time()` first runs the callable `--warmup` times (default 1) and
// DISCARDS those samples — the first iterations pay one-time costs (page
// faults, lazy statics, cold caches/branch predictors) that are not the
// steady-state cost being measured.  It then runs `--iterations` timed
// repetitions (default 5) and keeps every wall-clock sample.  Statistics
// are robust (median + MAD rather than mean + stddev) so one descheduled
// iteration on a noisy shared machine shifts the reported center little;
// the regression gate in tools/bench_compare.cpp consumes the same numbers
// and uses the CI half-widths to tell drift from noise.
//
// Output
// ------
// `finish()` prints a timing-summary table to stdout and, unless `--no-json`
// was given, writes a schema-versioned `BENCH_<suite>.json` containing the
// provenance block (util/provenance), all timing samples + statistics, the
// named fidelity values ("values", hard-gated by the comparator), and the
// named timing-derived values ("timing_values", tolerance-gated like the
// benchmark medians).  `--json PATH` picks the file, otherwise
// `$ULD3D_BENCH_DIR/BENCH_<suite>.json` (or `./BENCH_<suite>.json`).
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "uld3d/util/provenance.hpp"

namespace uld3d::bench {

/// Force the compiler to materialize `value` (prevents a timed kernel call
/// from being optimized away).  Same idiom as google-benchmark's
/// DoNotOptimize.
template <typename T>
inline void do_not_optimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile const void* sink;
  sink = &value;
  (void)sink;
#endif
}

/// Robust summary of a sample of wall-clock durations (seconds).
struct Stats {
  int iterations = 0;
  double min_s = 0.0;
  double max_s = 0.0;
  double mean_s = 0.0;
  double median_s = 0.0;
  /// Median absolute deviation from the median (robust spread).
  double mad_s = 0.0;
  /// Half-width of an approximate 95% confidence interval for the median:
  /// 1.96 * sqrt(pi/2) * 1.4826 * MAD / sqrt(n).  The normal approximation
  /// with the robust sigma estimate (1.4826 * MAD), inflated by
  /// sqrt(pi/2) ~= 1.2533 because the sample median's asymptotic standard
  /// error is that much wider than the mean's.  Zero for n <= 1.
  double ci95_half_width_s = 0.0;
};

/// Compute Stats over `samples_s`; an empty sample yields all zeros and a
/// single sample yields zero spread.
[[nodiscard]] Stats compute_stats(std::vector<double> samples_s);

/// One timed benchmark within a suite.
struct BenchResult {
  std::string name;
  int warmup = 0;
  std::vector<double> samples_s;
  Stats stats;
};

/// One named scalar result.  Used for both model-fidelity values (emitted
/// under "values", hard-gated by the comparator) and timing-derived values
/// (emitted under "timing_values", noise/tolerance-gated like benchmarks).
struct ValueResult {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< free-form: "ratio", "fraction", "ns", ...
};

/// Command-line options shared by every bench binary.
struct Options {
  int iterations = 5;
  int warmup = 1;
  std::string json_path;   ///< resolved output path; empty disables JSON
  bool write_json = true;
};

/// Parse the standard bench flags (--iterations N, --warmup N, --json PATH,
/// --no-json, --help).  Prints usage and calls std::exit(0) for --help,
/// std::exit(2) for unknown flags or bad operands.  `ULD3D_BENCH_DIR`
/// redirects the default JSON location.
[[nodiscard]] Options parse_bench_args(const std::string& suite, int argc,
                                       char** argv);

/// The JSON document schema version written by Harness::finish.
inline constexpr int kBenchSchemaVersion = 1;

class Harness {
 public:
  /// `suite` names the output document (`BENCH_<suite>.json`); argc/argv
  /// may be omitted for programmatic use (defaults, no JSON path override).
  explicit Harness(std::string suite, int argc = 0, char** argv = nullptr);

  [[nodiscard]] const std::string& suite() const { return suite_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Run `fn` warmup times (discarded), then `iterations` timed times.
  /// Returns the value produced by the *last* timed invocation so callers
  /// can build their report tables from it without recomputing.
  template <typename F>
  auto time(const std::string& name, F&& fn) {
    using R = std::invoke_result_t<F&>;
    for (int i = 0; i < options_.warmup; ++i) {
      if constexpr (std::is_void_v<R>) {
        fn();
      } else {
        do_not_optimize(fn());
      }
    }
    std::vector<double> samples_s;
    samples_s.reserve(static_cast<std::size_t>(options_.iterations));
    for (int i = 0; i + 1 < options_.iterations; ++i) {
      const double t0 = now_s();
      if constexpr (std::is_void_v<R>) {
        fn();
      } else {
        do_not_optimize(fn());
      }
      samples_s.push_back(now_s() - t0);
    }
    if constexpr (std::is_void_v<R>) {
      const double t0 = now_s();
      fn();
      samples_s.push_back(now_s() - t0);
      record_samples(name, std::move(samples_s));
    } else {
      const double t0 = now_s();
      R result = fn();
      samples_s.push_back(now_s() - t0);
      do_not_optimize(result);
      record_samples(name, std::move(samples_s));
      return result;
    }
  }

  /// Record externally measured wall-clock samples (seconds) as one
  /// benchmark entry — used by kernels that time inner loops themselves.
  /// `samples_s` must be non-empty.
  void record_samples(const std::string& name, std::vector<double> samples_s);

  /// Record one named model-fidelity scalar.  These are deterministic model
  /// outputs: the comparator hard-fails when one drifts beyond --value-tol.
  void value(const std::string& name, double v, const std::string& unit = "");

  /// Record one named timing-derived scalar (ns/op, overhead ratio, ...).
  /// These come from the wall clock and can never reproduce exactly, so the
  /// comparator gates them with the timing tolerance (and --time-advisory
  /// demotes their regressions), never with the fidelity gate.
  void timing_value(const std::string& name, double v,
                    const std::string& unit = "");

  /// Fingerprint a named configuration (file content, parameter string...)
  /// into the provenance block, so config drift is visible across runs.
  void note_config(const std::string& name, const std::string& content);

  /// Statistics of an already-timed benchmark; throws PreconditionError if
  /// `name` has not been recorded.
  [[nodiscard]] const Stats& stats(const std::string& name) const;

  /// Render the suite as a schema-versioned JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Print the timing/value summary tables to stdout and write the JSON
  /// document (unless disabled).  Returns the process exit code: 0 on
  /// success, 1 when the JSON file could not be written.
  [[nodiscard]] int finish();

 private:
  [[nodiscard]] static double now_s();

  std::string suite_;
  Options options_;
  Provenance provenance_;
  std::vector<BenchResult> benchmarks_;
  std::vector<ValueResult> values_;
  std::vector<ValueResult> timing_values_;
};

}  // namespace uld3d::bench

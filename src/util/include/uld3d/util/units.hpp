// Unit conventions and conversion constants used across the library.
//
// Internal canonical units (chosen so typical values are O(1)..O(1e9) and
// stay well inside double precision):
//   area        : square micrometres (um^2)
//   length      : nanometres (nm) for device geometry, micrometres for floorplan
//   energy      : picojoules (pJ)
//   time        : nanoseconds (ns); latency also expressed in clock cycles
//   power       : milliwatts (mW)
//   capacity    : bits
//   temperature : kelvin (K)
//
// Quantities are plain doubles with the unit spelled in the identifier
// (e.g. `area_um2`, `energy_pj`).  Conversion helpers below keep call sites
// readable and avoid magic factors.
#pragma once

namespace uld3d::units {

// --- area ---
inline constexpr double kUm2PerMm2 = 1.0e6;
inline constexpr double kNm2PerUm2 = 1.0e6;

constexpr double mm2_to_um2(double mm2) { return mm2 * kUm2PerMm2; }
constexpr double um2_to_mm2(double um2) { return um2 / kUm2PerMm2; }
constexpr double nm2_to_um2(double nm2) { return nm2 / kNm2PerUm2; }

// --- length ---
inline constexpr double kNmPerUm = 1.0e3;
constexpr double nm_to_um(double nm) { return nm / kNmPerUm; }
constexpr double um_to_nm(double um) { return um * kNmPerUm; }

// --- energy ---
inline constexpr double kPjPerNj = 1.0e3;
inline constexpr double kPjPerUj = 1.0e6;
inline constexpr double kFjPerPj = 1.0e3;
constexpr double nj_to_pj(double nj) { return nj * kPjPerNj; }
constexpr double uj_to_pj(double uj) { return uj * kPjPerUj; }
constexpr double fj_to_pj(double fj) { return fj / kFjPerPj; }
constexpr double pj_to_uj(double pj) { return pj / kPjPerUj; }

// --- time ---
inline constexpr double kNsPerUs = 1.0e3;
inline constexpr double kNsPerMs = 1.0e6;
inline constexpr double kNsPerS = 1.0e9;
constexpr double us_to_ns(double us) { return us * kNsPerUs; }
constexpr double ns_to_s(double ns) { return ns / kNsPerS; }
constexpr double s_to_ns(double s) { return s * kNsPerS; }

/// Clock period in ns for a frequency in MHz.
constexpr double mhz_to_period_ns(double mhz) { return 1.0e3 / mhz; }
/// Frequency in MHz for a clock period in ns.
constexpr double period_ns_to_mhz(double period_ns) { return 1.0e3 / period_ns; }

// --- power ---
/// pJ per ns equals mW (1 pJ/ns = 1e-12 J / 1e-9 s = 1e-3 W).
constexpr double pj_per_ns_to_mw(double pj_per_ns) { return pj_per_ns; }
constexpr double mw_to_w(double mw) { return mw * 1.0e-3; }
constexpr double w_to_mw(double w) { return w * 1.0e3; }

// --- capacity ---
inline constexpr double kBitsPerByte = 8.0;
inline constexpr double kBitsPerKB = 8.0 * 1024.0;
inline constexpr double kBitsPerMB = 8.0 * 1024.0 * 1024.0;
constexpr double mb_to_bits(double mb) { return mb * kBitsPerMB; }
constexpr double kb_to_bits(double kb) { return kb * kBitsPerKB; }
constexpr double bytes_to_bits(double bytes) { return bytes * kBitsPerByte; }
constexpr double bits_to_mb(double bits) { return bits / kBitsPerMB; }

}  // namespace uld3d::units

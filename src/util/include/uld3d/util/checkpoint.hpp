// Crash-safe file writes and interrupt plumbing — the util substrate of the
// checkpoint/restart subsystem (the dse-level sweep state lives in
// uld3d/dse/checkpoint.hpp).
//
// Two pieces:
//
//  * `write_file_atomic(path, content)` — write-temp-then-rename.  The
//    content lands in `<path>.tmp.<pid>` first, is flushed and fsync'd, and
//    only then renamed over `path`.  A process killed mid-write can leave a
//    stale temp file behind but NEVER a torn destination: readers either see
//    the old complete file or the new complete file.  Every emitter of a
//    consumed-later artifact (metrics/trace JSON, BENCH_*.json, CSV tables,
//    sweep checkpoints) writes through this helper.
//
//  * the interrupt flag — an async-signal-safe latch set by SIGINT/SIGTERM
//    once `install_interrupt_handlers()` has been called.  Long runners
//    (dse::run_sweep_resumable) poll `interrupt_requested()` between design
//    points, flush a final checkpoint, and unwind with a distinct
//    "interrupted, resumable" status instead of dying mid-state.
#pragma once

#include <string>

namespace uld3d {

/// Write `content` to `path` atomically (write temp + flush + fsync +
/// rename).  On failure the temp file is removed, a warning is logged, and
/// false is returned; `path` is never left half-written.  Declares the
/// fault site "util.export.atomic_write" between the temp write and the
/// rename so tests can prove a mid-write crash leaves no destination file.
bool write_file_atomic(const std::string& path, const std::string& content);

/// Install SIGINT/SIGTERM handlers that set the process-wide interrupt
/// flag (and nothing else — the handlers are async-signal-safe).
/// Idempotent; there is no uninstall.
void install_interrupt_handlers();

/// True once an installed handler has caught SIGINT/SIGTERM, or after
/// `set_interrupt_requested(true)`.
[[nodiscard]] bool interrupt_requested();

/// The signal number that set the flag (0 when set programmatically or not
/// set at all).
[[nodiscard]] int interrupt_signal();

/// Set/clear the flag programmatically — tests and in-process cancellation
/// use this instead of raising a real signal.
void set_interrupt_requested(bool requested);

}  // namespace uld3d

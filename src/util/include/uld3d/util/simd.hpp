// Runtime SIMD dispatch for the data-oriented batch kernels.
//
// The batch kernels (mapper/batch_eval, sim's energy finishing, the phys
// occupancy-index build) each ship two implementations: a portable scalar
// loop and an AVX2 one.  Which one runs is decided ONCE per process from
// CPUID plus the `ULD3D_NO_SIMD` escape hatch (set non-empty to force the
// scalar path, mirroring `ULD3D_NO_MAPCACHE`/`ULD3D_NO_PLACER_INDEX`), and
// can be overridden at runtime with `set_force_scalar` for differential
// tests.
//
// Determinism contract (DESIGN.md §16): every AVX2 kernel mirrors the
// scalar expression tree operation-for-operation — IEEE-exact per-lane
// mul/add/div plus *selection*-based min/max (blend on a compare, matching
// std::min/std::max operand order, never the asymmetric NaN/±0 semantics
// of vminpd/vmaxpd) — and reductions are either selections (EDP argmin) or
// integer sums (summed-area tables), both order-insensitive at the bit
// level.  No floating-point sum is reassociated, so scalar and AVX2 runs
// are byte-identical, not merely close.
#pragma once

#include <cstddef>
#include <cstdint>

namespace uld3d::simd {

/// Instruction set the batch kernels dispatch to.
enum class Isa {
  kScalar,  ///< portable fallback (also: ULD3D_NO_SIMD, non-x86, old CPUs)
  kAvx2,    ///< 4x f64 / 8x i32 AVX2 kernels
};

/// The ISA chosen at startup: AVX2 when the CPU supports it and
/// `ULD3D_NO_SIMD` is unset/empty, scalar otherwise.  First call latches
/// the environment; `set_force_scalar` overrides afterwards.
[[nodiscard]] Isa active_isa();

/// True when the AVX2 kernels are active (the common dispatch test).
[[nodiscard]] bool avx2_active();

/// Human-readable dispatch record for provenance/metrics: "avx2",
/// "scalar", or "scalar-forced" when ULD3D_NO_SIMD / set_force_scalar
/// suppressed an available AVX2 unit.
[[nodiscard]] const char* isa_name();

/// Force the scalar fallbacks at runtime (tests, A/B verification).  Does
/// not touch the latched CPUID result: clearing the override restores the
/// startup decision.
void set_force_scalar(bool force);

/// True when `ULD3D_NO_SIMD` was set (non-empty) at first dispatch.
[[nodiscard]] bool disabled_by_env();

/// True when the CPU itself supports AVX2 (independent of overrides).
[[nodiscard]] bool cpu_has_avx2();

/// Mirror the startup dispatch into the MetricsRegistry (when metrics are
/// enabled): gauge "simd.dispatch" is 1.0 for AVX2, 0.0 for scalar.
void record_dispatch_metric();

// ---------------------------------------------------------------------------
// Shared reduction kernels.  Each dispatches on active_isa() internally and
// returns bit-identical results on every path.
// ---------------------------------------------------------------------------

/// Index of the first element strictly smaller than every earlier element's
/// running minimum — i.e. the index the serial recurrence
/// `if (x[i] < best) { best = x[i]; win = i; }` (best seeded with +inf)
/// ends on.  NaNs never win (NaN < best is false).  Returns `n` when no
/// element beats +inf (empty input, all-NaN, or all +inf).
///
/// The AVX2 path computes the running minimum 4 lanes at a time with
/// compare+blend (same `<` predicate) and then re-scans serially for the
/// first index attaining it — the documented "vectorized reduction with a
/// deterministic serial argmin tie-break".
[[nodiscard]] std::size_t argmin_strict(const double* x, std::size_t n);

/// Inclusive prefix sum of `n` uint32 values, `out[i] = sum(x[0..i])`.
/// Integer addition is exact and associative, so the AVX2 in-lane
/// shift-add scan is bit-identical to the serial loop.
void prefix_sum_u32(const std::uint32_t* x, std::uint32_t* out,
                    std::size_t n);

/// Inclusive prefix max-scan of int32: `out[i] = max(x[0..i])`.
void prefix_max_i32(const std::int32_t* x, std::int32_t* out, std::size_t n);

}  // namespace uld3d::simd

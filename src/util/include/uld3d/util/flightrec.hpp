// Flight recorder: an always-on, lock-free per-thread ring buffer of recent
// span begin/end and event records, plus an async-signal-safe postmortem
// dumper (DESIGN.md §15).
//
// Unlike metrics/trace/telemetry — which are opt-in and gated behind a single
// relaxed atomic when disabled — the flight recorder is *always on*: every
// TraceSpan constructor/destructor and every flightrec::event() call lands a
// record regardless of which observability surfaces are armed.  The budget is
// therefore the record cost itself, single-digit ns (~9 ns/record measured;
// pinned by bench_perf_kernels' flightrec_event_ns_per_op):
// one thread-local read, one relaxed fetch_add on a global sequence counter,
// a ≤38-byte name copy into a fixed slot, and a relaxed store.  There are no
// clock reads (too slow for the budget), no allocation, and no locks.
//
// On a fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) or std::terminate,
// install_postmortem()'s handlers write `<run>.postmortem.json` — RunId,
// provenance, per-thread active-span stacks, the last-N records, and a
// curated metrics snapshot — using only pre-formatted buffers, relaxed
// atomic loads, and write(2).  See flightrec.cpp for the signal-safety rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace uld3d::flightrec {

/// Maximum number of threads with their own ring.  Threads beyond this drop
/// their records (counted in records_dropped()) rather than contend.
inline constexpr std::size_t kMaxThreads = 64;
/// Records retained per thread (the "last N" in the postmortem dump).
inline constexpr std::size_t kRingCapacity = 256;
/// Maximum tracked span nesting depth; deeper frames still balance
/// begin/end counts but their names are not retained on the stack.
inline constexpr std::size_t kMaxSpanDepth = 16;
/// Bytes per stored name, including the NUL terminator (longer names are
/// truncated — they come from code literals, so this is a non-issue in
/// practice and keeps record slots fixed-size).
inline constexpr std::size_t kNameBytes = 40;
/// thread_id() result for threads that arrived after kMaxThreads slots
/// were claimed.
inline constexpr std::uint32_t kOverflowThreadId = 0xffffffffu;

/// Record a span entry.  Called by every TraceSpan constructor (even when
/// tracing is disabled) — keep it on the single-digit-ns budget.
void span_begin(std::string_view name);

/// Record a span exit, popping the per-thread active-span stack.
void span_end();

/// Record a point event with an optional argument (e.g. a sweep grid index).
void event(std::string_view name, std::uint64_t arg = 0);

/// Dense id of the calling thread's ring slot (assigned on first use, stable
/// for the thread's lifetime), or kOverflowThreadId when the pool is full.
/// Also used by the trace recorder so trace tids, thread names, and
/// postmortem thread identities all agree.
[[nodiscard]] std::uint32_t thread_id();

/// Name the calling thread in the flight recorder *and* the OS (via
/// pthread_setname_np, so gdb/top/perf agree).  Truncated to 15 characters.
void set_thread_name(const char* name);

/// Registered name for a thread id ("" when unset or out of range).  The
/// returned pointer is to process-lifetime storage.
[[nodiscard]] const char* thread_name(std::uint32_t id);

/// Number of ring slots claimed so far (capped at kMaxThreads).
[[nodiscard]] std::size_t thread_count();

/// Records dropped because more than kMaxThreads threads recorded.
[[nodiscard]] std::uint64_t records_dropped();

/// Arm the postmortem dumper: pre-format the JSON header (RunId, shard,
/// provenance) for the *current* run context, capture signal-safe metric
/// handles, and install the fatal-signal + std::terminate hooks (handlers
/// are installed once; the header/path refresh on every call).  Returns
/// false if `path` is too long for the pre-formatted buffer.
bool install_postmortem(const std::string& path);

/// True once install_postmortem() has armed the dumper.
[[nodiscard]] bool postmortem_installed();

/// The path the next dump will be written to ("" when not installed).
[[nodiscard]] const char* postmortem_path();

/// Write the postmortem JSON now (async-signal-safe; also the testing entry
/// point).  `reason` must be a short literal-like string; `signal_number`
/// is 0 for non-signal dumps.  Returns false when not installed or the
/// file cannot be opened.
bool write_postmortem(const char* reason, int signal_number = 0);

}  // namespace uld3d::flightrec

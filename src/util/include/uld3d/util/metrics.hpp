// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, cheap enough for inner loops and safe to update from multiple
// threads.
//
// Instrumentation sites obtain a handle once (a registry lookup under a
// mutex) and then update it lock-free:
//
//   Counter& points = MetricsRegistry::instance().counter("dse.sweep.points");
//   for (...) { points.add(); ... }
//
// The whole subsystem is *disabled by default*: every update first performs
// a single relaxed atomic-bool load (`metrics_enabled()`) and returns, so an
// uninstrumented-feeling hot path costs one predictable branch — the same
// policy as `fault_site()` in util/fault.hpp.  `MetricsRegistry::set_enabled`
// (or the CLI's `--metrics`/`--profile` flags) turns recording on.
//
// Exporters: `to_table()` renders a util/table summary, `to_json()` a flat
// metrics JSON document, `to_csv()` an RFC-4180-ish CSV; `write_file()`
// picks JSON or CSV from the file extension.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "uld3d/util/export.hpp"  // re-exports json_escape (its home moved there)
#include "uld3d/util/table.hpp"

namespace uld3d {

namespace metrics_detail {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_detail

/// True when metric updates are recorded.  One relaxed load; safe to call
/// from any thread and from inner loops.
inline bool metrics_enabled() {
  return metrics_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonically increasing event count (points evaluated, candidates
/// pruned, faults injected, ...).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (best cost so far, points/sec, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so observation is a short scan plus relaxed atomic adds.
/// An implicit overflow bucket catches values above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }
  /// Count per bucket; one extra trailing entry for the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;

  /// Bucket-interpolated quantile estimate (Prometheus-style): find the
  /// bucket holding the q*count-th observation and interpolate linearly
  /// inside it.  Accuracy is bounded by the bucket width; observations in
  /// the overflow bucket clamp to the last finite bound.  q in [0, 1];
  /// returns 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// One exported data point of `snapshot()`.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;           ///< counter/gauge value; histogram mean
  std::uint64_t count = 0;      ///< histogram observation count
  double sum = 0.0;             ///< histogram observation sum
  double p50 = 0.0;             ///< histogram interpolated median
  double p95 = 0.0;             ///< histogram interpolated 95th percentile
  double p99 = 0.0;             ///< histogram interpolated 99th percentile
  std::vector<std::pair<double, std::uint64_t>> buckets;  ///< le -> count
};

/// The process-wide registry.  Series are registered on first lookup and
/// live for the process lifetime, so handles stay valid forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  static void set_enabled(bool enabled) {
    metrics_detail::g_enabled.store(enabled, std::memory_order_relaxed);
  }

  /// Find-or-create; a name is permanently bound to its first kind
  /// (looking it up as a different kind throws PreconditionError).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Default bounds suit microsecond-scale durations (1us .. 10s).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  /// Zero every value; registered series (and histogram bounds) survive.
  void reset_values();

  /// Consistent-enough view for exporting (each series is read atomically;
  /// the set of series is read under the registry mutex).  Sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  [[nodiscard]] Table to_table() const;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  /// Write JSON when `path` ends in ".json", CSV otherwise.  Returns false
  /// (and logs a warning) when the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer feeding elapsed *microseconds* into a histogram on scope
/// exit.  Free when metrics are disabled (no clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) {
    if (!metrics_enabled()) return;
    histogram_ = &histogram;
    start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

// json_escape used to be declared here; it now lives in util/export.hpp
// (included above), next to csv_escape, so there is a single escaping home.
// Existing `#include "uld3d/util/metrics.hpp"` users keep compiling.

}  // namespace uld3d

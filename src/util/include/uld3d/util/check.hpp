// Error-handling primitives for the uld3d library.
//
// Following the C++ Core Guidelines (I.6, E.x) we express preconditions as
// named checking functions that throw on violation rather than macros.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace uld3d {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant fails (a library bug, not a user error).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Check a documented precondition; throws PreconditionError on violation.
inline void expects(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": precondition failed: " +
                            message);
  }
}

/// Check an internal invariant; throws InvariantError on violation.
inline void ensures(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": invariant failed: " +
                         message);
  }
}

}  // namespace uld3d

// Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
//
// The library never uses std::random_device: every stochastic component
// (e.g. the simulated-annealing placer) must be reproducible from a seed so
// experiments and tests are deterministic.
#pragma once

#include <array>
#include <cstdint>

namespace uld3d {

/// xoshiro256** seeded via splitmix64.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : (*this)() % bound;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace uld3d

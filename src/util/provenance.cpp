#include "uld3d/util/provenance.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "uld3d/util/export.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/provenance_config.hpp"
#include "uld3d/util/simd.hpp"

#if defined(_WIN32)
// No gethostname without winsock; fall back to the environment.
#else
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace uld3d {

namespace {

std::string capture_hostname() {
#if defined(_WIN32)
  const char* name = std::getenv("COMPUTERNAME");
  return name == nullptr ? std::string("unknown") : std::string(name);
#else
  char buffer[256] = {0};
  if (gethostname(buffer, sizeof(buffer) - 1) != 0) return "unknown";
  return buffer[0] == '\0' ? std::string("unknown") : std::string(buffer);
#endif
}

}  // namespace

std::int64_t peak_rss_kb() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::int64_t>(usage.ru_maxrss);
#endif
#endif
}

Provenance capture_provenance() {
  Provenance p;
  p.git_sha = ULD3D_PROV_GIT_SHA;
  p.git_dirty = ULD3D_PROV_GIT_DIRTY != 0;
  p.compiler =
      std::string(ULD3D_PROV_COMPILER_ID) + " " + ULD3D_PROV_COMPILER_VERSION;
  p.compiler_flags = ULD3D_PROV_CXX_FLAGS;
  p.build_type = ULD3D_PROV_BUILD_TYPE;
  p.system = ULD3D_PROV_SYSTEM;
  p.project_version = ULD3D_PROV_PROJECT_VERSION;
  p.hostname = capture_hostname();
  p.jobs = parallel::jobs();
  p.hardware_concurrency = parallel::hardware_concurrency();
  p.simd_isa = simd::isa_name();
  p.peak_rss_kb = peak_rss_kb();
  p.pool_queue_high_water = parallel::ThreadPool::instance().queue_high_water();

  const auto now = std::chrono::system_clock::now();
  const std::time_t now_t = std::chrono::system_clock::to_time_t(now);
  p.unix_time_s = static_cast<std::int64_t>(now_t);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now_t);
#else
  gmtime_r(&now_t, &utc);
#endif
  char stamp[80] = {0};
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  p.timestamp_utc = stamp;
  return p;
}

std::uint64_t fnv1a_hash(std::string_view content) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : content) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string fnv1a_hex(std::string_view content) {
  char buffer[17] = {0};
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fnv1a_hash(content)));
  return buffer;
}

std::string provenance_json(const Provenance& p, int indent) {
  const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent),
                        ' ');
  std::ostringstream os;
  os << "{\n";
  const auto field = [&](const char* name, const std::string& value,
                         bool comma = true) {
    os << pad << "  \"" << name << "\": \"" << json_escape(value) << "\""
       << (comma ? ",\n" : "\n");
  };
  field("git_sha", p.git_sha);
  os << pad << "  \"git_dirty\": " << (p.git_dirty ? "true" : "false")
     << ",\n";
  field("compiler", p.compiler);
  field("compiler_flags", p.compiler_flags);
  field("build_type", p.build_type);
  field("system", p.system);
  field("project_version", p.project_version);
  field("hostname", p.hostname);
  field("timestamp_utc", p.timestamp_utc);
  os << pad << "  \"unix_time_s\": " << p.unix_time_s << ",\n";
  os << pad << "  \"jobs\": " << p.jobs << ",\n";
  os << pad << "  \"hardware_concurrency\": " << p.hardware_concurrency
     << ",\n";
  field("simd_isa", p.simd_isa);
  os << pad << "  \"peak_rss_kb\": " << p.peak_rss_kb << ",\n";
  os << pad << "  \"pool_queue_high_water\": " << p.pool_queue_high_water
     << ",\n";
  os << pad << "  \"config_hashes\": {";
  for (std::size_t i = 0; i < p.config_hashes.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n" << pad << "    \"" << json_escape(p.config_hashes[i].first)
       << "\": \"" << json_escape(p.config_hashes[i].second) << "\"";
  }
  if (!p.config_hashes.empty()) os << "\n" << pad << "  ";
  os << "}\n" << pad << "}";
  return os.str();
}

}  // namespace uld3d

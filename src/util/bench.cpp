#include "uld3d/util/bench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "uld3d/util/check.hpp"
#include "uld3d/util/checkpoint.hpp"
#include "uld3d/util/export.hpp"
#include "uld3d/util/log.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/table.hpp"

namespace uld3d::bench {

namespace {

/// Round-trippable double formatting for the JSON document (value drift at
/// the 1e-9 relative tolerance must survive emit + re-parse).
std::string json_number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN literals; encode as strings the comparator
    // understands.
    if (std::isnan(value)) return "\"nan\"";
    return value > 0 ? "\"inf\"" : "\"-inf\"";
  }
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

double median_of(std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

[[noreturn]] void usage(const std::string& suite, int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: bench_" << suite << " [options]\n"
      << "  --iterations N   timed repetitions per benchmark (default 5)\n"
      << "  --warmup N       discarded warmup runs per benchmark (default 1)\n"
      << "  --json PATH      write BENCH JSON to PATH\n"
      << "  --no-json        skip the BENCH_*.json artifact\n"
      << "  --help           this message\n"
      << "Default JSON location: $ULD3D_BENCH_DIR/BENCH_" << suite
      << ".json (or ./BENCH_" << suite << ".json).\n";
  std::exit(exit_code);
}

}  // namespace

Stats compute_stats(std::vector<double> samples_s) {
  Stats s;
  s.iterations = static_cast<int>(samples_s.size());
  if (samples_s.empty()) return s;

  double sum = 0.0;
  s.min_s = samples_s.front();
  s.max_s = samples_s.front();
  for (const double x : samples_s) {
    sum += x;
    s.min_s = std::min(s.min_s, x);
    s.max_s = std::max(s.max_s, x);
  }
  s.mean_s = sum / static_cast<double>(samples_s.size());
  s.median_s = median_of(samples_s);  // sorts in place

  std::vector<double> deviations;
  deviations.reserve(samples_s.size());
  for (const double x : samples_s) deviations.push_back(std::abs(x - s.median_s));
  s.mad_s = median_of(deviations);

  if (samples_s.size() > 1) {
    // Normal approximation with the robust sigma estimate 1.4826 * MAD,
    // inflated by sqrt(pi/2) because the sample median's asymptotic
    // standard error is sqrt(pi/2) * sigma / sqrt(n), not sigma / sqrt(n).
    const double median_se_inflation = std::sqrt(std::acos(-1.0) / 2.0);
    s.ci95_half_width_s = 1.96 * median_se_inflation * 1.4826 * s.mad_s /
                          std::sqrt(static_cast<double>(samples_s.size()));
  }
  return s;
}

Options parse_bench_args(const std::string& suite, int argc, char** argv) {
  Options opts;
  std::string json_override;
  const auto int_operand = [&](int i, const char* flag) {
    if (i + 1 >= argc) {
      std::cerr << "bench: " << flag << " needs an operand\n";
      usage(suite, 2);
    }
    char* end = nullptr;
    const long v = std::strtol(argv[i + 1], &end, 10);
    if (end == nullptr || *end != '\0' || v < 0 || v > 1000000) {
      std::cerr << "bench: bad operand for " << flag << ": " << argv[i + 1]
                << "\n";
      usage(suite, 2);
    }
    return static_cast<int>(v);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iterations" || arg == "-n") {
      opts.iterations = int_operand(i, arg.c_str());
      ++i;
    } else if (arg == "--warmup") {
      opts.warmup = int_operand(i, arg.c_str());
      ++i;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "bench: --json needs a path operand\n";
        usage(suite, 2);
      }
      json_override = argv[++i];
    } else if (arg == "--no-json") {
      opts.write_json = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(suite, 0);
    } else {
      std::cerr << "bench: unknown flag: " << arg << "\n";
      usage(suite, 2);
    }
  }
  if (opts.iterations < 1) {
    std::cerr << "bench: --iterations must be >= 1\n";
    usage(suite, 2);
  }

  if (!json_override.empty()) {
    opts.json_path = json_override;
  } else {
    const char* dir = std::getenv("ULD3D_BENCH_DIR");
    opts.json_path = (dir == nullptr || *dir == '\0')
                         ? "BENCH_" + suite + ".json"
                         : std::string(dir) + "/BENCH_" + suite + ".json";
  }
  if (!opts.write_json) opts.json_path.clear();
  return opts;
}

Harness::Harness(std::string suite, int argc, char** argv)
    : suite_(std::move(suite)) {
  expects(!suite_.empty(), "bench suite name must be non-empty");
  if (argc > 0 && argv != nullptr) {
    options_ = parse_bench_args(suite_, argc, argv);
  } else {
    options_.json_path = "BENCH_" + suite_ + ".json";
  }
  provenance_ = capture_provenance();
  // Fingerprint the harness configuration itself so two runs with different
  // iteration policies never silently compare as equals.
  note_config("bench_options", suite_ + " iterations=" +
                                   std::to_string(options_.iterations) +
                                   " warmup=" +
                                   std::to_string(options_.warmup));
}

double Harness::now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Harness::record_samples(const std::string& name,
                             std::vector<double> samples_s) {
  expects(!name.empty(), "benchmark name must be non-empty");
  expects(!samples_s.empty(), "benchmark needs at least one timed sample");
  BenchResult result;
  result.name = name;
  result.warmup = options_.warmup;
  result.stats = compute_stats(samples_s);
  result.samples_s = std::move(samples_s);
  benchmarks_.push_back(std::move(result));
}

void Harness::value(const std::string& name, double v,
                    const std::string& unit) {
  expects(!name.empty(), "value name must be non-empty");
  values_.push_back({name, v, unit});
}

void Harness::timing_value(const std::string& name, double v,
                           const std::string& unit) {
  expects(!name.empty(), "timing value name must be non-empty");
  timing_values_.push_back({name, v, unit});
}

void Harness::note_config(const std::string& name,
                          const std::string& content) {
  expects(!name.empty(), "config name must be non-empty");
  provenance_.config_hashes.emplace_back(name, fnv1a_hex(content));
}

const Stats& Harness::stats(const std::string& name) const {
  for (const auto& b : benchmarks_) {
    if (b.name == name) return b.stats;
  }
  throw PreconditionError("no benchmark named '" + name + "' recorded");
}

std::string Harness::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema_version\": " << kBenchSchemaVersion << ",\n"
     << "  \"suite\": \"" << json_escape(suite_) << "\",\n"
     << "  \"provenance\": " << provenance_json(provenance_, 2) << ",\n";
  os << "  \"benchmarks\": [";
  for (std::size_t i = 0; i < benchmarks_.size(); ++i) {
    const BenchResult& b = benchmarks_[i];
    if (i > 0) os << ",";
    os << "\n    {\"name\": \"" << json_escape(b.name) << "\", "
       << "\"iterations\": " << b.stats.iterations << ", "
       << "\"warmup\": " << b.warmup << ",\n"
       << "     \"min_s\": " << json_number(b.stats.min_s) << ", "
       << "\"max_s\": " << json_number(b.stats.max_s) << ", "
       << "\"mean_s\": " << json_number(b.stats.mean_s) << ",\n"
       << "     \"median_s\": " << json_number(b.stats.median_s) << ", "
       << "\"mad_s\": " << json_number(b.stats.mad_s) << ", "
       << "\"ci95_half_width_s\": " << json_number(b.stats.ci95_half_width_s)
       << ",\n     \"samples_s\": [";
    for (std::size_t j = 0; j < b.samples_s.size(); ++j) {
      if (j > 0) os << ", ";
      os << json_number(b.samples_s[j]);
    }
    os << "]}";
  }
  os << "\n  ],\n";
  const auto emit_values = [&](const std::vector<ValueResult>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      const ValueResult& v = values[i];
      if (i > 0) os << ",";
      os << "\n    {\"name\": \"" << json_escape(v.name) << "\", \"value\": "
         << json_number(v.value) << ", \"unit\": \"" << json_escape(v.unit)
         << "\"}";
    }
  };
  os << "  \"values\": [";
  emit_values(values_);
  os << "\n  ],\n";
  os << "  \"timing_values\": [";
  emit_values(timing_values_);
  os << "\n  ]\n}\n";
  return os.str();
}

int Harness::finish() {
  if (!benchmarks_.empty()) {
    Table table({"Benchmark", "Iters", "Median ms", "Mean ms", "Min ms",
                 "MAD ms", "CI95 +/- ms"});
    for (const auto& b : benchmarks_) {
      table.add_row({b.name, std::to_string(b.stats.iterations),
                     format_double(b.stats.median_s * 1e3, 3),
                     format_double(b.stats.mean_s * 1e3, 3),
                     format_double(b.stats.min_s * 1e3, 3),
                     format_double(b.stats.mad_s * 1e3, 3),
                     format_double(b.stats.ci95_half_width_s * 1e3, 3)});
    }
    table.print(std::cout,
                "Timing: " + suite_ + " (warmup " +
                    std::to_string(options_.warmup) + ", " +
                    std::to_string(options_.iterations) + " iterations)");
  }
  if (!values_.empty()) {
    Table table({"Fidelity value", "Value", "Unit"});
    for (const auto& v : values_) {
      table.add_row({v.name, format_double(v.value, 6), v.unit});
    }
    table.print(std::cout, "Recorded values: " + suite_);
  }
  if (!timing_values_.empty()) {
    Table table({"Timing-derived value", "Value", "Unit"});
    for (const auto& v : timing_values_) {
      table.add_row({v.name, format_double(v.value, 6), v.unit});
    }
    table.print(std::cout, "Timing-derived values: " + suite_);
  }
  if (!options_.write_json || options_.json_path.empty()) return 0;
  // Refresh the pressure facts at the end of the run: peak RSS and the
  // pool's queue high-water were near zero when the harness was constructed
  // — only now do they describe the benchmarks that just executed.
  provenance_.peak_rss_kb = peak_rss_kb();
  provenance_.pool_queue_high_water =
      parallel::ThreadPool::instance().queue_high_water();
  if (!write_file_atomic(options_.json_path, to_json())) return 1;
  std::cout << "Wrote " << options_.json_path << "\n";
  return 0;
}

}  // namespace uld3d::bench

#include "uld3d/util/resource.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>

#include "uld3d/util/provenance.hpp"  // peak_rss_kb

namespace uld3d {
namespace {

// Three-state gate so the operator-new hook costs one relaxed load when
// the feature is off: 0 = environment not consulted yet, 1 = off, 2 = on.
std::atomic<int> g_alloc_state{0};
thread_local std::uint64_t tl_alloc_bytes = 0;

int alloc_state_init() {
  const char* env = std::getenv("ULD3D_ALLOC_STATS");
  const int state =
      (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) ? 2 : 1;
  g_alloc_state.store(state, std::memory_order_relaxed);
  return state;
}

// Called from the global operator new replacements below.
inline void note_alloc(std::size_t bytes) {
  int state = g_alloc_state.load(std::memory_order_relaxed);
  if (state == 0) state = alloc_state_init();
  if (state == 2) tl_alloc_bytes += bytes;
}

void* alloc_or_throw(std::size_t size) {
  note_alloc(size);
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* alloc_aligned_or_throw(std::size_t size, std::size_t align) {
  note_alloc(size);
  if (align < sizeof(void*)) align = sizeof(void*);
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, size) == 0) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

bool alloc_stats_enabled() {
  int state = g_alloc_state.load(std::memory_order_relaxed);
  if (state == 0) state = alloc_state_init();
  return state == 2;
}

void set_alloc_stats_enabled(bool enabled) {
  g_alloc_state.store(enabled ? 2 : 1, std::memory_order_relaxed);
}

std::uint64_t thread_alloc_bytes() { return tl_alloc_bytes; }

double thread_cpu_time_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
#else
  return 0.0;
#endif
}

ResourceSample sample_thread_resources() {
  return {thread_cpu_time_us(), thread_alloc_bytes(), peak_rss_kb()};
}

}  // namespace uld3d

// ---------------------------------------------------------------------------
// Global operator new replacements: identical to the defaults (malloc /
// posix_memalign, new-handler loop) plus the per-thread byte counter.
// The deletes are defined alongside for a matched, self-contained family;
// memory from either allocator is free()-compatible.  Under ASan/TSan these
// user replacements are supported — malloc itself stays intercepted, so
// redzones and leak checking still apply underneath.

void* operator new(std::size_t size) { return uld3d::alloc_or_throw(size); }
void* operator new[](std::size_t size) { return uld3d::alloc_or_throw(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return uld3d::alloc_or_throw(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return uld3d::alloc_or_throw(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return uld3d::alloc_aligned_or_throw(size,
                                       static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return uld3d::alloc_aligned_or_throw(size,
                                       static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return uld3d::alloc_aligned_or_throw(size,
                                         static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return uld3d::alloc_aligned_or_throw(size,
                                         static_cast<std::size_t>(align));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#include "uld3d/util/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <sstream>
#include <unistd.h>

#include "uld3d/util/export.hpp"
#include "uld3d/util/log.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/provenance.hpp"

namespace uld3d {

namespace telemetry_detail {
std::atomic<bool> g_enabled{false};
}  // namespace telemetry_detail

namespace {

/// Flush threshold: large enough to amortize the write(2), small enough
/// that a SIGKILL loses at most a few dozen point_done lines (the
/// checkpoint flush path syncs explicitly anyway).
constexpr std::size_t kFlushBytes = 64 * 1024;

/// Exact, round-trippable double rendering — same contract as the sweep
/// checkpoint writer, so event payloads from different jobs counts (or a
/// resumed run) compare byte-identical after canonicalization.
std::string json_number_exact(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

struct CurrentContext {
  std::mutex mutex;
  RunContext context;
};

CurrentContext& current_context_storage() {
  static CurrentContext storage;
  return storage;
}

/// Begin one event line: the fixed header every event type shares.
std::ostringstream event_head(const char* type, const RunContext& ctx) {
  std::ostringstream os;
  os << "{\"schema\": " << kTelemetrySchemaVersion << ", \"ev\": \"" << type
     << "\", \"run\": \"" << json_escape(ctx.run_id) << "\", \"shard\": \""
     << ctx.shard_label() << "\", \"ts_ms\": " << wall_clock_ms();
  return os;
}

void append_string_array(std::ostringstream& os, const char* member,
                         const std::vector<std::string>& values) {
  os << ", \"" << member << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(values[i]) << "\"";
  }
  os << "]";
}

void append_number_array(std::ostringstream& os, const char* member,
                         const std::vector<double>& values) {
  os << ", \"" << member << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << json_number_exact(values[i]);
  }
  os << "]";
}

}  // namespace

RunContext make_run_context(std::size_t shard_index, std::size_t shard_count) {
  // The identity folds in everything that distinguishes two runs without
  // randomness: machine + binary provenance + wall clock + pid, plus a
  // process-local counter so two contexts made in one process differ.
  static std::atomic<std::uint64_t> next{0};
  const Provenance p = capture_provenance();
  std::ostringstream identity;
  identity << p.git_sha << "\n" << p.hostname << "\n" << p.timestamp_utc
           << "\n" << p.unix_time_s << "\n" << ::getpid();
  RunContext ctx;
  ctx.run_id = fnv1a_hex(identity.str()) + "-" +
               std::to_string(next.fetch_add(1, std::memory_order_relaxed));
  ctx.shard_index = shard_index;
  ctx.shard_count = shard_count;
  return ctx;
}

void set_current_run_context(const RunContext& context) {
  CurrentContext& storage = current_context_storage();
  const std::lock_guard<std::mutex> lock(storage.mutex);
  storage.context = context;
}

RunContext current_run_context() {
  CurrentContext& storage = current_context_storage();
  const std::lock_guard<std::mutex> lock(storage.mutex);
  return storage.context;
}

EventSink& EventSink::instance() {
  static EventSink sink;
  return sink;
}

bool EventSink::open(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Append mode: a resumed run reopens the same file and the analyzer
  // unions the runs' events (re-evaluated points dedupe because their rows
  // are bit-identical).
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    log_warning("cannot open events file for append: " + path);
    return false;
  }
  fd_ = fd;
  path_ = path;
  buffer_.clear();
  // Per-run counter: run_end's events_emitted counts THIS run's events even
  // when a resumed process reopens the same file.
  emitted_.store(0, std::memory_order_relaxed);
  telemetry_detail::g_enabled.store(true, std::memory_order_relaxed);
  return true;
}

void EventSink::configure_from_env() {
  const char* path = std::getenv("ULD3D_EVENTS");
  if (path == nullptr || *path == '\0') return;
  open(path);
}

void EventSink::flush(bool sync) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  // Whole-buffer write: the buffer only ever holds complete lines, so a
  // reader of the file never sees a torn line from a *flushed* prefix (the
  // OS may still tear the final write on power loss; uld3d-report tolerates
  // one trailing partial line).
  const char* data = buffer_.data();
  std::size_t remaining = buffer_.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, data, remaining);
    if (n <= 0) {
      log_warning("short write to events file: " + path_);
      break;
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  buffer_.clear();
  if (sync) ::fsync(fd_);
}

void EventSink::close() {
  flush(true);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  telemetry_detail::g_enabled.store(false, std::memory_order_relaxed);
}

void EventSink::append_line(std::string line) {
  line.push_back('\n');
  bool needs_flush = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0) return;
    buffer_ += line;
    needs_flush = buffer_.size() >= kFlushBytes;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (needs_flush) flush(false);
}

void EventSink::run_start_impl(const Provenance& provenance,
                               const std::string& command) {
  std::ostringstream os = event_head("run_start", current_run_context());
  os << ", \"command\": \"" << json_escape(command)
     << "\", \"provenance\": {\"git_sha\": \""
     << json_escape(provenance.git_sha) << "\", \"compiler\": \""
     << json_escape(provenance.compiler) << "\", \"build_type\": \""
     << json_escape(provenance.build_type) << "\", \"hostname\": \""
     << json_escape(provenance.hostname) << "\", \"timestamp_utc\": \""
     << json_escape(provenance.timestamp_utc)
     << "\", \"jobs\": " << provenance.jobs
     << ", \"hardware_concurrency\": " << provenance.hardware_concurrency
     << ", \"simd_isa\": \"" << json_escape(provenance.simd_isa) << "\"}}";
  append_line(os.str());
  // Make the stream's identity line durable immediately: if the process
  // later dies on a fatal signal, the postmortem's RunId must still join
  // against this file even though the buffered tail is lost.
  flush(false);
}

void EventSink::run_end_impl(const std::string& status, int exit_code) {
  std::ostringstream os = event_head("run_end", current_run_context());
  os << ", \"status\": \"" << json_escape(status)
     << "\", \"exit_code\": " << exit_code
     << ", \"events_emitted\": " << emitted() << "}";
  append_line(os.str());
  flush(true);
}

void EventSink::sweep_start_impl(const std::string& fingerprint,
                                 std::size_t grid_size,
                                 const std::vector<std::string>& param_names,
                                 const std::vector<std::string>& metric_names,
                                 std::size_t domain_size, int jobs) {
  std::ostringstream os = event_head("sweep_start", current_run_context());
  os << ", \"fingerprint\": \"" << json_escape(fingerprint)
     << "\", \"grid_size\": " << grid_size;
  append_string_array(os, "params", param_names);
  append_string_array(os, "metrics", metric_names);
  os << ", \"domain_size\": " << domain_size << ", \"jobs\": " << jobs << "}";
  append_line(os.str());
}

void EventSink::point_done_impl(std::size_t grid_index,
                                const std::vector<double>& params,
                                const std::vector<double>& metrics,
                                const EventFailure* failure, double dur_us) {
  std::ostringstream os = event_head("point_done", current_run_context());
  os << ", \"index\": " << grid_index;
  append_number_array(os, "params", params);
  if (failure == nullptr) {
    os << ", \"status\": \"ok\"";
    append_number_array(os, "metrics", metrics);
    os << ", \"failure\": null";
  } else {
    // Failed rows carry all-NaN metrics by the sweep contract; only the
    // structured failure is informative (same shape as the checkpoint).
    os << ", \"status\": \"failed\", \"failure\": {\"code\": \""
       << json_escape(failure->code) << "\", \"message\": \""
       << json_escape(failure->message) << "\", \"context\": [";
    for (std::size_t c = 0; c < failure->context.size(); ++c) {
      if (c > 0) os << ", ";
      os << "[\"" << json_escape(failure->context[c].first) << "\", \""
         << json_escape(failure->context[c].second) << "\"]";
    }
    os << "]}";
  }
  os << ", \"dur_us\": " << json_number_exact(dur_us) << "}";
  append_line(os.str());
}

void EventSink::checkpoint_flush_impl(std::size_t completed,
                                      std::size_t total,
                                      const std::string& path) {
  std::ostringstream os =
      event_head("checkpoint_flush", current_run_context());
  os << ", \"completed\": " << completed << ", \"total\": " << total
     << ", \"checkpoint\": \"" << json_escape(path) << "\"}";
  append_line(os.str());
  // The sweep runner emits this BEFORE saving the checkpoint: syncing here
  // guarantees every row in the checkpoint has its point_done on disk.
  flush(true);
}

void EventSink::shard_info_impl(std::size_t shard_index,
                                std::size_t shard_count,
                                std::size_t domain_size,
                                const std::vector<std::size_t>& sentinels) {
  std::ostringstream os = event_head("shard_info", current_run_context());
  os << ", \"shard_index\": " << shard_index
     << ", \"shard_count\": " << shard_count
     << ", \"domain_size\": " << domain_size << ", \"sentinels\": [";
  for (std::size_t i = 0; i < sentinels.size(); ++i) {
    if (i > 0) os << ", ";
    os << sentinels[i];
  }
  os << "]}";
  append_line(os.str());
}

void EventSink::progress_impl(std::size_t done, std::size_t total,
                              std::size_t ok, std::size_t failed,
                              double points_per_sec, double eta_s,
                              std::size_t queue_depth) {
  std::ostringstream os = event_head("progress", current_run_context());
  os << ", \"done\": " << done << ", \"total\": " << total
     << ", \"ok\": " << ok << ", \"failed\": " << failed
     << ", \"points_per_sec\": " << json_number_exact(points_per_sec)
     << ", \"eta_s\": " << json_number_exact(eta_s)
     << ", \"queue_depth\": " << queue_depth << "}";
  append_line(os.str());
}

void EventSink::stage_impl(std::string_view name, double dur_us,
                           const ResourceSample* resources) {
  std::ostringstream os = event_head("stage", current_run_context());
  os << ", \"name\": \"" << json_escape(std::string(name))
     << "\", \"dur_us\": " << json_number_exact(dur_us);
  if (resources != nullptr) {
    os << ", \"cpu_us\": " << json_number_exact(resources->cpu_us)
       << ", \"alloc_bytes\": " << resources->alloc_bytes
       << ", \"rss_kb\": " << resources->rss_hwm_kb;
  }
  os << "}";
  append_line(os.str());
}

void record_stage_metrics(std::string_view name, double dur_us,
                          const ResourceSample& resources) {
  if (!metrics_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::instance();
  const std::string prefix = "stage." + std::string(name);
  reg.counter(prefix + ".calls").add();
  reg.counter(prefix + ".wall_us").add(static_cast<std::uint64_t>(dur_us));
  reg.counter(prefix + ".cpu_us")
      .add(static_cast<std::uint64_t>(resources.cpu_us > 0.0 ? resources.cpu_us
                                                             : 0.0));
  reg.counter(prefix + ".alloc_bytes").add(resources.alloc_bytes);
  reg.gauge(prefix + ".rss_hwm_kb")
      .set(static_cast<double>(resources.rss_hwm_kb));
}

namespace {
std::atomic<bool> g_progress_enabled{false};
}  // namespace

void set_progress_enabled(bool enabled) {
  g_progress_enabled.store(enabled, std::memory_order_relaxed);
}

bool progress_enabled() {
  return g_progress_enabled.load(std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   std::size_t already_done)
    : label_(std::move(label)),
      total_(total),
      resumed_(already_done),
      tty_(::isatty(STDERR_FILENO) != 0),
      done_(already_done),
      start_(std::chrono::steady_clock::now()),
      last_draw_(start_ - std::chrono::hours(1)),
      last_rate_sample_(start_),
      last_rate_done_(already_done) {}

ProgressReporter::~ProgressReporter() {
  draw(true);
  if (tty_) std::fputc('\n', stderr);
}

void ProgressReporter::on_chunk_done(std::size_t n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  draw(false);
}

void ProgressReporter::draw(bool final) {
  using clock = std::chrono::steady_clock;
  // Redraw throttle: a TTY refreshes smoothly at 10 Hz; a piped consumer
  // (CI log) gets at most one line per second.
  const auto min_interval =
      tty_ ? std::chrono::milliseconds(100) : std::chrono::milliseconds(1000);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto now = clock::now();
  if (!final && now - last_draw_ < min_interval) return;
  last_draw_ = now;

  const std::size_t done = done_.load(std::memory_order_relaxed);
  const std::size_t ok = ok_.load(std::memory_order_relaxed);
  const std::size_t failed = failed_.load(std::memory_order_relaxed);

  // EWMA of the instantaneous rate over ~2s half-life: responsive to a
  // stalled pool without the jitter of a per-chunk estimate.
  const double window_s =
      std::chrono::duration<double>(now - last_rate_sample_).count();
  if (window_s > 0.25 || ewma_pps_ == 0.0) {
    const double inst =
        window_s > 0.0
            ? static_cast<double>(done - last_rate_done_) / window_s
            : 0.0;
    const double alpha =
        ewma_pps_ == 0.0 ? 1.0 : 1.0 - std::exp(-window_s / 2.0);
    ewma_pps_ = ewma_pps_ + alpha * (inst - ewma_pps_);
    last_rate_sample_ = now;
    last_rate_done_ = done;
  }
  const std::size_t remaining = total_ > done ? total_ - done : 0;
  const double eta_s =
      ewma_pps_ > 0.0 ? static_cast<double>(remaining) / ewma_pps_ : 0.0;
  const std::size_t queue = parallel::ThreadPool::instance().pending();

  char line[256];
  std::snprintf(line, sizeof line,
                "%s: %zu/%zu (%.0f%%) ok=%zu failed=%zu %.1f pts/s eta %.0fs "
                "queue=%zu",
                label_.c_str(), done, total_,
                total_ > 0 ? 100.0 * static_cast<double>(done) /
                                 static_cast<double>(total_)
                           : 100.0,
                ok, failed, ewma_pps_, eta_s, queue);
  if (tty_) {
    // Single-line redraw; pad to clear a previously longer line.
    std::fprintf(stderr, "\r%-100s", line);
  } else {
    std::fprintf(stderr, "%s\n", line);
  }
  std::fflush(stderr);

  EventSink::instance().emit_progress(done, total_, ok, failed, ewma_pps_,
                                      eta_s, queue);
}

}  // namespace uld3d

#include "uld3d/sim/accelerator_config.hpp"

#include "uld3d/util/check.hpp"

namespace uld3d::sim {

namespace {

AcceleratorConfig from_pdk(const tech::FoundryM3dPdk& pdk) {
  AcceleratorConfig cfg;
  cfg.memory.bank_read_bits_per_cycle = pdk.bank_bandwidth_bits_per_cycle();
  cfg.memory.read_energy_pj_per_bit = pdk.rram().read_energy_pj_per_bit;
  cfg.memory.write_energy_pj_per_bit = pdk.rram().write_energy_pj_per_bit;
  cfg.memory.m3d_access_energy_scale = pdk.cnfet().access_energy_ratio;
  return cfg;
}

}  // namespace

AcceleratorConfig AcceleratorConfig::baseline_2d(const tech::FoundryM3dPdk& pdk) {
  AcceleratorConfig cfg = from_pdk(pdk);
  cfg.n_cs = 1;
  cfg.n_banks = 1;
  cfg.m3d = false;
  cfg.validate();
  return cfg;
}

AcceleratorConfig AcceleratorConfig::m3d_design(const tech::FoundryM3dPdk& pdk,
                                                std::int64_t n_cs) {
  AcceleratorConfig cfg = from_pdk(pdk);
  cfg.n_cs = n_cs;
  cfg.n_banks = n_cs;
  cfg.m3d = true;
  cfg.validate();
  return cfg;
}

void AcceleratorConfig::validate() const {
  expects(array.rows > 0 && array.cols > 0, "array dimensions must be positive");
  expects(array.weight_bits > 0 && array.activation_bits > 0,
          "precisions must be positive");
  expects(array.tile_sync_cycles >= 0, "sync cycles must be non-negative");
  expects(array.vector_ops_per_cycle > 0, "vector throughput must be positive");
  expects(memory.bank_read_bits_per_cycle > 0.0,
          "bank bandwidth must be positive");
  expects(memory.write_bandwidth_divisor >= 1.0,
          "write divisor must be >= 1");
  expects(n_cs >= 1 && n_banks >= 1, "need at least one CS and one bank");
  expects(layer_launch_cycles >= 0, "launch cycles must be non-negative");
}

}  // namespace uld3d::sim

#include "uld3d/sim/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"

namespace uld3d::sim {

std::int64_t TilePlan::cycles_per_tile(double load_cycles,
                                       std::int64_t sync_cycles) const {
  const double busy = std::max(load_cycles, static_cast<double>(stream_cycles));
  return static_cast<std::int64_t>(std::ceil(busy)) + sync_cycles;
}

TilePlan plan_tiles(const nn::ConvSpec& conv, const ArrayConfig& array) {
  TilePlan plan;
  const std::int64_t taps = conv.fx * conv.fy;
  plan.k_tiles = ceil_div(conv.k, array.cols);
  if (conv.c < array.rows) {
    // Channel packing: several filter taps ride in the row dimension.
    plan.taps_packed = std::min<std::int64_t>(taps, array.rows / conv.c);
    plan.c_tiles = 1;
  } else {
    plan.taps_packed = 1;
    plan.c_tiles = ceil_div(conv.c, array.rows);
  }
  plan.tap_groups = ceil_div(taps, plan.taps_packed);
  plan.stream_cycles = conv.ox * conv.oy;
  plan.total_tiles = plan.k_tiles * plan.c_tiles * plan.tap_groups;

  // Average fraction of the array holding live weights.
  const double used_rows =
      std::min<double>(static_cast<double>(array.rows),
                       static_cast<double>(conv.c * plan.taps_packed));
  const double avg_cols =
      static_cast<double>(conv.k) / static_cast<double>(plan.k_tiles);
  plan.array_utilization = (used_rows / static_cast<double>(array.rows)) *
                           (avg_cols / static_cast<double>(array.cols));
  ensures(plan.array_utilization > 0.0 && plan.array_utilization <= 1.0 + 1e-9,
          "utilization out of range");
  return plan;
}

double tile_weight_bits(const ArrayConfig& array) {
  return static_cast<double>(array.rows * array.cols * array.weight_bits);
}

std::int64_t max_partitions(const nn::ConvSpec& conv, const ArrayConfig& array) {
  return std::max<std::int64_t>(1, ceil_div(conv.k, array.cols));
}

}  // namespace uld3d::sim

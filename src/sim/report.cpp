#include "uld3d/sim/report.hpp"

#include <sstream>

namespace uld3d::sim {

Table layer_breakdown_table(const NetworkResult& result) {
  Table table({"Layer", "Cycles", "Compute cyc", "Memory cyc", "Bound", "CSs",
               "Energy (nJ)", "Compute %", "Memory %", "Idle %", "Util"});
  for (const auto& l : result.layers) {
    const double e = l.energy_pj > 0.0 ? l.energy_pj : 1.0;
    table.add_row({l.name, std::to_string(l.cycles),
                   format_double(l.compute_cycles, 0),
                   format_double(l.memory_cycles, 0),
                   l.memory_bound ? "memory" : "compute",
                   std::to_string(l.cs_used),
                   format_double(l.energy_pj / 1000.0, 2),
                   format_double(100.0 * l.compute_energy_pj / e, 1),
                   format_double(100.0 * l.memory_energy_pj / e, 1),
                   format_double(100.0 * l.idle_energy_pj / e, 1),
                   format_double(l.utilization, 3)});
  }
  table.add_row({"Total", std::to_string(result.total_cycles), "", "", "", "",
                 format_double(result.total_energy_pj / 1000.0, 2), "", "", "",
                 ""});
  return table;
}

Table comparison_table(const DesignComparison& comparison,
                       bool include_totals) {
  Table table({"Layer", "Speedup", "Energy", "EDP benefit"});
  for (const auto& row : comparison.layers) {
    table.add_row({row.name, format_ratio(row.speedup),
                   format_ratio(row.energy_ratio),
                   format_ratio(row.edp_benefit)});
  }
  if (include_totals) {
    table.add_row({"Total", format_ratio(comparison.speedup),
                   format_ratio(comparison.energy_ratio),
                   format_ratio(comparison.edp_benefit)});
  }
  return table;
}

std::string summary_line(const DesignComparison& comparison) {
  std::ostringstream os;
  os << comparison.network << ": " << format_ratio(comparison.speedup)
     << " speedup, " << format_ratio(comparison.energy_ratio, 3)
     << " energy, " << format_ratio(comparison.edp_benefit) << " EDP benefit";
  return os.str();
}

}  // namespace uld3d::sim

// Cycle-by-cycle micro-simulation of one weight tile on the systolic array.
//
// The network-level simulator (layer_sim) uses a closed-form cycle count per
// tile: max(load, stream) + sync.  This module *derives* that count by
// actually marching the dataflow wavefront through an R x C PE grid —
// weight-stationary, inputs entering column 0 one row-vector per cycle and
// skewing right, partial sums accumulating down each column — and checks
// functional correctness against a reference convolution.  It exists to
// validate the analytical tile model and to let users inspect the pipeline
// behaviour at single-cycle granularity.
#pragma once

#include <cstdint>
#include <vector>

namespace uld3d::sim {

/// A small dense weight tile and input stream for micro-simulation.
struct TileProblem {
  std::int64_t rows = 4;       ///< input-channel dimension (C)
  std::int64_t cols = 4;       ///< output-channel dimension (K)
  std::int64_t vectors = 16;   ///< input vectors streamed (OX*OY)
  std::vector<double> weights; ///< rows x cols, row-major
  std::vector<double> inputs;  ///< vectors x rows, row-major

  /// A deterministic problem with small integer values.
  [[nodiscard]] static TileProblem make_example(std::int64_t rows,
                                                std::int64_t cols,
                                                std::int64_t vectors);
};

/// Outcome of the micro-simulation.
struct TileTrace {
  std::int64_t total_cycles = 0;    ///< first input in -> last output out
  std::int64_t fill_cycles = 0;     ///< pipeline fill before first output
  std::int64_t drain_cycles = 0;    ///< after last input enters
  std::vector<double> outputs;      ///< vectors x cols, row-major
  std::int64_t mac_operations = 0;  ///< MACs actually executed
};

/// March the wavefront cycle by cycle and return the trace.
[[nodiscard]] TileTrace simulate_tile(const TileProblem& problem);

/// Reference result: outputs[v][k] = sum_r inputs[v][r] * weights[r][k].
[[nodiscard]] std::vector<double> reference_outputs(const TileProblem& problem);

/// The closed-form cycle count layer_sim assumes for a tile of this shape:
/// streaming `vectors` cycles plus (rows + cols) skew fill/drain.
[[nodiscard]] std::int64_t closed_form_cycles(const TileProblem& problem);

}  // namespace uld3d::sim

// Weight-tile decomposition of a convolution onto the systolic array.
//
// A weight tile maps up to `rows` input channels x `cols` output channels of
// one (or several packed) filter taps onto the PE array; the tile then stays
// stationary while OX*OY input vectors stream through.  Small-C layers
// (e.g. the 3-channel first conv) pack multiple filter taps into the row
// dimension so the array is not left mostly idle — the Chimera-style
// channel-packing optimization.
#pragma once

#include <cstdint>

#include "uld3d/nn/layer.hpp"
#include "uld3d/sim/accelerator_config.hpp"

namespace uld3d::sim {

/// Decomposition of one conv layer into weight tiles.
struct TilePlan {
  std::int64_t k_tiles = 1;       ///< ceil(K / cols)
  std::int64_t c_tiles = 1;       ///< ceil(C / rows) (1 when taps are packed)
  std::int64_t taps_packed = 1;   ///< filter taps sharing one tile (small C)
  std::int64_t tap_groups = 1;    ///< ceil(FX*FY / taps_packed)
  std::int64_t stream_cycles = 0; ///< OX*OY input vectors per tile
  std::int64_t total_tiles = 1;   ///< k_tiles * c_tiles * tap_groups
  double array_utilization = 1.0; ///< fraction of PEs holding live weights

  /// Cycles one tile occupies the array, given the per-tile weight-load time
  /// (overlapped via double buffering) and the sync overhead.
  [[nodiscard]] std::int64_t cycles_per_tile(double load_cycles,
                                             std::int64_t sync_cycles) const;
};

/// Plan the tiling of `conv` onto `array`.
[[nodiscard]] TilePlan plan_tiles(const nn::ConvSpec& conv,
                                  const ArrayConfig& array);

/// Weight bits loaded per tile (the full array image is always shifted in).
[[nodiscard]] double tile_weight_bits(const ArrayConfig& array);

/// Upper bound on useful K-partitioning of this conv across parallel CSs.
[[nodiscard]] std::int64_t max_partitions(const nn::ConvSpec& conv,
                                          const ArrayConfig& array);

}  // namespace uld3d::sim

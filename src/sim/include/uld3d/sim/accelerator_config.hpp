// Configuration of the Sec.-II accelerator: a weight-stationary systolic
// array (the Chimera-style computing sub-system, CS) fed by banked on-chip
// RRAM.  The M3D design instantiates N parallel CSs with N-way banked RRAM;
// the 2D baseline is the same configuration with n_cs = 1.
#pragma once

#include <cstdint>

#include "uld3d/tech/pdk.hpp"

namespace uld3d::sim {

/// The systolic processing-element array inside one CS.
struct ArrayConfig {
  std::int64_t rows = 16;   ///< input-channel (C) dimension
  std::int64_t cols = 16;   ///< output-channel (K) dimension
  int weight_bits = 8;
  int activation_bits = 8;
  /// Per-weight-tile synchronization overhead (pipeline drain + swap).
  std::int64_t tile_sync_cycles = 16;
  /// Throughput of the vector/SIMD unit handling pooling and eltwise ops.
  std::int64_t vector_ops_per_cycle = 64;
  /// The Sec.-II SoC has ONE shared vector unit (as in the Chimera SoC it
  /// refines), so pooling/eltwise work does not scale with the CS count.
  /// Set true to model per-CS vector units instead.
  bool per_cs_vector_units = false;
  /// Downsample-style convolutions (1x1, strided) are partitioned over input
  /// channels so their outputs colocate with the residual add; the shared
  /// vector unit then serially accumulates the partial-sum maps.
  bool ds_input_channel_partition = true;
  double mac_energy_pj = 2.0;        ///< energy per 8-bit MAC incl. local regs
  double vector_op_energy_pj = 0.5;  ///< energy per pooling/eltwise op

  /// Peak ops per cycle (a MAC counts as 2 ops).
  [[nodiscard]] double peak_ops_per_cycle() const {
    return 2.0 * static_cast<double>(rows * cols);
  }
};

/// The on-chip RRAM memory system seen by the CSs.
struct MemoryConfig {
  double bank_read_bits_per_cycle = 256.0;  ///< per-bank (= per-CS) read port
  double write_bandwidth_divisor = 4.0;     ///< RRAM writes are this much slower
  double read_energy_pj_per_bit = 1.5;      ///< alpha (2D)
  double write_energy_pj_per_bit = 8.0;
  double m3d_access_energy_scale = 0.97;    ///< alpha_3D / alpha_2D
  double mem_idle_pj_per_cycle = 10.0;      ///< peripheral idle, whole memory
  double extra_bank_idle_fraction = 0.30;   ///< added idle per extra bank group
  double cs_idle_pj_per_cycle = 2.0;        ///< clock-gated CS leakage
};

/// A full accelerator system (one 2D chip or one M3D chip).
struct AcceleratorConfig {
  ArrayConfig array;
  MemoryConfig memory;
  std::int64_t n_cs = 1;    ///< parallel computing sub-systems (N)
  std::int64_t n_banks = 1; ///< RRAM bank groups (one per CS in M3D)
  std::int64_t layer_launch_cycles = 200;  ///< per-layer control overhead
  bool m3d = false;         ///< true: CNFET memory selectors (M3D design)

  /// The Sec.-II 2D baseline: one CS, single-ported 64 MB RRAM.
  [[nodiscard]] static AcceleratorConfig baseline_2d(
      const tech::FoundryM3dPdk& pdk);

  /// The Sec.-II M3D design: `n_cs` parallel CSs with per-CS bank groups.
  [[nodiscard]] static AcceleratorConfig m3d_design(
      const tech::FoundryM3dPdk& pdk, std::int64_t n_cs);

  void validate() const;
};

}  // namespace uld3d::sim

// Batched energy finishing for the network simulator.
//
// simulate_layer's energy accounting (`finish_energy`) is a pure function
// of per-layer scalars (traffic bits, cycle counts, active-CS count) and
// batch-constant accelerator parameters.  simulate_network therefore splits
// each layer into a *terms* phase (tiling, cycle counts, traffic — the
// per-layer control flow with its trace spans and fault sites) and a single
// *finish* phase that prices every layer's energy through one SoA pass,
// AVX2-vectorized when `simd::active_isa()` allows.
//
// Determinism: the batched passes mirror `finish_energy`'s expression tree
// operation-for-operation (selection-based std::min, seed association; see
// util/simd.hpp), so batched, forced-scalar, and seed per-layer runs produce
// byte-identical LayerResult/NetworkResult values.  Totals accumulation in
// simulate_network stays serial and in layer order — no floating-point sum
// is reassociated.
#pragma once

#include <cstddef>

#include "uld3d/sim/accelerator_config.hpp"
#include "uld3d/sim/layer_sim.hpp"
#include "uld3d/util/batch.hpp"

namespace uld3d::sim {

/// The seed scalar energy finishing: fills r.compute_energy_pj,
/// r.memory_energy_pj, r.idle_energy_pj, and r.energy_pj from the already-
/// computed cycle/traffic terms.  Canonical reference for the batch pass.
void finish_energy(const AcceleratorConfig& cfg, double read_bits,
                   double write_bits, double compute_energy, LayerResult& r);

/// SoA scratch for one batched finish pass.  Inputs are gathered from the
/// per-layer terms; outputs are scattered back into the LayerResults.
struct EnergyBatch {
  // Inputs, one slot per layer.
  util::AlignedVector<double> read_bits;
  util::AlignedVector<double> write_bits;
  util::AlignedVector<double> compute_energy;
  util::AlignedVector<double> cycles;          ///< double(r.cycles)
  util::AlignedVector<double> nm;              ///< double(r.cs_used)
  util::AlignedVector<double> memory_cycles;
  util::AlignedVector<double> compute_cycles;
  // Outputs.
  util::AlignedVector<double> memory_energy;
  util::AlignedVector<double> idle_energy;
  util::AlignedVector<double> energy;

  void resize(std::size_t n);
};

/// Price `n` layers' energy in one pass over `b`, byte-identical to calling
/// `finish_energy` per layer.  Dispatches AVX2/scalar on simd::active_isa().
void finish_energy_batch(const AcceleratorConfig& cfg, EnergyBatch& b,
                         std::size_t n);

}  // namespace uld3d::sim

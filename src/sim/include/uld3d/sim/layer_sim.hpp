// Cycle/energy model of one network layer on one accelerator configuration.
//
// Timing model (per parallel CS, all CSs run the same schedule):
//   * Convolutions partition output channels (K tiles) across the N_max =
//     min(N, k_tiles) active CSs.  Each CS processes its tiles back to back;
//     a tile overlaps its weight load with the previous tile's streaming
//     (double buffering) and pays a fixed sync overhead.
//   * Memory occupancy per CS: its private weight shard plus the FULL input
//     activation map (K-partitioning replicates input traffic — the paper's
//     conservative D0*N/B_3D bandwidth term) plus its output shard at RRAM
//     write bandwidth.  Execution time is max(compute, memory) per CS.
//   * Pooling/eltwise layers run channel-partitioned on the vector units.
//
// Energy model: MACs/vector-ops at fixed energy per op; RRAM traffic at
// alpha pJ/bit charged per UNIQUE bit (the dense lower-BEOL routing lets one
// sense operation drive multiple CS ports, so replicated reads cost port
// time but not repeated sense energy); memory peripheral and CS idle energy
// follow the paper's Eq. (6)/(7) structure.
#pragma once

#include <string>

#include "uld3d/nn/layer.hpp"
#include "uld3d/sim/accelerator_config.hpp"
#include "uld3d/sim/tiling.hpp"

namespace uld3d::sim {

/// Per-layer simulation outcome.
struct LayerResult {
  std::string name;
  std::int64_t cycles = 0;          ///< wall-clock cycles for the layer
  double compute_cycles = 0.0;      ///< per-CS compute occupancy
  double memory_cycles = 0.0;       ///< per-CS memory-port occupancy
  std::int64_t cs_used = 1;         ///< N_max actually active
  double energy_pj = 0.0;           ///< total system energy
  double compute_energy_pj = 0.0;
  double memory_energy_pj = 0.0;
  double idle_energy_pj = 0.0;
  double utilization = 0.0;         ///< MAC utilization of active CSs
  bool memory_bound = false;
};

/// Simulate one layer on `cfg`.
[[nodiscard]] LayerResult simulate_layer(const nn::Layer& layer,
                                         const AcceleratorConfig& cfg);

/// The energy-finishing inputs simulate_layer derives before pricing energy:
/// memory traffic and compute energy.  Combined with the cycle fields
/// already in LayerResult they fully determine the energy terms (see
/// sim/energy_batch.hpp).
struct LayerTerms {
  double read_bits = 0.0;
  double write_bits = 0.0;
  double compute_energy_pj = 0.0;
};

/// Terms-only variant for batched energy finishing: identical to
/// simulate_layer except the four energy fields of the returned LayerResult
/// are left at zero and the finishing inputs are reported in `terms`.
/// `finish_energy(cfg, terms..., r)` completes it to the simulate_layer
/// result, byte-identically.
[[nodiscard]] LayerResult simulate_layer_terms(const nn::Layer& layer,
                                               const AcceleratorConfig& cfg,
                                               LayerTerms& terms);

}  // namespace uld3d::sim

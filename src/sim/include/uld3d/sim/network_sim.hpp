// Whole-network simulation and 2D-vs-M3D comparison (drives Fig. 5 and
// Table I of the paper).
#pragma once

#include <string>
#include <vector>

#include "uld3d/nn/network.hpp"
#include "uld3d/sim/layer_sim.hpp"

namespace uld3d::sim {

/// One full inference on one configuration.
struct NetworkResult {
  std::string network;
  std::vector<LayerResult> layers;
  std::int64_t total_cycles = 0;
  double total_energy_pj = 0.0;

  /// EDP in pJ * cycles (frequency-independent comparisons divide out).
  [[nodiscard]] double edp() const {
    return total_energy_pj * static_cast<double>(total_cycles);
  }
};

/// Per-layer 2D-vs-M3D comparison row (a Table-I row).
struct LayerComparison {
  std::string name;
  std::int64_t cycles_2d = 0;
  std::int64_t cycles_3d = 0;
  double speedup = 0.0;
  double energy_ratio = 0.0;   ///< E_3D / E_2D (paper's "Energy" column)
  double edp_benefit = 0.0;
};

/// Full comparison: per-layer rows plus network totals.
struct DesignComparison {
  std::string network;
  std::vector<LayerComparison> layers;
  NetworkResult run_2d;
  NetworkResult run_3d;
  double speedup = 0.0;
  double energy_ratio = 0.0;   ///< E_3D / E_2D
  double edp_benefit = 0.0;
};

/// Simulate one inference of `net` on `cfg`.
[[nodiscard]] NetworkResult simulate_network(const nn::Network& net,
                                             const AcceleratorConfig& cfg);

/// Simulate both designs and build the per-layer comparison.
[[nodiscard]] DesignComparison compare_designs(const nn::Network& net,
                                               const AcceleratorConfig& cfg_2d,
                                               const AcceleratorConfig& cfg_3d);

/// Merge comparison rows whose layer names share a prefix group (used to
/// present "CONV1+POOL" as one row, as Table I does).  Rows whose names match
/// `first` and `second` are merged into one named `merged_name`.
void merge_rows(DesignComparison& cmp, const std::string& first,
                const std::string& second, const std::string& merged_name);

}  // namespace uld3d::sim

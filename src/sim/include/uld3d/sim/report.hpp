// Tabular reporting of simulation results: per-layer breakdowns (cycles,
// boundedness, energy split, utilization) and 2D-vs-M3D comparison tables,
// all exportable to CSV through uld3d::Table.
#pragma once

#include "uld3d/sim/network_sim.hpp"
#include "uld3d/util/table.hpp"

namespace uld3d::sim {

/// Per-layer execution breakdown of one run: cycles, compute/memory
/// occupancy, bound classification, CSs used, energy split, utilization.
[[nodiscard]] Table layer_breakdown_table(const NetworkResult& result);

/// Table-I-style comparison rows (layer, speedup, energy, EDP benefit).
[[nodiscard]] Table comparison_table(const DesignComparison& comparison,
                                     bool include_totals = true);

/// One-line summary of a comparison: "5.42x speedup, 0.99x energy, ...".
[[nodiscard]] std::string summary_line(const DesignComparison& comparison);

}  // namespace uld3d::sim

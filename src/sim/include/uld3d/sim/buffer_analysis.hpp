// Double-buffer sizing analysis: how much SRAM does one CS actually need to
// sustain the weight-stationary schedule on a given layer?
//
//   weight buffer : two array images (ping/pong across tiles)
//   input buffer  : the streamed input slice for one tile pass, bounded by
//                   row-chunked streaming when the full slice exceeds it
//   output buffer : one K-tile of partial sums at accumulator precision
//
// This validates the CsDesign's sram_buffer_kb (the Chimera-style ~1/20th
// SRAM claim of the paper) against every layer in the zoo.
#pragma once

#include "uld3d/nn/layer.hpp"
#include "uld3d/nn/network.hpp"
#include "uld3d/sim/accelerator_config.hpp"

namespace uld3d::sim {

/// Per-layer buffer requirement breakdown (bits, for ONE CS).
struct BufferRequirement {
  std::string layer;
  double weight_bits = 0.0;   ///< double-buffered tile weights
  double input_bits = 0.0;    ///< streamed input slice (or row chunk)
  double output_bits = 0.0;   ///< one K-tile of partial sums
  bool row_streamed = false;  ///< input slice exceeded budget; row-chunked

  [[nodiscard]] double total_bits() const {
    return weight_bits + input_bits + output_bits;
  }
};

/// Requirement of one layer on `cfg`'s array, against a per-CS buffer
/// budget of `budget_bits` (sets the row-streaming decision).
[[nodiscard]] BufferRequirement analyze_layer_buffers(const nn::Layer& layer,
                                                      const AcceleratorConfig& cfg,
                                                      double budget_bits);

/// Largest per-layer requirement over a network.
struct BufferReport {
  std::vector<BufferRequirement> layers;
  double peak_bits = 0.0;
  std::string peak_layer;
  std::size_t row_streamed_layers = 0;

  /// True when every layer fits within `budget_bits`.
  [[nodiscard]] bool fits(double budget_bits) const {
    return peak_bits <= budget_bits;
  }
};

[[nodiscard]] BufferReport analyze_network_buffers(const nn::Network& net,
                                                   const AcceleratorConfig& cfg,
                                                   double budget_bits);

}  // namespace uld3d::sim

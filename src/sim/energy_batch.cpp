#include "uld3d/sim/energy_batch.hpp"

#include <algorithm>

#include "uld3d/util/simd.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define ULD3D_EBATCH_X86 1
#include <immintrin.h>
#define ULD3D_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define ULD3D_EBATCH_X86 0
#endif

namespace uld3d::sim {

void finish_energy(const AcceleratorConfig& cfg, double read_bits,
                   double write_bits, double compute_energy, LayerResult& r) {
  const auto& mem = cfg.memory;
  const double access_scale = cfg.m3d ? mem.m3d_access_energy_scale : 1.0;
  r.compute_energy_pj = compute_energy;
  r.memory_energy_pj = access_scale * (read_bits * mem.read_energy_pj_per_bit +
                                       write_bits * mem.write_energy_pj_per_bit);

  const double cycles = static_cast<double>(r.cycles);
  const double n = static_cast<double>(cfg.n_cs);
  const double nm = static_cast<double>(r.cs_used);
  // Peripheral idle: whole-memory leakage for the layer's duration, grown by
  // the extra per-bank controllers in the banked M3D organisation.
  const double bank_scale =
      1.0 + mem.extra_bank_idle_fraction * static_cast<double>(cfg.n_banks - 1);
  const double mem_busy = std::min(r.memory_cycles, cycles);
  const double idle_mem =
      mem.mem_idle_pj_per_cycle * bank_scale * (cycles - mem_busy);
  // CS idle: unused CSs idle the whole layer; active CSs idle their slack
  // (Eq. (7) structure).
  const double compute_busy = std::min(r.compute_cycles, cycles);
  const double idle_cs =
      mem.cs_idle_pj_per_cycle *
      ((n - nm) * cycles + nm * (cycles - compute_busy));
  r.idle_energy_pj = idle_mem + idle_cs;
  r.energy_pj = r.compute_energy_pj + r.memory_energy_pj + r.idle_energy_pj;
}

void EnergyBatch::resize(std::size_t n) {
  read_bits.resize(n);
  write_bits.resize(n);
  compute_energy.resize(n);
  cycles.resize(n);
  nm.resize(n);
  memory_cycles.resize(n);
  compute_cycles.resize(n);
  memory_energy.resize(n);
  idle_energy.resize(n);
  energy.resize(n);
}

namespace {

/// Batch-invariant coefficients, associated exactly as finish_energy does.
struct EnergyConsts {
  double access_scale = 1.0;
  double read_pj = 0.0;
  double write_pj = 0.0;
  double n = 1.0;
  double mem_idle_coeff = 0.0;  ///< mem_idle_pj_per_cycle * bank_scale
  double cs_idle_pj = 0.0;
};

EnergyConsts make_consts(const AcceleratorConfig& cfg) {
  const auto& mem = cfg.memory;
  EnergyConsts c;
  c.access_scale = cfg.m3d ? mem.m3d_access_energy_scale : 1.0;
  c.read_pj = mem.read_energy_pj_per_bit;
  c.write_pj = mem.write_energy_pj_per_bit;
  c.n = static_cast<double>(cfg.n_cs);
  const double bank_scale =
      1.0 + mem.extra_bank_idle_fraction * static_cast<double>(cfg.n_banks - 1);
  c.mem_idle_coeff = mem.mem_idle_pj_per_cycle * bank_scale;
  c.cs_idle_pj = mem.cs_idle_pj_per_cycle;
  return c;
}

/// Scalar term passes over [i0, i1); also the AVX2 tail handler.
void finish_range(const EnergyConsts& c, EnergyBatch& b, std::size_t i0,
                  std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    b.memory_energy[i] =
        c.access_scale *
        (b.read_bits[i] * c.read_pj + b.write_bits[i] * c.write_pj);
  }
  for (std::size_t i = i0; i < i1; ++i) {
    // std::min(a, cycles) = (cycles < a) ? cycles : a.
    const double cyc = b.cycles[i];
    const double mem_busy =
        cyc < b.memory_cycles[i] ? cyc : b.memory_cycles[i];
    const double idle_mem = c.mem_idle_coeff * (cyc - mem_busy);
    const double compute_busy =
        cyc < b.compute_cycles[i] ? cyc : b.compute_cycles[i];
    const double idle_cs =
        c.cs_idle_pj *
        ((c.n - b.nm[i]) * cyc + b.nm[i] * (cyc - compute_busy));
    b.idle_energy[i] = idle_mem + idle_cs;
  }
  for (std::size_t i = i0; i < i1; ++i) {
    b.energy[i] = b.compute_energy[i] + b.memory_energy[i] + b.idle_energy[i];
  }
}

#if ULD3D_EBATCH_X86

/// std::min(a, b) as a selection — (b < a) ? b : a — preserving the scalar
/// NaN/±0 semantics vminpd would not.
ULD3D_TARGET_AVX2 inline __m256d vmin_std(__m256d a, __m256d b) {
  return _mm256_blendv_pd(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}

ULD3D_TARGET_AVX2 void finish_batch_avx2(const EnergyConsts& c,
                                         EnergyBatch& b, std::size_t n) {
  const std::size_t main = n - n % 4;
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d e = _mm256_add_pd(
        _mm256_mul_pd(_mm256_load_pd(b.read_bits.data() + i),
                      _mm256_set1_pd(c.read_pj)),
        _mm256_mul_pd(_mm256_load_pd(b.write_bits.data() + i),
                      _mm256_set1_pd(c.write_pj)));
    _mm256_store_pd(b.memory_energy.data() + i,
                    _mm256_mul_pd(_mm256_set1_pd(c.access_scale), e));
  }
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d cyc = _mm256_load_pd(b.cycles.data() + i);
    const __m256d mem_busy =
        vmin_std(_mm256_load_pd(b.memory_cycles.data() + i), cyc);
    const __m256d idle_mem =
        _mm256_mul_pd(_mm256_set1_pd(c.mem_idle_coeff),
                      _mm256_sub_pd(cyc, mem_busy));
    const __m256d compute_busy =
        vmin_std(_mm256_load_pd(b.compute_cycles.data() + i), cyc);
    const __m256d nm = _mm256_load_pd(b.nm.data() + i);
    const __m256d cs_term = _mm256_add_pd(
        _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(c.n), nm), cyc),
        _mm256_mul_pd(nm, _mm256_sub_pd(cyc, compute_busy)));
    const __m256d idle_cs =
        _mm256_mul_pd(_mm256_set1_pd(c.cs_idle_pj), cs_term);
    _mm256_store_pd(b.idle_energy.data() + i,
                    _mm256_add_pd(idle_mem, idle_cs));
  }
  for (std::size_t i = 0; i < main; i += 4) {
    const __m256d e = _mm256_add_pd(
        _mm256_add_pd(_mm256_load_pd(b.compute_energy.data() + i),
                      _mm256_load_pd(b.memory_energy.data() + i)),
        _mm256_load_pd(b.idle_energy.data() + i));
    _mm256_store_pd(b.energy.data() + i, e);
  }
  // Clear the dirty upper YMM halves before returning to SSE-encoded code.
  // GCC does not insert vzeroupper around this target("avx2") clone when it
  // ends in a call, and the dirty-upper false dependency would slow every
  // scalar double op in the rest of the process until the next transition.
  _mm256_zeroupper();
}
#endif  // ULD3D_EBATCH_X86

}  // namespace

void finish_energy_batch(const AcceleratorConfig& cfg, EnergyBatch& b,
                         std::size_t n) {
  const EnergyConsts consts = make_consts(cfg);
#if ULD3D_EBATCH_X86
  if (simd::avx2_active()) {
    finish_batch_avx2(consts, b, n);
    finish_range(consts, b, n - n % 4, n);  // scalar tail, same trees
    return;
  }
#endif
  finish_range(consts, b, 0, n);
}

}  // namespace uld3d::sim

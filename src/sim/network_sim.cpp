#include "uld3d/sim/network_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "uld3d/sim/energy_batch.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"
#include "uld3d/util/simd.hpp"
#include "uld3d/util/metrics.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/status.hpp"
#include "uld3d/util/telemetry.hpp"
#include "uld3d/util/trace.hpp"

namespace uld3d::sim {

NetworkResult simulate_network(const nn::Network& net,
                               const AcceleratorConfig& cfg) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter& m_layers = registry.counter("sim.network.layers");
  registry.counter("sim.network.runs").add();
  TraceSpan network_span("sim.network", "sim");
  StageTimer network_stage("sim.network");

  NetworkResult result;
  result.network = net.name();
  result.layers.reserve(net.size());
  // Batched energy finishing (SoA pass over all layers at once) unless the
  // ULD3D_NO_SIMD escape hatch asked for the seed per-layer path, or a fault
  // injector is armed (the seed path prices each layer before the next
  // layer's fault site, and injection tests rely on that interleaving).
  const bool batched =
      !simd::disabled_by_env() && !FaultInjector::instance().armed();
  thread_local EnergyBatch batch;
  thread_local std::vector<LayerTerms> terms;
  if (batched) terms.clear();
  for (const auto& layer : net.layers()) {
    TraceSpan layer_span(layer.name(), "sim");
    m_layers.add();
    fault_site("sim.network.layer");
    if (batched) {
      LayerTerms t;
      result.layers.push_back(simulate_layer_terms(layer, cfg, t));
      terms.push_back(t);
    } else {
      result.layers.push_back(simulate_layer(layer, cfg));
    }
  }
  if (batched) {
    const std::size_t n = result.layers.size();
    batch.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const LayerResult& r = result.layers[i];
      batch.read_bits[i] = terms[i].read_bits;
      batch.write_bits[i] = terms[i].write_bits;
      batch.compute_energy[i] = terms[i].compute_energy_pj;
      batch.cycles[i] = static_cast<double>(r.cycles);
      batch.nm[i] = static_cast<double>(r.cs_used);
      batch.memory_cycles[i] = r.memory_cycles;
      batch.compute_cycles[i] = r.compute_cycles;
    }
    finish_energy_batch(cfg, batch, n);
    for (std::size_t i = 0; i < n; ++i) {
      LayerResult& r = result.layers[i];
      r.compute_energy_pj = batch.compute_energy[i];
      r.memory_energy_pj = batch.memory_energy[i];
      r.idle_energy_pj = batch.idle_energy[i];
      r.energy_pj = batch.energy[i];
    }
  }
  // Validation and totals stay serial and in layer order: the strict checks
  // fire on the first bad layer exactly as the seed loop did, and no
  // floating-point sum is reassociated.
  for (const LayerResult& r : result.layers) {
    if (r.cycles < 0 || !std::isfinite(r.energy_pj) || r.energy_pj < 0.0) {
      throw StatusError(Failure(ErrorCode::kNumericalError,
                                "layer simulation produced a bad result")
                            .with("network", net.name())
                            .with("layer", r.name)
                            .with("cycles", r.cycles)
                            .with("energy_pj", r.energy_pj));
    }
    result.total_cycles += r.cycles;
    result.total_energy_pj += r.energy_pj;
  }
  return result;
}

namespace {

LayerComparison make_row(const std::string& name, const LayerResult& l2d,
                         const LayerResult& l3d) {
  LayerComparison row;
  row.name = name;
  row.cycles_2d = l2d.cycles;
  row.cycles_3d = l3d.cycles;
  row.speedup = static_cast<double>(l2d.cycles) / static_cast<double>(l3d.cycles);
  row.energy_ratio = l3d.energy_pj / l2d.energy_pj;
  row.edp_benefit = row.speedup * (l2d.energy_pj / l3d.energy_pj);
  return row;
}

}  // namespace

DesignComparison compare_designs(const nn::Network& net,
                                 const AcceleratorConfig& cfg_2d,
                                 const AcceleratorConfig& cfg_3d) {
  DesignComparison cmp;
  cmp.network = net.name();
  // The two runs are independent pure evaluations; run them concurrently
  // when jobs allow.  Slot 0 is the 2D run, so a failure there is rethrown
  // first — the same order the serial code reported.  An armed injector
  // forces serial so "sim.network.layer" trips keep their arrival order.
  const int jobs =
      FaultInjector::instance().armed() ? 1 : parallel::jobs();
  std::array<NetworkResult, 2> runs;
  parallel::parallel_for_indexed(
      2,
      [&](std::size_t i) {
        runs[i] = simulate_network(net, i == 0 ? cfg_2d : cfg_3d);
      },
      {.jobs = jobs});
  cmp.run_2d = std::move(runs[0]);
  cmp.run_3d = std::move(runs[1]);
  ensures(cmp.run_2d.layers.size() == cmp.run_3d.layers.size(),
          "designs must simulate the same layer list");
  for (std::size_t i = 0; i < cmp.run_2d.layers.size(); ++i) {
    cmp.layers.push_back(make_row(cmp.run_2d.layers[i].name,
                                  cmp.run_2d.layers[i], cmp.run_3d.layers[i]));
  }
  cmp.speedup = static_cast<double>(cmp.run_2d.total_cycles) /
                static_cast<double>(cmp.run_3d.total_cycles);
  cmp.energy_ratio = cmp.run_3d.total_energy_pj / cmp.run_2d.total_energy_pj;
  cmp.edp_benefit =
      cmp.speedup * (cmp.run_2d.total_energy_pj / cmp.run_3d.total_energy_pj);
  return cmp;
}

void merge_rows(DesignComparison& cmp, const std::string& first,
                const std::string& second, const std::string& merged_name) {
  const auto find_row = [&](const std::string& name) {
    return std::find_if(cmp.layers.begin(), cmp.layers.end(),
                        [&](const LayerComparison& r) { return r.name == name; });
  };
  const auto it1 = find_row(first);
  const auto it2 = find_row(second);
  expects(it1 != cmp.layers.end() && it2 != cmp.layers.end(),
          "rows to merge not found: " + first + " + " + second);

  // Recover the underlying energies from the per-design runs by name.
  const auto energy_of = [](const NetworkResult& run, const std::string& name) {
    const auto it = std::find_if(run.layers.begin(), run.layers.end(),
                                 [&](const LayerResult& l) { return l.name == name; });
    expects(it != run.layers.end(), "layer not found in run: " + name);
    return it->energy_pj;
  };

  LayerComparison merged;
  merged.name = merged_name;
  merged.cycles_2d = it1->cycles_2d + it2->cycles_2d;
  merged.cycles_3d = it1->cycles_3d + it2->cycles_3d;
  merged.speedup = static_cast<double>(merged.cycles_2d) /
                   static_cast<double>(merged.cycles_3d);
  const double e2d =
      energy_of(cmp.run_2d, first) + energy_of(cmp.run_2d, second);
  const double e3d =
      energy_of(cmp.run_3d, first) + energy_of(cmp.run_3d, second);
  merged.energy_ratio = e3d / e2d;
  merged.edp_benefit = merged.speedup * (e2d / e3d);

  *it1 = merged;
  cmp.layers.erase(it2 < it1 ? it2 : find_row(second));
}

}  // namespace uld3d::sim

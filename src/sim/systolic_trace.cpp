#include "uld3d/sim/systolic_trace.hpp"

#include <cmath>

#include "uld3d/util/check.hpp"

namespace uld3d::sim {

TileProblem TileProblem::make_example(std::int64_t rows, std::int64_t cols,
                                      std::int64_t vectors) {
  expects(rows > 0 && cols > 0 && vectors > 0,
          "tile dimensions must be positive");
  TileProblem p;
  p.rows = rows;
  p.cols = cols;
  p.vectors = vectors;
  p.weights.resize(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t k = 0; k < cols; ++k) {
      // Small distinct integers keep double arithmetic exact.
      p.weights[static_cast<std::size_t>(r * cols + k)] =
          static_cast<double>((r * 7 + k * 3) % 11 - 5);
    }
  }
  p.inputs.resize(static_cast<std::size_t>(vectors * rows));
  for (std::int64_t v = 0; v < vectors; ++v) {
    for (std::int64_t r = 0; r < rows; ++r) {
      p.inputs[static_cast<std::size_t>(v * rows + r)] =
          static_cast<double>((v * 5 + r * 2) % 13 - 6);
    }
  }
  return p;
}

std::vector<double> reference_outputs(const TileProblem& p) {
  std::vector<double> out(static_cast<std::size_t>(p.vectors * p.cols), 0.0);
  for (std::int64_t v = 0; v < p.vectors; ++v) {
    for (std::int64_t k = 0; k < p.cols; ++k) {
      double acc = 0.0;
      for (std::int64_t r = 0; r < p.rows; ++r) {
        acc += p.inputs[static_cast<std::size_t>(v * p.rows + r)] *
               p.weights[static_cast<std::size_t>(r * p.cols + k)];
      }
      out[static_cast<std::size_t>(v * p.cols + k)] = acc;
    }
  }
  return out;
}

std::int64_t closed_form_cycles(const TileProblem& p) {
  // Last output (v = V-1, k = C-1) leaves the bottom of its column at cycle
  // (V-1) + (R-1) + (C-1); counting that cycle gives V + R + C - 2.
  return p.vectors + p.rows + p.cols - 2;
}

TileTrace simulate_tile(const TileProblem& p) {
  expects(p.rows > 0 && p.cols > 0 && p.vectors > 0,
          "tile dimensions must be positive");
  expects(p.weights.size() ==
              static_cast<std::size_t>(p.rows * p.cols),
          "weight count must match the tile shape");
  expects(p.inputs.size() ==
              static_cast<std::size_t>(p.vectors * p.rows),
          "input count must match the stream shape");

  struct Lane {
    double value = 0.0;
    std::int64_t vector_id = -1;  // -1 = no data
  };
  const auto idx = [&](std::int64_t r, std::int64_t k) {
    return static_cast<std::size_t>(r * p.cols + k);
  };
  // x lanes move right; psum lanes move down.  Double-buffered per cycle.
  std::vector<Lane> x(idx(p.rows - 1, p.cols - 1) + 1);
  std::vector<Lane> ps(x.size());
  std::vector<Lane> x_next(x.size());
  std::vector<Lane> ps_next(x.size());

  TileTrace trace;
  trace.outputs.assign(static_cast<std::size_t>(p.vectors * p.cols), 0.0);
  std::int64_t outputs_seen = 0;
  std::int64_t first_output_cycle = -1;
  const std::int64_t last_input_cycle = (p.vectors - 1) + (p.rows - 1);

  for (std::int64_t t = 0;
       outputs_seen < p.vectors * p.cols && t < closed_form_cycles(p) + 8;
       ++t) {
    for (std::int64_t r = 0; r < p.rows; ++r) {
      for (std::int64_t k = 0; k < p.cols; ++k) {
        // Input arriving from the left (or the skewed feed at column 0).
        Lane x_in;
        if (k == 0) {
          const std::int64_t v = t - r;  // skew: row r lags by r cycles
          if (v >= 0 && v < p.vectors) {
            x_in.value = p.inputs[static_cast<std::size_t>(v * p.rows + r)];
            x_in.vector_id = v;
          }
        } else {
          x_in = x[idx(r, k - 1)];
        }
        // Partial sum arriving from above (or zero at the top row).
        Lane ps_in;
        if (r == 0) {
          ps_in.value = 0.0;
          ps_in.vector_id = x_in.vector_id;  // new accumulation chain
        } else {
          ps_in = ps[idx(r - 1, k)];
        }

        Lane ps_out;
        if (x_in.vector_id >= 0) {
          ensures(ps_in.vector_id == x_in.vector_id,
                  "systolic wavefront misaligned");
          ps_out.value = ps_in.value + x_in.value * p.weights[idx(r, k)];
          ps_out.vector_id = x_in.vector_id;
          ++trace.mac_operations;
          if (r == p.rows - 1) {  // completed output leaves the column
            trace.outputs[static_cast<std::size_t>(ps_out.vector_id * p.cols +
                                                   k)] = ps_out.value;
            ++outputs_seen;
            if (first_output_cycle < 0) first_output_cycle = t;
            trace.total_cycles = t + 1;
          }
        }
        x_next[idx(r, k)] = x_in;
        ps_next[idx(r, k)] = ps_out;
      }
    }
    x.swap(x_next);
    ps.swap(ps_next);
  }

  ensures(outputs_seen == p.vectors * p.cols,
          "micro-simulation did not produce every output");
  trace.fill_cycles = first_output_cycle;
  trace.drain_cycles = trace.total_cycles - 1 - last_input_cycle;
  return trace;
}

}  // namespace uld3d::sim

#include "uld3d/sim/buffer_analysis.hpp"

#include <algorithm>

#include "uld3d/sim/tiling.hpp"
#include "uld3d/util/check.hpp"

namespace uld3d::sim {

BufferRequirement analyze_layer_buffers(const nn::Layer& layer,
                                        const AcceleratorConfig& cfg,
                                        double budget_bits) {
  expects(budget_bits > 0.0, "buffer budget must be positive");
  BufferRequirement req;
  req.layer = layer.name();
  if (!layer.is_conv()) {
    // Vector layers stream element-wise through small FIFOs: a few rows of
    // the activation map at activation precision.
    const std::int64_t channels =
        layer.is_pool() ? layer.pool().channels : layer.eltwise().channels;
    req.input_bits =
        static_cast<double>(4 * channels * cfg.array.activation_bits);
    return req;
  }

  const auto& conv = layer.conv();
  const auto& arr = cfg.array;

  // Ping/pong weight images.
  req.weight_bits = 2.0 * tile_weight_bits(arr);

  // Input slice streamed against one weight tile: the rows of channels the
  // tile consumes over the layer's input window.
  const TilePlan plan = plan_tiles(conv, arr);
  const double slice_channels = std::min<double>(
      static_cast<double>(arr.rows),
      static_cast<double>(conv.c * plan.taps_packed));
  const double full_slice = slice_channels *
                            static_cast<double>(conv.input_x()) *
                            static_cast<double>(conv.input_y()) *
                            static_cast<double>(arr.activation_bits);
  const double weight_and_output_floor =
      req.weight_bits +
      static_cast<double>(arr.cols * conv.ox * 24);  // see below
  if (full_slice + weight_and_output_floor > budget_bits) {
    // Row-chunked streaming: hold fy+1 input rows instead of the whole map.
    req.row_streamed = true;
    req.input_bits = slice_channels *
                     static_cast<double>(conv.input_x()) *
                     static_cast<double>(conv.fy + 1) *
                     static_cast<double>(arr.activation_bits);
  } else {
    req.input_bits = full_slice;
  }

  // One K-tile's partial sums for one output row band at 24-bit precision.
  req.output_bits = static_cast<double>(arr.cols * conv.ox * 24);
  return req;
}

BufferReport analyze_network_buffers(const nn::Network& net,
                                     const AcceleratorConfig& cfg,
                                     double budget_bits) {
  BufferReport report;
  for (const auto& layer : net.layers()) {
    BufferRequirement req = analyze_layer_buffers(layer, cfg, budget_bits);
    if (req.row_streamed) ++report.row_streamed_layers;
    if (req.total_bits() > report.peak_bits) {
      report.peak_bits = req.total_bits();
      report.peak_layer = req.layer;
    }
    report.layers.push_back(std::move(req));
  }
  return report;
}

}  // namespace uld3d::sim

#include "uld3d/sim/layer_sim.hpp"

#include "uld3d/sim/energy_batch.hpp"

#include <algorithm>
#include <cmath>

#include "uld3d/util/check.hpp"
#include "uld3d/util/math.hpp"
#include "uld3d/util/metrics.hpp"

namespace uld3d::sim {

namespace {

/// MAC/op and traffic counters for run reports.  Guarded by the enabled
/// flag so the disabled cost in the per-layer hot path is one branch, not
/// three registry lookups.
void count_layer_activity(const char* op_counter, double ops,
                          double read_bits, double write_bits) {
  if (!metrics_enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter(op_counter).add(static_cast<std::uint64_t>(ops));
  registry.counter("sim.layer.read_bits")
      .add(static_cast<std::uint64_t>(read_bits));
  registry.counter("sim.layer.write_bits")
      .add(static_cast<std::uint64_t>(write_bits));
}

// Energy accounting (the former local finish_energy) lives in
// sim/energy_batch.cpp: simulate_layer calls the scalar version per layer;
// simulate_network batches all layers' terms through finish_energy_batch.

/// Downsample-style projections (1x1, strided) partition over input channels
/// so their output maps colocate with the residual add that consumes them.
bool use_c_partition(const nn::ConvSpec& conv, const AcceleratorConfig& cfg,
                     const TilePlan& plan) {
  return cfg.array.ds_input_channel_partition && cfg.n_cs > 1 &&
         conv.fx == 1 && conv.fy == 1 && conv.stride > 1 && plan.c_tiles > 1;
}

LayerResult simulate_conv(const nn::Layer& layer, const AcceleratorConfig& cfg,
                          LayerTerms& terms) {
  const auto& conv = layer.conv();
  const auto& arr = cfg.array;
  const auto& mem = cfg.memory;
  LayerResult r;
  r.name = layer.name();

  const TilePlan plan = plan_tiles(conv, arr);
  const bool c_partition = use_c_partition(conv, cfg, plan);
  const std::int64_t nmax =
      c_partition ? std::min<std::int64_t>(cfg.n_cs, plan.c_tiles)
                  : std::min<std::int64_t>(cfg.n_cs, plan.k_tiles);
  r.cs_used = nmax;

  // --- compute time per CS ---
  const std::int64_t k_tiles_per_cs =
      c_partition ? plan.k_tiles : ceil_div(plan.k_tiles, nmax);
  const std::int64_t c_tiles_per_cs =
      c_partition ? ceil_div(plan.c_tiles, nmax) : plan.c_tiles;
  const std::int64_t tiles_per_cs =
      k_tiles_per_cs * c_tiles_per_cs * plan.tap_groups;
  const double load_cycles =
      tile_weight_bits(arr) / mem.bank_read_bits_per_cycle;
  r.compute_cycles = static_cast<double>(
      tiles_per_cs * plan.cycles_per_tile(load_cycles, arr.tile_sync_cycles));

  // C-partitioned CSs produce partial-sum maps that the single shared vector
  // unit accumulates serially after compute.
  double reduction_cycles = 0.0;
  if (c_partition && nmax > 1) {
    const double out_elems = static_cast<double>(conv.k * conv.ox * conv.oy);
    reduction_cycles = static_cast<double>(nmax - 1) * out_elems /
                       static_cast<double>(arr.vector_ops_per_cycle);
  }

  // --- memory time per CS ---
  const double w_bits = static_cast<double>(layer.weight_bits(arr.weight_bits));
  const double i_bits =
      static_cast<double>(layer.input_bits(arr.activation_bits));
  const double o_bits =
      static_cast<double>(layer.output_bits(arr.activation_bits));
  const double n_inv = 1.0 / static_cast<double>(nmax);
  double per_cs_reads = 0.0;
  double per_cs_writes = 0.0;
  if (c_partition) {
    // Weights and inputs split by channel.  Partial-sum maps stay in SRAM
    // buffers for the reduction; only the final map is written back.
    per_cs_reads = (w_bits + i_bits) * n_inv;
    per_cs_writes = o_bits * n_inv;
  } else {
    // K-partitioning: weights and outputs split; input map replicated to
    // every CS's bank group (the paper's conservative D0*N/B_3D term).
    const double k_share = static_cast<double>(k_tiles_per_cs) /
                           static_cast<double>(plan.k_tiles);
    per_cs_reads = w_bits * k_share + i_bits;
    per_cs_writes = o_bits * k_share;
  }
  r.memory_cycles =
      per_cs_reads / mem.bank_read_bits_per_cycle +
      per_cs_writes * mem.write_bandwidth_divisor / mem.bank_read_bits_per_cycle;

  const double busy =
      std::max(r.compute_cycles, r.memory_cycles) + reduction_cycles;
  r.memory_bound = r.memory_cycles > r.compute_cycles;
  r.cycles = static_cast<std::int64_t>(std::ceil(busy)) + cfg.layer_launch_cycles;

  const double macs = static_cast<double>(layer.macs());
  r.utilization =
      macs / (static_cast<double>(nmax) * static_cast<double>(r.cycles) *
              static_cast<double>(arr.rows * arr.cols));

  count_layer_activity("sim.layer.macs", macs, w_bits + i_bits, o_bits);
  terms.read_bits = w_bits + i_bits;
  terms.write_bits = o_bits;
  terms.compute_energy_pj = macs * arr.mac_energy_pj;
  return r;
}

LayerResult simulate_vector_layer(const nn::Layer& layer,
                                  const AcceleratorConfig& cfg,
                                  LayerTerms& terms) {
  const auto& arr = cfg.array;
  const auto& mem = cfg.memory;
  LayerResult r;
  r.name = layer.name();

  const std::int64_t channels =
      layer.is_pool() ? layer.pool().channels : layer.eltwise().channels;
  // One shared vector unit by default; optionally one per CS.
  const std::int64_t nmax =
      arr.per_cs_vector_units ? std::min<std::int64_t>(cfg.n_cs, channels) : 1;
  r.cs_used = nmax;

  const double ops = static_cast<double>(layer.ops());
  r.compute_cycles = ops / (static_cast<double>(arr.vector_ops_per_cycle) *
                            static_cast<double>(nmax));

  // Channel partitioning splits both input and output traffic.
  const double i_bits =
      static_cast<double>(layer.input_bits(arr.activation_bits));
  const double o_bits =
      static_cast<double>(layer.output_bits(arr.activation_bits));
  const double share = 1.0 / static_cast<double>(nmax);
  r.memory_cycles =
      i_bits * share / mem.bank_read_bits_per_cycle +
      o_bits * share * mem.write_bandwidth_divisor / mem.bank_read_bits_per_cycle;

  const double busy = std::max(r.compute_cycles, r.memory_cycles);
  r.memory_bound = r.memory_cycles > r.compute_cycles;
  r.cycles = static_cast<std::int64_t>(std::ceil(busy)) + cfg.layer_launch_cycles;
  r.utilization = 0.0;  // the systolic array is idle during vector layers

  count_layer_activity("sim.layer.vector_ops", ops, i_bits, o_bits);
  terms.read_bits = i_bits;
  terms.write_bits = o_bits;
  terms.compute_energy_pj = ops * arr.vector_op_energy_pj;
  return r;
}

}  // namespace

LayerResult simulate_layer_terms(const nn::Layer& layer,
                                 const AcceleratorConfig& cfg,
                                 LayerTerms& terms) {
  cfg.validate();
  if (layer.is_conv()) return simulate_conv(layer, cfg, terms);
  return simulate_vector_layer(layer, cfg, terms);
}

LayerResult simulate_layer(const nn::Layer& layer, const AcceleratorConfig& cfg) {
  LayerTerms terms;
  LayerResult r = simulate_layer_terms(layer, cfg, terms);
  finish_energy(cfg, terms.read_bits, terms.write_bits,
                terms.compute_energy_pj, r);
  return r;
}

}  // namespace uld3d::sim

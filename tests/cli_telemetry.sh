#!/bin/sh
# Integration test for the telemetry event stream + uld3d-report analyzer
# (DESIGN.md §14):
#
#  1. `uld3d-report --canon` of a jobs=1 stream and a jobs=8 stream of the
#     same sweep are byte-identical (the determinism contract extends to
#     telemetry).
#  2. SIGTERM mid-sweep -> exit 5 AND the events file written so far is a
#     parseable NDJSON prefix (uld3d-report accepts it without error).
#  3. An interrupted-then-resumed stream (two runs appended to one file)
#     canonicalizes byte-identical to the uninterrupted run's stream.
#  4. uld3d-report joins artifacts by RunId: a matching --metrics export
#     exits 0, a foreign one exits 1.
#  5. Analyzer error contract: usage errors exit 2, malformed mid-file
#     JSON exits 3, while one torn FINAL line is tolerated.
#
# Usage: cli_telemetry.sh /path/to/uld3d_cli /path/to/uld3d-report
set -u

cli="$1"
report="$2"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# --- 1. canon byte-equality across jobs counts ------------------------------
"$cli" sweep --keep-going --jobs 1 --events "$tmpdir/ev1.ndjson" \
  >/dev/null 2>&1 || fail "jobs=1 sweep with --events failed"
"$cli" sweep --keep-going --jobs 8 --events "$tmpdir/ev8.ndjson" \
  >/dev/null 2>&1 || fail "jobs=8 sweep with --events failed"
"$report" --canon "$tmpdir/ev1.ndjson" > "$tmpdir/canon1.txt" \
  || fail "uld3d-report --canon rejected the jobs=1 stream"
"$report" --canon "$tmpdir/ev8.ndjson" > "$tmpdir/canon8.txt" \
  || fail "uld3d-report --canon rejected the jobs=8 stream"
cmp -s "$tmpdir/canon1.txt" "$tmpdir/canon8.txt" \
  || fail "canonical projection differs between jobs=1 and jobs=8"
grep -q '"ev": "sweep"' "$tmpdir/canon1.txt" || fail "canon lacks sweep header"
grep -q '"ev": "end"' "$tmpdir/canon1.txt" || fail "canon lacks end footer"

# --- 2 + 3. SIGTERM -> parseable prefix, then resume -> identical canon -----
# Retry if the sweep outran the signal (slow CI can reorder the sleep).
attempt=0
got=0
while [ "$attempt" -lt 5 ]; do
  attempt=$((attempt + 1))
  rm -f "$tmpdir/evi.ndjson" "$tmpdir/ckpt.json"
  ULD3D_SWEEP_DELAY_MS=300 "$cli" sweep --keep-going --jobs 2 \
    --checkpoint "$tmpdir/ckpt.json" --checkpoint-interval 1 \
    --events "$tmpdir/evi.ndjson" >/dev/null 2>&1 &
  pid=$!
  sleep 1
  kill -TERM "$pid" 2>/dev/null
  wait "$pid"
  got=$?
  [ "$got" -eq 5 ] && break
done
if [ "$got" -ne 5 ]; then
  fail "SIGTERM-ed sweep: expected exit 5 (interrupted, resumable), got $got"
fi
[ -s "$tmpdir/evi.ndjson" ] || fail "interrupted sweep left no events"
"$report" "$tmpdir/evi.ndjson" > "$tmpdir/interrupted.txt" \
  || fail "interrupted events file is not a parseable prefix"
grep -q 'interrupted' "$tmpdir/interrupted.txt" \
  || fail "interrupted run_end status not reported"

"$cli" sweep --keep-going --jobs 4 --checkpoint "$tmpdir/ckpt.json" --resume \
  --events "$tmpdir/evi.ndjson" >/dev/null 2>&1 \
  || fail "resume with --events failed"
runs="$(grep -c '"ev": "run_start"' "$tmpdir/evi.ndjson")"
[ "$runs" = 2 ] || fail "resumed stream should hold 2 runs, holds $runs"
"$report" --canon "$tmpdir/evi.ndjson" > "$tmpdir/canoni.txt" \
  || fail "uld3d-report --canon rejected the resumed stream"
cmp -s "$tmpdir/canoni.txt" "$tmpdir/canon1.txt" \
  || fail "canonical projection differs between resumed and uninterrupted"

# --- 4. RunId joins ---------------------------------------------------------
"$cli" sweep --keep-going --events "$tmpdir/evm.ndjson" \
  --metrics "$tmpdir/metrics.json" >/dev/null 2>&1 \
  || fail "sweep with --events --metrics failed"
"$report" "$tmpdir/evm.ndjson" --metrics "$tmpdir/metrics.json" \
  > "$tmpdir/join.txt" || fail "matching metrics join should exit 0"
grep -q 'matches' "$tmpdir/join.txt" || fail "metrics join not reported"
# A metrics export from a DIFFERENT run must be refused (exit 1).
"$report" "$tmpdir/evm.ndjson" --metrics "$tmpdir/metrics.json" \
  >/dev/null 2>&1
"$cli" sweep --keep-going --metrics "$tmpdir/foreign.json" >/dev/null 2>&1 \
  || fail "foreign metrics run failed"
"$report" "$tmpdir/evm.ndjson" --metrics "$tmpdir/foreign.json" \
  >/dev/null 2>&1
code=$?
[ "$code" -eq 1 ] || fail "foreign metrics join: expected exit 1, got $code"

# --- 5. analyzer error contract ---------------------------------------------
"$report" >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "no-argument usage: expected exit 2, got $code"
"$report" --bogus-flag x >/dev/null 2>&1
code=$?
[ "$code" -eq 2 ] || fail "unknown flag: expected exit 2, got $code"

# Malformed JSON mid-file (NOT at the end) is corruption, exit 3.
head -n 3 "$tmpdir/ev1.ndjson" > "$tmpdir/bad.ndjson"
echo '{"schema": 1, "ev": truncated' >> "$tmpdir/bad.ndjson"
tail -n 2 "$tmpdir/ev1.ndjson" >> "$tmpdir/bad.ndjson"
"$report" "$tmpdir/bad.ndjson" >/dev/null 2>&1
code=$?
[ "$code" -eq 3 ] || fail "mid-file corruption: expected exit 3, got $code"

# One torn FINAL line (a killed writer) is tolerated and reported.
head -n 5 "$tmpdir/ev1.ndjson" > "$tmpdir/torn.ndjson"
printf '{"schema": 1, "ev": "point_done", "ind' >> "$tmpdir/torn.ndjson"
"$report" "$tmpdir/torn.ndjson" > "$tmpdir/torn.txt" \
  || fail "one torn final line should be tolerated"
grep -q 'torn final line' "$tmpdir/torn.txt" \
  || fail "torn final line not reported"

# A future schema version is refused, not misread.
echo '{"schema": 999, "ev": "run_start", "run": "x", "shard": "0/1", "ts_ms": 0}' \
  > "$tmpdir/future.ndjson"
"$report" "$tmpdir/future.ndjson" >/dev/null 2>&1
code=$?
[ "$code" -eq 3 ] || fail "future schema: expected exit 3, got $code"

if [ "$failures" -ne 0 ]; then
  echo "$failures telemetry check(s) failed" >&2
  exit 1
fi
echo "all telemetry checks passed"

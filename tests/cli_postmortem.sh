#!/bin/sh
# Integration test for the flight recorder's fatal-path dump (DESIGN.md §15):
#
#  1. SIGSEGV mid-sweep (injected deterministically via ULD3D_CRASH_AT) ->
#     the process dies by signal AND leaves a parseable postmortem JSON
#     that names the in-flight stage in some thread's active-span stack.
#  2. The postmortem joins the crashed run's event stream by RunId:
#     `uld3d-report EVENTS --postmortem DUMP` exits 0 and reports the
#     crashing thread; a foreign run's dump is refused (exit 1).
#  3. `--postmortem` defaults ON for sweep (dump lands at
#     <run>.postmortem.json in the cwd) and `--no-postmortem` disarms it.
#
# ASAN_OPTIONS: on sanitizer builds ASan's own SEGV/abort interception
# would swallow the injected crash before our handler runs; these options
# hand the signals back.  They are inert on non-sanitizer builds.
#
# Usage: cli_postmortem.sh /path/to/uld3d_cli /path/to/uld3d-report
set -u

# Absolute paths: the default-path checks below run the CLI from other cwds.
cli="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
report="$(cd "$(dirname "$2")" && pwd)/$(basename "$2")"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

asan_opts="handle_segv=0:handle_abort=0:detect_leaks=0"

# --- 1. injected SIGSEGV -> death by signal + parseable dump ----------------
ASAN_OPTIONS="$asan_opts" ULD3D_CRASH_AT=dse.point:5 \
  "$cli" sweep --keep-going --jobs 2 \
  --events "$tmpdir/crash.ndjson" --postmortem="$tmpdir/crash.pm.json" \
  >/dev/null 2>"$tmpdir/crash.stderr"
code=$?
# Death by SIGSEGV surfaces as 139 under sh (128 + 11).
[ "$code" -ge 128 ] || fail "crashed sweep: expected signal death, got $code"
[ -s "$tmpdir/crash.pm.json" ] || fail "no postmortem written on SIGSEGV"
grep -q 'postmortem' "$tmpdir/crash.stderr" \
  || fail "no stderr breadcrumb pointing at the dump"
grep -q '"reason": "SIGSEGV"' "$tmpdir/crash.pm.json" \
  || fail "postmortem does not name SIGSEGV as the reason"
# The crash fires inside a sweep-point evaluation: the dumping thread's
# active spans must name the in-flight stage.
grep -q '"dse.sweep.point"' "$tmpdir/crash.pm.json" \
  || fail "postmortem does not name the in-flight dse.sweep.point span"
grep -q '"dse.point"' "$tmpdir/crash.pm.json" \
  || fail "postmortem ring lacks the dse.point event records"

# --- 2. RunId join with the crashed run's event stream ----------------------
[ -s "$tmpdir/crash.ndjson" ] || fail "crashed sweep left no events"
"$report" "$tmpdir/crash.ndjson" --postmortem "$tmpdir/crash.pm.json" \
  > "$tmpdir/join.txt" || fail "postmortem join should exit 0"
grep -q 'SIGSEGV' "$tmpdir/join.txt" || fail "join does not report the signal"

# A dump from a DIFFERENT run must be refused.
ASAN_OPTIONS="$asan_opts" ULD3D_CRASH_AT=dse.point:5 \
  "$cli" sweep --keep-going --jobs 2 \
  --events "$tmpdir/other.ndjson" --postmortem="$tmpdir/other.pm.json" \
  >/dev/null 2>&1
[ -s "$tmpdir/other.pm.json" ] || fail "second crash left no postmortem"
"$report" "$tmpdir/crash.ndjson" --postmortem "$tmpdir/other.pm.json" \
  >/dev/null 2>&1
code=$?
[ "$code" -eq 1 ] || fail "foreign postmortem join: expected exit 1, got $code"

# --- 3. default-on for sweep, --no-postmortem disarms -----------------------
defaultdir="$tmpdir/defaultcwd"
mkdir "$defaultdir"
(cd "$defaultdir" && ASAN_OPTIONS="$asan_opts" ULD3D_CRASH_AT=dse.point:3 \
  "$cli" sweep --keep-going --jobs 1 >/dev/null 2>&1)
ls "$defaultdir"/*.postmortem.json >/dev/null 2>&1 \
  || fail "sweep default did not write <run>.postmortem.json in the cwd"

nodir="$tmpdir/nocwd"
mkdir "$nodir"
(cd "$nodir" && ASAN_OPTIONS="$asan_opts" ULD3D_CRASH_AT=dse.point:3 \
  "$cli" sweep --keep-going --jobs 1 --no-postmortem >/dev/null 2>&1)
if ls "$nodir"/*.postmortem.json >/dev/null 2>&1; then
  fail "--no-postmortem still wrote a dump"
fi

# A clean (non-crashing) sweep must not leave a dump behind either.
cleandir="$tmpdir/cleancwd"
mkdir "$cleandir"
(cd "$cleandir" && "$cli" sweep --keep-going --jobs 1 >/dev/null 2>&1) \
  || fail "clean sweep failed"
if ls "$cleandir"/*.postmortem.json >/dev/null 2>&1; then
  fail "clean sweep left a postmortem dump"
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures postmortem check(s) failed" >&2
  exit 1
fi
echo "all postmortem checks passed"

#include "uld3d/accel/chip_summary.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"

namespace uld3d::accel {
namespace {

TEST(ChipSummary, DerivedFlowInputIsConsistent) {
  const CaseStudy study;
  const auto input = derive_flow_input(study, nn::make_resnet18(), true);
  EXPECT_DOUBLE_EQ(input.rram_capacity_bits, study.capacity_bits());
  EXPECT_GT(input.cs_logic_area_um2, 0.0);
  EXPECT_GT(input.cs_sram_area_um2, 0.0);
  EXPECT_GT(input.cs_dynamic_mw_each, 0.0);
  EXPECT_GT(input.mem_periph_dynamic_mw, 0.0);
  // The selector share must be a small slice of the memory power.
  EXPECT_LT(input.cnfet_selector_mw, 0.1 * input.mem_periph_dynamic_mw);
  EXPECT_DOUBLE_EQ(input.target_frequency_mhz, 20.0);
}

TEST(ChipSummary, DerivedPowersArePaperScale) {
  // A 20 MHz 130 nm edge accelerator burns milliwatts, not watts.
  const CaseStudy study;
  const auto input = derive_flow_input(study, nn::make_resnet18(), true);
  const double total = input.cs_dynamic_mw_each * 8.0 +
                       input.mem_periph_dynamic_mw +
                       input.mem_cell_access_mw + input.cnfet_selector_mw;
  EXPECT_GT(total, 1.0);
  EXPECT_LT(total, 500.0);
}

TEST(ChipSummary, CoupledRunReproducesObservationTwo) {
  const CaseStudy study;
  const ChipSummary s = summarize_chip(study, nn::make_resnet18());
  ASSERT_TRUE(s.physical.design_2d.feasible);
  ASSERT_TRUE(s.physical.design_3d.feasible);
  // With SIMULATION-derived powers the paper's claims must still hold.
  EXPECT_LT(s.physical.design_3d.upper_tier_power_fraction, 0.01);
  EXPECT_GT(s.physical.peak_density_ratio, 1.0);
  EXPECT_LT(s.physical.peak_density_ratio, 1.06);
}

TEST(ChipSummary, LatencyAndPowerRelationsHold) {
  const CaseStudy study;
  const ChipSummary s = summarize_chip(study, nn::make_resnet18());
  // M3D finishes ~5.4x sooner; under default activation its power scales
  // with the 8x placed logic.
  EXPECT_NEAR(s.inference_ms_2d / s.inference_ms_3d, s.workload.speedup, 0.01);
  EXPECT_GT(s.power_3d_mw, 3.0 * s.power_2d_mw);
  EXPECT_LT(s.power_3d_mw, 10.0 * s.power_2d_mw);
}

TEST(ChipSummary, DatasheetMentionsKeyRows) {
  const CaseStudy study;
  const ChipSummary s = summarize_chip(study, nn::make_resnet18());
  const std::string sheet = datasheet(s);
  for (const char* needle :
       {"Footprint", "Computing sub-systems", "Inference latency",
        "Peak density", "Upper-tier power", "EDP benefit", "ResNet-18"}) {
    EXPECT_NE(sheet.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace uld3d::accel

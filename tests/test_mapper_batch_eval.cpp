// Differential suite for the SoA batch candidate evaluation (PR: data-
// oriented batch kernels).  The contract under test: batch-on (AVX2),
// batch-on with forced-scalar kernels, and the seed scalar loop
// (`set_batch_eval_enabled(false)`, the ULD3D_NO_SIMD path) all pick the
// same winning mapping and return byte-identical LayerCost/NetworkCost —
// across randomized layer shapes, jobs counts, cache modes, and
// denormal/overflow edge cases.
#include "uld3d/mapper/batch_eval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/mapper/spatial_search.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/parallel.hpp"
#include "uld3d/util/rng.hpp"
#include "uld3d/util/simd.hpp"

namespace uld3d::mapper {
namespace {

/// Restores every global knob the suite touches: batch flag, SIMD override,
/// cache, jobs.
class BatchEvalTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    set_batch_eval_enabled(true);
    simd::set_force_scalar(false);
    MapCache::instance().set_enabled(true);
    MapCache::instance().clear();
    parallel::set_jobs(0);
  }
};

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void expect_costs_identical(const LayerCost& a, const LayerCost& b) {
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.mapping_order, b.mapping_order);
  EXPECT_EQ(a.cs_used, b.cs_used);
  EXPECT_TRUE(bits_equal(a.utilization, b.utilization));
  EXPECT_TRUE(bits_equal(a.compute_cycles, b.compute_cycles));
  EXPECT_TRUE(bits_equal(a.rram_cycles, b.rram_cycles));
  EXPECT_TRUE(bits_equal(a.latency_cycles, b.latency_cycles));
  EXPECT_TRUE(bits_equal(a.mac_energy_pj, b.mac_energy_pj));
  EXPECT_TRUE(bits_equal(a.buffer_energy_pj, b.buffer_energy_pj));
  EXPECT_TRUE(bits_equal(a.rram_energy_pj, b.rram_energy_pj));
  EXPECT_TRUE(bits_equal(a.idle_energy_pj, b.idle_energy_pj));
  EXPECT_TRUE(bits_equal(a.energy_pj, b.energy_pj));
}

nn::ConvSpec random_conv(Rng& rng, int i) {
  nn::ConvSpec s;
  s.name = "conv" + std::to_string(i);
  s.k = static_cast<std::int64_t>(1 + rng.below(512));
  s.c = static_cast<std::int64_t>(1 + rng.below(512));
  s.ox = static_cast<std::int64_t>(1 + rng.below(112));
  s.oy = static_cast<std::int64_t>(1 + rng.below(112));
  s.fx = static_cast<std::int64_t>(1 + rng.below(7));
  s.fy = static_cast<std::int64_t>(1 + rng.below(7));
  s.stride = static_cast<std::int64_t>(1 + rng.below(2));
  return s;
}

/// The naive reference: an independent copy of the seed argmin loop over
/// price_candidate_scalar, deliberately NOT sharing any code with
/// evaluate_candidates.
LayerCost naive_best(const nn::ConvSpec& conv, const Architecture& arch,
                     const SystemCosts& sys, std::int64_t n_cs) {
  const auto candidates = candidate_mappings(conv, arch);
  LayerCost best;
  double best_edp = std::numeric_limits<double>::infinity();
  for (const auto& m : candidates) {
    LayerCost c = price_candidate_scalar(conv, m, arch, sys, n_cs);
    const double edp = c.latency_cycles * c.energy_pj;
    if (edp < best_edp) {
      best_edp = edp;
      best = c;
    }
  }
  return best;
}

TEST_F(BatchEvalTest, RandomizedDifferentialAgainstNaiveReference) {
  Rng rng(20260808);
  const auto arch = make_table2_architecture(1);
  CandidateBatch scratch;
  for (int i = 0; i < 200; ++i) {
    const nn::ConvSpec c = random_conv(rng, i);
    const std::int64_t n_cs = static_cast<std::int64_t>(1 + rng.below(16));
    const auto candidates = candidate_mappings(c, arch);

    const LayerCost ref = naive_best(c, arch, {}, n_cs);
    const LayerCost batch =
        evaluate_candidates(c, candidates, arch, {}, n_cs, scratch);
    expect_costs_identical(batch, ref);

    simd::set_force_scalar(true);
    const LayerCost scalar_kernels =
        evaluate_candidates(c, candidates, arch, {}, n_cs, scratch);
    simd::set_force_scalar(false);
    expect_costs_identical(scalar_kernels, ref);
  }
}

TEST_F(BatchEvalTest, EvaluateConvIdenticalAcrossAllThreeModes) {
  // Modes: batch+SIMD (default), batch+forced-scalar kernels, and the seed
  // scalar loop (what ULD3D_NO_SIMD selects at startup).
  Rng rng(42);
  const auto arch = make_table2_architecture(2);
  MapCache::instance().set_enabled(false);
  for (int i = 0; i < 100; ++i) {
    const nn::ConvSpec c = random_conv(rng, i);
    const std::int64_t n_cs = static_cast<std::int64_t>(1 + rng.below(64));

    set_batch_eval_enabled(true);
    simd::set_force_scalar(false);
    const LayerCost simd_cost = evaluate_conv(c, arch, {}, n_cs);

    simd::set_force_scalar(true);
    const LayerCost scalar_cost = evaluate_conv(c, arch, {}, n_cs);
    simd::set_force_scalar(false);

    set_batch_eval_enabled(false);
    const LayerCost seed_cost = evaluate_conv(c, arch, {}, n_cs);
    set_batch_eval_enabled(true);

    expect_costs_identical(simd_cost, seed_cost);
    expect_costs_identical(scalar_cost, seed_cost);
  }
}

TEST_F(BatchEvalTest, NetworkCostIdenticalAcrossJobsCacheAndBatchModes) {
  // The full network evaluation must be mode-invariant: batch on/off x
  // cache on/off x jobs {1, 8} all reproduce the serial seed run bitwise.
  const nn::Network net = nn::make_alexnet();
  const auto arch = make_table2_architecture(1);

  set_batch_eval_enabled(false);
  MapCache::instance().set_enabled(false);
  parallel::set_jobs(1);
  const NetworkCost ref = evaluate_network(net, arch, {}, 4);

  struct Mode {
    bool batch;
    bool cache;
    int jobs;
  };
  for (const Mode mode :
       {Mode{true, false, 1}, Mode{true, true, 1}, Mode{true, false, 8},
        Mode{true, true, 8}, Mode{false, true, 8}}) {
    set_batch_eval_enabled(mode.batch);
    MapCache::instance().set_enabled(mode.cache);
    MapCache::instance().clear();
    parallel::set_jobs(mode.jobs);
    const NetworkCost got = evaluate_network(net, arch, {}, 4);
    EXPECT_TRUE(bits_equal(got.latency_cycles, ref.latency_cycles))
        << "batch=" << mode.batch << " cache=" << mode.cache
        << " jobs=" << mode.jobs;
    EXPECT_TRUE(bits_equal(got.energy_pj, ref.energy_pj))
        << "batch=" << mode.batch << " cache=" << mode.cache
        << " jobs=" << mode.jobs;
    ASSERT_EQ(got.layers.size(), ref.layers.size());
    for (std::size_t i = 0; i < ref.layers.size(); ++i) {
      expect_costs_identical(got.layers[i], ref.layers[i]);
    }
  }
}

TEST_F(BatchEvalTest, SpatialSearchWinnerIdenticalAcrossModes) {
  // The spatial search multiplies candidate volume ~100x (every unrolling
  // prices every temporal candidate) — the hot path the SoA kernels target.
  const auto arch = make_table2_architecture(1);
  nn::ConvSpec c;
  c.name = "sweep";
  c.k = 384;
  c.c = 256;
  c.ox = 13;
  c.oy = 13;
  c.fx = 3;
  c.fy = 3;
  c.stride = 1;
  MapCache::instance().set_enabled(false);

  set_batch_eval_enabled(false);
  const SpatialSearchResult seed = search_spatial(c, arch, {}, 8);
  set_batch_eval_enabled(true);
  const SpatialSearchResult batch = search_spatial(c, arch, {}, 8);

  EXPECT_EQ(batch.best.k, seed.best.k);
  EXPECT_EQ(batch.best.c, seed.best.c);
  EXPECT_EQ(batch.best.ox, seed.best.ox);
  EXPECT_EQ(batch.best.oy, seed.best.oy);
  expect_costs_identical(batch.cost, seed.cost);
}

TEST_F(BatchEvalTest, DenormalAndOverflowEdgeCasesStayIdentical) {
  // Push the arithmetic into denormal quotients and overflowing products:
  // the kernels must not diverge from the scalar trees even at the extremes
  // of the double range.
  const auto base = make_table2_architecture(1);
  CandidateBatch scratch;

  struct Extreme {
    double rram_bw;
    double mac_energy;
  };
  for (const Extreme e :
       {Extreme{1e300, 1e-310}, Extreme{5e-324, 1e308},
        Extreme{1e-300, 1e300}}) {
    Architecture arch = base;
    arch.rram_bandwidth_bits_per_cycle = e.rram_bw;
    arch.mac_energy_pj = e.mac_energy;
    nn::ConvSpec c;
    c.name = "extreme";
    c.k = 512;
    c.c = 512;
    c.ox = 56;
    c.oy = 56;
    c.fx = 3;
    c.fy = 3;
    c.stride = 1;
    const auto candidates = candidate_mappings(c, arch);
    const LayerCost ref = naive_best(c, arch, {}, 8);
    const LayerCost batch =
        evaluate_candidates(c, candidates, arch, {}, 8, scratch);
    expect_costs_identical(batch, ref);

    simd::set_force_scalar(true);
    const LayerCost scalar =
        evaluate_candidates(c, candidates, arch, {}, 8, scratch);
    simd::set_force_scalar(false);
    expect_costs_identical(scalar, ref);
  }
}

TEST_F(BatchEvalTest, EmptyCandidateListYieldsDefaultCost) {
  const auto arch = make_table2_architecture(1);
  CandidateBatch scratch;
  const std::vector<TemporalMapping> none;
  nn::ConvSpec c;
  c.name = "none";
  const LayerCost cost = evaluate_candidates(c, none, arch, {}, 1, scratch);
  EXPECT_TRUE(cost.layer.empty());
  EXPECT_TRUE(bits_equal(cost.energy_pj, 0.0));
}

TEST_F(BatchEvalTest, ScratchReuseDoesNotLeakStateAcrossCalls) {
  // A big batch followed by a small one: the ratcheted arrays must not let
  // stale tail values influence the small batch's argmin.
  const auto arch = make_table2_architecture(1);
  CandidateBatch scratch;
  Rng rng(7);
  const nn::ConvSpec big = random_conv(rng, 0);
  const auto big_candidates = candidate_mappings(big, arch);
  (void)evaluate_candidates(big, big_candidates, arch, {}, 16, scratch);

  const nn::ConvSpec small = random_conv(rng, 1);
  const auto small_candidates = candidate_mappings(small, arch);
  const LayerCost got =
      evaluate_candidates(small, small_candidates, arch, {}, 2, scratch);
  expect_costs_identical(got, naive_best(small, arch, {}, 2));
}

}  // namespace
}  // namespace uld3d::mapper

#include "uld3d/phys/timing.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

tech::StdCellLibrary lib() { return tech::StdCellLibrary::make_si_cmos_130nm(); }

TEST(Timing, RelaxedTargetIsMetAt130nm) {
  // The paper's 20 MHz target (50 ns period) is easy for 130 nm logic.
  const TimingReport r =
      estimate_timing(lib(), {}, /*wire=*/5000.0, 1500.0, 20.0);
  EXPECT_TRUE(r.meets_target);
  EXPECT_GT(r.slack_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.achieved_frequency_mhz, 20.0);  // clocked at target
}

TEST(Timing, AggressiveTargetFails) {
  const TimingReport r =
      estimate_timing(lib(), {}, /*wire=*/5000.0, 1500.0, 500.0);
  EXPECT_FALSE(r.meets_target);
  EXPECT_LT(r.slack_ns, 0.0);
  EXPECT_LT(r.achieved_frequency_mhz, 500.0);
}

TEST(Timing, LogicDelayScalesWithDepth) {
  TimingParams deep;
  deep.logic_depth = 48;
  const TimingReport shallow = estimate_timing(lib(), {}, 0.0, 1500.0, 20.0);
  const TimingReport deeper = estimate_timing(lib(), deep, 0.0, 1500.0, 20.0);
  EXPECT_NEAR(deeper.logic_delay_ns / shallow.logic_delay_ns, 2.0, 1e-9);
}

TEST(Timing, LongerWiresSlower) {
  const TimingReport near =
      estimate_timing(lib(), {}, 1000.0, 1500.0, 20.0);
  const TimingReport far =
      estimate_timing(lib(), {}, 12000.0, 1500.0, 20.0);
  EXPECT_GT(far.wire_delay_ns, near.wire_delay_ns);
  EXPECT_GT(far.critical_path_ns, near.critical_path_ns);
}

TEST(Timing, BufferingMakesWireDelayNearLinear) {
  // Doubling a well-buffered wire should roughly double its delay, not
  // quadruple it (the unbuffered quadratic regime).
  const double d1 =
      estimate_timing(lib(), {}, 15000.0, 1500.0, 20.0).wire_delay_ns;
  const double d2 =
      estimate_timing(lib(), {}, 30000.0, 1500.0, 20.0).wire_delay_ns;
  EXPECT_LT(d2 / d1, 2.5);
  EXPECT_GT(d2 / d1, 1.7);
}

TEST(Timing, DerateAndUncertaintyApplied) {
  TimingParams ideal;
  ideal.derate = 1.0;
  ideal.clock_uncertainty_ns = 0.0;
  const TimingReport r_ideal = estimate_timing(lib(), ideal, 0.0, 1500.0, 20.0);
  const TimingReport r_real = estimate_timing(lib(), {}, 0.0, 1500.0, 20.0);
  EXPECT_GT(r_real.critical_path_ns, r_ideal.critical_path_ns);
}

TEST(Timing, Validation) {
  EXPECT_THROW(estimate_timing(lib(), {}, -1.0, 1500.0, 20.0),
               PreconditionError);
  EXPECT_THROW(estimate_timing(lib(), {}, 0.0, 0.0, 20.0), PreconditionError);
  EXPECT_THROW(estimate_timing(lib(), {}, 0.0, 1500.0, 0.0),
               PreconditionError);
  TimingParams bad;
  bad.logic_depth = 0;
  EXPECT_THROW(estimate_timing(lib(), bad, 0.0, 1500.0, 20.0),
               PreconditionError);
}

}  // namespace
}  // namespace uld3d::phys

#include "uld3d/phys/placer.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

Floorplan make_fp(double side = 6000.0) {
  return Floorplan(side, side, tech::TierStack::make_m3d_130nm(), 100.0);
}

SoftBlock block(const std::string& name, double area,
                std::vector<std::pair<std::size_t, double>> affinities = {}) {
  SoftBlock b;
  b.name = name;
  b.area_um2 = area;
  b.tier = tech::TierKind::kSiCmosFeol;
  b.affinities = std::move(affinities);
  return b;
}

TEST(Placer, PlacesNonOverlappingBlocks) {
  Floorplan fp = make_fp();
  Rng rng(1);
  const Placer placer;
  const auto result =
      placer.place(fp, {block("a", 4.0e6), block("b", 4.0e6),
                        block("c", 4.0e6)}, rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.blocks.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_FALSE(result.blocks[i].rect.overlaps(result.blocks[j].rect));
    }
  }
}

TEST(Placer, CommitsRegionsToFloorplan) {
  Floorplan fp = make_fp();
  Rng rng(1);
  const Placer placer;
  const auto result = placer.place(fp, {block("a", 9.0e6)}, rng);
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(
      fp.region_free(tech::TierKind::kSiCmosFeol, result.blocks[0].rect));
}

TEST(Placer, RespectsFixedMacroBlockages) {
  Floorplan fp = make_fp();
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_2d("m", 16.0e6), 0.0, 0.0));
  Rng rng(1);
  const Placer placer;
  const auto result = placer.place(fp, {block("a", 9.0e6)}, rng);
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(result.blocks[0].rect.overlaps(fp.macros()[0].rect));
}

TEST(Placer, AffinityPullsBlockTowardAnchor) {
  Floorplan fp = make_fp(10000.0);
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_m3d("anchor", 1.0e6), 8500.0,
                             8500.0));
  Rng rng(1);
  const Placer placer;
  const auto pulled =
      placer.place(fp, {block("a", 1.0e6, {{0, 1.0}})}, rng);
  ASSERT_TRUE(pulled.success);
  // The block lands near the top-right anchor, not at the origin.
  EXPECT_GT(pulled.blocks[0].rect.center().x, 5000.0);
  EXPECT_GT(pulled.blocks[0].rect.center().y, 5000.0);
}

TEST(Placer, ReportsUnplaceableBlocks) {
  Floorplan fp = make_fp(2000.0);
  Rng rng(1);
  const Placer placer;
  const auto result =
      placer.place(fp, {block("big", 3.6e6), block("huge", 3.6e6)}, rng);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.unplaced.size(), 1u);
  EXPECT_EQ(result.blocks.size(), 1u);
}

TEST(Placer, DeterministicForFixedSeed) {
  const Placer placer;
  const auto run = [&](std::uint64_t seed) {
    Floorplan fp = make_fp();
    Rng rng(seed);
    return placer.place(
        fp, {block("a", 4.0e6), block("b", 2.0e6), block("c", 1.0e6)}, rng);
  };
  const auto r1 = run(42);
  const auto r2 = run(42);
  ASSERT_EQ(r1.blocks.size(), r2.blocks.size());
  for (std::size_t i = 0; i < r1.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.blocks[i].rect.x0, r2.blocks[i].rect.x0);
    EXPECT_DOUBLE_EQ(r1.blocks[i].rect.y0, r2.blocks[i].rect.y0);
  }
  EXPECT_DOUBLE_EQ(r1.total_hpwl_um, r2.total_hpwl_um);
}

TEST(Placer, DensePackingFallbackFillsTightDies) {
  // 16 blocks that fill ~89% of the die: the greedy affinity pass alone
  // fragments, but the shelf fallback must succeed.
  Floorplan fp = make_fp(6000.0);
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_m3d("anchor", 1.0e6), 0.0, 0.0));
  std::vector<SoftBlock> blocks;
  for (int i = 0; i < 16; ++i) {
    blocks.push_back(block("b" + std::to_string(i), 2.0e6, {{0, 1.0}}));
  }
  Rng rng(7);
  const Placer placer;
  const auto result = placer.place(fp, blocks, rng);
  EXPECT_TRUE(result.success) << result.unplaced.size() << " unplaced";
}

TEST(Placer, SourceIndexMapsPlacedBlocksBackToInputs) {
  // A deliberately unplaceable block must not shift the source mapping of
  // the blocks placed after it: every placed entry still names the input
  // block its source_index points at.
  Floorplan fp = make_fp(2000.0);
  Rng rng(1);
  const Placer placer;
  const std::vector<SoftBlock> blocks = {block("big", 3.6e6),
                                         block("huge", 3.6e6),
                                         block("small", 9.0e3)};
  const auto result = placer.place(fp, blocks, rng);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.unplaced.size(), 1u);
  ASSERT_EQ(result.source_index.size(), result.blocks.size());
  ASSERT_EQ(result.blocks.size(), 2u);
  for (std::size_t i = 0; i < result.blocks.size(); ++i) {
    ASSERT_LT(result.source_index[i], blocks.size());
    EXPECT_EQ(result.blocks[i].macro.name,
              blocks[result.source_index[i]].name);
  }
}

TEST(Placer, RejectsOutOfRangeAffinityIndex) {
  // An affinity pointing past the fixed macros is always a caller bug; it
  // must fail loudly instead of silently dropping the anchor.
  Floorplan fp = make_fp();
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_m3d("anchor", 1.0e6), 0.0, 0.0));
  Rng rng(1);
  const Placer placer;
  EXPECT_THROW(placer.place(fp, {block("a", 1.0e6, {{1, 1.0}})}, rng),
               PreconditionError);
  EXPECT_THROW(placer.place(fp, {block("b", 1.0e6, {{99, 0.5}})}, rng),
               PreconditionError);
  // In-range affinities still place.
  const auto ok = placer.place(fp, {block("c", 1.0e6, {{0, 1.0}})}, rng);
  EXPECT_TRUE(ok.success);
}

TEST(Placer, BlockDimensionsFollowAspect) {
  SoftBlock b = block("a", 4.0e6);
  b.aspect = 4.0;
  EXPECT_NEAR(b.width_um() / b.height_um(), 4.0, 1e-9);
  EXPECT_NEAR(b.width_um() * b.height_um(), 4.0e6, 1e-6);
}

}  // namespace
}  // namespace uld3d::phys

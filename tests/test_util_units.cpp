#include "uld3d/util/units.hpp"

#include <gtest/gtest.h>

namespace uld3d::units {
namespace {

TEST(Units, Area) {
  EXPECT_DOUBLE_EQ(mm2_to_um2(1.0), 1.0e6);
  EXPECT_DOUBLE_EQ(um2_to_mm2(2.5e6), 2.5);
  EXPECT_DOUBLE_EQ(nm2_to_um2(1.0e6), 1.0);
  EXPECT_DOUBLE_EQ(um2_to_mm2(mm2_to_um2(3.7)), 3.7);
}

TEST(Units, Length) {
  EXPECT_DOUBLE_EQ(nm_to_um(130.0), 0.13);
  EXPECT_DOUBLE_EQ(um_to_nm(0.13), 130.0);
}

TEST(Units, Energy) {
  EXPECT_DOUBLE_EQ(nj_to_pj(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(uj_to_pj(1.0), 1.0e6);
  EXPECT_DOUBLE_EQ(fj_to_pj(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(pj_to_uj(uj_to_pj(0.25)), 0.25);
}

TEST(Units, TimeAndFrequency) {
  EXPECT_DOUBLE_EQ(mhz_to_period_ns(20.0), 50.0);
  EXPECT_DOUBLE_EQ(period_ns_to_mhz(50.0), 20.0);
  EXPECT_DOUBLE_EQ(period_ns_to_mhz(mhz_to_period_ns(123.0)), 123.0);
  EXPECT_DOUBLE_EQ(s_to_ns(1.0), 1.0e9);
  EXPECT_DOUBLE_EQ(ns_to_s(5.0e8), 0.5);
}

TEST(Units, Power) {
  // 1 pJ per ns is 1 mW.
  EXPECT_DOUBLE_EQ(pj_per_ns_to_mw(3.0), 3.0);
  EXPECT_DOUBLE_EQ(mw_to_w(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(w_to_mw(0.002), 2.0);
}

TEST(Units, Capacity) {
  EXPECT_DOUBLE_EQ(mb_to_bits(1.0), 8.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(kb_to_bits(1.0), 8192.0);
  EXPECT_DOUBLE_EQ(bytes_to_bits(16.0), 128.0);
  EXPECT_DOUBLE_EQ(bits_to_mb(mb_to_bits(64.0)), 64.0);
}

}  // namespace
}  // namespace uld3d::units

// The cycle-by-cycle micro-simulation must (a) compute the right numbers
// and (b) take exactly the cycle count the closed-form tile model assumes.
#include "uld3d/sim/systolic_trace.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "uld3d/util/check.hpp"

namespace uld3d::sim {
namespace {

TEST(SystolicTrace, TinyTileMatchesReference) {
  const TileProblem p = TileProblem::make_example(2, 2, 3);
  const TileTrace trace = simulate_tile(p);
  const auto expected = reference_outputs(p);
  ASSERT_EQ(trace.outputs.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace.outputs[i], expected[i]) << i;
  }
}

TEST(SystolicTrace, CycleCountMatchesClosedForm) {
  const TileProblem p = TileProblem::make_example(4, 4, 10);
  const TileTrace trace = simulate_tile(p);
  EXPECT_EQ(trace.total_cycles, closed_form_cycles(p));
  EXPECT_EQ(trace.total_cycles, 10 + 4 + 4 - 2);
}

TEST(SystolicTrace, MacCountIsExact) {
  const TileProblem p = TileProblem::make_example(3, 5, 7);
  EXPECT_EQ(simulate_tile(p).mac_operations, 3 * 5 * 7);
}

TEST(SystolicTrace, FillIsRowDepthDrainIsColumnWidth) {
  const TileProblem p = TileProblem::make_example(6, 4, 20);
  const TileTrace trace = simulate_tile(p);
  // First output appears after the column pipeline fills (rows - 1).
  EXPECT_EQ(trace.fill_cycles, 6 - 1);
  // After the last input enters, the wave needs cols - 1 cycles to exit.
  EXPECT_EQ(trace.drain_cycles, 4 - 1);
}

TEST(SystolicTrace, SingleVectorDegenerate) {
  const TileProblem p = TileProblem::make_example(4, 4, 1);
  const TileTrace trace = simulate_tile(p);
  EXPECT_EQ(trace.total_cycles, 1 + 4 + 4 - 2);
  const auto expected = reference_outputs(p);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace.outputs[i], expected[i]);
  }
}

TEST(SystolicTrace, Validation) {
  TileProblem bad = TileProblem::make_example(2, 2, 2);
  bad.weights.pop_back();
  EXPECT_THROW(simulate_tile(bad), PreconditionError);
  EXPECT_THROW(TileProblem::make_example(0, 2, 2), PreconditionError);
}

using Shape = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class TraceSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(TraceSweep, FunctionalAndTimingInvariants) {
  const auto [rows, cols, vectors] = GetParam();
  const TileProblem p = TileProblem::make_example(rows, cols, vectors);
  const TileTrace trace = simulate_tile(p);
  // Functional: every output equals the reference matrix product.
  const auto expected = reference_outputs(p);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_DOUBLE_EQ(trace.outputs[i], expected[i]);
  }
  // Timing: exactly the closed-form pipeline model; no hidden stalls.
  EXPECT_EQ(trace.total_cycles, closed_form_cycles(p));
  EXPECT_EQ(trace.mac_operations, rows * cols * vectors);
  EXPECT_EQ(trace.fill_cycles, rows - 1);
  EXPECT_EQ(trace.drain_cycles, cols - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TraceSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 5, 16),
                       ::testing::Values<std::int64_t>(1, 3, 16),
                       ::testing::Values<std::int64_t>(1, 4, 25)));

}  // namespace
}  // namespace uld3d::sim

#include "uld3d/core/roofline.hpp"

#include "uld3d/core/edp_model.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::core {
namespace {

Roofline roof() { return {512.0, 256.0}; }

TEST(Roofline, AttainableFollowsMin) {
  const Roofline r = roof();
  // Below the ridge: bandwidth-limited.
  EXPECT_DOUBLE_EQ(r.attainable_ops_per_cycle(1.0), 256.0);
  // Above the ridge: compute-limited.
  EXPECT_DOUBLE_EQ(r.attainable_ops_per_cycle(100.0), 512.0);
  // At the ridge both agree.
  EXPECT_DOUBLE_EQ(r.attainable_ops_per_cycle(r.ridge_intensity()), 512.0);
}

TEST(Roofline, RidgeIntensity) {
  EXPECT_DOUBLE_EQ(roof().ridge_intensity(), 2.0);
}

TEST(Roofline, ExecutionTimeIsEq1) {
  const Roofline r = roof();
  const WorkloadPoint mem = synthetic_workload(0.5, 256000.0, 8);
  EXPECT_DOUBLE_EQ(r.execution_time_cycles(mem), 1000.0);
  EXPECT_TRUE(r.memory_bound(mem));
  const WorkloadPoint cmp = synthetic_workload(64.0, 256000.0, 8);
  EXPECT_DOUBLE_EQ(r.execution_time_cycles(cmp), 64.0 * 256000.0 / 512.0);
  EXPECT_FALSE(r.memory_bound(cmp));
}

TEST(Roofline, MatchesAnalyticalEq1) {
  Chip2d c2;
  c2.bandwidth_bits_per_cycle = 256.0;
  c2.peak_ops_per_cycle = 512.0;
  c2.alpha_pj_per_bit = 1.0;
  c2.compute_pj_per_op = 1.0;
  const Roofline r = roof();
  for (const double intensity : {0.1, 1.0, 2.0, 10.0, 100.0}) {
    const WorkloadPoint w = synthetic_workload(intensity, 1.0e6, 4);
    EXPECT_DOUBLE_EQ(r.execution_time_cycles(w), execution_time_2d(w, c2));
  }
}

TEST(Gables, SingleIpMatchesPrivateRoofline) {
  GablesSoc soc(256.0);
  soc.add_ip({roof(), 1.0});
  const WorkloadPoint w = synthetic_workload(4.0, 1.0e6, 4);
  EXPECT_DOUBLE_EQ(soc.execution_time_cycles(w),
                   roof().execution_time_cycles(w));
}

TEST(Gables, HomogeneousScalesCompute) {
  // 8 CSs, shared bandwidth 8x per-CS: compute-bound workloads speed up 8x.
  const GablesSoc soc = GablesSoc::homogeneous(8, roof(), 8.0 * 256.0);
  const WorkloadPoint w = synthetic_workload(256.0, 1.0e6, 8);
  EXPECT_NEAR(roof().execution_time_cycles(w) / soc.execution_time_cycles(w),
              8.0, 1e-9);
}

TEST(Gables, SharedBandwidthBoundsMemoryTime) {
  // Plentiful per-IP bandwidth but a narrow shared port: the SoC is bound
  // by the shared memory system.
  GablesSoc soc(64.0);
  soc.add_ip({{512.0, 1.0e9}, 0.5});
  soc.add_ip({{512.0, 1.0e9}, 0.5});
  const WorkloadPoint w = synthetic_workload(0.25, 64000.0, 2);
  EXPECT_DOUBLE_EQ(soc.execution_time_cycles(w), 1000.0);  // 64000/64
}

TEST(Gables, SlowestIpDominates) {
  GablesSoc soc(1.0e9);
  soc.add_ip({{512.0, 1.0e9}, 0.9});   // fast IP, most of the work
  soc.add_ip({{1.0, 1.0e9}, 0.1});     // tiny IP, 10% of the work
  const WorkloadPoint w = synthetic_workload(1000.0, 1000.0, 2);
  // The tiny IP's compute time dominates: 0.1 * F0 / 1.
  EXPECT_DOUBLE_EQ(soc.execution_time_cycles(w), 0.1 * w.f0_ops);
}

TEST(Gables, Validation) {
  EXPECT_THROW(GablesSoc(0.0), PreconditionError);
  GablesSoc soc(1.0);
  EXPECT_THROW(soc.add_ip({{0.0, 1.0}, 1.0}), PreconditionError);
  EXPECT_THROW(soc.add_ip({roof(), 0.0}), PreconditionError);
  EXPECT_THROW(soc.add_ip({roof(), 1.5}), PreconditionError);
  const WorkloadPoint w = synthetic_workload(1.0, 1.0, 1);
  EXPECT_THROW(GablesSoc(1.0).execution_time_cycles(w), PreconditionError);
}

TEST(Roofline, Validation) {
  const Roofline bad{0.0, 1.0};
  EXPECT_THROW(bad.attainable_ops_per_cycle(1.0), PreconditionError);
  EXPECT_THROW(roof().attainable_ops_per_cycle(-1.0), PreconditionError);
}

}  // namespace
}  // namespace uld3d::core

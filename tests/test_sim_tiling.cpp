#include "uld3d/sim/tiling.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "uld3d/nn/layer.hpp"

namespace uld3d::sim {
namespace {

ArrayConfig array16() { return ArrayConfig{}; }  // 16x16 default

nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                  std::int64_t fx, std::int64_t stride = 1) {
  nn::ConvSpec s;
  s.name = "c";
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = stride;
  return s;
}

TEST(Tiling, LargeConvTilesBothDimensions) {
  const TilePlan plan = plan_tiles(conv(512, 512, 7, 3), array16());
  EXPECT_EQ(plan.k_tiles, 32);
  EXPECT_EQ(plan.c_tiles, 32);
  EXPECT_EQ(plan.taps_packed, 1);
  EXPECT_EQ(plan.tap_groups, 9);
  EXPECT_EQ(plan.total_tiles, 32 * 32 * 9);
  EXPECT_EQ(plan.stream_cycles, 49);
  EXPECT_DOUBLE_EQ(plan.array_utilization, 1.0);
}

TEST(Tiling, SmallChannelLayerPacksTaps) {
  // CONV1: C = 3, 7x7 taps -> 5 taps fit in 16 rows (15 used).
  const TilePlan plan = plan_tiles(conv(64, 3, 112, 7, 2), array16());
  EXPECT_EQ(plan.k_tiles, 4);
  EXPECT_EQ(plan.c_tiles, 1);
  EXPECT_EQ(plan.taps_packed, 5);
  EXPECT_EQ(plan.tap_groups, 10);  // ceil(49/5)
  EXPECT_NEAR(plan.array_utilization, 15.0 / 16.0, 1e-12);
}

TEST(Tiling, ExactFitHasFullUtilization) {
  const TilePlan plan = plan_tiles(conv(16, 16, 10, 1), array16());
  EXPECT_EQ(plan.total_tiles, 1);
  EXPECT_DOUBLE_EQ(plan.array_utilization, 1.0);
}

TEST(Tiling, RaggedKReducesUtilization) {
  // K = 24 on 16 columns: two tiles averaging 12/16 columns.
  const TilePlan plan = plan_tiles(conv(24, 16, 10, 1), array16());
  EXPECT_EQ(plan.k_tiles, 2);
  EXPECT_NEAR(plan.array_utilization, 12.0 / 16.0, 1e-12);
}

TEST(Tiling, CyclesPerTileDoubleBuffers) {
  const TilePlan plan = plan_tiles(conv(16, 16, 10, 1), array16());
  // Streaming (100) dominates an 8-cycle load: 100 + sync.
  EXPECT_EQ(plan.cycles_per_tile(8.0, 16), 116);
  // A huge load dominates streaming.
  EXPECT_EQ(plan.cycles_per_tile(500.0, 16), 516);
}

TEST(Tiling, TileWeightBitsCoversArray) {
  EXPECT_DOUBLE_EQ(tile_weight_bits(array16()), 16.0 * 16.0 * 8.0);
}

TEST(Tiling, MaxPartitionsFollowsKTiles) {
  EXPECT_EQ(max_partitions(conv(512, 512, 7, 3), array16()), 32);
  EXPECT_EQ(max_partitions(conv(8, 16, 10, 1), array16()), 1);
}

class UtilizationBounds
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(UtilizationBounds, AlwaysInUnitInterval) {
  const auto [k, c] = GetParam();
  for (const std::int64_t fx : {1, 3, 7}) {
    const TilePlan plan = plan_tiles(conv(k, c, 14, fx), array16());
    EXPECT_GT(plan.array_utilization, 0.0);
    EXPECT_LE(plan.array_utilization, 1.0 + 1e-12);
    EXPECT_GE(plan.total_tiles, 1);
    // Tiles must cover all weights.
    EXPECT_GE(plan.k_tiles * 16, k);
    EXPECT_GE(plan.c_tiles * 16 * plan.taps_packed * plan.tap_groups,
              c * fx * fx);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UtilizationBounds,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 3, 16, 17, 100, 512),
                       ::testing::Values<std::int64_t>(1, 3, 16, 64, 512)));

}  // namespace
}  // namespace uld3d::sim

// Fault-tolerance tests for the dse layer: per-point error isolation under
// ErrorPolicy::kSkipAndRecord, fail-fast preservation, and deterministic
// fault injection through the model-boundary sites.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "uld3d/core/edp_model.hpp"
#include "uld3d/core/thermal.hpp"
#include "uld3d/dse/sensitivity.hpp"
#include "uld3d/dse/sweep.hpp"
#include "uld3d/util/check.hpp"
#include "uld3d/util/fault.hpp"

namespace uld3d::dse {
namespace {

Grid grid2x3() {
  Grid g;
  g.axis("a", {1.0, 2.0}).axis("b", {10.0, 20.0, 30.0});
  return g;
}

class DseFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(DseFaultTest, ThrowingPointIsRecordedAndSweepCompletes) {
  // Point (2, 20) throws; the other five must carry their exact metrics.
  const auto result = run_sweep(
      grid2x3(), {"product"}, [](const std::vector<double>& p) {
        if (p[0] == 2.0 && p[1] == 20.0) {
          throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "no fit")
                                .with("n_cs", std::int64_t{16}));
        }
        return std::vector<double>{p[0] * p[1]};
      });
  ASSERT_EQ(result.rows().size(), 6u);
  EXPECT_EQ(result.failed_count(), 1u);
  EXPECT_EQ(result.ok_count(), 5u);
  const auto failed = result.failed_rows();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 4u);  // row-major: (2, 20) is index 4
  const auto& row = result.rows()[4];
  EXPECT_FALSE(row.ok());
  EXPECT_EQ(row.failure->code, ErrorCode::kInfeasiblePoint);
  EXPECT_TRUE(std::isnan(row.metrics[0]));
  // Feasible points reproduce the plain numeric results.
  EXPECT_DOUBLE_EQ(result.rows()[0].metrics[0], 10.0);
  EXPECT_DOUBLE_EQ(result.rows()[5].metrics[0], 60.0);
}

TEST_F(DseFaultTest, NonFiniteMetricBecomesNumericalError) {
  const auto result = run_sweep(
      grid2x3(), {"m"}, [](const std::vector<double>& p) {
        if (p[0] == 1.0 && p[1] == 30.0) {
          return std::vector<double>{std::numeric_limits<double>::quiet_NaN()};
        }
        return std::vector<double>{1.0};
      });
  EXPECT_EQ(result.failed_count(), 1u);
  EXPECT_EQ(result.rows()[2].failure->code, ErrorCode::kNumericalError);
}

TEST_F(DseFaultTest, FailFastPreservesThrowingBehaviour) {
  const SweepOptions fail_fast{ErrorPolicy::kFailFast, 0, {}, {}};
  EXPECT_THROW(
      run_sweep(grid2x3(), {"m"},
                [](const std::vector<double>& p) -> std::vector<double> {
                  if (p[0] == 2.0) {
                    throw StatusError(
                        Failure(ErrorCode::kInfeasiblePoint, "no"));
                  }
                  return {1.0};
                },
                fail_fast),
      StatusError);
  EXPECT_THROW(
      run_sweep(grid2x3(), {"m"},
                [](const std::vector<double>&) -> std::vector<double> {
                  return {std::numeric_limits<double>::infinity()};
                },
                fail_fast),
      StatusError);
}

TEST_F(DseFaultTest, PreconditionErrorsClassifyAsInfeasible) {
  const auto result = run_sweep(
      grid2x3(), {"m"}, [](const std::vector<double>& p) {
        expects(p[1] < 30.0, "b too large for this design");
        return std::vector<double>{p[0]};
      });
  EXPECT_EQ(result.failed_count(), 2u);  // b = 30 at both a values
  for (const std::size_t i : result.failed_rows()) {
    EXPECT_EQ(result.rows()[i].failure->code, ErrorCode::kInfeasiblePoint);
  }
}

TEST_F(DseFaultTest, ParetoAndBestIgnoreFailedRows) {
  // Benefit grows with b, but the largest-b points all fail: the best and
  // the front must come from the surviving b = 10/20 columns.
  const auto result = run_sweep(
      grid2x3(), {"benefit", "cost"}, [](const std::vector<double>& p) {
        if (p[1] == 30.0) {
          throw StatusError(Failure(ErrorCode::kThermalLimit, "too hot"));
        }
        return std::vector<double>{p[0] * p[1], p[0]};
      });
  const std::size_t best = result.best("benefit");
  EXPECT_TRUE(result.rows()[best].ok());
  EXPECT_DOUBLE_EQ(result.rows()[best].metrics[0], 40.0);  // 2 * 20
  for (const std::size_t i : result.pareto_front("benefit", "cost")) {
    EXPECT_TRUE(result.rows()[i].ok());
  }
}

TEST_F(DseFaultTest, BestThrowsWhenEveryPointFailed) {
  const auto result =
      run_sweep(grid2x3(), {"m"},
                [](const std::vector<double>&) -> std::vector<double> {
                  throw StatusError(Failure(ErrorCode::kThermalLimit, "hot"));
                });
  EXPECT_EQ(result.failed_count(), 6u);
  EXPECT_TRUE(result.pareto_front("m", "m").empty());
  try {
    (void)result.best("m");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInfeasiblePoint);
  }
}

TEST_F(DseFaultTest, FailureSummaryNamesPointsAndReasons) {
  const auto result = run_sweep(
      grid2x3(), {"m"}, [](const std::vector<double>& p) {
        if (p[0] == 2.0 && p[1] == 10.0) {
          throw StatusError(
              Failure(ErrorCode::kThermalLimit, "rise over budget"));
        }
        return std::vector<double>{p[0]};
      });
  const std::string summary = result.failure_summary();
  EXPECT_NE(summary.find("1 of 6 design points failed"), std::string::npos);
  EXPECT_NE(summary.find("a=2"), std::string::npos);
  EXPECT_NE(summary.find("b=10"), std::string::npos);
  EXPECT_NE(summary.find("kThermalLimit"), std::string::npos);
  EXPECT_NE(summary.find("rise over budget"), std::string::npos);
  // All-ok sweeps summarize to nothing.
  const auto ok = run_sweep(grid2x3(), {"m"}, [](const std::vector<double>&) {
    return std::vector<double>{1.0};
  });
  EXPECT_TRUE(ok.failure_summary().empty());
}

TEST_F(DseFaultTest, ToTableMarksFailedRows) {
  const auto result = run_sweep(
      grid2x3(), {"m"}, [](const std::vector<double>& p) {
        if (p[0] == 2.0 && p[1] == 30.0) {
          throw StatusError(Failure(ErrorCode::kNumericalError, "nan"));
        }
        return std::vector<double>{p[0]};
      });
  const std::string table = result.to_table().to_string();
  EXPECT_NE(table.find("status"), std::string::npos);
  EXPECT_NE(table.find("kNumericalError"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST_F(DseFaultTest, WrongMetricCountAbortsUnderEveryPolicy) {
  EXPECT_THROW(run_sweep(grid2x3(), {"one", "two"},
                         [](const std::vector<double>&) {
                           return std::vector<double>{0.0};
                         }),
               PreconditionError);
}

TEST_F(DseFaultTest, InjectedSweepFaultHitsChosenPoint) {
  // Arm the sweep-point site: skip 3 evaluations, fail the 4th.
  FaultInjector::instance().arm(
      "dse.sweep.point", Failure(ErrorCode::kNumericalError, "injected"),
      /*skip=*/3, /*count=*/1);
  const auto result =
      run_sweep(grid2x3(), {"m"}, [](const std::vector<double>& p) {
        return std::vector<double>{p[0] + p[1]};
      });
  EXPECT_EQ(result.failed_count(), 1u);
  EXPECT_EQ(result.failed_rows()[0], 3u);
  EXPECT_EQ(result.rows()[3].failure->code, ErrorCode::kNumericalError);
  EXPECT_EQ(result.ok_count(), 5u);
}

TEST_F(DseFaultTest, InjectedModelFaultPropagatesThroughEvaluator) {
  // Arm the EDP model boundary; the sweep evaluator calls into it, so the
  // armed hit surfaces as a failed row, not a dead sweep.
  FaultInjector::instance().arm(
      "core.edp.evaluate", Failure(ErrorCode::kThermalLimit, "injected"),
      /*skip=*/2, /*count=*/1);
  core::WorkloadPoint w;
  w.f0_ops = 1.0e6;
  w.d0_bits = 1.0e6;
  w.max_partitions = 8;
  core::Chip2d c2;
  c2.bandwidth_bits_per_cycle = 64.0;
  c2.peak_ops_per_cycle = 256.0;
  c2.alpha_pj_per_bit = 1.0;
  c2.compute_pj_per_op = 0.1;
  core::Chip3d c3;
  c3.parallel_cs = 4;
  c3.bandwidth_bits_per_cycle = 512.0;
  c3.alpha_pj_per_bit = 0.5;
  Grid g;
  g.axis("x", {1.0, 2.0, 3.0, 4.0});
  const auto result = run_sweep(g, {"edp"}, [&](const std::vector<double>&) {
    return std::vector<double>{core::evaluate_edp(w, c2, c3).edp_benefit};
  });
  EXPECT_EQ(result.failed_count(), 1u);
  EXPECT_EQ(result.failed_rows()[0], 2u);
  EXPECT_EQ(result.rows()[2].failure->code, ErrorCode::kThermalLimit);
}

TEST_F(DseFaultTest, ThermalBudgetViolationIsRecordedMidSweep) {
  // Sweep tier count; tall stacks trip require_within_budget -> recorded.
  Grid g;
  g.axis("tiers", {1.0, 2.0, 3.0, 4.0, 5.0});
  const auto result = run_sweep(g, {"rise_k"}, [](const std::vector<double>& p) {
    core::ThermalStack stack(0.5);
    for (int t = 0; t < static_cast<int>(p[0]); ++t) {
      stack.add_tier({0.2, 20.0});
    }
    return std::vector<double>{stack.require_within_budget(60.0)};
  });
  EXPECT_GT(result.failed_count(), 0u);
  EXPECT_LT(result.failed_count(), 5u);  // short stacks stay feasible
  for (const std::size_t i : result.failed_rows()) {
    EXPECT_EQ(result.rows()[i].failure->code, ErrorCode::kThermalLimit);
  }
  // Failed rows are exactly the tall tail of the axis.
  EXPECT_TRUE(result.rows()[0].ok());
  EXPECT_FALSE(result.rows()[4].ok());
}

TEST_F(DseFaultTest, SensitivitySkipsAndRecordsFailedParameters) {
  const auto results = analyze_sensitivity(
      {"good", "bad"}, {2.0, 3.0},
      [](const std::vector<double>& p) {
        if (p[1] != 3.0) {  // perturbing "bad" fails
          throw StatusError(Failure(ErrorCode::kInfeasiblePoint, "no"));
        }
        return p[0];
      });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_NEAR(results[0].elasticity, 1.0, 1e-9);
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].failure->code, ErrorCode::kInfeasiblePoint);
  EXPECT_TRUE(std::isnan(results[1].elasticity));
  // The table renders failed rows at the bottom with their code.
  const std::string table = sensitivity_table(results).to_string();
  EXPECT_NE(table.find("kInfeasiblePoint"), std::string::npos);
  EXPECT_LT(table.find("good"), table.find("bad"));
}

TEST_F(DseFaultTest, SensitivityFailFastRethrows) {
  EXPECT_THROW(
      analyze_sensitivity(
          {"x"}, {1.0},
          [](const std::vector<double>& p) {
            if (p[0] != 1.0) {
              throw StatusError(Failure(ErrorCode::kNumericalError, "nan"));
            }
            return p[0];
          },
          0.05, ErrorPolicy::kFailFast),
      StatusError);
}

TEST_F(DseFaultTest, SensitivityNonFiniteObjectiveIsRecorded) {
  const auto results = analyze_sensitivity(
      {"x"}, {2.0}, [](const std::vector<double>& p) {
        return p[0] == 2.0 ? 1.0 : std::numeric_limits<double>::infinity();
      });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].failure->code, ErrorCode::kNumericalError);
}

}  // namespace
}  // namespace uld3d::dse

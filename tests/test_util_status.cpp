#include "uld3d/util/status.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace uld3d {
namespace {

TEST(ErrorCodeNames, AreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "kOk");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidConfig), "kInvalidConfig");
  EXPECT_STREQ(error_code_name(ErrorCode::kInfeasiblePoint),
               "kInfeasiblePoint");
  EXPECT_STREQ(error_code_name(ErrorCode::kThermalLimit), "kThermalLimit");
  EXPECT_STREQ(error_code_name(ErrorCode::kNumericalError), "kNumericalError");
}

TEST(Failure, FormatsCodeMessageAndContext) {
  Failure f(ErrorCode::kThermalLimit, "too hot");
  f.with("rise_k", 75.5).with("budget_k", std::int64_t{60});
  const std::string s = f.to_string();
  EXPECT_NE(s.find("kThermalLimit"), std::string::npos);
  EXPECT_NE(s.find("too hot"), std::string::npos);
  EXPECT_NE(s.find("rise_k=75.5"), std::string::npos);
  EXPECT_NE(s.find("budget_k=60"), std::string::npos);
}

TEST(StatusError, CarriesStructuredFailure) {
  try {
    throw StatusError(Failure(ErrorCode::kNumericalError, "nan escaped")
                          .with("metric", "edp_benefit"));
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNumericalError);
    EXPECT_EQ(error.failure().context.size(), 1u);
    EXPECT_NE(std::string(error.what()).find("nan escaped"),
              std::string::npos);
  }
}

TEST(StatusError, IsAnUld3dError) {
  EXPECT_THROW(throw StatusError(Failure(ErrorCode::kInternal, "x")), Error);
}

TEST(ResultT, HoldsValue) {
  const Result<double> r(3.5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kOk);
  EXPECT_DOUBLE_EQ(r.value(), 3.5);
  EXPECT_DOUBLE_EQ(r.value_or(0.0), 3.5);
}

TEST(ResultT, HoldsFailure) {
  const Result<double> r(Failure(ErrorCode::kInfeasiblePoint, "no fit"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInfeasiblePoint);
  EXPECT_DOUBLE_EQ(r.value_or(-1.0), -1.0);
  EXPECT_THROW(r.value(), StatusError);
  EXPECT_EQ(r.failure().message, "no fit");
}

TEST(Diagnostics, AccumulatesInsteadOfThrowing) {
  Diagnostics d;
  EXPECT_TRUE(d.ok());
  d.error(ErrorCode::kInvalidConfig, "bad range").with("key", "capacity_mb");
  d.warn(ErrorCode::kUnknownKey, "typo").with("key", "capcity_mb");
  d.error(ErrorCode::kNumericalError, "nan");
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.error_count(), 2u);
  EXPECT_EQ(d.warning_count(), 1u);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.has(ErrorCode::kUnknownKey));
  EXPECT_FALSE(d.has(ErrorCode::kThermalLimit));
}

TEST(Diagnostics, WarningsAloneStayOk) {
  Diagnostics d;
  d.warn(ErrorCode::kUnknownKey, "typo");
  EXPECT_TRUE(d.ok());
  EXPECT_NO_THROW(d.throw_if_errors());
  EXPECT_THROW(d.throw_if_errors(/*strict=*/true), StatusError);
}

TEST(Diagnostics, ThrowIfErrorsThrowsFirstError) {
  Diagnostics d;
  d.warn(ErrorCode::kUnknownKey, "first warning");
  d.error(ErrorCode::kInvalidConfig, "first error");
  d.error(ErrorCode::kNumericalError, "second error");
  try {
    d.throw_if_errors();
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
  }
}

TEST(Diagnostics, MergeAndToString) {
  Diagnostics a;
  a.error(ErrorCode::kInvalidConfig, "range");
  Diagnostics b;
  b.warn(ErrorCode::kUnknownKey, "typo");
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  const std::string s = a.to_string();
  EXPECT_NE(s.find("error: "), std::string::npos);
  EXPECT_NE(s.find("warning: "), std::string::npos);
}

TEST(RequireFinite, PassesFiniteThrowsOtherwise) {
  EXPECT_DOUBLE_EQ(require_finite(1.25, "x"), 1.25);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(require_finite(nan, "speedup"), StatusError);
  try {
    require_finite(inf, "energy ratio");
    FAIL() << "expected StatusError";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNumericalError);
    EXPECT_NE(std::string(error.what()).find("energy ratio"),
              std::string::npos);
  }
}

TEST(EditDistance, ComputesLevenshtein) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("capacity_mb", "capcity_mb"), 1u);
}

TEST(NearestMatch, SuggestsWithinThreshold) {
  const std::vector<std::string> keys = {"capacity_mb", "feature_nm",
                                         "pitch_nm"};
  EXPECT_EQ(nearest_match("capcity_mb", keys), "capacity_mb");
  EXPECT_EQ(nearest_match("pich_nm", keys), "pitch_nm");
  EXPECT_EQ(nearest_match("totally_unrelated_key", keys), "");
}

}  // namespace
}  // namespace uld3d

#include "uld3d/sim/report.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::sim {
namespace {

DesignComparison comparison() {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  return compare_designs(nn::make_resnet18(),
                         AcceleratorConfig::baseline_2d(pdk),
                         AcceleratorConfig::m3d_design(pdk, 8));
}

TEST(Report, BreakdownHasOneRowPerLayerPlusTotal) {
  const auto cmp = comparison();
  const Table t = layer_breakdown_table(cmp.run_3d);
  EXPECT_EQ(t.row_count(), cmp.run_3d.layers.size() + 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("CONV1"), std::string::npos);
  EXPECT_NE(s.find("Total"), std::string::npos);
  EXPECT_NE(s.find("compute"), std::string::npos);
}

TEST(Report, ComparisonTableRowsAndTotals) {
  const auto cmp = comparison();
  EXPECT_EQ(comparison_table(cmp).row_count(), cmp.layers.size() + 1);
  EXPECT_EQ(comparison_table(cmp, false).row_count(), cmp.layers.size());
}

TEST(Report, SummaryLineMentionsNetworkAndNumbers) {
  const auto cmp = comparison();
  const std::string s = summary_line(cmp);
  EXPECT_NE(s.find("ResNet-18"), std::string::npos);
  EXPECT_NE(s.find("speedup"), std::string::npos);
  EXPECT_NE(s.find("EDP benefit"), std::string::npos);
  EXPECT_NE(s.find('x'), std::string::npos);
}

TEST(Report, CsvExportRoundTripsRowCount) {
  const auto cmp = comparison();
  const std::string csv = comparison_table(cmp).to_csv();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, cmp.layers.size() + 2);  // header + rows + total
}

}  // namespace
}  // namespace uld3d::sim

#include "uld3d/util/math.hpp"

#include <gtest/gtest.h>

namespace uld3d {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(12, 4), 3);
  EXPECT_EQ(ceil_div(0, 7), 0);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4);
  EXPECT_EQ(ceil_div(1, 100), 1);
  EXPECT_EQ(ceil_div(101, 100), 2);
}

TEST(ApproxEqual, RelativeTolerance) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 0.01));
}

TEST(ApproxEqual, NearZero) {
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(0.0, 1e-15));
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relative_difference(2.0, 1.0), 0.5);
  EXPECT_NEAR(relative_difference(10.0, 11.0), 1.0 / 11.0, 1e-12);
}

TEST(CeilToInt, Basics) {
  EXPECT_EQ(ceil_to_int(0.0), 0);
  EXPECT_EQ(ceil_to_int(1.0), 1);
  EXPECT_EQ(ceil_to_int(1.0001), 2);
  EXPECT_EQ(ceil_to_int(6.999999999999), 7);  // epsilon guard
}

TEST(CeilToInt, RejectsNegative) {
  EXPECT_THROW(ceil_to_int(-0.5), PreconditionError);
}

TEST(GeometricMean, EmptyIsOne) {
  GeometricMean g;
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_EQ(g.count(), 0);
}

TEST(GeometricMean, KnownValues) {
  GeometricMean g;
  g.add(2.0);
  g.add(8.0);
  EXPECT_NEAR(g.value(), 4.0, 1e-12);
  EXPECT_EQ(g.count(), 2);
}

TEST(GeometricMean, RejectsNonPositive) {
  GeometricMean g;
  EXPECT_THROW(g.add(0.0), PreconditionError);
  EXPECT_THROW(g.add(-1.0), PreconditionError);
}

class CeilDivProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CeilDivProperty, BoundsHold) {
  const std::int64_t n = GetParam();
  for (std::int64_t d = 1; d <= 17; ++d) {
    const std::int64_t q = ceil_div(n, d);
    EXPECT_GE(q * d, n);        // covers n
    EXPECT_LT((q - 1) * d, n);  // minimal
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CeilDivProperty,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 63, 64, 65,
                                           1000, 12345));

}  // namespace
}  // namespace uld3d

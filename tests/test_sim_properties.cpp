// Property sweeps over the systolic simulator: invariants across CS counts,
// layer shapes, and bandwidths.
#include <gtest/gtest.h>

#include <tuple>

#include "uld3d/nn/layer.hpp"
#include "uld3d/sim/layer_sim.hpp"
#include "uld3d/tech/pdk.hpp"

namespace uld3d::sim {
namespace {

AcceleratorConfig cfg(std::int64_t n_cs) {
  const auto pdk = tech::FoundryM3dPdk::make_130nm();
  auto c = n_cs == 1 ? AcceleratorConfig::baseline_2d(pdk)
                     : AcceleratorConfig::m3d_design(pdk, n_cs);
  return c;
}

// (K, C, OX, FX, stride)
using Shape = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t, std::int64_t>;

class LayerSweep : public ::testing::TestWithParam<Shape> {
 protected:
  [[nodiscard]] nn::Layer layer() const {
    const auto [k, c, ox, fx, stride] = GetParam();
    return nn::make_conv("sweep", k, c, ox, ox, fx, fx, stride);
  }
};

TEST_P(LayerSweep, SpeedupBetweenOneAndCsUsed) {
  const nn::Layer l = layer();
  const LayerResult r1 = simulate_layer(l, cfg(1));
  const LayerResult r8 = simulate_layer(l, cfg(8));
  const double speedup =
      static_cast<double>(r1.cycles) / static_cast<double>(r8.cycles);
  EXPECT_GE(speedup, 1.0 - 1e-9);
  EXPECT_LE(speedup, static_cast<double>(r8.cs_used) + 1e-9);
}

TEST_P(LayerSweep, CyclesMonotoneInCsCount) {
  const nn::Layer l = layer();
  std::int64_t previous = simulate_layer(l, cfg(1)).cycles;
  for (const std::int64_t n : {2, 4, 8, 16}) {
    const std::int64_t cycles = simulate_layer(l, cfg(n)).cycles;
    EXPECT_LE(cycles, previous) << n;
    previous = cycles;
  }
}

TEST_P(LayerSweep, EnergyComponentsNonNegativeAndConsistent) {
  const nn::Layer l = layer();
  for (const std::int64_t n : {1, 8}) {
    const LayerResult r = simulate_layer(l, cfg(n));
    EXPECT_GE(r.compute_energy_pj, 0.0);
    EXPECT_GE(r.memory_energy_pj, 0.0);
    EXPECT_GE(r.idle_energy_pj, 0.0);
    EXPECT_NEAR(r.energy_pj,
                r.compute_energy_pj + r.memory_energy_pj + r.idle_energy_pj,
                1e-6 * r.energy_pj);
  }
}

TEST_P(LayerSweep, MacEnergyIndependentOfCsCount) {
  const nn::Layer l = layer();
  EXPECT_DOUBLE_EQ(simulate_layer(l, cfg(1)).compute_energy_pj,
                   simulate_layer(l, cfg(16)).compute_energy_pj);
}

TEST_P(LayerSweep, CsUsedNeverExceedsAvailable) {
  const nn::Layer l = layer();
  for (const std::int64_t n : {1, 2, 4, 8}) {
    EXPECT_LE(simulate_layer(l, cfg(n)).cs_used, n);
  }
}

TEST_P(LayerSweep, DoubleBandwidthNeverSlower) {
  const nn::Layer l = layer();
  auto base = cfg(8);
  auto fast = cfg(8);
  fast.memory.bank_read_bits_per_cycle *= 2.0;
  EXPECT_LE(simulate_layer(l, fast).cycles, simulate_layer(l, base).cycles);
}

INSTANTIATE_TEST_SUITE_P(
    ConvShapes, LayerSweep,
    ::testing::Values(Shape{64, 3, 112, 7, 2},    // ImageNet stem
                      Shape{64, 64, 56, 3, 1},    // early stage
                      Shape{128, 64, 28, 1, 2},   // downsample projection
                      Shape{512, 512, 7, 3, 1},   // late stage
                      Shape{1000, 512, 1, 1, 1},  // classifier
                      Shape{16, 16, 8, 1, 1},     // exact single tile
                      Shape{24, 40, 9, 5, 3}));   // ragged everything

}  // namespace
}  // namespace uld3d::sim

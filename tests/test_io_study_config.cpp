#include "uld3d/io/study_config.hpp"

#include <gtest/gtest.h>

#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::io {
namespace {

TEST(StudyConfig, EmptyConfigGivesPaperDefaults) {
  const auto study = case_study_from_config(Config::parse(""));
  EXPECT_DOUBLE_EQ(study.rram_capacity_mb, 64.0);
  EXPECT_EQ(study.m3d_cs_count(), 8);
  EXPECT_DOUBLE_EQ(study.pdk.node().feature_nm, 130.0);
}

TEST(StudyConfig, OverridesApply) {
  const auto study = case_study_from_config(Config::parse(R"(
[study]
capacity_mb = 128
[cnfet]
width_relaxation = 1.5
[cs]
sram_kb = 64
)"));
  EXPECT_DOUBLE_EQ(study.rram_capacity_mb, 128.0);
  EXPECT_DOUBLE_EQ(study.pdk.cnfet().width_relaxation, 1.5);
  EXPECT_DOUBLE_EQ(study.cs.sram_buffer_kb, 64.0);
  EXPECT_GT(study.m3d_cs_count(), 8);
}

TEST(StudyConfig, RoundTripPreservesTheDesignPoint) {
  accel::CaseStudy original;
  original.rram_capacity_mb = 96.0;
  original.cs.sram_buffer_kb = 128.0;
  const auto restored =
      case_study_from_config(Config::parse(case_study_to_config(original).to_text()));
  EXPECT_DOUBLE_EQ(restored.rram_capacity_mb, 96.0);
  EXPECT_DOUBLE_EQ(restored.cs.sram_buffer_kb, 128.0);
  EXPECT_EQ(restored.m3d_cs_count(), original.m3d_cs_count());
  // The restored study produces identical results.
  const auto net = nn::make_resnet18();
  EXPECT_DOUBLE_EQ(restored.run(net).edp_benefit,
                   original.run(net).edp_benefit);
}

TEST(StudyConfig, ArchitectureFromConfig) {
  const auto arch = architecture_from_config(Config::parse(R"(
[arch]
name = my-arch
spatial_k = 64
spatial_c = 16
rram_mb = 128
[weights]
reg_bytes = 2
local_kb = 16
global_mb = 1
[inputs]
local_kb = 16
global_mb = 1
[outputs]
reg_bytes = 4
global_mb = 1
)"));
  EXPECT_EQ(arch.name, "my-arch");
  EXPECT_EQ(arch.spatial.k, 64);
  EXPECT_EQ(arch.spatial.total_pes(), 64 * 16);
  EXPECT_DOUBLE_EQ(arch.rram_capacity_bits, units::mb_to_bits(128.0));
  EXPECT_DOUBLE_EQ(arch.weights.reg.capacity_bits, 16.0);
  EXPECT_DOUBLE_EQ(arch.inputs.local.capacity_bits, units::kb_to_bits(16.0));
  EXPECT_DOUBLE_EQ(arch.outputs.local.capacity_bits, 0.0);  // absent level
}

TEST(StudyConfig, ArchDefaultsAreUsable) {
  const auto arch = architecture_from_config(Config::parse("[arch]\n"));
  EXPECT_NO_THROW(arch.validate());
  EXPECT_EQ(arch.spatial.total_pes(), 256);
}

}  // namespace
}  // namespace uld3d::io

#include "uld3d/phys/m3d_flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "uld3d/util/check.hpp"
#include "uld3d/util/units.hpp"

namespace uld3d::phys {
namespace {

FlowInput case_study_input() {
  FlowInput input;
  input.rram_capacity_bits = units::mb_to_bits(64.0);
  input.cs_sram_area_um2 = 1.97e6;
  input.cs_logic_area_um2 = 4.6e6;
  input.cs_logic_gates = 295600;
  return input;
}

TEST(Flow, BaselineIsFeasible) {
  const M3dFlow flow;
  const DesignReport r = flow.run_design(case_study_input(), false, 1);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cs_placed, 1);
  EXPECT_TRUE(r.unplaced.empty());
  EXPECT_GT(r.footprint_mm2, 50.0);
  EXPECT_LT(r.footprint_mm2, 100.0);
}

TEST(Flow, M3dHostsEightCssInBaselineFootprint) {
  const M3dFlow flow;
  const FlowInput input = case_study_input();
  const FlowComparison cmp = flow.run_comparison(input, 8);
  EXPECT_TRUE(cmp.design_2d.feasible);
  EXPECT_TRUE(cmp.design_3d.feasible);
  EXPECT_TRUE(cmp.iso_footprint);
  EXPECT_EQ(cmp.design_3d.cs_placed, 8);
  EXPECT_DOUBLE_EQ(cmp.design_2d.footprint_mm2, cmp.design_3d.footprint_mm2);
}

TEST(Flow, PeakPowerDensityRisesAboutOnePercent) {
  // Paper Observation 2.
  const M3dFlow flow;
  const FlowComparison cmp = flow.run_comparison(case_study_input(), 8);
  EXPECT_GT(cmp.peak_density_ratio, 1.0);
  EXPECT_LT(cmp.peak_density_ratio, 1.03);
}

TEST(Flow, UpperTierPowerBelowOnePercent) {
  // Paper Observation 2: CNFET + RRAM tiers dissipate <1% of chip power.
  const M3dFlow flow;
  const DesignReport r = flow.run_design(case_study_input(), true, 8);
  EXPECT_LT(r.upper_tier_power_fraction, 0.01);
  EXPECT_GT(r.upper_tier_power_fraction, 0.0);
}

TEST(Flow, BothDesignsMeetTwentyMegahertz) {
  const M3dFlow flow;
  const FlowComparison cmp = flow.run_comparison(case_study_input(), 8);
  EXPECT_TRUE(cmp.design_2d.timing.meets_target);
  EXPECT_TRUE(cmp.design_3d.timing.meets_target);
  EXPECT_DOUBLE_EQ(cmp.design_2d.timing.achieved_frequency_mhz, 20.0);
  EXPECT_DOUBLE_EQ(cmp.design_3d.timing.achieved_frequency_mhz, 20.0);
}

TEST(Flow, M3dWirePerCsNotWorseThan2d) {
  const M3dFlow flow;
  const FlowComparison cmp = flow.run_comparison(case_study_input(), 8);
  EXPECT_GT(cmp.wirelength_per_cs_ratio, 0.5);
  EXPECT_LT(cmp.wirelength_per_cs_ratio, 1.1);
}

TEST(Flow, RoutingStaysWithinTrackCapacity) {
  const M3dFlow flow;
  const FlowComparison cmp = flow.run_comparison(case_study_input(), 8);
  for (const auto* r : {&cmp.design_2d, &cmp.design_3d}) {
    EXPECT_GT(r->congestion_peak, 0.0) << r->name;
    EXPECT_LT(r->congestion_peak, 1.0) << r->name;  // no overflow
    EXPECT_DOUBLE_EQ(r->congestion_overflow, 0.0) << r->name;
  }
}

TEST(Flow, OnlyM3dUsesIlvs) {
  const M3dFlow flow;
  const FlowComparison cmp = flow.run_comparison(case_study_input(), 8);
  EXPECT_EQ(cmp.design_2d.ilv_count, 0);
  EXPECT_GT(cmp.design_3d.ilv_count, 1000000);
}

TEST(Flow, SiUtilizationHealthy) {
  const M3dFlow flow;
  const FlowComparison cmp = flow.run_comparison(case_study_input(), 8);
  for (const auto* r : {&cmp.design_2d, &cmp.design_3d}) {
    EXPECT_GT(r->si_utilization, 0.6) << r->name;
    EXPECT_LT(r->si_utilization, 0.95) << r->name;
  }
}

TEST(Flow, DeterministicAcrossRuns) {
  const M3dFlow flow;
  const DesignReport a = flow.run_design(case_study_input(), true, 8);
  const DesignReport b = flow.run_design(case_study_input(), true, 8);
  EXPECT_DOUBLE_EQ(a.total_wirelength_um, b.total_wirelength_um);
  EXPECT_EQ(a.cs_placed, b.cs_placed);
  EXPECT_DOUBLE_EQ(a.peak_density_mw_per_mm2, b.peak_density_mw_per_mm2);
}

TEST(Flow, BusRoutesFollowSourceCsWhenBlocksGoUnplaced) {
  // Regression: the congestion/route loop used to derive a block's CS from
  // its position in `placed_blocks` (i / 3). Placement omits unplaced blocks,
  // so an unplaced block shifted every later block onto the wrong bank. Force
  // that case with a short die: the wide-aspect logic reshape (~4290 x 1072
  // um) exhausts the width after one CS, leaving later logic blocks unplaced
  // while their SRAM halves (~993 um square) still fit.
  FlowInput input = case_study_input();
  input.rram_capacity_bits = units::mb_to_bits(16.0);
  const M3dFlow flow;
  const DesignReport r = flow.run_design(input, true, 4, 12000.0, 2000.0);
  EXPECT_FALSE(r.feasible);
  ASSERT_FALSE(r.unplaced.empty());
  ASSERT_FALSE(r.placed_blocks.empty());
  ASSERT_EQ(r.bus_routes.size(), r.placed_blocks.size());
  std::size_t shifted = 0;
  for (std::size_t i = 0; i < r.placed_blocks.size(); ++i) {
    const std::string& name = r.placed_blocks[i].macro.name;
    ASSERT_EQ(name.rfind("cs", 0), 0u) << name;
    const std::size_t cs =
        static_cast<std::size_t>(std::stoul(name.substr(2)));
    // The route must target the block's own bank group, recovered from the
    // block NAME, not from its (shifted) position in placed_blocks.
    const std::string bank_name = "rram_bank" + std::to_string(cs % 4) + "_0";
    const auto bank = std::find_if(
        r.placed_macros.begin(), r.placed_macros.end(),
        [&](const PlacedMacro& m) { return m.macro.name == bank_name; });
    ASSERT_NE(bank, r.placed_macros.end()) << bank_name;
    EXPECT_DOUBLE_EQ(r.bus_routes[i].from.x, r.placed_blocks[i].rect.center().x)
        << name;
    EXPECT_DOUBLE_EQ(r.bus_routes[i].from.y, r.placed_blocks[i].rect.center().y)
        << name;
    EXPECT_DOUBLE_EQ(r.bus_routes[i].to.x, bank->rect.center().x) << name;
    EXPECT_DOUBLE_EQ(r.bus_routes[i].to.y, bank->rect.center().y) << name;
    if (i / 3 != cs) ++shifted;
  }
  // The scenario must actually shift positions, or it proves nothing: at
  // least one placed block's position / 3 must disagree with its real CS.
  EXPECT_GT(shifted, 0u);
}

TEST(Flow, ValidatesInput) {
  const M3dFlow flow;
  FlowInput bad = case_study_input();
  bad.rram_capacity_bits = 0.0;
  EXPECT_THROW(flow.run_design(bad, false, 1), PreconditionError);
  FlowInput bad2 = case_study_input();
  bad2.cs_logic_gates = 0;
  EXPECT_THROW(flow.run_design(bad2, false, 1), PreconditionError);
}

class CapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CapacitySweep, FlowStaysFeasibleAcrossCapacities) {
  FlowInput input = case_study_input();
  input.rram_capacity_bits = units::mb_to_bits(GetParam());
  const M3dFlow flow;
  // CS count scales ~linearly with capacity in the case study.
  const auto n = static_cast<std::int64_t>(GetParam() / 8.0);
  const FlowComparison cmp = flow.run_comparison(input, std::max<std::int64_t>(1, n));
  EXPECT_TRUE(cmp.design_2d.feasible) << GetParam();
  EXPECT_TRUE(cmp.design_3d.feasible) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep,
                         ::testing::Values(16.0, 32.0, 64.0, 96.0));

}  // namespace
}  // namespace uld3d::phys

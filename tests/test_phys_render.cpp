#include "uld3d/phys/render.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

std::vector<PlacedMacro> one_array() {
  return {{Macro::rram_array_2d("arr", 4.0e6), Rect::at(0, 0, 2000, 2000)}};
}

TEST(Render, AsciiContainsFrameAndLegend) {
  const std::string s =
      render_ascii_floorplan(4000.0, 4000.0, one_array(), {}, 32);
  EXPECT_NE(s.find('+'), std::string::npos);
  EXPECT_NE(s.find("R=RRAM array"), std::string::npos);
}

TEST(Render, MacroPaintsItsQuadrant) {
  const std::string s =
      render_ascii_floorplan(4000.0, 4000.0, one_array(), {}, 32);
  // The array covers the lower-left quadrant: 'R' present, '.' elsewhere.
  EXPECT_NE(s.find('R'), std::string::npos);
  EXPECT_NE(s.find('.'), std::string::npos);
  // y grows upward, so the FIRST grid line (top of die) is empty.
  const std::size_t first_row = s.find('\n') + 1;
  const std::size_t second_row_end = s.find('\n', first_row);
  const std::string top = s.substr(first_row, second_row_end - first_row);
  EXPECT_EQ(top.find('R'), std::string::npos) << top;
}

TEST(Render, SoftBlockGlyphsFollowNames) {
  std::vector<PlacedMacro> blocks;
  Macro logic;
  logic.name = "cs0_logic";
  logic.kind = MacroKind::kSramBuffer;
  blocks.push_back({logic, Rect::at(0, 0, 1000, 1000)});
  Macro sram;
  sram.name = "cs0_sram0";
  sram.kind = MacroKind::kSramBuffer;
  blocks.push_back({sram, Rect::at(2000, 2000, 1000, 1000)});
  const std::string s =
      render_ascii_floorplan(4000.0, 4000.0, {}, blocks, 32);
  EXPECT_NE(s.find('L'), std::string::npos);
  EXPECT_NE(s.find('s'), std::string::npos);
}

TEST(Render, WidthControlsColumns) {
  const std::string s =
      render_ascii_floorplan(4000.0, 4000.0, one_array(), {}, 16);
  const std::size_t line_end = s.find('\n');
  EXPECT_EQ(line_end, 18u);  // '+' + 16 + '+'
}

TEST(Render, Validation) {
  EXPECT_THROW(render_ascii_floorplan(0.0, 1.0, {}, {}), PreconditionError);
  EXPECT_THROW(render_ascii_floorplan(1.0, 1.0, {}, {}, 4), PreconditionError);
}

TEST(Def, ContainsHeaderDieAreaAndComponents) {
  const std::string def =
      export_def("m3d_top", 8000.0, 8000.0, one_array(), {});
  EXPECT_NE(def.find("DESIGN m3d_top ;"), std::string::npos);
  EXPECT_NE(def.find("DIEAREA ( 0 0 ) ( 8000 8000 ) ;"), std::string::npos);
  EXPECT_NE(def.find("COMPONENTS 1 ;"), std::string::npos);
  EXPECT_NE(def.find("- arr RramArray + FIXED ( 0 0 ) N ;"),
            std::string::npos);
  EXPECT_NE(def.find("END DESIGN"), std::string::npos);
}

TEST(Def, CountsMacrosAndBlocks) {
  std::vector<PlacedMacro> blocks = one_array();
  const std::string def =
      export_def("top", 8000.0, 8000.0, one_array(), blocks);
  EXPECT_NE(def.find("COMPONENTS 2 ;"), std::string::npos);
}

TEST(Def, RequiresName) {
  EXPECT_THROW(export_def("", 1.0, 1.0, {}, {}), PreconditionError);
}

}  // namespace
}  // namespace uld3d::phys

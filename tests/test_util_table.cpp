#include "uld3d/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "uld3d/util/check.hpp"

namespace uld3d {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"Layer", "Speedup"});
  t.add_row({"CONV1", "3.14x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Layer"), std::string::npos);
  EXPECT_NE(s.find("CONV1"), std::string::npos);
  EXPECT_NE(s.find("3.14x"), std::string::npos);
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(Table, TitleAppears) {
  Table t({"x"});
  EXPECT_NE(t.to_string("My Title").find("=== My Title ==="),
            std::string::npos);
  EXPECT_EQ(t.to_string().find("==="), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"name", "v"});
  t.add_row({"short", "1.00x"});
  t.add_row({"a much longer name", "12.34x"});
  const std::string s = t.to_string();
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
  }
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({R"(has "quote")", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quote\"\"\""), std::string::npos);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os, "T");
  EXPECT_EQ(os.str(), t.to_string("T"));
}

TEST(FormatHelpers, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(2.5, 3), "2.500");
}

TEST(FormatHelpers, FormatRatio) {
  EXPECT_EQ(format_ratio(5.66), "5.66x");
  EXPECT_EQ(format_ratio(0.99, 3), "0.990x");
}

}  // namespace
}  // namespace uld3d

// mapper/map_cache_file: the persistent MapCache store's load-bearing
// guarantees.
//
//  * round-trip fidelity: entries reloaded from the file price layers with
//    BIT-identical costs, counted as file hits;
//  * byte-stability: the same entries always serialize to byte-identical
//    files (shard merges and CI byte-compares rely on it);
//  * append-only merge: saving into a file that already holds another
//    process's entries unions them, losing neither side;
//  * refusal matrix: truncated, tampered (checksum), wrong-magic,
//    wrong-schema, and wrong-key-width files all throw
//    StatusError(kInvalidConfig); a MISSING file is a normal cold start.
#include "uld3d/mapper/map_cache_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "uld3d/mapper/cost_model.hpp"
#include "uld3d/mapper/map_cache.hpp"
#include "uld3d/mapper/table2.hpp"
#include "uld3d/util/status.hpp"

namespace uld3d::mapper {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream content;
  content << in.rdbuf();
  return std::move(content).str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// The format's checksum: FNV-1a folding eight bytes (one LE word) per
/// step, byte-wise over any tail — must match map_cache_file.cpp exactly.
std::uint64_t fnv1a_words(const char* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, 8);
    h ^= word;
    h *= 1099511628211ull;
  }
  for (; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Re-stamp the trailing checksum after a deliberate header edit, so the
/// test reaches the schema/key-width refusals instead of the checksum one.
void fix_checksum(std::string& bytes) {
  ASSERT_GE(bytes.size(), 16u);
  const std::uint64_t checksum =
      fnv1a_words(bytes.data() + 8, bytes.size() - 16);
  std::memcpy(bytes.data() + bytes.size() - 8, &checksum, 8);
}

nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                  std::int64_t fx, const std::string& name = "layer") {
  nn::ConvSpec s;
  s.name = name;
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = 1;
  return s;
}

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void expect_costs_identical(const LayerCost& a, const LayerCost& b) {
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.mapping_order, b.mapping_order);
  EXPECT_EQ(a.cs_used, b.cs_used);
  EXPECT_TRUE(bits_equal(a.latency_cycles, b.latency_cycles));
  EXPECT_TRUE(bits_equal(a.compute_cycles, b.compute_cycles));
  EXPECT_TRUE(bits_equal(a.rram_cycles, b.rram_cycles));
  EXPECT_TRUE(bits_equal(a.energy_pj, b.energy_pj));
  EXPECT_TRUE(bits_equal(a.mac_energy_pj, b.mac_energy_pj));
  EXPECT_TRUE(bits_equal(a.buffer_energy_pj, b.buffer_energy_pj));
  EXPECT_TRUE(bits_equal(a.rram_energy_pj, b.rram_energy_pj));
  EXPECT_TRUE(bits_equal(a.idle_energy_pj, b.idle_energy_pj));
  EXPECT_TRUE(bits_equal(a.utilization, b.utilization));
}

class MapCacheFileTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    MapCache::instance().set_enabled(true);
    MapCache::instance().clear();
    MapCache::instance().reset_counters();
  }
};

TEST_F(MapCacheFileTest, MissingFileIsAColdStart) {
  const std::string path = temp_path("mcf_missing.bin");
  std::remove(path.c_str());
  EXPECT_EQ(load_map_cache_file(path), 0u);
  EXPECT_EQ(MapCache::instance().file_hits(), 0u);
}

TEST_F(MapCacheFileTest, RoundTripPricesBitIdenticalAndCountsFileHits) {
  const std::string path = temp_path("mcf_roundtrip.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);

  const LayerCost cold = evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  const LayerCost cold2 = evaluate_conv(conv(128, 64, 7, 1), arch, {}, 4);
  EXPECT_GT(save_map_cache_file(path), 0u);

  reset();  // simulate a fresh process
  const std::size_t loaded = load_map_cache_file(path);
  EXPECT_GE(loaded, 2u);
  EXPECT_EQ(MapCache::instance().misses(), 0u);

  const LayerCost warm = evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  const LayerCost warm2 = evaluate_conv(conv(128, 64, 7, 1), arch, {}, 4);
  expect_costs_identical(cold, warm);
  expect_costs_identical(cold2, warm2);
  EXPECT_EQ(MapCache::instance().misses(), 0u);
  EXPECT_EQ(MapCache::instance().file_hits(), MapCache::instance().hits());
  EXPECT_GT(MapCache::instance().file_hits(), 0u);
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, LayerNameIsNotPartOfTheStore) {
  const std::string path = temp_path("mcf_names.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);
  const LayerCost original =
      evaluate_conv(conv(64, 32, 14, 3, "conv_a"), arch, {}, 2);
  save_map_cache_file(path);

  reset();
  load_map_cache_file(path);
  // A DIFFERENT layer name must still hit and come back carrying it.
  const LayerCost renamed =
      evaluate_conv(conv(64, 32, 14, 3, "conv_b"), arch, {}, 2);
  EXPECT_GT(MapCache::instance().file_hits(), 0u);
  EXPECT_EQ(renamed.layer, "conv_b");
  EXPECT_TRUE(bits_equal(original.energy_pj, renamed.energy_pj));
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, SavingIsByteStable) {
  const std::string path_a = temp_path("mcf_stable_a.bin");
  const std::string path_b = temp_path("mcf_stable_b.bin");
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  const Architecture arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  (void)evaluate_conv(conv(128, 64, 7, 1), arch, {}, 4);
  save_map_cache_file(path_a);
  save_map_cache_file(path_b);
  EXPECT_EQ(read_bytes(path_a), read_bytes(path_b));

  // Re-saving into an existing identical file appends nothing and does not
  // change a byte; a load-then-save round trip is the identity too.
  EXPECT_EQ(save_map_cache_file(path_a), 0u);
  EXPECT_EQ(read_bytes(path_a), read_bytes(path_b));
  reset();
  load_map_cache_file(path_a);
  save_map_cache_file(path_a);
  EXPECT_EQ(read_bytes(path_a), read_bytes(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST_F(MapCacheFileTest, SaveMergesWithEntriesAnotherProcessWrote) {
  const std::string path = temp_path("mcf_merge.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);

  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);  // "process 1"
  const std::size_t first = save_map_cache_file(path);
  EXPECT_GT(first, 0u);

  reset();                                          // "process 2"
  (void)evaluate_conv(conv(128, 64, 7, 1), arch, {}, 4);  // disjoint keys
  const std::size_t second = save_map_cache_file(path);
  EXPECT_GT(second, 0u);

  reset();  // "process 3" sees the union
  EXPECT_EQ(load_map_cache_file(path), first + second);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  (void)evaluate_conv(conv(128, 64, 7, 1), arch, {}, 4);
  EXPECT_EQ(MapCache::instance().misses(), 0u);
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, RefusesTruncatedFile) {
  const std::string path = temp_path("mcf_truncated.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  save_map_cache_file(path);
  const std::string bytes = read_bytes(path);
  // Every strict prefix must be refused, never half-loaded.  Probe a few
  // cut points including mid-header and one byte short.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{12}, bytes.size() / 2, bytes.size() - 1}) {
    write_bytes(path, bytes.substr(0, keep));
    reset();
    EXPECT_THROW(load_map_cache_file(path), StatusError) << "kept " << keep;
    EXPECT_EQ(MapCache::instance().size(), 0u) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, RefusesTamperedFile) {
  const std::string path = temp_path("mcf_tampered.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  save_map_cache_file(path);
  std::string bytes = read_bytes(path);
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits mid-payload
  write_bytes(path, bytes);
  reset();
  try {
    load_map_cache_file(path);
    FAIL() << "tampered file must be refused";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, RefusesWrongMagic) {
  const std::string path = temp_path("mcf_not_a_store.bin");
  write_bytes(path, "this is not a map-cache store at all");
  EXPECT_THROW(load_map_cache_file(path), StatusError);
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, RefusesWrongSchemaVersion) {
  const std::string path = temp_path("mcf_schema.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  save_map_cache_file(path);
  std::string bytes = read_bytes(path);
  const std::uint32_t future_schema = 999;
  std::memcpy(bytes.data() + 8, &future_schema, sizeof future_schema);
  fix_checksum(bytes);  // valid checksum, so the SCHEMA check must fire
  write_bytes(path, bytes);
  reset();
  try {
    load_map_cache_file(path);
    FAIL() << "future schema must be refused";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("schema"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, RefusesWrongKeyWidth) {
  const std::string path = temp_path("mcf_keywidth.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  save_map_cache_file(path);
  std::string bytes = read_bytes(path);
  const std::uint32_t other_width = MapCache::kKeyWords + 1;
  std::memcpy(bytes.data() + 12, &other_width, sizeof other_width);
  fix_checksum(bytes);
  write_bytes(path, bytes);
  reset();
  try {
    load_map_cache_file(path);
    FAIL() << "wrong key width must be refused";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(error.what()).find("key width"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, SaveOverwritesACorruptFileInsteadOfThrowing) {
  const std::string path = temp_path("mcf_rewrite.bin");
  write_bytes(path, "garbage that is definitely not a store");
  const Architecture arch = make_table2_architecture(1);
  (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  // End-of-run save must not die because a previous file was corrupt —
  // losing this run's entries on top of the corruption would be strictly
  // worse.  It warns and rewrites.
  const std::size_t appended = save_map_cache_file(path);
  EXPECT_GT(appended, 0u);
  reset();
  EXPECT_EQ(load_map_cache_file(path), appended);
  std::remove(path.c_str());
}

TEST_F(MapCacheFileTest, SessionLoadsOnEntryAndSavesOnExit) {
  const std::string path = temp_path("mcf_session.bin");
  std::remove(path.c_str());
  const Architecture arch = make_table2_architecture(1);
  {
    MapCacheFileSession session(path);
    EXPECT_EQ(session.loaded(), 0u);  // cold
    (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
  }
  reset();
  {
    MapCacheFileSession session(path);
    EXPECT_GT(session.loaded(), 0u);  // warm
    (void)evaluate_conv(conv(64, 32, 14, 3), arch, {}, 2);
    EXPECT_EQ(MapCache::instance().misses(), 0u);
    EXPECT_GT(MapCache::instance().file_hits(), 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uld3d::mapper

#include "uld3d/mapper/spatial_search.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "uld3d/mapper/table2.hpp"
#include "uld3d/nn/zoo.hpp"
#include "uld3d/util/check.hpp"

namespace uld3d::mapper {
namespace {

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

nn::ConvSpec conv(std::int64_t k, std::int64_t c, std::int64_t ox,
                  std::int64_t fx) {
  nn::ConvSpec s;
  s.name = "c";
  s.k = k;
  s.c = c;
  s.ox = ox;
  s.oy = ox;
  s.fx = fx;
  s.fy = fx;
  s.stride = 1;
  return s;
}

TEST(Enumerate, CountsCompositionsOfTheExponent) {
  // 2^n has C(n+3, 3) ordered power-of-two factorizations into 4 factors.
  EXPECT_EQ(enumerate_unrollings(1).size(), 1u);
  EXPECT_EQ(enumerate_unrollings(2).size(), 4u);
  EXPECT_EQ(enumerate_unrollings(1024).size(), 286u);  // C(13,3)
}

TEST(Enumerate, EveryUnrollingCoversTheBudget) {
  for (const auto& u : enumerate_unrollings(256)) {
    EXPECT_EQ(u.total_pes(), 256);
    EXPECT_GE(u.k, 1);
    EXPECT_GE(u.c, 1);
  }
}

TEST(Enumerate, RejectsNonPowerOfTwo) {
  EXPECT_THROW(enumerate_unrollings(100), PreconditionError);
  EXPECT_THROW(enumerate_unrollings(0), PreconditionError);
}

TEST(SpatialSearch, NeverWorseThanFixedDataflow) {
  const auto arch = make_table2_architecture(3);  // (32, 32)
  for (const auto& layer :
       {conv(96, 3, 55, 11), conv(256, 96, 27, 5), conv(512, 512, 7, 3)}) {
    const SpatialSearchResult r = search_spatial(layer, arch, {}, 8);
    EXPECT_GE(r.improvement(), 1.0 - 1e-9) << layer.name;
    EXPECT_EQ(r.candidates, 286u);
  }
}

TEST(SpatialSearch, SmallChannelLayerPrefersSpatialUnrolling) {
  // C = 3 wastes a (32, 32) channel-parallel array; the search must move
  // unrolling into OX/OY and beat it clearly.
  const auto arch = make_table2_architecture(3);
  const SpatialSearchResult r = search_spatial(conv(96, 3, 55, 11), arch, {}, 1);
  EXPECT_GT(r.improvement(), 2.0);
  EXPECT_LE(r.best.c, 4);                     // tiny C unrolling
  EXPECT_GT(r.best.ox * r.best.oy, 16);       // big spatial unrolling
}

TEST(SpatialSearch, WellMatchedLayerGainsLittle) {
  // A large square conv already fits the (32, 32) dataflow.
  const auto arch = make_table2_architecture(3);
  const SpatialSearchResult r =
      search_spatial(conv(512, 512, 14, 3), arch, {}, 1);
  EXPECT_LT(r.improvement(), 1.3);
}

TEST(SpatialSearch, NetworkSearchAggregates) {
  const auto arch = make_table2_architecture(3);
  const nn::Network net = nn::make_alexnet();
  const SearchedNetworkCost out = evaluate_network_with_search(net, arch, {}, 8);
  ASSERT_EQ(out.searched.layers.size(), net.size());
  EXPECT_GE(out.edp_improvement(), 1.0 - 1e-9);
  // AlexNet's CONV1 (C = 3) guarantees a real network-level win.
  EXPECT_GT(out.edp_improvement(), 1.05);
  // Vector layers are untouched by the search.
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!net.layer(i).is_conv()) {
      EXPECT_DOUBLE_EQ(out.searched.layers[i].latency_cycles,
                       out.fixed.layers[i].latency_cycles);
    }
  }
}

// --- Admissible pruning -----------------------------------------------------
//
// The bound's contract: pruning may only skip PRICING candidates that
// provably cannot beat the incumbent — the winner, its cost, and the
// candidate count must be bit-identical with pruning on or off.

/// Restores the global prune lever (tests flip it for A/B runs).
class SpatialPruneTest : public ::testing::Test {
 protected:
  void TearDown() override { set_spatial_prune_enabled(true); }
};

TEST_F(SpatialPruneTest, WinnerAndCostBitIdenticalPruneOnVsOff) {
  // Several layer shapes x architectures x CS counts, including the
  // small-C layer where the search moves the most and prunes the hardest.
  for (const int arch_index : {1, 3}) {
    const auto arch = make_table2_architecture(arch_index);
    for (const auto& layer :
         {conv(96, 3, 55, 11), conv(256, 96, 27, 5), conv(512, 512, 7, 3)}) {
      for (const std::int64_t n_cs : {std::int64_t{1}, std::int64_t{8}}) {
        set_spatial_prune_enabled(true);
        const SpatialSearchResult pruned =
            search_spatial(layer, arch, {}, n_cs);
        set_spatial_prune_enabled(false);
        const SpatialSearchResult exhaustive =
            search_spatial(layer, arch, {}, n_cs);

        EXPECT_EQ(pruned.best.k, exhaustive.best.k);
        EXPECT_EQ(pruned.best.c, exhaustive.best.c);
        EXPECT_EQ(pruned.best.ox, exhaustive.best.ox);
        EXPECT_EQ(pruned.best.oy, exhaustive.best.oy);
        EXPECT_TRUE(bits_equal(pruned.cost.latency_cycles,
                               exhaustive.cost.latency_cycles));
        EXPECT_TRUE(
            bits_equal(pruned.cost.energy_pj, exhaustive.cost.energy_pj));
        EXPECT_TRUE(bits_equal(pruned.fixed_cost.latency_cycles,
                               exhaustive.fixed_cost.latency_cycles));
        EXPECT_TRUE(bits_equal(pruned.fixed_cost.energy_pj,
                               exhaustive.fixed_cost.energy_pj));
        EXPECT_TRUE(
            bits_equal(pruned.improvement(), exhaustive.improvement()));
        // Pruning skips pricing, never consideration.
        EXPECT_EQ(pruned.candidates, exhaustive.candidates);
        EXPECT_EQ(exhaustive.lb_pruned, 0u);
      }
    }
  }
}

TEST_F(SpatialPruneTest, BadlyMatchedLayerActuallyPrunes) {
  // CONV1-like: most unrollings are far off the optimum, so the lower
  // bound must retire a nonzero share of the 286 candidates.
  const auto arch = make_table2_architecture(3);
  const SpatialSearchResult r = search_spatial(conv(96, 3, 55, 11), arch, {}, 1);
  EXPECT_GT(r.lb_pruned, 0u);
  EXPECT_LT(r.lb_pruned, r.candidates);
  EXPECT_EQ(r.candidates, 286u);
}

TEST_F(SpatialPruneTest, DisabledLeverPricesEveryCandidate) {
  const auto arch = make_table2_architecture(3);
  set_spatial_prune_enabled(false);
  const SpatialSearchResult r = search_spatial(conv(96, 3, 55, 11), arch, {}, 1);
  EXPECT_EQ(r.lb_pruned, 0u);
  EXPECT_EQ(r.candidates, 286u);
}

}  // namespace
}  // namespace uld3d::mapper

#include "uld3d/phys/floorplan.hpp"

#include <gtest/gtest.h>

#include "uld3d/util/check.hpp"

namespace uld3d::phys {
namespace {

Floorplan make_fp(double side = 4000.0) {
  return Floorplan(side, side, tech::TierStack::make_m3d_130nm(), 100.0);
}

TEST(Floorplan, StartsEmpty) {
  const Floorplan fp = make_fp();
  EXPECT_DOUBLE_EQ(fp.utilization(tech::TierKind::kSiCmosFeol), 0.0);
  EXPECT_DOUBLE_EQ(fp.free_area_um2(tech::TierKind::kSiCmosFeol),
                   4000.0 * 4000.0);
  EXPECT_TRUE(fp.macros().empty());
}

TEST(Floorplan, M3dArrayLeavesSiFree) {
  Floorplan fp = make_fp();
  const Macro array = Macro::rram_array_m3d("a", 1.0e6);
  ASSERT_TRUE(fp.place_macro(array, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(fp.utilization(tech::TierKind::kSiCmosFeol), 0.0);
  EXPECT_GT(fp.utilization(tech::TierKind::kRram), 0.0);
  EXPECT_GT(fp.utilization(tech::TierKind::kCnfetFeol), 0.0);
}

TEST(Floorplan, TwoDArrayBlocksSi) {
  Floorplan fp = make_fp();
  const Macro array = Macro::rram_array_2d("a", 1.0e6);
  ASSERT_TRUE(fp.place_macro(array, 0.0, 0.0));
  EXPECT_GT(fp.utilization(tech::TierKind::kSiCmosFeol), 0.0);
  EXPECT_DOUBLE_EQ(fp.utilization(tech::TierKind::kCnfetFeol), 0.0);
}

TEST(Floorplan, RejectsOutOfDiePlacement) {
  Floorplan fp = make_fp();
  const Macro array = Macro::rram_array_2d("a", 1.0e6);
  EXPECT_FALSE(fp.place_macro(array, 3500.0, 0.0));  // spills off the right
  EXPECT_TRUE(fp.macros().empty());
}

TEST(Floorplan, RejectsCollisionOnSharedTier) {
  Floorplan fp = make_fp();
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_2d("a", 1.0e6), 0.0, 0.0));
  EXPECT_FALSE(fp.place_macro(Macro::rram_array_2d("b", 1.0e6), 100.0, 100.0));
  EXPECT_EQ(fp.macros().size(), 1u);
}

TEST(Floorplan, DifferentTiersDoNotCollide) {
  Floorplan fp = make_fp();
  // A peripheral (Si only) can sit under an M3D array (RRAM+CNFET only).
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_m3d("a", 1.0e6), 0.0, 0.0));
  EXPECT_TRUE(fp.place_macro(Macro::rram_periph("p", 1.0e5), 0.0, 0.0));
}

TEST(Floorplan, PlaceAnywhereScansForSpace) {
  Floorplan fp = make_fp();
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_2d("a", 4.0e6), 0.0, 0.0));
  const auto rect = fp.place_macro_anywhere(Macro::rram_array_2d("b", 4.0e6));
  ASSERT_TRUE(rect.has_value());
  EXPECT_FALSE(rect->overlaps(fp.macros()[0].rect));
}

TEST(Floorplan, PlaceAnywhereFailsWhenFull) {
  Floorplan fp = make_fp(1000.0);
  ASSERT_TRUE(fp.place_macro(Macro::rram_array_2d("a", 1.0e6), 0.0, 0.0));
  EXPECT_FALSE(
      fp.place_macro_anywhere(Macro::rram_array_2d("b", 2.5e5)).has_value());
}

TEST(Floorplan, AllocateRegionMarksOnlyThatTier) {
  Floorplan fp = make_fp();
  const Rect region = Rect::at(0, 0, 1000, 1000);
  ASSERT_TRUE(fp.allocate_region(tech::TierKind::kSiCmosFeol, region));
  EXPECT_FALSE(fp.region_free(tech::TierKind::kSiCmosFeol, region));
  EXPECT_TRUE(fp.region_free(tech::TierKind::kCnfetFeol, region));
  EXPECT_FALSE(fp.allocate_region(tech::TierKind::kSiCmosFeol, region));
}

TEST(Floorplan, FindFreeRegionAvoidsBlockages) {
  Floorplan fp = make_fp(2000.0);
  ASSERT_TRUE(fp.allocate_region(tech::TierKind::kSiCmosFeol,
                                 Rect::at(0, 0, 2000, 1000)));
  const auto found =
      fp.find_free_region(tech::TierKind::kSiCmosFeol, 1500.0, 900.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_GE(found->y0, 1000.0);
}

TEST(Floorplan, FindFreeRegionFailsWhenTooBig) {
  const Floorplan fp = make_fp(2000.0);
  EXPECT_FALSE(
      fp.find_free_region(tech::TierKind::kSiCmosFeol, 2500.0, 100.0)
          .has_value());
}

TEST(Floorplan, FreeAreaTracksAllocations) {
  Floorplan fp = make_fp(2000.0);
  const double before = fp.free_area_um2(tech::TierKind::kSiCmosFeol);
  ASSERT_TRUE(fp.allocate_region(tech::TierKind::kSiCmosFeol,
                                 Rect::at(0, 0, 1000, 1000)));
  EXPECT_DOUBLE_EQ(fp.free_area_um2(tech::TierKind::kSiCmosFeol),
                   before - 1.0e6);
}

TEST(Floorplan, MetalTiersHaveNoPlacementGrid) {
  const Floorplan fp = make_fp();
  EXPECT_THROW(fp.free_area_um2(tech::TierKind::kBeolMetal),
               PreconditionError);
}

TEST(Floorplan, ValidatesConstruction) {
  EXPECT_THROW(Floorplan(0.0, 100.0, tech::TierStack::make_m3d_130nm()),
               PreconditionError);
  EXPECT_THROW(Floorplan(100.0, 100.0, tech::TierStack::make_m3d_130nm(), 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace uld3d::phys

#!/bin/sh
# Exercises uld3d-bench-compare's exit-code contract:
#   0 pass (or timing-only regressions under --time-advisory)
#   1 timing regression
#   2 fidelity regression (dominates timing)
#   3 usage error / malformed JSON
# Usage: cli_bench_compare.sh /path/to/uld3d-bench-compare [/path/to/a/bench]
set -u

cmp="$1"
bench="${2:-}"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

check() {
  expected="$1"
  shift
  "$@" >/dev/null 2>&1
  got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "FAIL: expected exit $expected, got $got: $*" >&2
    failures=$((failures + 1))
  fi
}

# A minimal schema-1 suite document.  median 10ms with a tight CI so a 2x
# slowdown is unambiguously outside noise; ns_per_op is a timing-derived
# value gated by --time-tol, not --value-tol.
write_suite() {
  path="$1"
  median="$2"
  edp="$3"
  nspo="$4"
  cat > "$path" <<EOF
{
  "schema_version": 1,
  "suite": "toy_suite",
  "provenance": {"git_sha": "test", "git_dirty": false, "compiler": "t",
                 "compiler_flags": "", "build_type": "Release",
                 "system": "test", "project_version": "0", "hostname": "t",
                 "timestamp_utc": "2026-01-01T00:00:00Z", "unix_time_s": 0,
                 "config_hashes": {}},
  "benchmarks": [
    {"name": "stage", "iterations": 5, "warmup": 1,
     "min_s": $median, "max_s": $median, "mean_s": $median,
     "median_s": $median, "mad_s": 0.0001, "ci95_half_width_s": 0.0002,
     "samples_s": [$median, $median, $median, $median, $median]}
  ],
  "values": [
    {"name": "edp_benefit", "value": $edp, "unit": "ratio"}
  ],
  "timing_values": [
    {"name": "ns_per_op", "value": $nspo, "unit": "ns"}
  ]
}
EOF
}

write_suite "$tmpdir/base.json" 0.010 5.4 2.0
write_suite "$tmpdir/same.json" 0.010 5.4 2.0
write_suite "$tmpdir/slow.json" 0.020 5.4 2.0             # 2x slowdown
write_suite "$tmpdir/perturbed.json" 0.010 5.4000054 2.0  # rel diff 1e-6
write_suite "$tmpdir/both.json" 0.020 5.4000054 2.0
write_suite "$tmpdir/tv_slow.json" 0.010 5.4 4.0          # 2x ns/op only
write_suite "$tmpdir/tv_jitter.json" 0.010 5.4 2.00002    # 1e-5 rel drift

# 0: identical runs pass
check 0 "$cmp" "$tmpdir/base.json" "$tmpdir/same.json"

# 1: synthetic 2x slowdown trips the timing gate
check 1 "$cmp" "$tmpdir/base.json" "$tmpdir/slow.json" --time-tol 15%

# ...but is advisory-only when the runner is known to be noisy
check 0 "$cmp" "$tmpdir/base.json" "$tmpdir/slow.json" --time-tol 15% --time-advisory

# ...and a generous tolerance accepts it
check 0 "$cmp" "$tmpdir/base.json" "$tmpdir/slow.json" --time-tol 150%

# 2: a 1e-6 fidelity perturbation trips the value gate at tol 1e-9
check 2 "$cmp" "$tmpdir/base.json" "$tmpdir/perturbed.json" --value-tol 1e-9

# ...fidelity dominates a simultaneous timing regression
check 2 "$cmp" "$tmpdir/base.json" "$tmpdir/both.json" --time-tol 15%

# ...and --time-advisory never demotes fidelity failures
check 2 "$cmp" "$tmpdir/base.json" "$tmpdir/both.json" --time-advisory

# ...but a loose value tolerance accepts the perturbation
check 0 "$cmp" "$tmpdir/base.json" "$tmpdir/perturbed.json" --value-tol 1e-3

# timing-derived values are TIMING-class: a 2x ns/op regression exits 1,
# is demoted by --time-advisory, and never trips the fidelity gate even at
# --value-tol 1e-9
check 1 "$cmp" "$tmpdir/base.json" "$tmpdir/tv_slow.json" --time-tol 15%
check 0 "$cmp" "$tmpdir/base.json" "$tmpdir/tv_slow.json" --time-tol 15% --time-advisory
check 1 "$cmp" "$tmpdir/base.json" "$tmpdir/tv_slow.json" --value-tol 1e-9 --time-tol 15%

# ...and wall-clock jitter far beyond --value-tol but inside --time-tol passes
check 0 "$cmp" "$tmpdir/base.json" "$tmpdir/tv_jitter.json" --time-tol 15% --value-tol 1e-9

# 3: usage errors and malformed input
check 3 "$cmp"
check 3 "$cmp" "$tmpdir/base.json"
check 3 "$cmp" "$tmpdir/base.json" "$tmpdir/same.json" --bogus-flag
check 3 "$cmp" "$tmpdir/missing.json" "$tmpdir/same.json"
printf 'not json at all' > "$tmpdir/garbage.json"
check 3 "$cmp" "$tmpdir/base.json" "$tmpdir/garbage.json"
printf '{"schema_version": 99, "suite": "x", "benchmarks": [], "values": []}' \
  > "$tmpdir/future.json"
check 3 "$cmp" "$tmpdir/base.json" "$tmpdir/future.json"

# merge: round-trips through the comparator
check 0 "$cmp" merge "$tmpdir/all.json" "$tmpdir/base.json"
check 0 "$cmp" "$tmpdir/all.json" "$tmpdir/same.json"
check 3 "$cmp" merge "$tmpdir/bad_merge.json" "$tmpdir/garbage.json"

# end-to-end against a real bench binary when one is provided: its JSON
# artifact must self-compare clean
if [ -n "$bench" ]; then
  ULD3D_BENCH_DIR="$tmpdir" "$bench" --iterations 2 --warmup 0 >/dev/null 2>&1
  produced=$(ls "$tmpdir"/BENCH_*.json 2>/dev/null | head -1)
  if [ -z "$produced" ]; then
    echo "FAIL: bench binary produced no BENCH_*.json" >&2
    failures=$((failures + 1))
  else
    check 0 "$cmp" "$produced" "$produced"
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures bench-compare check(s) failed" >&2
  exit 1
fi
echo "all bench-compare checks passed"
